# Convenience targets mirroring the artifact's Makefile-driven workflow.

PYTHON ?= python

.PHONY: install test test-fast bench examples results clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

test-fast:
	$(PYTHON) -m pytest tests/ -q -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/debugging_walkthrough.py
	$(PYTHON) examples/runtime_reconfiguration.py
	$(PYTHON) examples/custom_lb_and_nat.py
	$(PYTHON) examples/firewall_middlebox.py
	$(PYTHON) examples/ids_porting.py

results:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
