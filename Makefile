# Convenience targets mirroring the artifact's Makefile-driven workflow.

PYTHON ?= python

.PHONY: install test test-fast bench bench-smoke bench-cpu bench-cache bench-fluid bench-fluid-contended bench-cluster bench-trend bench-trend-update serve-smoke verify-fw ci lint examples results clean

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/ -q

test-fast:
	$(PYTHON) -m pytest tests/ -q -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Fast parallel-path regression check: a tiny sweep through the worker
# pool, the kernel events/sec and ISS instructions/sec probes, and the
# deterministic resilience-shape benchmarks.  Fits in the tier-1
# budget.  Set REPRO_CI=1 to relax the perf floors for shared runners.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli sweep --sizes 512,1024 --rpu-set 8,16 \
		--jobs 2 --warmup 200 --packets 500
	PYTHONPATH=src $(PYTHON) benchmarks/kernel_probe.py
	PYTHONPATH=src $(PYTHON) benchmarks/cpu_probe.py
	PYTHONPATH=src $(PYTHON) benchmarks/cache_probe.py
	PYTHONPATH=src $(PYTHON) benchmarks/fluid_probe.py
	PYTHONPATH=src $(PYTHON) benchmarks/fluid_contended_probe.py
	PYTHONPATH=src $(PYTHON) benchmarks/cluster_probe.py
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_resilience.py \
		benchmarks/test_cluster_resilience.py -q

# Trend gate: compare the probe JSONs under benchmarks/results/ against
# the committed baselines.json with per-metric tolerance bands.  Run
# after bench-smoke; fails on any regression with a before/after table.
bench-trend:
	PYTHONPATH=src $(PYTHON) benchmarks/trend.py

# Rewrite baselines.json from the current probe results (keeps
# hand-tuned bands).  Rerun after an intentional perf change and
# commit the diff — see docs/CI.md.
bench-trend-update:
	PYTHONPATH=src $(PYTHON) benchmarks/trend.py --update

# Lint + determinism lint + bytecode-compile; ruff is optional locally
# (CI always has it), the detlint AST pass always runs.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi
	PYTHONPATH=src $(PYTHON) -m repro.verify.detlint
	$(PYTHON) -m compileall -q src

# Static firmware verification gate: every bundled firmware must hold
# its documented operating point (CFG/WCET budget, abstract
# interpretation with memory-safety proofs and inferred loop bounds,
# MMIO footprint, floorplan, replay lint), and the full deep pass must
# stay fast enough to run as a sweep pre-flight.
verify-fw:
	PYTHONPATH=src $(PYTHON) -m repro.cli verify --all --deep
	PYTHONPATH=src $(PYTHON) benchmarks/verify_probe.py

# Online serving-mode smoke: replay the scripted scenario (hot
# reconfig + watchdog recovery under live traffic; any error reply
# fails), then bound the stepper's overhead over the batch engine.
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli serve \
		--script examples/serve_session.jsonl --check > /dev/null
	PYTHONPATH=src $(PYTHON) benchmarks/serve_probe.py

# Everything the GitHub workflow runs, in one local command.
ci: lint verify-fw
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	REPRO_CI=1 $(MAKE) bench-smoke
	REPRO_CI=1 $(MAKE) serve-smoke
	$(MAKE) bench-trend

# ISS backend probe on its own (interp vs closure-translated fast path)
bench-cpu:
	PYTHONPATH=src $(PYTHON) benchmarks/cpu_probe.py

# Replay-cache probe on its own (cache off vs on, parity + speedup)
bench-cache:
	PYTHONPATH=src $(PYTHON) benchmarks/cache_probe.py

# Fluid fast-forward probe on its own (byte parity at equal windows +
# effective-speedup floor on a long steady-state run)
bench-fluid:
	PYTHONPATH=src $(PYTHON) benchmarks/fluid_probe.py

# Contended-regime fluid probe on its own: rotating-period detection
# with backlogged FIFOs and per-period drops (byte parity incl.
# rx_drops + speedup floor), plus the 2-board cluster x fluid leg
# (fluid rack byte-identical to the event rack and across shards)
bench-fluid-contended:
	PYTHONPATH=src $(PYTHON) benchmarks/fluid_contended_probe.py

# Cluster scale-out probe on its own (1 vs 2 boards + shard identity)
bench-cluster:
	PYTHONPATH=src $(PYTHON) benchmarks/cluster_probe.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/debugging_walkthrough.py
	$(PYTHON) examples/runtime_reconfiguration.py
	$(PYTHON) examples/custom_lb_and_nat.py
	$(PYTHON) examples/firewall_middlebox.py
	$(PYTHON) examples/ids_porting.py

results:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
