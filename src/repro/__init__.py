"""repro — a Python reproduction of Rosebud (ASPLOS 2023).

Rosebud is a framework for FPGA-accelerated middleboxes built around
Reconfigurable Packet-processing Units (RPUs): RISC-V soft cores that
orchestrate custom hardware accelerators inside partially
reconfigurable FPGA regions, fed by a customizable load balancer and a
two-stage packet distribution fabric.

This package reproduces the system in simulation:

* :mod:`repro.sim` — discrete-event kernel and rate/latency arithmetic
* :mod:`repro.packet` — packets, headers, crafting, pcap
* :mod:`repro.riscv` — RV32IM assembler + instruction-set simulator
* :mod:`repro.hw` — FPGA resource/placement models (Tables 1-4)
* :mod:`repro.core` — the Rosebud framework itself
* :mod:`repro.accel` — firewall and Pigasus accelerators
* :mod:`repro.firmware` — RPU firmware (behavioural + assembly)
* :mod:`repro.traffic` — workload generation
* :mod:`repro.baselines` — Snort/Hyperscan and original Pigasus
* :mod:`repro.analysis` — measurement harness and analytic models
* :mod:`repro.serve` — online serving mode (sessions, feeds, JSON-RPC)

Stable public surface
---------------------

Everything in ``__all__`` below is the supported API — import these
from ``repro`` directly, not from deep module paths.  The surface is
versioned by :data:`__api_version__` (bumped on incompatible changes;
see ``docs/API.md`` for the migration table).  Heavier names resolve
lazily (PEP 562) so ``import repro`` stays light.
"""

__version__ = "1.1.0"
#: Version of the stable public surface declared in ``__all__``.
__api_version__ = "1"

from .core.config import CONFIG_16_RPU, CONFIG_8_RPU, RosebudConfig
from .core.system import RosebudSystem

#: name -> (module, attribute): the lazily-resolved part of the API.
_LAZY_EXPORTS = {
    "ExperimentSpec": ("repro.analysis.spec", "ExperimentSpec"),
    "ExperimentResult": ("repro.analysis.spec", "ExperimentResult"),
    "TrafficProfile": ("repro.analysis.spec", "TrafficProfile"),
    "MeasurementWindow": ("repro.analysis.spec", "MeasurementWindow"),
    "ThroughputResult": ("repro.analysis.harness", "ThroughputResult"),
    "run_experiment": ("repro.analysis.engine", "run_experiment"),
    "SweepRunner": ("repro.analysis.engine", "SweepRunner"),
    "SimSession": ("repro.serve.session", "SimSession"),
    "TrafficFeed": ("repro.serve.feed", "TrafficFeed"),
    "PcapFeed": ("repro.serve.feed", "PcapFeed"),
    "FaultSpec": ("repro.faults.spec", "FaultSpec"),
    "verify_firmware": ("repro.verify", "verify_firmware"),
    "ClusterSpec": ("repro.cluster.spec", "ClusterSpec"),
    "ClusterEngine": ("repro.cluster.engine", "ClusterEngine"),
}

__all__ = [
    "CONFIG_16_RPU",
    "CONFIG_8_RPU",
    "RosebudConfig",
    "RosebudSystem",
    "ExperimentSpec",
    "ExperimentResult",
    "TrafficProfile",
    "MeasurementWindow",
    "ThroughputResult",
    "run_experiment",
    "SweepRunner",
    "SimSession",
    "TrafficFeed",
    "PcapFeed",
    "FaultSpec",
    "verify_firmware",
    "ClusterSpec",
    "ClusterEngine",
    "__version__",
    "__api_version__",
]


def __getattr__(name):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
