"""repro — a Python reproduction of Rosebud (ASPLOS 2023).

Rosebud is a framework for FPGA-accelerated middleboxes built around
Reconfigurable Packet-processing Units (RPUs): RISC-V soft cores that
orchestrate custom hardware accelerators inside partially
reconfigurable FPGA regions, fed by a customizable load balancer and a
two-stage packet distribution fabric.

This package reproduces the system in simulation:

* :mod:`repro.sim` — discrete-event kernel and rate/latency arithmetic
* :mod:`repro.packet` — packets, headers, crafting, pcap
* :mod:`repro.riscv` — RV32IM assembler + instruction-set simulator
* :mod:`repro.hw` — FPGA resource/placement models (Tables 1-4)
* :mod:`repro.core` — the Rosebud framework itself
* :mod:`repro.accel` — firewall and Pigasus accelerators
* :mod:`repro.firmware` — RPU firmware (behavioural + assembly)
* :mod:`repro.traffic` — workload generation
* :mod:`repro.baselines` — Snort/Hyperscan and original Pigasus
* :mod:`repro.analysis` — measurement harness and analytic models
"""

__version__ = "1.0.0"

from .core.config import CONFIG_16_RPU, CONFIG_8_RPU, RosebudConfig
from .core.system import RosebudSystem

__all__ = ["CONFIG_16_RPU", "CONFIG_8_RPU", "RosebudConfig", "RosebudSystem", "__version__"]
