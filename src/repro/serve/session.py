"""The incremental simulation session: :class:`SimSession`.

A Rosebud deployment is a *long-running service* — the paper's headline
demo hot-swaps Pigasus firmware under live 100G traffic — so the
engine's measurement loop is factored into a resumable stepper instead
of a closed batch run.  A session owns one built system plus its
traffic feeds and exposes:

* :meth:`step` — advance the event simulation by ``n_events`` fired
  events and/or up to an absolute timestamp ``until_ts`` (or a relative
  ``cycles`` budget), with the measurement state machine pumped at
  every event boundary;
* :meth:`inject` — offer packets mid-flight (port ingress or the
  host's virtual-Ethernet trace path);
* :meth:`control` — live control-plane actions: hot firmware
  reconfiguration over the drain protocol, fault injection from
  :mod:`repro.faults`, LB policy swap, receive-mask writes, watchdog
  lifecycle, eviction;
* :meth:`snapshot` — rolling telemetry (per-RPU utilization, drop
  taxonomy, queue depths, replay-cache hit rate) as versioned JSON
  (``repro-snapshot/1``).

Batch :func:`repro.analysis.engine.run_experiment` is a thin wrapper —
open a session from the spec, :meth:`run_to_completion` — and produces
byte-identical :class:`~repro.analysis.spec.ExperimentResult`s because
the measurement drivers here replicate the legacy harness loops at
exact event granularity: phase transitions happen at the same
completion boundaries, baselines are snapshotted at the same instant,
and the result envelope is frozen the moment the measure target is
reached (so an interactive ``step`` overshooting the window cannot
perturb it).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..core.firmware_api import FirmwareModel
from ..sim.clock import max_effective_gbps
from ..sim.stats import Histogram
from ..analysis.harness import ThroughputResult
from ..analysis.spec import (
    LB_REGISTRY,
    ExperimentResult,
    ExperimentSpec,
    MeasurementWindow,
)
from ..schema import stamp
from .feed import SourceFeed, TrafficFeed


class SessionError(RuntimeError):
    """An operation that does not make sense in the session's state."""


# -- measurement state machines --------------------------------------------
#
# These replicate analysis/harness.py's retired batch loops as
# resumable drivers: ``pump()`` performs every phase transition whose
# completion target has been reached, and the caller (the session)
# interleaves ``pump()`` with single ``sim.step()`` calls.  Byte
# identity with the legacy loops rests on pumping *before every fired
# event*, so baselines and final readings land on the same event
# boundaries regardless of how the caller chunks its stepping.


class _MeasurementDriver:
    """Phase machine: ``warmup`` -> ``measure`` -> ``done``."""

    mode = ""

    def __init__(self, system, window: MeasurementWindow) -> None:
        self.system = system
        self.sim = system.sim
        self.window = window
        self.deadline = self.sim.now + window.max_cycles
        self.phase = "warmup"
        self.result: Any = None

    @property
    def done(self) -> bool:
        return self.phase == "done"

    def completions(self) -> int:
        raise NotImplementedError

    def target(self) -> int:
        if self.phase == "warmup":
            return self.window.warmup_packets
        return self.window.warmup_packets + self.window.measure_packets

    def pump(self) -> None:
        """Run every phase transition whose target has been reached."""
        while self.phase != "done" and self.completions() >= self.target():
            if self.phase == "warmup":
                self._begin_measure()
                self.phase = "measure"
            else:
                self._finish()
                self.phase = "done"

    def check_stall(self) -> None:
        """The legacy loops' stall guard, evaluated between events."""
        if self.sim.peek() is None or self.sim.now > self.deadline:
            raise RuntimeError(self._stall_message())

    def status(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"mode": self.mode, "phase": self.phase}
        if not self.done:
            out["completions"] = self.completions()
            out["target"] = self.target()
        return out

    # -- subclass hooks ----------------------------------------------------

    def _begin_measure(self) -> None:
        raise NotImplementedError

    def _finish(self) -> None:
        raise NotImplementedError

    def _stall_message(self) -> str:
        raise NotImplementedError


class _ThroughputDriver(_MeasurementDriver):
    """Steady-state rate measurement (was ``_measure_throughput``).

    Completion is counted at MAC TX (plus the host link and firmware
    drops, so drop/punt middleboxes measure their full served rate).
    """

    mode = "throughput"

    def __init__(
        self,
        system,
        window: MeasurementWindow,
        packet_size: int,
        offered_gbps_total: float,
        include_host: bool = True,
        include_absorbed: bool = False,
    ) -> None:
        super().__init__(system, window)
        self.packet_size = packet_size
        self.offered_gbps_total = offered_gbps_total
        self.include_host = include_host
        self.include_absorbed = include_absorbed

    def completions(self) -> int:
        done = self.system.counters.value("delivered")
        if self.include_host:
            done += self.system.counters.value("to_host")
            done += self.system.counters.value("dropped_by_firmware")
        return done

    def _begin_measure(self) -> None:
        system = self.system
        self._t0 = self.sim.now
        self._base_tx = [
            (meter.bytes_total, meter.packets_total) for meter in system.tx_meters
        ]
        self._base_host = (
            system.host_meter.bytes_total,
            system.host_meter.packets_total,
        )
        self._base_absorbed = sum(
            mac.counters.value("rx_bytes") for mac in system.macs
        )
        self._base_drops = system.total_rx_drops()
        self._base_rpu = list(system.rpu_packet_counts())

    def _finish(self) -> None:
        system = self.system
        elapsed_cycles = self.sim.now - self._t0
        seconds = system.config.clock.cycles_to_seconds(elapsed_cycles)

        tx_bytes = sum(
            meter.bytes_total - b0
            for meter, (b0, _p0) in zip(system.tx_meters, self._base_tx)
        )
        tx_packets = sum(
            meter.packets_total - p0
            for meter, (_b0, p0) in zip(system.tx_meters, self._base_tx)
        )
        if self.include_host:
            tx_bytes += system.host_meter.bytes_total - self._base_host[0]
            tx_packets += system.host_meter.packets_total - self._base_host[1]
        if self.include_absorbed:
            tx_bytes = (
                sum(mac.counters.value("rx_bytes") for mac in system.macs)
                - self._base_absorbed
            )
            tx_packets = self.window.measure_packets

        if seconds > 0:
            achieved_gbps = tx_bytes * 8 / seconds / 1e9
            achieved_mpps = tx_packets / seconds / 1e6
        else:
            # a zero-length measurement window (e.g. measure_packets=0
            # drives both phase transitions through one pump() with no
            # event in between): rates are undefined, report zero
            achieved_gbps = 0.0
            achieved_mpps = 0.0
        rpu_counts = [
            now - before
            for now, before in zip(system.rpu_packet_counts(), self._base_rpu)
        ]
        cpp = 0.0
        if achieved_mpps > 0:
            cpp = (
                system.config.n_rpus
                * system.config.clock.freq_hz
                / (achieved_mpps * 1e6)
            )

        self.result = ThroughputResult(
            packet_size=self.packet_size,
            offered_gbps=self.offered_gbps_total,
            achieved_gbps=achieved_gbps,
            achieved_mpps=achieved_mpps,
            line_rate_gbps=max_effective_gbps(
                self.offered_gbps_total, self.packet_size
            ),
            rx_drops=system.total_rx_drops() - self._base_drops,
            rpu_packet_counts=rpu_counts,
            cycles_per_packet=cpp,
        )

    def _stall_message(self) -> str:
        return f"stalled at {self.completions()} completions (target {self.target()})"


class _LatencyDriver(_MeasurementDriver):
    """Forwarding-latency histogram (was ``_measure_latency``)."""

    mode = "latency"

    def completions(self) -> int:
        return self.system.counters.value("delivered")

    def _begin_measure(self) -> None:
        self._histogram = Histogram("latency_us")
        self._original = self.system.latency_us
        self.system.latency_us = self._histogram

    def _finish(self) -> None:
        self.system.latency_us = self._original
        self.result = self._histogram

    def _stall_message(self) -> str:
        return "latency run stalled"


# -- the session ------------------------------------------------------------


class SimSession:
    """One live simulated Rosebud deployment, stepped incrementally.

    Two construction paths:

    * ``SimSession(spec)`` builds everything the batch engine would —
      backend, verification pre-flight, system, sources, replay cache,
      fault campaign — in the same order, so stepping to completion
      reproduces :func:`~repro.analysis.engine.run_experiment` byte for
      byte.
    * :meth:`SimSession.for_system` wraps a hand-built system (and
      optional already-constructed sources) for interactive use and for
      callers migrating off the removed ``measure_throughput`` /
      ``measure_latency`` harness wrappers.
    """

    def __init__(self, spec: Optional[ExperimentSpec] = None, *, _system=None) -> None:
        self.spec = spec
        self.spec_key = ""
        self._feeds: List[TrafficFeed] = []
        self._started = False
        self._measurement: Optional[_MeasurementDriver] = None
        self._result: Optional[Any] = None
        self._host = None
        self._controller = None
        self._replay_cache = None
        self._replay_base: Dict[str, int] = {}
        self._snapshot_seq = 0
        self._last_rates: Optional[Dict[str, float]] = None
        self._fluid = None
        self._last_fidelity: Optional[Dict[str, float]] = None

        if spec is None:
            self.system = _system
            return
        if _system is not None:
            raise SessionError("pass either a spec or a system, not both")
        if spec.cluster is not None:
            raise SessionError(
                "a SimSession is one board; drive cluster specs with "
                "repro.cluster.ClusterEngine (or run_experiment / "
                "`repro cluster`, which route there)"
            )

        # -- replicate run_experiment's setup, in its exact order --------
        if spec.cpu_backend is not None:
            # set before build: workers in a spawn pool don't inherit the
            # parent's default, so the spec carries the backend choice
            from ..riscv.cpu import set_default_backend

            set_default_backend(spec.cpu_backend)

        if spec.verify:
            # static pre-flight: cheap (cached CFG/WCET + arithmetic),
            # runs before the system is built so infeasible points fail
            # in microseconds instead of burning a simulation slot
            import warnings

            from ..verify import VerificationError, preflight_spec

            report = preflight_spec(spec)
            if report.failed:
                if spec.verify == "fail":
                    raise VerificationError(
                        f"pre-flight verification failed: {report.summary()}",
                        report,
                    )
                warnings.warn(
                    f"pre-flight verification failed: {report.summary()}",
                    RuntimeWarning,
                    stacklevel=2,
                )

        self.system = spec.build_system()
        sources = spec.build_sources(self.system)
        if spec.replay_cache:
            from ..analysis.engine import _replay_cache_for

            self._replay_cache = _replay_cache_for(spec)
            self._replay_base = self._replay_cache.stats.snapshot()
            self.system.attach_replay_cache(self._replay_cache)
        if spec.faults:
            # chaos path: schedule the campaign before traffic starts so
            # fault times are absolute simulation cycles
            from ..faults import install_faults

            self._controller = install_faults(self.system, spec.faults)
        self.spec_key = spec.cache_key()
        self._feeds = [SourceFeed(source) for source in sources]
        if spec.fidelity == "fluid":
            from ..fluid import FluidEngine
            from ..verify.fluidgate import fluid_gate

            self._fluid = FluidEngine(self, fluid_gate(spec))

    @classmethod
    def for_system(cls, system, sources: Sequence = ()) -> "SimSession":
        """Wrap an already-built system (interactive / migration path)."""
        session = cls(_system=system)
        for source in sources:
            session.add_feed(source if isinstance(source, TrafficFeed) else SourceFeed(source))
        return session

    # -- lifecycle ---------------------------------------------------------

    @property
    def sim(self):
        return self.system.sim

    @property
    def host(self):
        """The host control interface (created on first use; a fault
        controller's host is shared so watchdog/reconfig telemetry lands
        in one log)."""
        if self._controller is not None:
            return self._controller.host
        if self._host is None:
            from ..core.host import HostInterface

            self._host = HostInterface(self.system)
        return self._host

    @property
    def measurement_done(self) -> bool:
        return self._measurement is not None and self._measurement.done

    def add_feed(self, feed: TrafficFeed, delay: float = 0.0) -> TrafficFeed:
        """Attach a traffic feed; starts immediately on a running session."""
        self._feeds.append(feed)
        if self._fluid is not None:
            self._fluid.notify_feed(feed)
        if self._started:
            feed.start(self, delay)
        return feed

    def start(self, delay: float = 0.0) -> None:
        """Start traffic (idempotent); arms the spec's measurement."""
        if not self._started:
            self._started = True
            for feed in self._feeds:
                feed.start(self, delay)
        if self.spec is not None and self._measurement is None:
            spec = self.spec
            if spec.measure == "latency":
                self._measurement = _LatencyDriver(self.system, spec.window)
            else:
                self._measurement = _ThroughputDriver(
                    self.system,
                    spec.window,
                    spec.traffic.packet_size,
                    spec.traffic.offered_gbps,
                    include_host=spec.include_host,
                    include_absorbed=spec.include_absorbed,
                )

    # -- stepping ----------------------------------------------------------

    def step(
        self,
        n_events: Optional[int] = None,
        until_ts: Optional[float] = None,
        cycles: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Advance the simulation incrementally.

        Fires at most ``n_events`` events and/or every event up to
        absolute time ``until_ts`` (``cycles`` is relative shorthand);
        with no bound, runs until the event queue drains or the active
        measurement completes.  The measurement state machine is pumped
        before every event, and stepping pauses the instant a
        measurement finishes so its result is frozen at the same event
        boundary the batch engine would have stopped on.
        """
        self.start()
        sim = self.sim
        if cycles is not None:
            bound = sim.now + cycles
            until_ts = bound if until_ts is None else min(until_ts, bound)
        fired = 0
        froze = False
        driver = self._measurement
        fluid = self._fluid
        while True:
            if driver is not None and not driver.done:
                driver.pump()
                if driver.done:
                    self._finalize()
                    froze = True
                    break
            if n_events is not None and fired >= n_events:
                break
            if fluid is not None and fluid.pre_step(until_ts):
                # time was warped analytically; re-enter the loop so the
                # measurement pump observes the advanced ledger
                continue
            upcoming = sim.peek()
            if upcoming is None:
                break
            if until_ts is not None and upcoming > until_ts:
                break
            sim.step()
            if fluid is not None:
                fluid.after_event()
            fired += 1
        if until_ts is not None and not froze and sim.now < until_ts:
            # no events left before the bound: advance the clock to it
            # (matches Simulator.run(until=...) semantics)
            sim.run(until=until_ts)
        return {
            "events": fired,
            "now": sim.now,
            "measurement_done": self.measurement_done,
        }

    def run_to_completion(self) -> Any:
        """Step until the active measurement finishes (the batch path).

        Replicates the legacy harness loop exactly, including its stall
        diagnostics; returns the finalized result (an
        :class:`ExperimentResult` for spec sessions, the raw
        measurement for :meth:`for_system` sessions).
        """
        self.start()
        driver = self._measurement
        if driver is None:
            raise SessionError(
                "no measurement configured; open the session from a spec or "
                "call measure_throughput()/measure_latency()"
            )
        sim = self.sim
        fluid = self._fluid
        while not driver.done:
            driver.pump()
            if driver.done:
                break
            if fluid is not None and fluid.pre_step(None):
                continue
            driver.check_stall()
            sim.step()
            if fluid is not None:
                fluid.after_event()
        if self._result is None:
            self._finalize()
        return self._result

    def result(self) -> Any:
        """The finalized result; raises until the measurement completes."""
        if self._result is None:
            raise SessionError("measurement not complete; keep stepping")
        return self._result

    def _finalize(self) -> None:
        driver = self._measurement
        if self.spec is None:
            self._result = driver.result
            return
        # assemble the ExperimentResult envelope exactly as the batch
        # engine always has, at the same instant (no events in between)
        from ..analysis.engine import _firmware_totals

        if self.spec.measure == "latency":
            result = ExperimentResult(
                spec_key=self.spec_key, latency=driver.result.summary()
            )
        else:
            result = ExperimentResult(spec_key=self.spec_key, throughput=driver.result)
        result.counters = self.system.counters.snapshot()
        result.firmware_totals = _firmware_totals(self.system)
        if self._replay_cache is not None:
            result.replay = self._replay_cache.stats.delta(self._replay_base)
        if self._fluid is not None:
            result.fluid = self._fluid.stats()
        if self._controller is not None:
            from ..faults import resilience_report

            self._controller.host.stop_watchdog()
            self._controller.sampler.stop()
            result.resilience = resilience_report(self._controller)
        self._result = result

    # -- live-system measurements (migration path) -------------------------

    def measure_throughput(
        self,
        packet_size: int,
        offered_gbps: float,
        warmup_packets: int = 2000,
        measure_packets: int = 8000,
        max_cycles: float = 500_000_000,
        include_host: bool = True,
        include_absorbed: bool = False,
    ) -> ThroughputResult:
        """Measure steady-state rates on this session's live system."""
        self._arm(
            _ThroughputDriver(
                self.system,
                MeasurementWindow(
                    warmup_packets=warmup_packets,
                    measure_packets=measure_packets,
                    max_cycles=max_cycles,
                ),
                packet_size,
                offered_gbps,
                include_host=include_host,
                include_absorbed=include_absorbed,
            )
        )
        return self.run_to_completion()

    def measure_latency(
        self,
        warmup_packets: int = 500,
        measure_packets: int = 2000,
        max_cycles: float = 500_000_000,
    ) -> Histogram:
        """Collect the forwarding-latency histogram on this session."""
        self._arm(
            _LatencyDriver(
                self.system,
                MeasurementWindow(
                    warmup_packets=warmup_packets,
                    measure_packets=measure_packets,
                    max_cycles=max_cycles,
                ),
            )
        )
        return self.run_to_completion()

    def _arm(self, driver: _MeasurementDriver) -> None:
        if self.spec is not None:
            raise SessionError("spec sessions carry their own measurement")
        if self._measurement is not None and not self._measurement.done:
            raise SessionError("a measurement is already in progress")
        # order matches the legacy harness: traffic starts, then the
        # stall deadline is pinned relative to the current clock
        self.start()
        self._result = None
        self._measurement = driver

    # -- injection ---------------------------------------------------------

    def inject(self, packets, port: Optional[int] = None) -> int:
        """Offer packets immediately: to ``port``'s ingress, or through
        the host's virtual-Ethernet trace path when ``port`` is None."""
        if hasattr(packets, "data"):  # a single Packet
            packets = [packets]
        count = 0
        for packet in packets:
            if port is None:
                self.host.inject_packet(packet)
            else:
                self.system.offer_packet(port, packet)
            count += 1
        if count and self._fluid is not None:
            self._fluid.notify_transient("inject")
        return count

    # -- control plane -----------------------------------------------------

    def control(self, action: str, **params) -> Dict[str, Any]:
        """Perform a live control action; returns a JSON-safe record."""
        handler = getattr(self, f"_ctl_{action}", None)
        if handler is None:
            known = sorted(
                name[len("_ctl_"):] for name in dir(self) if name.startswith("_ctl_")
            )
            raise SessionError(f"unknown control action {action!r}; choices: {known}")
        out = handler(**params)
        if self._fluid is not None:
            # any control action is a transient: discard periodicity
            # evidence and let the detector re-prove steady state
            self._fluid.notify_transient(f"control:{action}")
        out["action"] = action
        out["t"] = self.sim.now
        return out

    def _ensure_controller(self):
        """A fault controller for live injection (lazily created: spec
        sessions without faults and for_system sessions don't pay for a
        sampler until chaos actually starts)."""
        if self._controller is None:
            from ..faults import install_faults

            self._controller = install_faults(self.system, [], host=self._host)
            self._host = None  # the controller's host is now canonical
        return self._controller

    def _resolve_firmware(self, firmware, rpu: int = 0) -> FirmwareModel:
        if firmware is None:
            return self.system.rpus[rpu].firmware.clone()
        if isinstance(firmware, FirmwareModel):
            return firmware
        if callable(firmware):
            return firmware()
        raise SessionError(f"cannot build firmware from {firmware!r}")

    def _ctl_reconfigure(self, rpu: int = 0, firmware=None, pr_load_ms=None) -> Dict:
        """Hot firmware reconfiguration over the drain protocol (§4.1)."""
        host = self.host
        if pr_load_ms is not None:
            host.pr_load_ms = float(pr_load_ms)
        record = host.reconfigure_rpu(int(rpu), self._resolve_firmware(firmware, int(rpu)))
        return {"rpu": record.rpu, "requested_at": record.requested_at}

    def _ctl_fault(
        self,
        kind: str = "",
        at_cycles=None,
        in_cycles=None,
        target: int = 0,
        duration_cycles: float = 0.0,
        magnitude: float = 1.0,
        seed: int = 0,
        **params,
    ) -> Dict:
        """Inject one fault live.  ``in_cycles`` is relative to *now*
        (the batch campaign's ``at_cycles`` is absolute)."""
        from ..faults import FaultSpec
        from ..faults.injectors import REGISTRY

        now = self.sim.now
        if at_cycles is None:
            at_cycles = now + float(in_cycles if in_cycles is not None else 0.0)
        if float(at_cycles) < now:
            raise SessionError(
                f"fault at_cycles={at_cycles} is in the past (now={now}); "
                "use in_cycles for a relative trigger"
            )
        spec = FaultSpec(
            kind=kind,
            at_cycles=float(at_cycles),
            target=int(target),
            duration_cycles=float(duration_cycles),
            magnitude=float(magnitude),
            seed=int(seed),
            params=tuple(sorted(params.items())),
        )
        if spec.kind == "sampler":
            raise SessionError("sampler interval is fixed once the controller exists")
        controller = self._ensure_controller()
        injector = REGISTRY.create(spec)
        controller.injectors.append(injector)
        injector.install(controller)
        return {"kind": spec.kind, "target": spec.target, "at_cycles": spec.at_cycles}

    def _ctl_set_lb(self, policy: str = "rr") -> Dict:
        """Swap the load-balancer policy under live traffic."""
        factory = LB_REGISTRY.get(policy)
        if factory is None:
            raise SessionError(
                f"unknown lb policy {policy!r}; choices: {sorted(LB_REGISTRY)}"
            )
        old = type(self.system.lb.policy).name
        self.system.lb.policy = factory(self.system.config.n_rpus)
        # replayed records may assume the old packet->RPU mapping;
        # flush so per-flow-state firmware stays sound under the swap
        self.system.invalidate_replay_caches("lb policy swap")
        return {"old": old, "new": type(self.system.lb.policy).name}

    def _ctl_set_receive_mask(self, mask: int = 0) -> Dict:
        self.host.set_receive_mask(int(mask))
        return {"mask": int(mask), "enabled": list(self.system.lb.enabled)}

    def _ctl_watchdog(
        self,
        op: str = "start",
        threshold_cycles: float = 50_000.0,
        poll_cycles: float = 5_000.0,
        pr_load_ms=None,
    ) -> Dict:
        host = self.host
        if pr_load_ms is not None:
            host.pr_load_ms = float(pr_load_ms)
        if op == "start":
            host.start_watchdog(
                lambda: self.system.rpus[0].firmware.clone(),
                threshold_cycles=float(threshold_cycles),
                poll_cycles=float(poll_cycles),
            )
        elif op == "stop":
            host.stop_watchdog()
        else:
            raise SessionError(f"watchdog op must be start|stop, got {op!r}")
        return {"op": op}

    def _ctl_evict(self, rpu: int = 0) -> Dict:
        abandoned = self.host.evict_rpu(int(rpu))
        return {"rpu": int(rpu), "packets_abandoned": abandoned}

    def _ctl_wedge(self, rpu: int = 0) -> Dict:
        self.system.rpus[int(rpu)].wedge()
        return {"rpu": int(rpu)}

    def _ctl_unwedge(self, rpu: int = 0) -> Dict:
        self.system.rpus[int(rpu)].unwedge()
        return {"rpu": int(rpu)}

    # -- telemetry ---------------------------------------------------------

    def _fidelity_block(self, now: float) -> Dict[str, Any]:
        """Per-window fidelity occupancy: what fraction of simulated time
        since the previous snapshot each tier covered."""
        warped = self._fluid.warped_cycles if self._fluid is not None else 0.0
        window = {"event": 1.0, "fluid": 0.0}
        if self._last_fidelity is not None:
            dt = now - self._last_fidelity["t"]
            dw = warped - self._last_fidelity["warped"]
            if dt > 0:
                frac = min(1.0, max(0.0, dw / dt))
                window = {"event": 1.0 - frac, "fluid": frac}
        self._last_fidelity = {"t": now, "warped": warped}
        if self._fluid is None:
            return {
                "mode": "event",
                "occupancy": {"event": 1.0, "fluid": 0.0},
                "window": window,
            }
        return {
            "mode": "fluid",
            "eligible": self._fluid.enabled,
            "engaged": self._fluid.warps > 0,
            "occupancy": self._fluid.occupancy(),
            "window": window,
            "warps": self._fluid.warps,
            "warped_cycles": self._fluid.warped_cycles,
        }

    def snapshot(self) -> Dict[str, Any]:
        """Rolling telemetry as a versioned (``repro-snapshot/1``) JSON
        document.  Every counter is cumulative, so consecutive snapshots
        are monotone; ``rates`` covers the interval since the previous
        snapshot."""
        system = self.system
        sim = self.sim
        self._snapshot_seq += 1
        now = sim.now

        tx_bytes = sum(m.bytes_total for m in system.tx_meters)
        tx_packets = sum(m.packets_total for m in system.tx_meters)
        host_bytes = system.host_meter.bytes_total

        rates: Dict[str, float] = {"tx_gbps": 0.0, "tx_mpps": 0.0, "host_gbps": 0.0}
        if self._last_rates is not None and now > self._last_rates["t"]:
            seconds = system.config.clock.cycles_to_seconds(
                now - self._last_rates["t"]
            )
            rates["tx_gbps"] = (tx_bytes - self._last_rates["tx_bytes"]) * 8 / seconds / 1e9
            rates["tx_mpps"] = (tx_packets - self._last_rates["tx_packets"]) / seconds / 1e6
            rates["host_gbps"] = (
                (host_bytes - self._last_rates["host_bytes"]) * 8 / seconds / 1e9
            )
        self._last_rates = {
            "t": now,
            "tx_bytes": tx_bytes,
            "tx_packets": tx_packets,
            "host_bytes": host_bytes,
        }

        def mac_total(counter: str) -> int:
            return sum(mac.counters.value(counter) for mac in system.macs)

        rpus = []
        for rpu in system.rpus:
            busy = rpu.counters.value("sw_cycles") + rpu.counters.value("accel_cycles")
            rpus.append(
                {
                    "index": rpu.index,
                    "packets": rpu.counters.value("packets"),
                    "busy_cycles": busy,
                    "utilization": busy / now if now > 0 else 0.0,
                    "in_flight": rpu.in_flight,
                    "paused": bool(rpu.paused),
                    "wedged": bool(rpu.wedged),
                    "enabled": bool(system.lb.enabled[rpu.index]),
                    "slot_occupancy": system.lb.slots.occupancy(rpu.index),
                }
            )

        replay = None
        stats = system.replay_stats()
        if stats is not None:
            counts = stats.snapshot()
            lookups = sum(
                counts.get(k, 0) for k in ("hits", "misses", "fallbacks", "bypasses")
            )
            replay = dict(counts)
            replay["hit_rate"] = counts.get("hits", 0) / lookups if lookups else 0.0

        host = self._controller.host if self._controller is not None else self._host
        reconfig = []
        watchdog = []
        if host is not None:
            reconfig = [
                {
                    "rpu": r.rpu,
                    "requested_at": r.requested_at,
                    "drained_at": r.drained_at,
                    "booted_at": r.booted_at,
                }
                for r in host.reconfig_log
            ]
            watchdog = [
                {
                    "rpu": w.rpu,
                    "detected_at": w.detected_at,
                    "packets_lost": w.packets_lost,
                    "recovered_at": w.recovered_at,
                    "mttr_cycles": w.recovery_cycles() if w.recovered else None,
                }
                for w in host.watchdog_log
            ]

        payload: Dict[str, Any] = {
            "seq": self._snapshot_seq,
            "now_cycles": now,
            "events_processed": sim.events_processed,
            "counters": system.counters.snapshot(),
            "drops": {
                "rx_overflow": system.total_rx_drops(),
                "firmware": system.counters.value("dropped_by_firmware"),
                "rx_csum": mac_total("rx_csum_drops"),
                "rx_link": mac_total("rx_link_drops"),
                "rx_runts": mac_total("rx_runts"),
                "rx_giants": mac_total("rx_giants"),
            },
            "queues": {
                "mac_rx_backlog": [mac.rx_backlog() for mac in system.macs],
                "rpu_in_flight": [rpu.in_flight for rpu in system.rpus],
                "host_rx": len(system.host_rx),
            },
            "rpus": rpus,
            "lb": {
                "policy": type(system.lb.policy).name,
                "dispatched": system.lb.dispatched,
                "deferred": system.lb.deferred,
                "enabled": list(system.lb.enabled),
            },
            "rates": rates,
            "fidelity": self._fidelity_block(now),
            "replay": replay,
            "measurement": (
                self._measurement.status() if self._measurement is not None else None
            ),
            "reconfig": reconfig,
            "watchdog": watchdog,
            "feeds": [feed.describe() for feed in self._feeds],
        }
        return stamp(payload, "repro-snapshot")
