"""The ``repro serve`` protocol: line-delimited JSON-RPC over stdio.

Each request is one JSON object per line::

    {"id": 1, "method": "open", "params": {"firmware": "forwarder", ...}}

and each reply is one ``repro-serve/1`` envelope per line::

    {"schema": "repro-serve/1", "id": 1, "ok": true, "result": {...}}
    {"schema": "repro-serve/1", "id": 2, "ok": false, "error": {...}}

Methods: ``open`` (build a session from spec-shaped params), ``step``
(``n_events`` / ``until_ts`` / ``cycles``), ``run`` (step to
measurement completion), ``inject`` (synthetic UDP burst or a pcap
feed), ``control`` (reconfigure / fault / set_lb / watchdog / ...),
``snapshot``, ``result``, ``ping``, ``close``.

The same loop serves two modes: interactive (stdin/stdout, one process
per session) and scripted (``repro serve --script scenario.jsonl``),
which is what the CI smoke target replays.  Blank lines and ``#``
comments are ignored so scenario files can be annotated.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, IO, List, Optional

from ..analysis.spec import (
    ExperimentSpec,
    MeasurementWindow,
    SpecError,
    TrafficProfile,
)
from ..core.config import RosebudConfig
from ..schema import stamp
from .feed import PcapFeed
from .session import SessionError, SimSession

#: firmware name -> builder(rules) returning (factory, firmware_args,
#: default lb, traffic overrides).  Mirrors the CLI subcommands so a
#: serve session can open any bundled middlebox.
SERVE_FIRMWARES = ("forwarder", "nat", "firewall", "pigasus_hw", "pigasus_sw")


def _firmware_bundle(name: str, rules: int):
    if name == "forwarder":
        from ..firmware import ForwarderFirmware

        return ForwarderFirmware, (), None, {}
    if name == "nat":
        from ..firmware import NatFirmware

        return NatFirmware, (), "hash", {"respect_generator_cap": False}
    if name == "firewall":
        from ..accel import IpBlacklistMatcher, generate_blacklist, parse_blacklist
        from ..firmware import FirewallFirmware

        matcher = IpBlacklistMatcher(parse_blacklist(generate_blacklist(rules)))
        return FirewallFirmware, (matcher,), None, {"respect_generator_cap": False}
    if name in ("pigasus_hw", "pigasus_sw", "pigasus"):
        from ..accel.pigasus import generate_ruleset, parse_rules
        from ..firmware import PigasusHwReorderFirmware, PigasusSwReorderFirmware

        parsed = parse_rules(generate_ruleset(rules))
        payloads = tuple(r.content for r in parsed)
        factory = (
            PigasusSwReorderFirmware if name == "pigasus_sw" else PigasusHwReorderFirmware
        )
        lb = "hash" if name == "pigasus_sw" else None
        overrides = {
            "source": "flows",
            "respect_generator_cap": False,
            "source_kwargs": {
                "attack_fraction": 0.01,
                "attack_payloads": payloads,
                "reorder_fraction": 0.003,
                "n_flows": 2048,
            },
        }
        return factory, (parsed,), lb, overrides
    raise SpecError(f"unknown firmware {name!r}; choices: {sorted(SERVE_FIRMWARES)}")


def spec_from_params(params: Dict[str, Any]) -> ExperimentSpec:
    """Build an :class:`ExperimentSpec` from RPC ``open`` parameters."""
    p = dict(params)
    name = p.pop("firmware", "forwarder")
    factory, fw_args, default_lb, overrides = _firmware_bundle(
        name, int(p.pop("rules", 120))
    )

    config_kwargs: Dict[str, Any] = {"n_rpus": int(p.pop("rpus", 16))}
    if "slots_per_rpu" in p:
        config_kwargs["slots_per_rpu"] = int(p.pop("slots_per_rpu"))
    elif name in ("pigasus_hw", "pigasus_sw", "pigasus"):
        config_kwargs["slots_per_rpu"] = 32

    traffic_kwargs: Dict[str, Any] = dict(overrides)
    traffic_kwargs.update(
        packet_size=int(p.pop("size", 512)),
        offered_gbps=float(p.pop("gbps", 100.0)),
        n_ports=int(p.pop("ports", 2)),
    )
    if "source" in p:
        traffic_kwargs["source"] = p.pop("source")
    if "source_kwargs" in p:
        traffic_kwargs["source_kwargs"] = p.pop("source_kwargs")
    if "seed_base" in p:
        traffic_kwargs["seed_base"] = int(p.pop("seed_base"))
    if "respect_generator_cap" in p:
        traffic_kwargs["respect_generator_cap"] = bool(p.pop("respect_generator_cap"))

    window = MeasurementWindow(
        warmup_packets=int(p.pop("warmup", 800)),
        measure_packets=int(p.pop("packets", 3000)),
        max_cycles=float(p.pop("max_cycles", 500_000_000)),
    )

    spec_kwargs: Dict[str, Any] = {
        "config": RosebudConfig(**config_kwargs),
        "firmware": factory,
        "firmware_args": fw_args,
        "traffic": TrafficProfile(**traffic_kwargs),
        "window": window,
        "lb": p.pop("lb", default_lb),
        "measure": p.pop("measure", "throughput"),
        "replay_cache": bool(p.pop("replay_cache", False)),
        "include_absorbed": bool(p.pop("include_absorbed", name == "firewall")),
        "faults": tuple(p.pop("faults", ())),
        "fidelity": p.pop("fidelity", "event"),
    }
    if "cluster" in p:
        cluster = p.pop("cluster")
        if isinstance(cluster, int):
            cluster = {"boards": cluster}
        # a dict is normalised to a ClusterSpec by the spec itself
        spec_kwargs["cluster"] = cluster
    if "include_host" in p:
        spec_kwargs["include_host"] = bool(p.pop("include_host"))
    if "cpu_backend" in p:
        spec_kwargs["cpu_backend"] = p.pop("cpu_backend")
    if "verify" in p:
        spec_kwargs["verify"] = p.pop("verify")
    if p:
        raise SpecError(f"unknown open parameters: {sorted(p)}")
    return ExperimentSpec(**spec_kwargs)


class ServeServer:
    """One JSON-RPC session endpoint (at most one open SimSession)."""

    def __init__(self) -> None:
        self.session: Optional[SimSession] = None
        self.errors = 0

    # -- request plumbing --------------------------------------------------

    def handle_line(self, line: str) -> Optional[Dict[str, Any]]:
        """Process one request line; returns the reply envelope, or
        None for blank/comment lines."""
        text = line.strip()
        if not text or text.startswith("#"):
            return None
        request_id: Any = None
        try:
            request = json.loads(text)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            method = request.get("method")
            handler = getattr(self, f"_rpc_{method}", None)
            if not isinstance(method, str) or handler is None:
                known = sorted(
                    n[len("_rpc_"):] for n in dir(self) if n.startswith("_rpc_")
                )
                raise ValueError(f"unknown method {method!r}; choices: {known}")
            params = request.get("params") or {}
            if not isinstance(params, dict):
                raise ValueError("params must be a JSON object")
            result = handler(**params)
            return stamp({"id": request_id, "ok": True, "result": result}, "repro-serve")
        except Exception as exc:  # every failure becomes a reply, not a crash
            self.errors += 1
            return stamp(
                {
                    "id": request_id,
                    "ok": False,
                    "error": {"type": type(exc).__name__, "message": str(exc)},
                },
                "repro-serve",
            )

    def _require_session(self) -> SimSession:
        if self.session is None:
            raise SessionError("no open session; call open first")
        return self.session

    # -- methods -----------------------------------------------------------

    def _rpc_ping(self) -> Dict[str, Any]:
        return {"pong": True}

    def _rpc_open(self, **params) -> Dict[str, Any]:
        if self.session is not None:
            raise SessionError("a session is already open; close it first")
        autostart = bool(params.pop("start", True))
        shards = int(params.pop("shards", 1))
        events = tuple(params.pop("events", ()))
        spec = spec_from_params(params)
        if spec.cluster is not None:
            # cluster sessions speak the same step/control/snapshot/
            # result surface; shards and events are runtime choices,
            # not part of the measured point
            from ..cluster.engine import ClusterEngine

            self.session = ClusterEngine(spec, shards=shards, events=events)
        else:
            if shards != 1 or events:
                raise SpecError(
                    "shards/events are cluster parameters; pass cluster={...} too"
                )
            self.session = SimSession(spec)
        if autostart:
            self.session.start()
        return {
            "spec_key": self.session.spec_key,
            "describe": spec.describe(),
            "started": autostart,
        }

    def _rpc_step(self, n_events=None, until_ts=None, cycles=None) -> Dict[str, Any]:
        return self._require_session().step(
            n_events=None if n_events is None else int(n_events),
            until_ts=None if until_ts is None else float(until_ts),
            cycles=None if cycles is None else float(cycles),
        )

    def _rpc_run(self) -> Dict[str, Any]:
        session = self._require_session()
        result = session.run_to_completion()
        return {"done": True, "result": result.to_dict()}

    def _rpc_inject(self, **params) -> Dict[str, Any]:
        session = self._require_session()
        if not hasattr(session, "inject"):
            raise SessionError(
                "inject is a single-board session feature; drive cluster "
                "sessions with control events (drain/restore/wedge_board)"
            )
        if "pcap" in params:
            feed = session.add_feed(
                PcapFeed(
                    params["pcap"],
                    port=int(params.get("port", 0)),
                    offered_gbps=float(params.get("gbps", 10.0)),
                    loop=bool(params.get("loop", False)),
                ),
                delay=float(params.get("delay", 0.0)),
            )
            return feed.describe()
        from ..packet import build_udp

        count = int(params.get("count", 1))
        size = int(params.get("size", 512))
        port = params.get("port", 0)
        packets = [
            build_udp(
                f"10.9.{i % 251}.{(i // 251) % 251}",
                "10.0.0.1",
                4000 + i % 1000,
                9,
                pad_to=size,
            )
            for i in range(count)
        ]
        injected = session.inject(packets, port=None if port is None else int(port))
        return {"injected": injected, "size": size}

    def _rpc_control(self, action: str = "", **params) -> Dict[str, Any]:
        return self._require_session().control(action, **params)

    def _rpc_snapshot(self) -> Dict[str, Any]:
        return self._require_session().snapshot()

    def _rpc_result(self) -> Dict[str, Any]:
        return self._require_session().result().to_dict()

    def _rpc_close(self) -> Dict[str, Any]:
        session = self._require_session()
        closer = getattr(session, "close", None)
        if closer is not None:
            closer()  # cluster sessions hold worker processes
        self.session = None
        return {"closed": True}


def serve_loop(
    in_stream: IO[str],
    out_stream: IO[str] = None,
    check: bool = False,
) -> int:
    """Drive a :class:`ServeServer` over line-delimited JSON streams.

    ``check=True`` (the scripted/CI mode) makes the exit status nonzero
    if any request produced an error reply, so a scenario file doubles
    as an end-to-end assertion.
    """
    out = out_stream if out_stream is not None else sys.stdout
    server = ServeServer()
    for line in in_stream:
        reply = server.handle_line(line)
        if reply is None:
            continue
        out.write(json.dumps(reply, sort_keys=True) + "\n")
        out.flush()
    return 1 if (check and server.errors) else 0


def run_script(path: str, out_stream: IO[str] = None, check: bool = True) -> int:
    """Replay a ``.jsonl`` scenario file through the serve loop."""
    with open(path) as fh:
        return serve_loop(fh, out_stream, check=check)


#: Replies that only echo state never appear here; kept for reference.
__all__: List[str] = [
    "ServeServer",
    "serve_loop",
    "run_script",
    "spec_from_params",
    "SERVE_FIRMWARES",
]
