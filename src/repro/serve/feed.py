"""Traffic feeds: one streaming interface over every packet origin.

A :class:`SimSession` does not care whether its packets come from a
rate-controlled generator (:mod:`repro.traffic`), a pcap trace replay
(:mod:`repro.packet.pcap`), or programmatic injection over the serve
RPC loop — each is wrapped in a :class:`TrafficFeed` that binds to the
session's live system when the session starts.  Feeds can also be
added mid-flight (:meth:`SimSession.add_feed`), which is how a serving
session layers an attack trace on top of steady background load.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..traffic.generator import ReplaySource, TrafficSource


class TrafficFeed:
    """One packet origin, bound to a session when traffic starts.

    Subclasses implement :meth:`_bind` (build whatever simulation
    machinery the feed needs against the session's system) — ``start``
    is idempotent so a feed added after the session is already running
    starts exactly once.
    """

    def __init__(self) -> None:
        self._started = False

    def start(self, session, delay: float = 0.0) -> None:
        if self._started:
            return
        self._started = True
        self._bind(session, delay)

    def _bind(self, session, delay: float) -> None:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        return {"kind": type(self).__name__, "started": self._started}


class SourceFeed(TrafficFeed):
    """Adapter over an already-constructed :class:`TrafficSource`.

    This is the compatibility path: spec-built generator sources (and
    any hand-built source a test passes to
    :meth:`SimSession.for_system`) stream through the same interface as
    pcap replay and injection.
    """

    def __init__(self, source: TrafficSource) -> None:
        super().__init__()
        self.source = source

    def _bind(self, session, delay: float) -> None:
        self.source.start(delay)

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": type(self.source).__name__,
            "port": self.source.port,
            "offered_gbps": self.source.offered_gbps,
            "started": self._started,
        }


class PcapFeed(TrafficFeed):
    """Replay a pcap trace at a target rate (the artifact's tcpreplay)."""

    def __init__(
        self,
        path: str,
        port: int = 0,
        offered_gbps: float = 10.0,
        loop: bool = False,
        respect_generator_cap: bool = True,
    ) -> None:
        super().__init__()
        self.path = path
        self.port = port
        self.offered_gbps = offered_gbps
        self.loop = loop
        self.respect_generator_cap = respect_generator_cap
        self._count = 0

    def _bind(self, session, delay: float) -> None:
        from ..packet.pcap import read_pcap

        packets = read_pcap(self.path)
        self._count = len(packets)
        source = ReplaySource(
            session.system,
            self.port,
            self.offered_gbps,
            packets,
            loop=self.loop,
            respect_generator_cap=self.respect_generator_cap,
        )
        source.start(delay)

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": "PcapFeed",
            "path": self.path,
            "port": self.port,
            "offered_gbps": self.offered_gbps,
            "packets": self._count,
            "started": self._started,
        }


class PacketBurstFeed(TrafficFeed):
    """Programmatic injection: offer a fixed packet list to one port.

    Packets are offered ``gap_cycles`` apart starting ``delay`` cycles
    after the feed binds — the same path :meth:`SimSession.inject` uses
    for immediate one-shot injection, packaged as a feed so scripted
    scenarios can schedule bursts alongside generator traffic.
    """

    def __init__(
        self,
        packets: Sequence,
        port: Optional[int] = 0,
        gap_cycles: float = 0.0,
    ) -> None:
        super().__init__()
        self.packets: List = list(packets)
        self.port = port
        self.gap_cycles = gap_cycles

    def _bind(self, session, delay: float) -> None:
        sim = session.system.sim
        for index, packet in enumerate(self.packets):
            sim.schedule(
                delay + index * self.gap_cycles,
                lambda p=packet: session.inject([p], port=self.port),
                name="feed.burst",
            )

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": "PacketBurstFeed",
            "port": self.port,
            "packets": len(self.packets),
            "started": self._started,
        }
