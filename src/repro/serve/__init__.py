"""Online serving mode: incremental sessions with live control.

:class:`SimSession` is the stepper the batch engine is built on;
:mod:`repro.serve.rpc` exposes it as a line-delimited JSON-RPC loop
(the ``repro serve`` CLI subcommand); :mod:`repro.serve.feed` is the
traffic-feed abstraction shared by generators, pcap replay, and
programmatic injection.
"""

from .feed import PacketBurstFeed, PcapFeed, SourceFeed, TrafficFeed
from .rpc import ServeServer, run_script, serve_loop, spec_from_params
from .session import SessionError, SimSession

__all__ = [
    "PacketBurstFeed",
    "PcapFeed",
    "ServeServer",
    "SessionError",
    "SimSession",
    "SourceFeed",
    "TrafficFeed",
    "run_script",
    "serve_loop",
    "spec_from_params",
]
