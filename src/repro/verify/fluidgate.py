"""Static eligibility gate for the fluid fast-forward tier.

``repro.fluid`` may only skip simulated time it can prove would have
been repetitive, and half of that proof is static: the firmware must be
replay-safe (its per-packet effect is a pure function of the packet
class plus allowed counter bumps — the same AST verdict the replay
cache trusts) and must carry a sound WCET bound so the analytic budget
formulas have a worst case to pin the steady-state rate against.

:func:`fluid_gate` evaluates both from the spec alone, before any
simulation runs; the dynamic half (periodic boundary detection, queue
stability) lives in :mod:`repro.fluid.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .preflight import FIRMWARE_ASM_TWINS, _twin_wcet
from .replaylint import CLASS_REPLAY_SAFE, lint_firmware_class


@dataclass
class FluidGate:
    """The static half of fluid-tier eligibility for one spec."""

    firmware_cls: str
    eligible: bool = True
    reasons: List[str] = field(default_factory=list)
    lint_classification: Optional[str] = None
    asm_twin: Optional[str] = None
    wcet_cycles: Optional[int] = None
    analytic_pps: Optional[float] = None
    offered_pps: Optional[float] = None
    contended: bool = False

    def block(self, reason: str) -> None:
        self.eligible = False
        self.reasons.append(reason)

    def to_dict(self) -> dict:
        return {
            "firmware_cls": self.firmware_cls,
            "eligible": self.eligible,
            "reasons": list(self.reasons),
            "lint_classification": self.lint_classification,
            "asm_twin": self.asm_twin,
            "wcet_cycles": self.wcet_cycles,
            "analytic_pps": self.analytic_pps,
            "offered_pps": self.offered_pps,
            "contended": self.contended,
        }


def fluid_gate(spec) -> FluidGate:
    """Decide statically whether ``spec`` may use the fluid tier.

    Never raises: an ineligible spec simply runs pure event simulation,
    with the reasons recorded in the result's ``fluid`` block.
    """
    firmware = spec.firmware
    if isinstance(firmware, type):
        cls = firmware
    else:
        # factory callables (lambdas, partials) hide the class; build one
        # instance to see what actually runs — specs do the same thing at
        # system construction, so this is cheap and side-effect free
        try:
            cls = type(spec.build_firmware())
        except Exception:
            cls = type(firmware)
    cls_name = getattr(cls, "__name__", str(cls))
    gate = FluidGate(firmware_cls=cls_name)

    if spec.faults:
        gate.block("armed fault campaign (transients are event-accurate)")
    if spec.traffic.source != "fixed":
        # flows/imix draw from an RNG: the emission stream never proves
        # periodic, so the dynamic detector would refuse anyway — say so
        # up front (the runtime fluid_profile() check remains authoritative)
        gate.block(
            f"traffic source {spec.traffic.source!r} is not provably periodic"
        )

    try:
        lint = lint_firmware_class(cls)
        gate.lint_classification = lint.classification
        if lint.classification != CLASS_REPLAY_SAFE:
            gate.block(
                f"replay lint classifies {cls_name} as {lint.classification}; "
                "only replay-safe firmware has a provably periodic effect"
            )
    except Exception:
        gate.block(f"replay lint could not analyze {cls_name}")

    twin = FIRMWARE_ASM_TWINS.get(cls_name)
    if twin is None:
        gate.block(f"{cls_name} has no assembly twin, so no static WCET bound")
    else:
        gate.asm_twin = twin
        wcet, accel, safety = _twin_wcet(twin)
        gate.wcet_cycles = wcet.wcet_cycles
        if not safety.passed:
            gate.block(
                f"{twin} fails memory-safety verification; a firmware "
                "with unsound accesses has no trustworthy steady state"
            )
        from ..analysis.throughput import fluid_reference_pps
        from .registry import _accel_worst_cycles

        gate.analytic_pps = fluid_reference_pps(
            clock_hz=spec.config.clock.freq_hz,
            n_rpus=spec.config.n_rpus,
            wcet_cycles=wcet.wcet_cycles,
            accel_cycles=_accel_worst_cycles(accel, spec.traffic.packet_size),
        )
    # contended classification: offered load above the WCET-derived
    # service capacity means backlogged queues and drops are *expected*,
    # and the engine's runtime conservation cross-check (offered ==
    # completions + drops per period, exactly) becomes load-bearing
    gate.offered_pps = spec.traffic.offered_gbps * 1e9 / (
        8.0 * spec.traffic.packet_size
    )
    gate.contended = (
        gate.analytic_pps is not None and gate.offered_pps > gate.analytic_pps
    )
    return gate
