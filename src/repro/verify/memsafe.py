"""Memory-safety verdicts from the abstract-interpretation fixpoint.

Every load/store site the interpreter collected carries an abstract
address (:class:`~repro.verify.absint.AbsVal`).  This module turns each
one into a verdict:

* ``proven`` — every concrete address the abstraction admits lies in a
  declared region the access is allowed to touch;
* ``violation`` — *no* admitted address is legal (an unmapped hole, a
  store into the text segment, a packet offset past the slot): the
  abstraction over-approximates the program, so an always-illegal
  abstract access is a real bug;
* ``unproven`` — the abstraction admits both legal and illegal
  addresses.  Sound analyses cannot call these safe; they surface as
  warnings (stores) or notes (loads) with full provenance so the
  operator can decide.

Three address shapes get dedicated rules.  **Packet pointers** (base
``pkt``) are slot-relative: the DMA engine places each frame at
``PKT_OFFSET`` inside a ``slot_bytes`` slot, so an offset interval
within ``[-PKT_OFFSET, slot_bytes - PKT_OFFSET)`` is in-slot for every
slot simultaneously; a separate *informational* check reports whether
the access is also within the received frame (``pkt_len``) rather than
merely within the slot.  **Stack pointers** (base ``sp``) become depth
obligations — the worst excursion is checked against the per-RPU
``RosebudConfig.stack_bytes`` allocation.  **Plain numbers** are
checked against the region map (imem is never writable: the runtime
twin is ``RiscvCpu._store_watch``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .absint import U32, AbsAccess, AbsintResult, MachineEnv
from .cfg import Diagnostic, FirmwareCfg


@dataclass
class AccessCheck:
    """One access site's verdict, with enough provenance to debug it."""

    pc: int
    kind: str  # "load" | "store"
    nbytes: int
    addr_desc: str
    verdict: str  # "proven" | "unproven" | "violation"
    region: Optional[str] = None
    detail: str = ""
    within_pkt_len: Optional[bool] = None  # packet accesses only

    def to_dict(self) -> dict:
        out = {
            "pc": f"0x{self.pc:x}",
            "kind": self.kind,
            "nbytes": self.nbytes,
            "addr": self.addr_desc,
            "verdict": self.verdict,
            "region": self.region,
            "detail": self.detail,
        }
        if self.within_pkt_len is not None:
            out["within_pkt_len"] = self.within_pkt_len
        return out


@dataclass
class MemSafetyReport:
    """Memory-safety summary for one firmware."""

    firmware: str
    checks: List[AccessCheck] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    stack_depth_bytes: int = 0
    stack_limit_bytes: int = 0
    analysis_incomplete: bool = False

    @property
    def proven(self) -> int:
        return sum(1 for c in self.checks if c.verdict == "proven")

    @property
    def unproven(self) -> int:
        return sum(1 for c in self.checks if c.verdict == "unproven")

    @property
    def violations(self) -> int:
        return sum(1 for c in self.checks if c.verdict == "violation")

    @property
    def passed(self) -> bool:
        """No violation, stack within its allocation, analysis ran to
        fixpoint.  ``unproven`` accesses do not fail the verdict — they
        are surfaced, not silently trusted."""
        return (
            not self.analysis_incomplete
            and self.violations == 0
            and self.stack_depth_bytes <= self.stack_limit_bytes
        )

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "accesses": len(self.checks),
            "proven": self.proven,
            "unproven": self.unproven,
            "violations": self.violations,
            "stack_depth_bytes": self.stack_depth_bytes,
            "stack_limit_bytes": self.stack_limit_bytes,
            "analysis_incomplete": self.analysis_incomplete,
            "checks": [c.to_dict() for c in self.checks],
        }


# -- per-shape rules ----------------------------------------------------------


def _check_pkt(acc: AbsAccess, env: MachineEnv) -> AccessCheck:
    # slot-relative window the DMA engine guarantees for every slot
    lo_ok = -env.pkt_offset
    hi_ok = env.slot_bytes - env.pkt_offset  # exclusive
    eff_lo = acc.addr.lo
    eff_hi = acc.addr.hi + acc.addr.lc * env.max_frame

    if lo_ok <= eff_lo and eff_hi + acc.nbytes <= hi_ok:
        verdict = "proven"
        detail = (
            f"slot offset [{eff_lo}, {eff_hi + acc.nbytes}) within "
            f"[{lo_ok}, {hi_ok})"
        )
    elif eff_hi < lo_ok or eff_lo + acc.nbytes > hi_ok:
        verdict = "violation"
        detail = (
            f"every admitted offset [{eff_lo}, {eff_hi}] falls outside "
            f"the packet slot [{lo_ok}, {hi_ok})"
        )
    else:
        verdict = "unproven"
        detail = (
            f"offset range [{eff_lo}, {eff_hi}] may leave the packet "
            f"slot [{lo_ok}, {hi_ok})"
        )

    # informational: inside the *received frame*, not just the slot
    if acc.addr.lc == 1:
        within = acc.addr.hi + acc.nbytes <= 0
    else:
        within = acc.addr.hi + acc.nbytes <= env.min_frame
    return AccessCheck(
        pc=acc.pc,
        kind=acc.kind,
        nbytes=acc.nbytes,
        addr_desc=acc.addr.describe(),
        verdict=verdict,
        region="pmem",
        detail=detail,
        within_pkt_len=within,
    )


def _check_sp(acc: AbsAccess, env: MachineEnv) -> AccessCheck:
    lo, hi = acc.addr.lo, acc.addr.hi
    if -env.stack_bytes <= lo and hi + acc.nbytes <= 0:
        return AccessCheck(
            pc=acc.pc,
            kind=acc.kind,
            nbytes=acc.nbytes,
            addr_desc=acc.addr.describe(),
            verdict="proven",
            region="stack",
            detail=f"stack depth {-lo} of {env.stack_bytes} bytes",
        )
    if hi + acc.nbytes > 0:
        detail = "access above the stack top"
    else:
        detail = f"stack excursion {-lo} exceeds the {env.stack_bytes}-byte allocation"
    return AccessCheck(
        pc=acc.pc,
        kind=acc.kind,
        nbytes=acc.nbytes,
        addr_desc=acc.addr.describe(),
        verdict="unproven",
        region="stack",
        detail=detail,
    )


def _check_plain(acc: AbsAccess, env: MachineEnv) -> AccessCheck:
    lo, hi = acc.addr.lo, acc.addr.hi + acc.nbytes - 1
    common = dict(
        pc=acc.pc, kind=acc.kind, nbytes=acc.nbytes, addr_desc=acc.addr.describe()
    )
    if hi > U32:
        return AccessCheck(
            verdict="unproven",
            detail="address interval wraps past 2^32",
            **common,
        )
    containing = None
    touches = []
    for region in env.regions:
        if region.base <= lo and hi < region.end:
            containing = region
        if lo < region.end and hi >= region.base:
            touches.append(region)
    if containing is not None:
        if acc.kind == "store" and not containing.writable:
            return AccessCheck(
                verdict="violation",
                region=containing.name,
                detail=f"store into read-only region '{containing.name}'",
                **common,
            )
        return AccessCheck(
            verdict="proven",
            region=containing.name,
            detail=(
                f"[{lo:#x}, {hi:#x}] within {containing.name} "
                f"[{containing.base:#x}, {containing.end:#x})"
            ),
            **common,
        )
    if not touches:
        return AccessCheck(
            verdict="violation",
            detail=f"[{lo:#x}, {hi:#x}] maps to no declared region",
            **common,
        )
    return AccessCheck(
        verdict="unproven",
        region=touches[0].name if len(touches) == 1 else None,
        detail=(
            f"[{lo:#x}, {hi:#x}] spans "
            + ", ".join(r.name for r in touches)
            + " and unmapped space"
        ),
        **common,
    )


# -- entry point --------------------------------------------------------------


def check_memory_safety(
    cfg: FirmwareCfg,
    absres: AbsintResult,
    env: Optional[MachineEnv] = None,
) -> MemSafetyReport:
    """Verdict every access site and bound the stack."""
    env = env or absres.env
    report = MemSafetyReport(
        firmware=cfg.name,
        stack_limit_bytes=env.stack_bytes,
        analysis_incomplete=absres.incomplete,
    )

    stack_depth = cfg.max_stack_bytes
    for acc in absres.accesses:
        addr = acc.addr
        if addr.base == "pkt":
            check = _check_pkt(acc, env)
        elif addr.base == "sp":
            check = _check_sp(acc, env)
            if addr.lo > -(1 << 33):  # ignore widened sentinels
                stack_depth = max(stack_depth, -addr.lo)
        elif addr.is_plain:
            check = _check_plain(acc, env)
        else:
            check = AccessCheck(
                pc=acc.pc,
                kind=acc.kind,
                nbytes=acc.nbytes,
                addr_desc=addr.describe(),
                verdict="unproven",
                detail="symbolic address shape not supported",
            )
        report.checks.append(check)

        if check.verdict == "violation":
            report.diagnostics.append(
                Diagnostic(
                    "error",
                    "memsafe-violation",
                    f"{check.kind} of {check.nbytes} byte(s) at "
                    f"{check.addr_desc}: {check.detail}",
                    pc=check.pc,
                    firmware=cfg.name,
                )
            )
        elif check.verdict == "unproven":
            level = "warning" if check.kind == "store" else "note"
            report.diagnostics.append(
                Diagnostic(
                    level,
                    "memsafe-unproven",
                    f"{check.kind} of {check.nbytes} byte(s) at "
                    f"{check.addr_desc}: {check.detail}",
                    pc=check.pc,
                    firmware=cfg.name,
                )
            )

    report.stack_depth_bytes = stack_depth
    if stack_depth > env.stack_bytes:
        report.diagnostics.append(
            Diagnostic(
                "error",
                "stack-overflow",
                f"worst-case stack depth {stack_depth} bytes exceeds the "
                f"per-RPU allocation of {env.stack_bytes} bytes",
                firmware=cfg.name,
            )
        )
    if absres.incomplete:
        report.diagnostics.append(
            Diagnostic(
                "error",
                "absint-incomplete",
                "abstract interpretation hit its iteration cap; all "
                "verdicts degraded to unproven",
                firmware=cfg.name,
            )
        )
    return report
