"""Line-rate verdicts: WCET bound vs the paper's cycle budget.

Everything here is arithmetic on top of the *centralized* budget
formula in :mod:`repro.analysis.throughput` — the same
``clock / max(sw_cycles, accel_cycles)`` model ``forwarding_bounds``
predicts with and ``docs/FIRMWARE_API.md`` documents — so the verdict
``repro verify`` prints, the engine pre-flight raises, and the analytic
sweep bounds can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.throughput import cycle_budget_per_packet, rpu_cycle_budget_pps
from ..sim.clock import ROSEBUD_CLOCK, line_rate_pps


@dataclass(frozen=True)
class BudgetVerdict:
    """PASS/FAIL of one firmware at one operating point."""

    firmware: str
    passed: bool
    wcet_cycles: float  # static software bound (cycles/packet)
    accel_cycles: float  # worst-case accelerator occupancy
    budget_cycles: float  # cycles/packet available at the target rate
    headroom_pct: float  # (budget - binding) / budget, in percent
    ceiling_gbps: float  # highest sustainable offered rate
    target_gbps: float
    packet_size: int
    n_rpus: int
    clock_hz: float
    binding: str  # "software" or "accelerator"
    #: memory-safety verdict from the abstract interpreter: True when
    #: every access proved safe, False on a violation / stack overflow,
    #: None when the safety analysis did not run. ``passed`` stays a
    #: pure budget verdict; the report layer combines the two.
    memory_safe: Optional[bool] = None

    @property
    def verdict(self) -> str:
        return "PASS" if self.passed else "FAIL"

    @property
    def binding_cycles(self) -> float:
        return max(self.wcet_cycles, self.accel_cycles, 1.0)

    def summary(self) -> str:
        return (
            f"{self.verdict} {self.firmware}: wcet={self.wcet_cycles:.0f} "
            f"(binding: {self.binding} {self.binding_cycles:.0f} cyc) vs "
            f"budget={self.budget_cycles:.1f} cyc/pkt at "
            f"{self.target_gbps:g} Gbps/{self.packet_size} B x "
            f"{self.n_rpus} RPUs -> headroom {self.headroom_pct:+.1f}%, "
            f"ceiling {self.ceiling_gbps:.1f} Gbps"
        )

    def to_dict(self) -> dict:
        return {
            "firmware": self.firmware,
            "verdict": self.verdict,
            "passed": self.passed,
            "wcet_cycles": self.wcet_cycles,
            "accel_cycles": self.accel_cycles,
            "budget_cycles": self.budget_cycles,
            "headroom_pct": self.headroom_pct,
            "ceiling_gbps": self.ceiling_gbps,
            "target_gbps": self.target_gbps,
            "packet_size": self.packet_size,
            "n_rpus": self.n_rpus,
            "clock_hz": self.clock_hz,
            "binding": self.binding,
            "memory_safe": self.memory_safe,
        }


def budget_verdict(
    firmware: str,
    wcet_cycles: float,
    n_rpus: int,
    packet_size: int,
    target_gbps: float,
    accel_cycles: float = 0.0,
    clock_hz: float = ROSEBUD_CLOCK.freq_hz,
    memory_safe: Optional[bool] = None,
) -> BudgetVerdict:
    """Convert a WCET bound into a line-rate PASS/FAIL.

    PASS iff the aggregate RPU service rate
    (:func:`rpu_cycle_budget_pps`) meets the offered packet rate at
    ``target_gbps`` — equivalently, iff the binding cycles/packet fit
    inside :func:`cycle_budget_per_packet`.
    """
    budget = cycle_budget_per_packet(clock_hz, n_rpus, packet_size, target_gbps)
    capacity_pps = rpu_cycle_budget_pps(clock_hz, n_rpus, wcet_cycles, accel_cycles)
    target_pps = line_rate_pps(target_gbps, packet_size)
    binding = max(wcet_cycles, accel_cycles, 1.0)
    # one formula, two views: capacity >= offered  <=>  binding <= budget
    passed = capacity_pps >= target_pps
    return BudgetVerdict(
        firmware=firmware,
        passed=passed,
        wcet_cycles=wcet_cycles,
        accel_cycles=accel_cycles,
        budget_cycles=budget,
        headroom_pct=100.0 * (budget - binding) / budget if budget else 0.0,
        ceiling_gbps=capacity_pps / line_rate_pps(1.0, packet_size),
        target_gbps=target_gbps,
        packet_size=packet_size,
        n_rpus=n_rpus,
        clock_hz=clock_hz,
        binding="accelerator" if accel_cycles > wcet_cycles else "software",
        memory_safe=memory_safe,
    )
