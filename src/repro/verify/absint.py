"""Abstract interpretation over firmware CFGs: intervals + pointer regions.

The engine runs the classic worklist fixpoint over the same basic-block
graph :mod:`repro.verify.cfg` builds (same decode, same edges — the
differential guarantees from PR 5 carry over), but replaces the
constant-only register lattice with an **abstract value domain**:

* ``num`` values are unsigned 32-bit intervals ``[lo, hi]`` with an
  optional ``pkt_len`` coefficient (``lc``), so ``RECV_LEN`` reads stay
  *symbolic* — ``len + [0, 32]`` survives arithmetic and lets the
  pigasus append path be proven inside its slot for any frame size;
* ``pkt`` values are packet-DMA pointers: ``RECV_DATA + lc*len + [lo,
  hi]`` relative to the slot's data area (the DMA engine places frames
  at ``PKT_OFFSET`` inside a ``slot_bytes`` slot, so slot-relative
  bounds prove safety for every slot at once);
* ``sp`` values are stack-top-relative (the per-RPU stack allocation is
  ``RosebudConfig.stack_bytes``); loads/stores through them become
  stack-depth obligations instead of unknown addresses.

Widening fires at loop headers after :data:`WIDEN_AFTER` in-state
changes (``num`` intervals jump to ``[0, 2^32-1]``, pointer offsets to
±``OFF_INF``), which makes the fixpoint terminate on any CFG the
builder produces — every cycle passes through a detected back-edge
target.  A second pass re-runs the fixpoint with **induction clamps**
from :mod:`repro.verify.loopbound` (``r ∈ init + step*[0, bound]`` at a
bounded header), recovering the precision widening gave away.

Interrupts are modelled soundly: a ``csr*`` write that can set
``mstatus.MIE`` flips an abstract *maybe-enabled* flag; from then on
every post-instruction state both (a) has the handler's clobbered
registers dropped to TOP and (b) joins into the handler's entry state,
so handler analysis sees exactly the states it can really interrupt.

Machine facts (memory regions, interconnect register value ranges,
accelerator register metadata) come from :class:`MachineEnv` — the
single source of truth the registry's ``INTERCONNECT_REGISTERS`` map is
now derived from.

See ``docs/STATIC_ANALYSIS.md`` for the domain write-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core import funcsim
from ..core.config import RosebudConfig
from ..riscv.blocks import BRANCH_MNEMONICS
from ..riscv.isa import (
    BRANCH_RELATIONS,
    LOAD_BYTES,
    NEGATED_RELATION,
    SIGNED_LOADS,
    STORE_BYTES,
    writes_csr,
    writes_rd,
)
from .cfg import FirmwareCfg

U32 = 0xFFFFFFFF
_TWO32 = 1 << 32

#: Offset "infinity" for pointer/symbolic values: once an offset is
#: clamped here it can never be proven inside any region.
OFF_INF = 1 << 34

#: Widen a loop header after this many in-state changes.
WIDEN_AFTER = 3

#: ``mstatus`` CSR address (its MIE bit gates all interrupts).
MSTATUS_CSR = 0x300

#: Interconnect window size (matches ``MemoryBus.add_mmio`` in funcsim).
IO_WINDOW = 0x1000


# -- the value domain ---------------------------------------------------------


@dataclass(frozen=True)
class AbsVal:
    """One abstract register value: ``base + lc*pkt_len + [lo, hi]``.

    ``base`` is ``"num"`` (pure number), ``"pkt"`` (packet-data
    pointer), or ``"sp"`` (stack-top pointer).  ``lc`` is the
    ``pkt_len`` coefficient (0 or 1).  For plain numbers the interval
    is unsigned 32-bit; for anything symbolic it is a signed offset
    clamped to ±:data:`OFF_INF`.  ``tag`` carries identity for
    stream-register loads (used by the loop-bound stream rule).
    """

    base: str
    lc: int
    lo: int
    hi: int
    tag: Optional[tuple] = None

    @property
    def is_plain(self) -> bool:
        """A pure number interval (no base, no pkt_len term)."""
        return self.base == "num" and self.lc == 0

    @property
    def is_const(self) -> bool:
        return self.is_plain and self.lo == self.hi

    def describe(self) -> str:
        parts = []
        if self.base != "num":
            parts.append(self.base)
        if self.lc:
            parts.append("len" if self.lc == 1 else f"{self.lc}*len")
        if self.lo == self.hi:
            parts.append(f"{self.lo:#x}" if self.lo >= 0 else f"-{-self.lo:#x}")
        else:
            lo = "-inf" if self.lo <= -OFF_INF else f"{self.lo:#x}" if self.lo >= 0 else f"-{-self.lo:#x}"
            hi = "+inf" if self.hi >= OFF_INF else f"{self.hi:#x}"
            parts.append(f"[{lo}, {hi}]")
        return "+".join(parts) if parts else "0"


TOP = AbsVal("num", 0, 0, U32)
ZERO = AbsVal("num", 0, 0, 0)


def const(v: int) -> AbsVal:
    v &= U32
    return AbsVal("num", 0, v, v)


def interval(lo: int, hi: int) -> AbsVal:
    return AbsVal("num", 0, max(0, lo), min(hi, U32))


def _sym(base: str, lc: int, lo: int, hi: int, tag=None) -> AbsVal:
    return AbsVal(base, lc, max(lo, -OFF_INF), min(hi, OFF_INF), tag)


# -- interval arithmetic ------------------------------------------------------


def _add_imm(a: AbsVal, imm: int) -> AbsVal:
    if imm == 0:
        return a
    lo, hi = a.lo + imm, a.hi + imm
    if a.is_plain:
        if 0 <= lo and hi <= U32:
            return AbsVal("num", 0, lo, hi)
        if hi < 0:
            return AbsVal("num", 0, lo + _TWO32, hi + _TWO32)
        if lo >= _TWO32:
            return AbsVal("num", 0, lo - _TWO32, hi - _TWO32)
        return TOP
    return _sym(a.base, a.lc, lo, hi)


def _add(a: AbsVal, b: AbsVal) -> AbsVal:
    if b.base != "num":
        a, b = b, a
    if b.base != "num":
        return TOP  # pointer + pointer
    lc = a.lc + b.lc
    if lc > 1:
        return TOP
    lo, hi = a.lo + b.lo, a.hi + b.hi
    if a.base == "num" and lc == 0:
        if hi <= U32:
            return AbsVal("num", 0, lo, hi)
        if lo >= _TWO32:
            return AbsVal("num", 0, lo - _TWO32, hi - _TWO32)
        return TOP
    return _sym(a.base, lc, lo, hi)


def _sub(a: AbsVal, b: AbsVal) -> AbsVal:
    if b.base != "num":
        return TOP  # x - pointer: not representable
    lc = a.lc - b.lc
    if lc not in (0, 1):
        return TOP
    lo, hi = a.lo - b.hi, a.hi - b.lo
    if a.base == "num" and lc == 0:
        if lo >= 0:
            return AbsVal("num", 0, lo, hi)
        if hi < 0:
            return AbsVal("num", 0, lo + _TWO32, hi + _TWO32)
        return TOP
    return _sym(a.base, lc, lo, hi)


def _and_imm(a: AbsVal, imm: int) -> AbsVal:
    if imm >= 0:
        # masking drops the base: result is a small plain number
        if a.is_const:
            return const(a.lo & imm)
        hi = min(a.hi, imm) if a.is_plain else imm
        return AbsVal("num", 0, 0, hi)
    # negative imm = alignment mask: x & imm == x - (x mod 2^k) for
    # power-of-two alignments, and in general subtracts at most the
    # cleared low bits — base and pkt_len term survive
    cleared = (~imm) & U32
    if a.is_const:
        return const(a.lo & imm)
    return (
        AbsVal("num", 0, max(0, a.lo - cleared), a.hi)
        if a.is_plain
        else _sym(a.base, a.lc, a.lo - cleared, a.hi)
    )


def _bit_hi(a: AbsVal, b: AbsVal) -> int:
    """Upper bound for or/xor of two plain intervals."""
    bits = max(a.hi.bit_length(), b.hi.bit_length())
    return (1 << bits) - 1 if bits else 0


def _join_val(a: AbsVal, b: AbsVal) -> AbsVal:
    if a == b:
        return a
    if a.base != b.base or a.lc != b.lc:
        return TOP
    tag = a.tag if a.tag == b.tag else None
    if a.is_plain:
        return AbsVal("num", 0, min(a.lo, b.lo), max(a.hi, b.hi), tag)
    return _sym(a.base, a.lc, min(a.lo, b.lo), max(a.hi, b.hi), tag)


def _widen_val(old: AbsVal, new: AbsVal) -> AbsVal:
    if old == new:
        return new
    if old.base != new.base or old.lc != new.lc:
        return TOP
    tag = new.tag if new.tag == old.tag else None
    lo, hi = new.lo, new.hi
    if new.is_plain:
        if lo < old.lo:
            lo = 0
        if hi > old.hi:
            hi = U32
        return AbsVal("num", 0, lo, hi, tag)
    if lo < old.lo:
        lo = -OFF_INF
    if hi > old.hi:
        hi = OFF_INF
    return _sym(new.base, new.lc, lo, hi, tag)


def _meet_val(a: AbsVal, clamp: AbsVal) -> AbsVal:
    """Intersect ``a`` with a sound clamp; fall back to the clamp when
    the shapes disagree (both are sound supersets, so either works)."""
    if a.base == clamp.base and a.lc == clamp.lc:
        lo, hi = max(a.lo, clamp.lo), min(a.hi, clamp.hi)
        if lo <= hi:
            return AbsVal(a.base, a.lc, lo, hi, a.tag)
    return clamp


# -- machine environment ------------------------------------------------------


@dataclass(frozen=True)
class IoRegister:
    """One interconnect-window register: offset, name, and the abstract
    value its reads produce (``kind`` selects the rule)."""

    offset: int
    name: str
    readable: bool
    writable: bool
    kind: str = ""  # "range" | "tag" | "pkt_len" | "port" | "pkt_ptr" | "top"
    lo: int = 0
    hi: int = 0


#: The interconnect register map — the single source of truth shared by
#: the registry's MMIO-footprint check and the abstract interpreter.
IO_REGISTER_SPECS: Tuple[IoRegister, ...] = (
    IoRegister(0x00, "RECV_READY", True, False, "range", 0, 1),
    IoRegister(0x04, "RECV_TAG", True, False, "tag"),
    IoRegister(0x08, "RECV_LEN", True, False, "pkt_len"),
    IoRegister(0x0C, "RECV_PORT", True, False, "port"),
    IoRegister(0x10, "RECV_DATA", True, False, "pkt_ptr"),
    IoRegister(0x14, "RECV_RELEASE", False, True),
    IoRegister(0x18, "SEND_TAG", False, True),
    IoRegister(0x1C, "SEND_LEN", False, True),
    IoRegister(0x20, "SEND_PORT_GO", False, True),
    IoRegister(0x28, "DEBUG_OUT_L", False, True),
    IoRegister(0x2C, "DEBUG_OUT_H", False, True),
    IoRegister(0x30, "CYCLES", True, False, "top"),
)


@dataclass(frozen=True)
class Region:
    name: str
    base: int
    size: int
    writable: bool

    @property
    def end(self) -> int:
        return self.base + self.size


class MachineEnv:
    """Memory regions + MMIO read semantics for one RPU configuration.

    ``RECV_DATA`` is modelled as a valid packet pointer and the other
    descriptor registers by their queue-backed ranges; the documented
    firmware contract is that descriptor registers are read only under
    ``RECV_READY`` (the runtime returns 0 otherwise).
    """

    def __init__(self, config: Optional[RosebudConfig] = None, accel=None) -> None:
        self.config = config or RosebudConfig()
        self.accel = accel
        cfg = self.config
        self.slot_bytes = cfg.slot_bytes
        self.pkt_offset = funcsim.PKT_OFFSET
        self.stack_bytes = cfg.stack_bytes
        self.min_frame = cfg.min_frame_bytes
        self.max_frame = cfg.max_frame_bytes
        self.regions: Tuple[Region, ...] = (
            Region("imem", funcsim.IMEM_BASE, cfg.imem_bytes, False),
            Region("dmem", funcsim.DMEM_BASE, cfg.dmem_bytes, True),
            Region("pmem", funcsim.PMEM_BASE, cfg.packet_mem_bytes, True),
            Region("accmem", funcsim.ACCMEM_BASE, cfg.accel_mem_bytes, True),
            Region("interconnect", funcsim.IO_BASE, IO_WINDOW, True),
            Region("accel", funcsim.IO_EXT_BASE, IO_WINDOW, True),
        )
        self._io_specs = {spec.offset: spec for spec in IO_REGISTER_SPECS}

    # -- concrete bounds for symbolic values --------------------------------

    def concrete_min(self, v: AbsVal) -> int:
        """Smallest concrete value/offset ``v`` can take (len >= 0)."""
        return v.lo

    def concrete_max(self, v: AbsVal) -> int:
        return v.hi + v.lc * self.max_frame

    def region_at(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(name)

    # -- MMIO read semantics -------------------------------------------------

    def _io_value(self, offset: int) -> AbsVal:
        spec = self._io_specs.get(offset)
        if spec is None or not spec.readable:
            return TOP
        if spec.kind == "range":
            return interval(spec.lo, spec.hi)
        if spec.kind == "tag":
            return interval(0, self.config.slots_per_rpu)
        if spec.kind == "pkt_len":
            return AbsVal("num", 1, 0, 0)
        if spec.kind == "port":
            return interval(0, max(0, self.config.n_ports - 1))
        if spec.kind == "pkt_ptr":
            return AbsVal("pkt", 0, 0, 0)
        return TOP

    def _accel_value(self, offset: int, pc: int) -> AbsVal:
        accel = self.accel
        if accel is None:
            return TOP
        meta = {}
        reg_meta = getattr(accel, "reg_meta", None)
        if callable(reg_meta):
            meta = reg_meta(offset) or {}
        depth = meta.get("stream_depth")
        vr = meta.get("value_range")
        value = interval(vr[0], vr[1]) if vr else TOP
        if depth:
            value = AbsVal(value.base, value.lc, value.lo, value.hi, ("stream", offset, pc))
        return value

    def load_value(self, addr: AbsVal, mnemonic: str, nbytes: int, pc: int) -> AbsVal:
        """Abstract value a load at ``pc`` can produce."""
        if mnemonic in SIGNED_LOADS:
            width_default = TOP  # sign extension can reach anywhere
        else:
            width_default = interval(0, (1 << (8 * nbytes)) - 1) if nbytes < 4 else TOP
        if not addr.is_const:
            return width_default
        a = addr.lo
        io = self.region_at("interconnect")
        ext = self.region_at("accel")
        if io.base <= a < io.end:
            value = self._io_value(a - io.base)
        elif ext.base <= a < ext.end:
            value = self._accel_value(a - ext.base, pc)
        else:
            return width_default
        # narrow loads keep the symbolic value only when it provably fits
        if nbytes < 4:
            mask = (1 << (8 * nbytes)) - 1
            if mnemonic in SIGNED_LOADS:
                return TOP
            if self.concrete_max(value) > mask or self.concrete_min(value) < 0:
                return interval(0, mask)
        return value


# -- abstract machine state ---------------------------------------------------


class AbsState:
    """Register file of :class:`AbsVal` plus the maybe-interrupts-on flag."""

    __slots__ = ("regs", "mie")

    def __init__(self, regs: List[AbsVal], mie: bool = False) -> None:
        self.regs = regs
        self.mie = mie

    @classmethod
    def reset(cls) -> "AbsState":
        """Power-on state: every register zero, except sp which is the
        (symbolic) stack top — the runtime places the stack, not us."""
        regs = [ZERO] * 32
        regs[2] = AbsVal("sp", 0, 0, 0)
        return cls(regs, mie=False)

    @classmethod
    def unknown(cls) -> "AbsState":
        regs = [TOP] * 32
        regs[0] = ZERO
        return cls(regs, mie=False)

    def copy(self) -> "AbsState":
        return AbsState(list(self.regs), self.mie)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AbsState)
            and self.mie == other.mie
            and self.regs == other.regs
        )


def _join_states(a: AbsState, b: AbsState) -> Tuple[AbsState, bool]:
    """``a ⊔ b`` plus whether the result differs from ``a``."""
    changed = b.mie and not a.mie
    regs = list(a.regs)
    for i in range(1, 32):
        j = _join_val(regs[i], b.regs[i])
        if j != regs[i]:
            regs[i] = j
            changed = True
    return AbsState(regs, a.mie or b.mie), changed


def _widen_states(old: AbsState, new: AbsState) -> AbsState:
    regs = [_widen_val(o, n) for o, n in zip(old.regs, new.regs)]
    regs[0] = ZERO
    return AbsState(regs, new.mie)


# -- transfer function --------------------------------------------------------


@dataclass
class AbsAccess:
    """One load/store site with its abstract address."""

    pc: int
    kind: str  # "load" | "store"
    nbytes: int
    addr: AbsVal


class _Transfer:
    def __init__(self, env: MachineEnv) -> None:
        self.env = env

    def step(self, inst, pc: int, state: AbsState) -> Optional[AbsAccess]:
        m = inst.mnemonic
        regs = state.regs
        rd, rs1, rs2, imm = inst.rd, inst.rs1, inst.rs2, inst.imm
        access = None

        if m in LOAD_BYTES:
            nbytes = LOAD_BYTES[m]
            addr = _add_imm(regs[rs1], imm)
            access = AbsAccess(pc, "load", nbytes, addr)
            if rd:
                regs[rd] = self.env.load_value(addr, m, nbytes, pc)
        elif m in STORE_BYTES:
            access = AbsAccess(pc, "store", STORE_BYTES[m], _add_imm(regs[rs1], imm))
        elif m == "lui":
            if rd:
                regs[rd] = const(imm)
        elif m == "auipc":
            if rd:
                regs[rd] = const(pc + imm)
        elif m == "addi":
            if rd:
                regs[rd] = _add_imm(regs[rs1], imm)
        elif m == "andi":
            if rd:
                regs[rd] = _and_imm(regs[rs1], imm)
        elif m in ("ori", "xori", "slli", "srli", "srai", "slti", "sltiu"):
            if rd:
                regs[rd] = self._alu_imm(m, regs[rs1], imm)
        elif m in _RR_OPS:
            if rd:
                regs[rd] = _RR_OPS[m](self, regs[rs1], regs[rs2])
        elif m in BRANCH_MNEMONICS or m in ("fence", "wfi", "mret", "ecall", "ebreak"):
            pass
        elif m in ("jal", "jalr"):
            if rd:
                regs[rd] = const(pc + 4)
        elif m.startswith("csr"):
            if writes_csr(inst) and inst.csr == MSTATUS_CSR:
                state.mie = True
            if rd:
                regs[rd] = TOP
        else:
            if writes_rd(m, rd):
                regs[rd] = TOP
        regs[0] = ZERO
        return access

    # immediate ALU forms beyond addi/andi -----------------------------------

    def _alu_imm(self, m: str, a: AbsVal, imm: int) -> AbsVal:
        if m == "ori":
            if a.is_const:
                return const(a.lo | (imm & U32))
            if a.is_plain and imm >= 0:
                return AbsVal("num", 0, max(a.lo, imm), _bit_hi(a, const(imm)))
            return TOP
        if m == "xori":
            if a.is_const:
                return const(a.lo ^ (imm & U32))
            if a.is_plain and imm >= 0:
                return AbsVal("num", 0, 0, _bit_hi(a, const(imm)))
            return TOP
        if m == "slli":
            s = imm & 0x1F
            if a.is_const:
                return const(a.lo << s)
            if a.is_plain and (a.hi << s) <= U32:
                return AbsVal("num", 0, a.lo << s, a.hi << s)
            return TOP
        if m == "srli":
            s = imm & 0x1F
            if a.is_plain:
                return AbsVal("num", 0, a.lo >> s, a.hi >> s)
            return TOP
        if m == "srai":
            s = imm & 0x1F
            if a.is_plain and a.hi < 0x8000_0000:
                return AbsVal("num", 0, a.lo >> s, a.hi >> s)
            if a.is_const:
                v = a.lo - _TWO32 if a.lo & 0x8000_0000 else a.lo
                return const(v >> s)
            return TOP
        if m == "slti":
            if a.is_plain and a.hi < 0x8000_0000:
                if a.hi < imm:
                    return const(1)
                if a.lo >= imm:
                    return const(0)
            return interval(0, 1)
        if m == "sltiu":
            u = imm & U32
            if a.is_plain:
                if a.hi < u:
                    return const(1)
                if a.lo >= u:
                    return const(0)
            return interval(0, 1)
        return TOP

    # register-register ALU forms --------------------------------------------

    def _and_rr(self, a: AbsVal, b: AbsVal) -> AbsVal:
        if a.is_const and b.is_const:
            return const(a.lo & b.lo)
        if b.is_const:
            return _and_imm(a, b.lo - _TWO32 if b.lo & 0x8000_0000 else b.lo)
        if a.is_const:
            return _and_imm(b, a.lo - _TWO32 if a.lo & 0x8000_0000 else a.lo)
        if a.is_plain and b.is_plain:
            return AbsVal("num", 0, 0, min(a.hi, b.hi))
        return TOP

    def _or_rr(self, a: AbsVal, b: AbsVal) -> AbsVal:
        if a.is_const and b.is_const:
            return const(a.lo | b.lo)
        if a.is_plain and b.is_plain:
            return AbsVal("num", 0, max(a.lo, b.lo), _bit_hi(a, b))
        return TOP

    def _xor_rr(self, a: AbsVal, b: AbsVal) -> AbsVal:
        if a.is_const and b.is_const:
            return const(a.lo ^ b.lo)
        if a.is_plain and b.is_plain:
            return AbsVal("num", 0, 0, _bit_hi(a, b))
        return TOP

    def _shift_rr(self, m: str, a: AbsVal, b: AbsVal) -> AbsVal:
        if b.is_const:
            imm_map = {"sll": "slli", "srl": "srli", "sra": "srai"}
            return self._alu_imm(imm_map[m], a, b.lo & 0x1F)
        if m in ("srl", "sra") and a.is_plain and a.hi < 0x8000_0000:
            return AbsVal("num", 0, 0, a.hi)
        return TOP

    def _mul_rr(self, a: AbsVal, b: AbsVal) -> AbsVal:
        if a.is_const and b.is_const:
            return const(a.lo * b.lo)
        if a.is_plain and b.is_plain and a.hi * b.hi <= U32:
            return AbsVal("num", 0, a.lo * b.lo, a.hi * b.hi)
        return TOP

    def _divu_rr(self, a: AbsVal, b: AbsVal) -> AbsVal:
        if a.is_plain and b.is_plain and b.lo >= 1:
            return AbsVal("num", 0, a.lo // b.hi, a.hi // b.lo)
        return TOP

    def _remu_rr(self, a: AbsVal, b: AbsVal) -> AbsVal:
        if a.is_plain and b.is_plain and b.lo >= 1:
            return AbsVal("num", 0, 0, min(a.hi, b.hi - 1))
        return TOP

    def _slt_rr(self, a: AbsVal, b: AbsVal) -> AbsVal:
        if a.is_plain and b.is_plain and a.hi < 0x8000_0000 and b.hi < 0x8000_0000:
            if a.hi < b.lo:
                return const(1)
            if a.lo >= b.hi:
                return const(0)
        return interval(0, 1)

    def _sltu_rr(self, a: AbsVal, b: AbsVal) -> AbsVal:
        if a.is_plain and b.is_plain:
            if a.hi < b.lo:
                return const(1)
            if a.lo >= b.hi:
                return const(0)
        return interval(0, 1)


_RR_OPS = {
    "add": lambda t, a, b: _add(a, b),
    "sub": lambda t, a, b: _sub(a, b),
    "and": _Transfer._and_rr,
    "or": _Transfer._or_rr,
    "xor": _Transfer._xor_rr,
    "sll": lambda t, a, b: t._shift_rr("sll", a, b),
    "srl": lambda t, a, b: t._shift_rr("srl", a, b),
    "sra": lambda t, a, b: t._shift_rr("sra", a, b),
    "slt": _Transfer._slt_rr,
    "sltu": _Transfer._sltu_rr,
    "mul": _Transfer._mul_rr,
    "divu": _Transfer._divu_rr,
    "remu": _Transfer._remu_rr,
    "mulh": lambda t, a, b: TOP,
    "mulhu": lambda t, a, b: TOP,
    "mulhsu": lambda t, a, b: TOP,
    "div": lambda t, a, b: TOP,
    "rem": lambda t, a, b: TOP,
}


# -- branch refinement --------------------------------------------------------


def _refine_edge(state: AbsState, inst, taken: bool) -> Optional[AbsState]:
    """State on the taken/not-taken edge of a conditional branch, or
    ``None`` when the edge is provably infeasible.  Refines only plain
    intervals (signed relations only away from the sign boundary)."""
    relation, signed = BRANCH_RELATIONS[inst.mnemonic]
    if not taken:
        relation = NEGATED_RELATION[relation]
    rs1, rs2 = inst.rs1, inst.rs2
    if rs1 == rs2:
        # beq r,r / bge r,r always taken; bne/blt never
        if relation in ("eq", "ge"):
            return state
        return None
    a, b = state.regs[rs1], state.regs[rs2]
    if not (a.is_plain and b.is_plain):
        return state
    if signed and (a.hi >= 0x8000_0000 or b.hi >= 0x8000_0000):
        return state
    alo, ahi, blo, bhi = a.lo, a.hi, b.lo, b.hi
    if relation == "eq":
        lo, hi = max(alo, blo), min(ahi, bhi)
        if lo > hi:
            return None
        alo = blo = lo
        ahi = bhi = hi
    elif relation == "ne":
        if alo == ahi == blo == bhi:
            return None
        if blo == bhi:
            if blo == alo:
                alo += 1
            if blo == ahi:
                ahi -= 1
        if alo == ahi:
            if alo == blo:
                blo += 1
            if alo == bhi:
                bhi -= 1
        if alo > ahi or blo > bhi:
            return None
    elif relation == "lt":
        if alo >= bhi:
            return None
        ahi = min(ahi, bhi - 1)
        blo = max(blo, alo + 1)
    elif relation == "ge":
        if ahi < blo:
            return None
        alo = max(alo, blo)
        bhi = min(bhi, ahi)
    out = state.copy()
    if rs1:
        out.regs[rs1] = AbsVal("num", 0, alo, ahi, a.tag)
    if rs2:
        out.regs[rs2] = AbsVal("num", 0, blo, bhi, b.tag)
    return out


# -- results ------------------------------------------------------------------


@dataclass
class AbsintResult:
    """Everything the fixpoint proved about one firmware."""

    cfg: FirmwareCfg
    env: MachineEnv
    in_states: Dict[int, AbsState] = field(default_factory=dict)
    accesses: List[AbsAccess] = field(default_factory=list)
    infeasible_edges: Set[Tuple[int, int]] = field(default_factory=set)
    entry_joins: Dict[int, AbsState] = field(default_factory=dict)
    handler_entries: Dict[int, AbsState] = field(default_factory=dict)
    handler_clobbers: Dict[int, Set[int]] = field(default_factory=dict)
    widened: Set[int] = field(default_factory=set)
    iterations: int = 0
    incomplete: bool = False
    #: set by :func:`deep_analyze`: the loop-bound inference report
    loop_bounds: Optional[object] = None

    def __post_init__(self) -> None:
        self._pc_block: Dict[int, int] = {}
        for block in self.cfg.blocks.values():
            for pc in block.pcs:
                self._pc_block[pc] = block.start
        self._clobber_union: Set[int] = set()
        for regs in self.handler_clobbers.values():
            self._clobber_union |= regs

    def state_before(self, pc: int) -> Optional[AbsState]:
        """Abstract state just before the instruction at ``pc`` executes
        (replayed from the containing block's fixpoint in-state)."""
        start = self._pc_block.get(pc)
        if start is None or start not in self.in_states:
            return None
        state = self.in_states[start].copy()
        transfer = _Transfer(self.env)
        block = self.cfg.blocks[start]
        for bpc, inst in zip(block.pcs, block.insts):
            if bpc == pc:
                return state
            transfer.step(inst, bpc, state)
            _apply_clobbers(state, self._clobber_union)
        return None

    def access_at(self, pc: int) -> Optional[AbsAccess]:
        for acc in self.accesses:
            if acc.pc == pc:
                return acc
        return None


def _apply_clobbers(state: AbsState, clobbers: Set[int]) -> None:
    if state.mie and clobbers:
        for r in clobbers:
            if r:
                state.regs[r] = TOP


def _reachable(cfg: FirmwareCfg, root: int) -> Set[int]:
    seen: Set[int] = set()
    work = [root]
    while work:
        node = work.pop()
        if node in seen or node not in cfg.blocks:
            continue
        seen.add(node)
        work.extend(cfg.blocks[node].successors)
    return seen


# -- the fixpoint engine ------------------------------------------------------


class _Engine:
    def __init__(
        self,
        cfg: FirmwareCfg,
        env: MachineEnv,
        clamps: Optional[Dict[int, Dict[int, AbsVal]]] = None,
    ) -> None:
        self.cfg = cfg
        self.env = env
        self.transfer = _Transfer(env)
        self.clamps = clamps or {}
        self.back_edges: Set[Tuple[int, int]] = {
            (tail, lp.header)
            for lp in cfg.loops.values()
            for tail, _ in lp.back_edges
        }
        self.headers = set(cfg.loops)
        self.in_states: Dict[int, AbsState] = {}
        self.entry_joins: Dict[int, AbsState] = {}
        self.update_counts: Dict[int, int] = {}
        self.widened: Set[int] = set()
        self.worklist: List[int] = []
        self.iterations = 0
        self.incomplete = False
        # handler clobbers: syntactic rd scan over handler-reachable blocks
        self.handler_clobbers: Dict[int, Set[int]] = {}
        for root in cfg.entries[1:]:
            if root not in cfg.blocks:
                continue
            regs: Set[int] = set()
            for start in _reachable(cfg, root):
                for inst in cfg.blocks[start].insts:
                    if writes_rd(inst.mnemonic, inst.rd):
                        regs.add(inst.rd)
            self.handler_clobbers[root] = regs
        self.clobber_union: Set[int] = set()
        for regs in self.handler_clobbers.values():
            self.clobber_union |= regs

    # -- state propagation ---------------------------------------------------

    def _push(self, start: int) -> None:
        if start not in self.worklist:
            self.worklist.append(start)

    def _update(self, pred: int, succ: int, state: AbsState) -> None:
        if succ not in self.cfg.blocks:
            return
        if succ in self.headers and (pred, succ) not in self.back_edges:
            ej = self.entry_joins.get(succ)
            self.entry_joins[succ] = (
                state.copy() if ej is None else _join_states(ej, state)[0]
            )
        prev = self.in_states.get(succ)
        if prev is None:
            new, changed = state.copy(), True
        else:
            new, changed = _join_states(prev, state)
        if changed and prev is not None and succ in self.headers:
            count = self.update_counts.get(succ, 0) + 1
            self.update_counts[succ] = count
            if count > WIDEN_AFTER:
                new = _widen_states(prev, new)
                self.widened.add(succ)
        clamp = self.clamps.get(succ)
        if clamp:
            regs = list(new.regs)
            for r, cv in clamp.items():
                regs[r] = _meet_val(regs[r], cv)
            new = AbsState(regs, new.mie)
            changed = prev is None or new != prev
        if changed:
            self.in_states[succ] = new
            self._push(succ)

    def seed(self, root: int, state: AbsState) -> None:
        if root not in self.cfg.blocks:
            return
        prev = self.in_states.get(root)
        if prev is None:
            self.in_states[root] = state
        else:
            self.in_states[root] = _join_states(prev, state)[0]
        self._push(root)

    def run(self) -> None:
        cap = 256 * max(1, len(self.cfg.blocks))
        blocks = self.cfg.blocks
        while self.worklist:
            self.iterations += 1
            if self.iterations > cap:
                # widening makes this unreachable in practice; if it
                # ever fires, fall to TOP everywhere reachable (sound)
                self.incomplete = True
                for start in list(self.in_states):
                    self.in_states[start] = AbsState.unknown()
                self.worklist.clear()
                return
            start = self.worklist.pop(0)
            state = self.in_states[start].copy()
            block = blocks[start]
            for pc, inst in zip(block.pcs, block.insts):
                self.transfer.step(inst, pc, state)
                _apply_clobbers(state, self.clobber_union)
            last = block.last
            branching = (
                block.end_reason == "terminal"
                and last is not None
                and last.mnemonic in BRANCH_MNEMONICS
            )
            if branching:
                target = (block.pcs[-1] + last.imm) & U32
                fall = (block.pcs[-1] + 4) & U32
                for succ in block.successors:
                    if target == fall:
                        self._update(start, succ, state)
                        continue
                    refined = _refine_edge(state, last, taken=(succ == target))
                    if refined is not None:
                        self._update(start, succ, refined)
            else:
                for succ in block.successors:
                    self._update(start, succ, state)

    # -- post-fixpoint sweeps ------------------------------------------------

    def collect_handler_entry(self, main_blocks: Set[int]) -> Optional[AbsState]:
        """Join of every post-instruction state where interrupts may be
        enabled — the states a trap can really interrupt."""
        acc: Optional[AbsState] = None
        for start in sorted(main_blocks):
            if start not in self.in_states:
                continue
            state = self.in_states[start].copy()
            block = self.cfg.blocks[start]
            for pc, inst in zip(block.pcs, block.insts):
                self.transfer.step(inst, pc, state)
                if state.mie:
                    snap = state.copy()
                    acc = snap if acc is None else _join_states(acc, snap)[0]
                _apply_clobbers(state, self.clobber_union)
        return acc

    def final_sweep(self) -> Tuple[List[AbsAccess], Set[Tuple[int, int]]]:
        accesses: List[AbsAccess] = []
        infeasible: Set[Tuple[int, int]] = set()
        for start in sorted(self.in_states):
            state = self.in_states[start].copy()
            block = self.cfg.blocks[start]
            for pc, inst in zip(block.pcs, block.insts):
                acc = self.transfer.step(inst, pc, state)
                if acc is not None:
                    accesses.append(acc)
                _apply_clobbers(state, self.clobber_union)
            last = block.last
            if (
                block.end_reason == "terminal"
                and last is not None
                and last.mnemonic in BRANCH_MNEMONICS
            ):
                target = (block.pcs[-1] + last.imm) & U32
                fall = (block.pcs[-1] + 4) & U32
                if target == fall:
                    continue
                for succ in block.successors:
                    if _refine_edge(state, last, taken=(succ == target)) is None:
                        infeasible.add((start, succ))
        return accesses, infeasible


def analyze_cfg(
    cfg: FirmwareCfg,
    env: Optional[MachineEnv] = None,
    *,
    clamps: Optional[Dict[int, Dict[int, AbsVal]]] = None,
) -> AbsintResult:
    """One widening fixpoint over ``cfg`` (main entry, then handlers
    from their soundly-joined entry states), plus the final collection
    sweep.  ``clamps`` are per-header register overrides from loop-bound
    inference (see :func:`deep_analyze` for the two-pass pipeline)."""
    env = env or MachineEnv()
    engine = _Engine(cfg, env, clamps=clamps)

    engine.seed(cfg.entry, AbsState.reset())
    engine.run()

    main_blocks = _reachable(cfg, cfg.entry)
    handler_entries: Dict[int, AbsState] = {}
    handler_roots = [r for r in cfg.entries[1:] if r in cfg.blocks]
    if handler_roots and not engine.incomplete:
        entry = engine.collect_handler_entry(main_blocks)
        for root in handler_roots:
            seed = entry.copy() if entry is not None else AbsState.unknown()
            seed.mie = False  # hardware clears MIE on trap entry
            handler_entries[root] = seed.copy()
            engine.seed(root, seed)
        engine.run()

    accesses, infeasible = engine.final_sweep()
    return AbsintResult(
        cfg=cfg,
        env=env,
        in_states=engine.in_states,
        accesses=accesses,
        infeasible_edges=infeasible,
        entry_joins=engine.entry_joins,
        handler_entries=handler_entries,
        handler_clobbers=engine.handler_clobbers,
        widened=engine.widened,
        iterations=engine.iterations,
        incomplete=engine.incomplete,
    )


def deep_analyze(
    cfg: FirmwareCfg,
    env: Optional[MachineEnv] = None,
    annotations: Optional[Dict[str, int]] = None,
) -> AbsintResult:
    """The two-pass pipeline: widening fixpoint, loop-bound inference,
    then a clamped re-run that recovers induction-variable precision.
    The result carries the :class:`~repro.verify.loopbound.LoopBoundReport`
    in ``loop_bounds``."""
    from .loopbound import induction_clamps, infer_loop_bounds

    env = env or MachineEnv()
    first = analyze_cfg(cfg, env)
    report = infer_loop_bounds(cfg, first, env, annotations=annotations)
    clamps = induction_clamps(cfg, first, report)
    if clamps:
        second = analyze_cfg(cfg, env, clamps=clamps)
        second.loop_bounds = report
        return second
    first.loop_bounds = report
    return first
