"""Firmware static analysis: CFG + WCET budget verifier, replay linter.

The subsystem answers, *before* any simulation runs:

* does this firmware's worst-case cycles/packet fit the line-rate
  budget at a given (clock, RPUs, packet size, Gbps) operating point?
* does its MMIO footprint match the interconnect map and the configured
  accelerator's register set?
* does it store into its own text segment (self-modifying code)?
* is its behavioural twin safe to memoize in the replay cache?

Entry points: :func:`verify_firmware` / :func:`verify_all` (the
``repro verify`` CLI and CI gate), :func:`preflight_spec` (the engine
hook behind ``ExperimentSpec.verify``), and the lower-level
:func:`build_cfg` / :func:`analyze_wcet` / :func:`lint_firmware_class`
passes.  See ``docs/STATIC_ANALYSIS.md``.
"""

from .budget import BudgetVerdict, budget_verdict
from .cfg import (
    BasicBlock,
    Diagnostic,
    FirmwareCfg,
    Loop,
    MemAccess,
    analyze_source,
    build_cfg,
    region_of,
)
from .preflight import (
    FIRMWARE_ASM_TWINS,
    PreflightReport,
    VerificationError,
    preflight_spec,
)
from .registry import (
    INTERCONNECT_REGISTERS,
    BundledFirmware,
    FirmwareVerifyReport,
    OperatingPoint,
    bundled_firmware_names,
    bundled_firmwares,
    reports_to_json,
    verify_all,
    verify_firmware,
)
from .fluidgate import FluidGate, fluid_gate
from .replaylint import (
    CLASS_REPLAY_SAFE,
    CLASS_STATEFUL,
    CLASS_UNSAFE,
    LintFinding,
    ReplayLintReport,
    bundled_firmware_classes,
    lint_all_models,
    lint_firmware_class,
)
from .wcet import (
    DEFAULT_LOOP_BOUND,
    TRAP_ENTRY_CYCLES,
    CriticalStep,
    IrreducibleCfgError,
    WcetReport,
    analyze_wcet,
    parse_loop_bounds,
)

__all__ = [
    "BasicBlock",
    "BudgetVerdict",
    "BundledFirmware",
    "CLASS_REPLAY_SAFE",
    "CLASS_STATEFUL",
    "CLASS_UNSAFE",
    "CriticalStep",
    "DEFAULT_LOOP_BOUND",
    "Diagnostic",
    "FIRMWARE_ASM_TWINS",
    "FirmwareCfg",
    "FluidGate",
    "FirmwareVerifyReport",
    "INTERCONNECT_REGISTERS",
    "IrreducibleCfgError",
    "LintFinding",
    "Loop",
    "MemAccess",
    "OperatingPoint",
    "PreflightReport",
    "ReplayLintReport",
    "TRAP_ENTRY_CYCLES",
    "VerificationError",
    "WcetReport",
    "analyze_source",
    "analyze_wcet",
    "budget_verdict",
    "fluid_gate",
    "build_cfg",
    "bundled_firmware_classes",
    "bundled_firmware_names",
    "bundled_firmwares",
    "lint_all_models",
    "lint_firmware_class",
    "parse_loop_bounds",
    "preflight_spec",
    "region_of",
    "reports_to_json",
    "verify_all",
    "verify_firmware",
]
