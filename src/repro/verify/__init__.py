"""Firmware static analysis: abstract interpretation, WCET, linters.

The subsystem answers, *before* any simulation runs:

* does this firmware's worst-case cycles/packet fit the line-rate
  budget at a given (clock, RPUs, packet size, Gbps) operating point?
* is every load/store provably inside a declared memory region, and
  does the worst-case stack depth fit the per-RPU stack allocation?
  (:mod:`repro.verify.absint` + :mod:`repro.verify.memsafe`)
* what bounds its loops?  Induction-variable and accelerator-stream
  analysis infer them; ``# loop-bound`` annotations are cross-checks
  (:mod:`repro.verify.loopbound`).
* does its MMIO footprint match the interconnect map and the configured
  accelerator's register set?
* does it store into its own text segment (self-modifying code)?
* is its behavioural twin safe to memoize in the replay cache?
* does the simulator source itself stay deterministic?
  (:mod:`repro.verify.detlint`, wired into ``make lint``)

Entry points: :func:`verify_firmware` / :func:`verify_all` (the
``repro verify`` CLI and CI gate), :func:`preflight_spec` (the engine
hook behind ``ExperimentSpec.verify``), and the lower-level
:func:`build_cfg` / :func:`deep_analyze` / :func:`analyze_wcet` /
:func:`check_memory_safety` / :func:`lint_firmware_class` passes.
See ``docs/STATIC_ANALYSIS.md``.
"""

from .absint import (
    IO_REGISTER_SPECS,
    AbsAccess,
    AbsintResult,
    AbsState,
    AbsVal,
    IoRegister,
    MachineEnv,
    Region,
    analyze_cfg,
    deep_analyze,
)
from .budget import BudgetVerdict, budget_verdict
from .cfg import (
    BasicBlock,
    Diagnostic,
    FirmwareCfg,
    Loop,
    MemAccess,
    analyze_source,
    build_cfg,
    region_of,
)
from .detlint import Finding, lint_paths, lint_source
from .loopbound import (
    LoopBound,
    LoopBoundReport,
    induction_clamps,
    infer_loop_bounds,
    local_dominators,
)
from .memsafe import AccessCheck, MemSafetyReport, check_memory_safety
from .preflight import (
    FIRMWARE_ASM_TWINS,
    PreflightReport,
    VerificationError,
    preflight_spec,
)
from .registry import (
    INTERCONNECT_REGISTERS,
    BundledFirmware,
    FirmwareVerifyReport,
    OperatingPoint,
    bundled_firmware_names,
    bundled_firmwares,
    reports_to_json,
    verify_all,
    verify_firmware,
)
from .fluidgate import FluidGate, fluid_gate
from .replaylint import (
    CLASS_REPLAY_SAFE,
    CLASS_STATEFUL,
    CLASS_UNSAFE,
    LintFinding,
    ReplayLintReport,
    bundled_firmware_classes,
    lint_all_models,
    lint_firmware_class,
)
from .wcet import (
    DEFAULT_LOOP_BOUND,
    TRAP_ENTRY_CYCLES,
    CriticalStep,
    IrreducibleCfgError,
    WcetReport,
    analyze_wcet,
    parse_loop_bounds,
)

__all__ = [
    "AbsAccess",
    "AbsState",
    "AbsVal",
    "AbsintResult",
    "AccessCheck",
    "BasicBlock",
    "BudgetVerdict",
    "BundledFirmware",
    "CLASS_REPLAY_SAFE",
    "CLASS_STATEFUL",
    "CLASS_UNSAFE",
    "CriticalStep",
    "DEFAULT_LOOP_BOUND",
    "Diagnostic",
    "FIRMWARE_ASM_TWINS",
    "Finding",
    "FirmwareCfg",
    "FluidGate",
    "FirmwareVerifyReport",
    "INTERCONNECT_REGISTERS",
    "IO_REGISTER_SPECS",
    "IoRegister",
    "IrreducibleCfgError",
    "LintFinding",
    "Loop",
    "LoopBound",
    "LoopBoundReport",
    "MachineEnv",
    "MemAccess",
    "MemSafetyReport",
    "OperatingPoint",
    "PreflightReport",
    "Region",
    "ReplayLintReport",
    "TRAP_ENTRY_CYCLES",
    "VerificationError",
    "WcetReport",
    "analyze_cfg",
    "analyze_source",
    "analyze_wcet",
    "budget_verdict",
    "check_memory_safety",
    "deep_analyze",
    "fluid_gate",
    "build_cfg",
    "bundled_firmware_classes",
    "bundled_firmware_names",
    "bundled_firmwares",
    "induction_clamps",
    "infer_loop_bounds",
    "lint_all_models",
    "lint_firmware_class",
    "lint_paths",
    "lint_source",
    "local_dominators",
    "parse_loop_bounds",
    "preflight_spec",
    "region_of",
    "reports_to_json",
    "verify_all",
    "verify_firmware",
]
