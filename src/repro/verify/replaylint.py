"""AST linter: is a behavioural firmware replay-cacheable?

``FirmwareReplayCache`` (PR 4) decides eligibility at runtime: a
``FirmwareModel`` whose :meth:`replay_token` returns ``None`` is
bypassed on every packet.  This linter makes the same call *statically*
so eligibility is declared, not discovered mid-sweep:

* ``replay-safe`` — overrides ``replay_token`` and ``process()`` (plus
  every ``self.*()`` method it calls) performs no mutation beyond the
  counter bumps the token contract explicitly allows
  (``self.x += 1``-style integer adds on ``replay_owners``).
* ``stateful`` — keeps the default ``replay_token`` (opting out); the
  runtime cache bypasses it.  Mutations found are reported as evidence
  the opt-out is correct.
* ``unsafe`` — overrides ``replay_token`` (promising purity) **but**
  the linter finds mutable attribute/subscript writes, container
  mutators on ``self``-rooted state, or ``random``/``time`` use: the
  promise is not credible and replaying would diverge.

The differential test (``tests/test_replay_lint.py``) pins the linter's
safe/stateful split to the observed runtime bypass behaviour for every
bundled firmware.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..core.firmware_api import FirmwareModel

#: Container methods that mutate their receiver.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "add", "discard", "update", "setdefault", "sort", "reverse",
    }
)

#: Modules whose use inside ``process`` makes results non-replayable.
_NONDETERMINISTIC = frozenset({"random", "secrets", "time", "datetime"})

CLASS_REPLAY_SAFE = "replay-safe"
CLASS_STATEFUL = "stateful"
CLASS_UNSAFE = "unsafe"


@dataclass(frozen=True)
class LintFinding:
    code: str
    message: str
    func: str
    lineno: int  # within the method source

    def format(self) -> str:
        return f"[{self.code}] {self.func}:{self.lineno}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "func": self.func,
            "lineno": self.lineno,
        }


@dataclass
class ReplayLintReport:
    cls_name: str
    classification: str
    token_overridden: bool
    findings: List[LintFinding] = field(default_factory=list)
    counter_bumps: int = 0  # allowed self.x += 1 style adds
    notes: List[str] = field(default_factory=list)

    @property
    def cacheable(self) -> bool:
        return self.classification == CLASS_REPLAY_SAFE

    def to_dict(self) -> dict:
        return {
            "class": self.cls_name,
            "classification": self.classification,
            "token_overridden": self.token_overridden,
            "findings": [f.to_dict() for f in self.findings],
            "counter_bumps": self.counter_bumps,
            "notes": self.notes,
        }


def _root_is_self(node: ast.expr) -> bool:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


class _MethodLinter(ast.NodeVisitor):
    def __init__(self, func_name: str) -> None:
        self.func_name = func_name
        self.findings: List[LintFinding] = []
        self.counter_bumps = 0
        self.self_calls: Set[str] = set()

    def _finding(self, code: str, message: str, node: ast.AST) -> None:
        self.findings.append(
            LintFinding(code, message, self.func_name, getattr(node, "lineno", 0))
        )

    def _check_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt, node)
        elif isinstance(target, ast.Attribute):
            self._finding(
                "attribute-write",
                f"assigns attribute '{ast.unparse(target)}'",
                node,
            )
        elif isinstance(target, ast.Subscript):
            self._finding(
                "subscript-write",
                f"assigns subscript '{ast.unparse(target)}'",
                node,
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Attribute):
            if isinstance(node.op, ast.Add) and _root_is_self(target):
                # the one mutation the replay_token contract allows:
                # integer counter bumps, diffed/re-applied by the cache
                self.counter_bumps += 1
            else:
                self._finding(
                    "attribute-write",
                    f"augmented-assigns attribute '{ast.unparse(target)}'",
                    node,
                )
        elif isinstance(target, ast.Subscript):
            self._finding(
                "subscript-write",
                f"augmented-assigns subscript '{ast.unparse(target)}'",
                node,
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # self.helper(...) -> analyze transitively
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                self.self_calls.add(func.attr)
            elif func.attr in _MUTATORS and _root_is_self(func.value):
                self._finding(
                    "container-mutation",
                    f"calls mutator '.{func.attr}()' on "
                    f"'{ast.unparse(func.value)}'",
                    node,
                )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in _NONDETERMINISTIC:
            self._finding(
                "nondeterminism",
                f"uses module '{node.id}' (results not replayable)",
                node,
            )
        self.generic_visit(node)


def _method_ast(cls: type, name: str) -> Optional[ast.AST]:
    func = getattr(cls, name, None)
    if func is None or not callable(func):
        return None
    func = inspect.unwrap(func)
    if not hasattr(func, "__code__"):
        return None  # builtin / C-level
    try:
        source = textwrap.dedent(inspect.getsource(func))
        return ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None


def lint_firmware_class(cls) -> ReplayLintReport:
    """Classify one :class:`FirmwareModel` subclass (or instance)."""
    if not isinstance(cls, type):
        cls = type(cls)
    token_overridden = cls.replay_token is not FirmwareModel.replay_token

    findings: List[LintFinding] = []
    counter_bumps = 0
    notes: List[str] = []

    visited: Set[str] = set()
    queue = ["process"]
    while queue:
        name = queue.pop()
        if name in visited:
            continue
        visited.add(name)
        tree = _method_ast(cls, name)
        if tree is None:
            if name == "process":
                notes.append("process() source unavailable; structural "
                             "checks skipped")
            continue
        linter = _MethodLinter(name)
        linter.visit(tree)
        findings.extend(linter.findings)
        counter_bumps += linter.counter_bumps
        queue.extend(linter.self_calls - visited)

    if not token_overridden:
        classification = CLASS_STATEFUL
        if not findings:
            notes.append(
                "no mutations found, but replay_token is not overridden: "
                "the cache bypasses this firmware (add a token to opt in)"
            )
    elif findings:
        classification = CLASS_UNSAFE
    else:
        classification = CLASS_REPLAY_SAFE

    return ReplayLintReport(
        cls_name=cls.__name__,
        classification=classification,
        token_overridden=token_overridden,
        findings=findings,
        counter_bumps=counter_bumps,
        notes=notes,
    )


def bundled_firmware_classes() -> List[type]:
    """Every behavioural ``FirmwareModel`` the repo ships."""
    from ..firmware import (
        ChainStageFirmware,
        FirewallFirmware,
        ForwarderFirmware,
        NatFirmware,
        NicFirmware,
        PigasusHwReorderFirmware,
        PigasusSwReorderFirmware,
        TwoStepForwarder,
    )

    return [
        ForwarderFirmware,
        NicFirmware,
        TwoStepForwarder,
        FirewallFirmware,
        NatFirmware,
        PigasusHwReorderFirmware,
        PigasusSwReorderFirmware,
        ChainStageFirmware,
    ]


def lint_all_models() -> List[ReplayLintReport]:
    return [lint_firmware_class(cls) for cls in bundled_firmware_classes()]
