"""Loop-bound inference: induction variables, stream drains, cross-checks.

PR 5's WCET engine trusted ``# loop-bound N`` annotations.  This module
*derives* bounds from the program instead, using two rules over the
abstract-interpretation fixpoint (:mod:`repro.verify.absint`):

**Induction rule.**  A register ``r`` with exactly one definition in the
loop body, that definition an ``addi r, r, c`` which dominates every
back edge (loop-local dominators — the global relation is useless
inside a loop once the back edges are cut), is an induction variable:
``r = init + c*k`` on iteration ``k``.  If a conditional branch that
also dominates every back edge tests ``r`` against a loop-invariant
bound ``B`` and exactly one of its edges leaves the loop, the iteration
count follows from the continue relation — e.g. counted-up ``blt r, B``
with increment before the test gives ``ceil((B.hi - init.lo) / c)``.
An increment *after* (or incomparable with) the guard costs one extra
iteration: the guard re-tests the pre-increment value once more.

**Stream rule.**  Drain loops (pigasus: pop match FIFO until the
end-of-packet marker) have no induction variable — their trip count is
a property of the *device*.  When the guard tests a value loaded from
an accelerator register declaring ``stream_depth=d`` (see
``Accelerator.define_register``), the loop body also advances the
stream (a store to a ``stream_advance`` register), and the continue
relation is "while nonzero", the FIFO capacity bounds the loop: at most
``d`` iterations (``d - 1`` data words plus the zero marker).

``# loop-bound`` annotations are **cross-checks** now, not trusted
inputs: an annotation that disagrees with an inferred bound is an
``error[loop-bound-mismatch]``; an annotation on a loop the engine
cannot bound is used, but flagged ``warning[loop-bound-trusted]``.

:func:`induction_clamps` converts inferred bounds back into abstract
facts — ``r ∈ init + c*[0, n]`` at the header — for the second fixpoint
pass, which is how the widened pigasus byte-copy offset collapses back
to ``len + [0, 35]`` and the append store proves in-slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..riscv.isa import BRANCH_RELATIONS, NEGATED_RELATION, writes_rd
from .absint import U32, AbsintResult, AbsVal, MachineEnv, _sym
from .cfg import Diagnostic, FirmwareCfg, Loop

#: Bounds larger than this are rejected as widening artifacts — no
#: bundled firmware loops a million times per packet, and a bogus huge
#: bound would silently wreck the WCET instead of flagging the loop.
MAX_SANE_BOUND = 1 << 20


@dataclass(frozen=True)
class LoopBound:
    """One bounded loop: where the bound came from and why."""

    header: int
    bound: int
    source: str  # "induction" | "stream" | "annotation"
    detail: str = ""
    reg: Optional[int] = None  # induction register, when source == "induction"
    step: int = 0  # its per-iteration increment


@dataclass
class LoopBoundReport:
    """Inference results for every loop in one firmware CFG."""

    bounds: Dict[int, LoopBound] = field(default_factory=dict)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def bound_map(self) -> Dict[int, int]:
        """``{header pc: iteration bound}`` for the WCET engine."""
        return {h: lb.bound for h, lb in self.bounds.items()}

    def provenance(self) -> Dict[int, str]:
        return {h: lb.source for h, lb in self.bounds.items()}


# -- loop-local dominators ----------------------------------------------------


def local_dominators(cfg: FirmwareCfg, loop: Loop) -> Dict[int, Set[int]]:
    """Dominator sets over the loop body *with this loop's back edges
    removed*, rooted at the header.

    Global dominators cannot answer "does the increment run on every
    iteration": inside the body the question is about paths from the
    header to the back-edge tails, which is exactly dominance in the
    acyclic(ified) body subgraph.
    """
    body = loop.body
    back = set(loop.back_edges)
    preds: Dict[int, List[int]] = {n: [] for n in body}
    for n in sorted(body):
        if n not in cfg.blocks:
            continue
        for s in cfg.blocks[n].successors:
            if s in body and (n, s) not in back:
                preds[s].append(n)

    doms: Dict[int, Set[int]] = {loop.header: {loop.header}}
    others = sorted(body - {loop.header})
    for n in others:
        doms[n] = set(body)
    changed = True
    while changed:
        changed = False
        for n in others:
            plist = [doms[p] for p in preds[n] if p in doms]
            new = set.intersection(*plist) if plist else set()
            new = new | {n}
            if new != doms[n]:
                doms[n] = new
                changed = True
    return doms


# -- helpers ------------------------------------------------------------------


def _defs_of(cfg: FirmwareCfg, loop: Loop, reg: int) -> List[Tuple[int, int, object]]:
    """``(block start, pc, inst)`` for every write of ``reg`` in the body."""
    out = []
    for start in sorted(loop.body):
        block = cfg.blocks.get(start)
        if block is None:
            continue
        for pc, inst in zip(block.pcs, block.insts):
            if writes_rd(inst.mnemonic, inst.rd) and inst.rd == reg:
                out.append((start, pc, inst))
    return out


def _in_nested_loop(cfg: FirmwareCfg, loop: Loop, start: int) -> bool:
    for other in cfg.loops.values():
        if other.header == loop.header:
            continue
        if other.header in loop.body and start in other.body:
            return True
    return False


def _dominates_all_tails(doms: Dict[int, Set[int]], loop: Loop, start: int) -> bool:
    return all(start in doms.get(tail, set()) for tail, _ in loop.back_edges)


def _guard_blocks(cfg: FirmwareCfg, loop: Loop, doms: Dict[int, Set[int]]) -> List[int]:
    """Body blocks that dominate every back edge and end in a
    conditional branch with exactly one loop-exiting successor."""
    out = []
    for start in sorted(loop.body):
        block = cfg.blocks.get(start)
        if block is None or block.end_reason != "terminal":
            continue
        last = block.last
        if last is None or last.mnemonic not in BRANCH_RELATIONS:
            continue
        if not _dominates_all_tails(doms, loop, start):
            continue
        exits = [s for s in block.successors if s not in loop.body]
        stays = [s for s in block.successors if s in loop.body]
        if len(exits) == 1 and len(stays) == 1:
            out.append(start)
    return out


def _continue_relation(cfg: FirmwareCfg, loop: Loop, guard: int) -> Tuple[str, bool, int]:
    """``(relation, signed, continue successor)`` on the stay-in-loop
    edge of the guard branch."""
    block = cfg.blocks[guard]
    last = block.last
    relation, signed = BRANCH_RELATIONS[last.mnemonic]
    target = (block.pcs[-1] + last.imm) & U32
    stay = next(s for s in block.successors if s in loop.body)
    if stay != target:
        relation = NEGATED_RELATION[relation]
    return relation, signed, stay


_SWAPPED = {"lt": "gt", "ge": "le", "gt": "lt", "le": "ge", "eq": "eq", "ne": "ne"}


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


# -- the induction rule -------------------------------------------------------


def _infer_induction(
    cfg: FirmwareCfg,
    absres: AbsintResult,
    loop: Loop,
    doms: Dict[int, Set[int]],
) -> Optional[LoopBound]:
    guards = _guard_blocks(cfg, loop, doms)
    if not guards:
        return None

    # candidate induction registers: single-def addi r, r, c in the
    # body, def dominating every back edge and not nested deeper
    candidates: Dict[int, Tuple[int, int, int]] = {}  # reg -> (block, pc, step)
    regs_seen: Set[int] = set()
    for start in sorted(loop.body):
        block = cfg.blocks.get(start)
        if block is None:
            continue
        for pc, inst in zip(block.pcs, block.insts):
            if writes_rd(inst.mnemonic, inst.rd):
                regs_seen.add(inst.rd)
    for reg in sorted(regs_seen):
        if reg == 0:
            continue
        defs = _defs_of(cfg, loop, reg)
        if len(defs) != 1:
            continue
        start, pc, inst = defs[0]
        if inst.mnemonic != "addi" or inst.rs1 != reg or inst.imm == 0:
            continue
        if not _dominates_all_tails(doms, loop, start):
            continue
        if _in_nested_loop(cfg, loop, start):
            continue
        candidates[reg] = (start, pc, inst.imm)

    entry = absres.entry_joins.get(loop.header)
    if entry is None or not candidates:
        return None

    for guard in guards:
        block = cfg.blocks[guard]
        last = block.last
        for reg, (def_block, def_pc, step) in sorted(candidates.items()):
            if last.rs1 == reg and last.rs2 != reg:
                bound_reg = last.rs2
                swap = False
            elif last.rs2 == reg and last.rs1 != reg:
                bound_reg = last.rs1
                swap = True
            else:
                continue
            # bound operand must be loop-invariant
            if bound_reg != 0 and _defs_of(cfg, loop, bound_reg):
                continue
            relation, signed, _ = _continue_relation(cfg, loop, guard)
            if swap:
                relation = _SWAPPED[relation]

            init = entry.regs[reg]
            state = absres.state_before(block.pcs[-1])
            bval = state.regs[bound_reg] if state is not None else None
            if bval is None or not init.is_plain or not bval.is_plain:
                continue
            if signed and (init.hi >= 0x8000_0000 or bval.hi >= 0x8000_0000):
                continue

            n = _iteration_count(relation, step, init, bval)
            if n is None:
                continue
            # increment strictly before the guard test?  same block
            # (branch is last, so the addi precedes it) or the def
            # block strictly dominates the guard block.
            before = def_block == guard or (
                def_block != guard and def_block in doms.get(guard, set())
            )
            if not before:
                n += 1
            n = max(n, 1)
            if n > MAX_SANE_BOUND:
                continue
            return LoopBound(
                header=loop.header,
                bound=n,
                source="induction",
                detail=(
                    f"x{reg} = {init.describe()} step {step}, guard "
                    f"{last.mnemonic} vs {bval.describe()} at "
                    f"{cfg.describe(guard)}"
                ),
                reg=reg,
                step=step,
            )
    return None


def _iteration_count(relation: str, step: int, init: AbsVal, bval: AbsVal) -> Optional[int]:
    if step > 0:
        if relation == "lt":
            return max(_ceil_div(bval.hi - init.lo, step), 0)
        if relation == "le":
            return max(_ceil_div(bval.hi + 1 - init.lo, step), 0)
        if relation == "ne" and step == 1 and init.hi <= bval.lo:
            return bval.hi - init.lo
        return None
    if step < 0:
        if relation == "gt":
            return max(_ceil_div(init.hi - bval.lo, -step), 0)
        if relation == "ge":
            return max(_ceil_div(init.hi + 1 - bval.lo, -step), 0)
        if relation == "ne" and step == -1 and init.lo >= bval.hi:
            return init.hi - bval.lo
        return None
    return None


# -- the stream rule ----------------------------------------------------------


def _infer_stream(
    cfg: FirmwareCfg,
    absres: AbsintResult,
    env: MachineEnv,
    loop: Loop,
    doms: Dict[int, Set[int]],
) -> Optional[LoopBound]:
    accel = env.accel
    reg_meta = getattr(accel, "reg_meta", None)
    if not callable(reg_meta):
        return None
    ext = env.region_at("accel")

    for guard in _guard_blocks(cfg, loop, doms):
        block = cfg.blocks[guard]
        last = block.last
        if last.mnemonic not in ("beq", "bne"):
            continue
        if last.rs2 == 0 and last.rs1 != 0:
            tested = last.rs1
        elif last.rs1 == 0 and last.rs2 != 0:
            tested = last.rs2
        else:
            continue
        relation, _, _ = _continue_relation(cfg, loop, guard)
        if relation != "ne":
            continue  # a drain continues while the word is nonzero
        state = absres.state_before(block.pcs[-1])
        if state is None:
            continue
        tag = state.regs[tested].tag
        if not tag or tag[0] != "stream":
            continue
        _, offset, load_pc = tag
        meta = reg_meta(offset) or {}
        depth = meta.get("stream_depth")
        if not depth:
            continue
        # the tagged load must run on every iteration
        load_block = next(
            (s for s in loop.body if load_pc in cfg.blocks.get(s, _EMPTY).pcs), None
        )
        if load_block is None or not _dominates_all_tails(doms, loop, load_block):
            continue
        # ... and so must an advance of the same stream, or the FIFO
        # head never moves and the loop spins forever
        if not _has_dominating_advance(cfg, absres, loop, doms, ext, reg_meta):
            continue
        return LoopBound(
            header=loop.header,
            bound=depth,
            source="stream",
            detail=(
                f"drains accel stream @+{offset:#x} (depth {depth}) via "
                f"load at 0x{load_pc:x}"
            ),
        )
    return None


class _Empty:
    pcs: Tuple[int, ...] = ()


_EMPTY = _Empty()


def _has_dominating_advance(cfg, absres, loop, doms, ext, reg_meta) -> bool:
    for acc in absres.accesses:
        if acc.kind != "store" or not acc.addr.is_const:
            continue
        a = acc.addr.lo
        if not (ext.base <= a < ext.end):
            continue
        meta = reg_meta(a - ext.base) or {}
        if not meta.get("stream_advance"):
            continue
        store_block = next(
            (s for s in loop.body if acc.pc in cfg.blocks.get(s, _EMPTY).pcs), None
        )
        if store_block is not None and _dominates_all_tails(doms, loop, store_block):
            return True
    return False


# -- entry points -------------------------------------------------------------


def infer_loop_bounds(
    cfg: FirmwareCfg,
    absres: AbsintResult,
    env: Optional[MachineEnv] = None,
    annotations: Optional[Dict[int, int]] = None,
) -> LoopBoundReport:
    """Infer a bound for every loop in ``cfg`` and cross-check against
    annotations.

    ``annotations`` maps header pc to the ``# loop-bound N`` value; when
    omitted it is taken from ``cfg.loops`` (the builder already parses
    annotations into ``Loop.bound``).
    """
    env = env or absres.env
    report = LoopBoundReport()
    if annotations is None:
        annotations = {
            lp.header: lp.bound
            for lp in cfg.loops.values()
            if lp.annotated and lp.bound is not None
        }

    for header in sorted(cfg.loops):
        loop = cfg.loops[header]
        doms = local_dominators(cfg, loop)
        inferred = _infer_induction(cfg, absres, loop, doms)
        if inferred is None:
            inferred = _infer_stream(cfg, absres, env, loop, doms)

        annotated = annotations.get(header)
        if inferred is not None:
            if annotated is not None and annotated != inferred.bound:
                report.diagnostics.append(
                    Diagnostic(
                        "error",
                        "loop-bound-mismatch",
                        f"loop {cfg.describe(header)}: annotation says "
                        f"{annotated} iterations but {inferred.source} "
                        f"analysis proves {inferred.bound} ({inferred.detail})",
                        pc=header,
                        firmware=cfg.name,
                    )
                )
            report.bounds[header] = inferred
        elif annotated is not None:
            report.bounds[header] = LoopBound(
                header=header,
                bound=annotated,
                source="annotation",
                detail="trusted annotation; no induction variable or "
                "stream guard found",
            )
            report.diagnostics.append(
                Diagnostic(
                    "warning",
                    "loop-bound-trusted",
                    f"loop {cfg.describe(header)}: bound {annotated} comes "
                    "from an annotation the analyzer could not verify",
                    pc=header,
                    firmware=cfg.name,
                )
            )
    return report


def induction_clamps(
    cfg: FirmwareCfg,
    absres: AbsintResult,
    report: LoopBoundReport,
) -> Dict[int, Dict[int, AbsVal]]:
    """Per-header register clamps for the second fixpoint pass.

    For every bounded loop, every single-def ``addi r, r, c`` register
    (not just the guard's induction variable — the pigasus byte-copy
    walks *two* counters) is confined to ``init + c*[0, n]``.  The init
    value comes from the first pass's entry joins, which only see
    states from outside the loop — a sound superset of the real entry
    values, so meeting with the clamp at the header is sound.
    """
    clamps: Dict[int, Dict[int, AbsVal]] = {}
    for header, lb in sorted(report.bounds.items()):
        loop = cfg.loops.get(header)
        entry = absres.entry_joins.get(header)
        if loop is None or entry is None:
            continue
        doms = local_dominators(cfg, loop)
        regs_seen: Set[int] = set()
        for start in sorted(loop.body):
            block = cfg.blocks.get(start)
            if block is None:
                continue
            for inst in block.insts:
                if writes_rd(inst.mnemonic, inst.rd):
                    regs_seen.add(inst.rd)
        for reg in sorted(regs_seen):
            if reg == 0:
                continue
            defs = _defs_of(cfg, loop, reg)
            if len(defs) != 1:
                continue
            start, _, inst = defs[0]
            if inst.mnemonic != "addi" or inst.rs1 != reg or inst.imm == 0:
                continue
            if _in_nested_loop(cfg, loop, start):
                continue
            init = entry.regs[reg]
            span = abs(inst.imm) * lb.bound
            if inst.imm > 0:
                lo, hi = init.lo, init.hi + span
            else:
                lo, hi = init.lo - span, init.hi
            if init.is_plain:
                if hi > U32:
                    continue  # wrapped: no useful clamp
                clamp = AbsVal("num", 0, max(lo, 0), hi)
            else:
                clamp = _sym(init.base, init.lc, lo, hi)
            clamps.setdefault(header, {})[reg] = clamp
    return clamps
