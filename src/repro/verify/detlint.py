"""Determinism lint: the static guard behind the byte-identity suite.

PRs 6–9 test determinism *dynamically* — same seed, same trace bytes,
across process restarts and cluster topologies.  Those tests catch a
regression after it lands; this AST lint catches the three classic ways
nondeterminism sneaks into the hot paths before it runs:

* **wall-clock reads** (``time.time``/``perf_counter``/``monotonic``,
  ``datetime.now`` …) — anything derived from one diverges across runs
  and hosts;
* **unseeded RNG** — module-level ``random.*`` draws from the shared
  global generator (seeded from the OS), and ``random.Random()``
  without arguments does the same; simulation code must thread an
  explicit seeded generator;
* **iteration over set literals / ``set()`` / ``frozenset()``** in
  ``for`` or comprehensions without a ``sorted()`` wrapper — set order
  is salted per process, so any state built by such a loop can differ
  between identical runs.

Scope is ``src/repro/{sim,core,cluster,fluid}`` — the code whose
outputs the determinism guarantees cover.  Verified legitimate uses
(e.g. wall-time *reporting* that never feeds simulation state) are
suppressed in place with ``# detlint: ok(reason)`` on the same line;
the reason is mandatory so every exemption self-documents.

Run as ``python -m repro.verify.detlint [paths...]`` (wired into
``make lint`` and the CI lint job); exits 1 when any finding survives.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence

#: Fully-qualified callables whose results depend on the wall clock.
WALLCLOCK_FNS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module-level draws from the process-global (OS-seeded) generator.
UNSEEDED_RNG_FNS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.getrandbits",
        "random.randbytes",
        "random.gauss",
        "random.expovariate",
    }
)

_SUPPRESS_RE = re.compile(r"#\s*detlint:\s*ok\([^)]+\)")

#: Default lint scope, relative to the package root (``src/``).
DEFAULT_TARGETS = ("repro/sim", "repro/core", "repro/cluster", "repro/fluid")


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    code: str  # "wall-clock" | "unseeded-rng" | "set-iteration"
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code}: {self.message}"


class _Aliases(ast.NodeVisitor):
    """Map local names to the canonical dotted names they import."""

    def __init__(self) -> None:
        self.names: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.names[alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never reach time/random/datetime
        for alias in node.names:
            self.names[alias.asname or alias.name] = f"{node.module}.{alias.name}"


def _dotted(node: ast.expr) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: Sequence[str], aliases: Dict[str, str]) -> None:
        self.path = path
        self.lines = source_lines
        self.aliases = aliases
        self.findings: List[Finding] = []

    # -- helpers -------------------------------------------------------------

    def _suppressed(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return bool(_SUPPRESS_RE.search(self.lines[line - 1]))
        return False

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        if not self._suppressed(node):
            self.findings.append(Finding(self.path, node.lineno, code, message))

    def _resolve(self, func: ast.expr) -> str:
        parts = _dotted(func)
        if not parts:
            return ""
        root = self.aliases.get(parts[0])
        if root is not None:
            parts = root.split(".") + parts[1:]
        return ".".join(parts)

    # -- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        fqn = self._resolve(node.func)
        if fqn in WALLCLOCK_FNS:
            self._emit(
                node,
                "wall-clock",
                f"{fqn}() reads the wall clock; derive time from the "
                "simulated clock or suppress with '# detlint: ok(reason)'",
            )
        elif fqn in UNSEEDED_RNG_FNS:
            self._emit(
                node,
                "unseeded-rng",
                f"{fqn}() draws from the process-global RNG; thread a "
                "seeded random.Random through instead",
            )
        elif fqn == "random.Random" and not node.args and not node.keywords:
            self._emit(
                node,
                "unseeded-rng",
                "random.Random() without a seed is seeded from the OS; "
                "pass an explicit seed",
            )
        self.generic_visit(node)

    # -- set iteration -------------------------------------------------------

    def _check_iterable(self, it: ast.expr) -> None:
        if isinstance(it, ast.Call):
            fqn = self._resolve(it.func)
            if fqn in ("set", "frozenset"):
                self._emit(
                    it,
                    "set-iteration",
                    f"iterating a {fqn}() has per-process order; wrap in "
                    "sorted(...)",
                )
        elif isinstance(it, ast.Set):
            self._emit(
                it,
                "set-iteration",
                "iterating a set literal has per-process order; wrap in "
                "sorted(...) or use a tuple",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iterable(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text."""
    tree = ast.parse(source, filename=path)
    aliases = _Aliases()
    aliases.visit(tree)
    linter = _Linter(path, source.splitlines(), aliases.names)
    linter.visit(tree)
    return linter.findings


def lint_paths(paths: Sequence[Path]) -> List[Finding]:
    """Lint every ``*.py`` under each path (or the file itself)."""
    findings: List[Finding] = []
    for path in paths:
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            findings.extend(
                lint_source(file.read_text(encoding="utf-8"), str(file))
            )
    return findings


def default_targets() -> List[Path]:
    src_root = Path(__file__).resolve().parents[2]
    return [src_root / target for target in DEFAULT_TARGETS]


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    paths = [Path(a) for a in argv] if argv else default_targets()
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"detlint: no such path: {p}", file=sys.stderr)
        return 2
    findings = lint_paths(paths)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"detlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
