"""Engine pre-flight: verify an :class:`ExperimentSpec` before running.

``run_experiment`` calls :func:`preflight_spec` when ``spec.verify`` is
set.  The behavioural firmware class on the spec is mapped to its
assembly twin in the registry, the twin's WCET bound is checked against
the spec's (clock, RPUs, size, offered Gbps) operating point with the
same centralized budget formula ``repro verify`` uses, and — when the
spec enables the replay cache — the replay linter vets the firmware
class.  A FAIL either warns (``verify="warn"``) or raises
:class:`VerificationError` (``verify="fail"``/``True``) before any pool
time is spent; sweep workers surface the raise as a per-point error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .budget import BudgetVerdict, budget_verdict
from .cfg import Diagnostic
from .memsafe import MemSafetyReport, check_memory_safety
from .registry import bundled_firmwares
from .replaylint import CLASS_UNSAFE, ReplayLintReport, lint_firmware_class
from .wcet import WcetReport, analyze_wcet


class VerificationError(RuntimeError):
    """A spec with ``verify="fail"`` failed static verification."""

    def __init__(self, message: str, report: "PreflightReport" = None) -> None:
        super().__init__(message)
        self.report = report


#: Behavioural firmware class name -> bundled assembly twin whose WCET
#: stands in for it.  Classes without a twin (NAT, chain stages) get an
#: informational note instead of a budget verdict.
FIRMWARE_ASM_TWINS: Dict[str, str] = {
    "ForwarderFirmware": "forwarder",
    "TwoStepForwarder": "forwarder",
    "NicFirmware": "forwarder",
    "FirewallFirmware": "firewall",
    "PigasusHwReorderFirmware": "pigasus",
    "PigasusSwReorderFirmware": "pigasus",
}

#: (asm name) -> (WcetReport, accel, MemSafetyReport) cache; the deep
#: CFG + abstract-interpretation + WCET pass is pure, so sweeps
#: re-verify each point with arithmetic only.
_WCET_CACHE: Dict[str, Tuple[WcetReport, Optional[object], MemSafetyReport]] = {}


@dataclass
class PreflightReport:
    spec_name: str
    firmware_cls: str
    asm_twin: Optional[str] = None
    verdict: Optional[BudgetVerdict] = None
    safety: Optional[MemSafetyReport] = None
    lint: Optional[ReplayLintReport] = None
    diagnostics: List[Diagnostic] = field(default_factory=list)
    lint_required: bool = False  # spec asked for the replay cache

    @property
    def failed(self) -> bool:
        if self.verdict is not None and not self.verdict.passed:
            return True
        if self.verdict is not None and self.verdict.memory_safe is False:
            return True
        if (
            self.lint_required
            and self.lint is not None
            and self.lint.classification == CLASS_UNSAFE
        ):
            return True
        return False

    def summary(self) -> str:
        parts: List[str] = []
        if self.verdict is not None:
            parts.append(self.verdict.summary())
        elif self.asm_twin is None:
            parts.append(
                f"{self.firmware_cls}: no assembly twin registered; "
                "budget not statically checked"
            )
        if self.verdict is not None and self.verdict.memory_safe is False:
            parts.append(
                f"{self.asm_twin}: memory safety NOT proven "
                f"({len(self.safety.violations) if self.safety else '?'} "
                "violation(s))"
            )
        if self.lint is not None:
            parts.append(
                f"replay lint: {self.lint.cls_name} is "
                f"{self.lint.classification}"
            )
        return "; ".join(parts) or "nothing verified"

    def to_dict(self) -> dict:
        return {
            "spec_name": self.spec_name,
            "firmware_cls": self.firmware_cls,
            "asm_twin": self.asm_twin,
            "failed": self.failed,
            "verdict": self.verdict.to_dict() if self.verdict else None,
            "safety": self.safety.to_dict() if self.safety else None,
            "lint": self.lint.to_dict() if self.lint else None,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def _twin_wcet(asm_name: str):
    """Deep-verify a registry firmware once and cache the
    (WCET, accelerator, memory-safety) triple — the abstract
    interpretation is deterministic and spec-independent."""
    cached = _WCET_CACHE.get(asm_name)
    if cached is not None:
        return cached
    from .absint import MachineEnv, deep_analyze
    from .cfg import analyze_source
    from .registry import _annotations_by_pc

    fw = next(f for f in bundled_firmwares() if f.name == asm_name)
    accel = fw.accel_factory() if fw.accel_factory else None
    cfg = analyze_source(fw.asm, name=asm_name)
    env = MachineEnv(accel=accel)
    absres = deep_analyze(cfg, env, annotations=_annotations_by_pc(cfg, fw.asm))
    wcet = analyze_wcet(cfg, source=fw.asm, absres=absres)
    safety = check_memory_safety(cfg, absres, env)
    _WCET_CACHE[asm_name] = (wcet, accel, safety)
    return wcet, accel, safety


def preflight_spec(spec) -> PreflightReport:
    """Statically verify ``spec``; never raises — the caller decides
    what a failure means (warn vs :class:`VerificationError`)."""
    from .registry import _accel_worst_cycles

    firmware = spec.firmware
    cls = firmware if isinstance(firmware, type) else type(firmware)
    cls_name = getattr(cls, "__name__", str(cls))
    report = PreflightReport(
        spec_name=spec.describe(), firmware_cls=cls_name,
        lint_required=bool(spec.replay_cache),
    )

    twin = FIRMWARE_ASM_TWINS.get(cls_name)
    if twin is not None:
        report.asm_twin = twin
        wcet, accel, safety = _twin_wcet(twin)
        report.safety = safety
        report.verdict = budget_verdict(
            firmware=f"{cls_name} (asm twin: {twin})",
            wcet_cycles=wcet.wcet_cycles,
            accel_cycles=_accel_worst_cycles(accel, spec.traffic.packet_size),
            n_rpus=spec.config.n_rpus,
            packet_size=spec.traffic.packet_size,
            target_gbps=spec.traffic.offered_gbps,
            clock_hz=spec.config.clock.freq_hz,
            memory_safe=safety.passed,
        )
    else:
        report.diagnostics.append(
            Diagnostic(
                "note",
                "no-asm-twin",
                f"firmware {cls_name} has no registered assembly twin; "
                "cycle budget not statically verified",
                firmware=cls_name,
            )
        )

    try:
        report.lint = lint_firmware_class(cls)
    except Exception:  # linting is best-effort on exotic callables
        report.diagnostics.append(
            Diagnostic(
                "note",
                "lint-skipped",
                f"replay lint could not analyze {cls_name}",
                firmware=cls_name,
            )
        )
    return report
