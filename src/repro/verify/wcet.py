"""Worst-case cycles-per-packet bounds over a firmware CFG.

The bound is computed the way classic IPET-free WCET analyzers do it on
reducible loop nests:

1. find the **packet loop** — the outermost natural loop that touches
   the interconnect window (every bundled firmware's ``loop:``),
2. collapse each nested loop into a supernode costing
   ``bound x iteration-WCET`` (bounds come from ``# loop-bound N``
   annotations in the assembly source, or a conservative default),
3. take the longest path through the resulting DAG from the loop
   header back around any back edge.

Costs come from the same :class:`repro.riscv.CycleModel` cost table
the ISS retires with, and block boundaries from the same
:mod:`repro.riscv.blocks` rules the translator fuses with — so the
static bound and the dynamic measurement can only diverge in the sound
direction (the analyzer assumes every branch takes its worst edge and
every inner loop runs to its bound).

Soundness caveats are documented in ``docs/STATIC_ANALYSIS.md``:
``jalr`` targets are not followed (flagged as a diagnostic), and
unannotated inner loops get :data:`DEFAULT_LOOP_BOUND` with a warning
rather than a proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..riscv.blocks import BRANCH_MNEMONICS
from ..riscv.cpu import CycleModel
from .cfg import (
    BasicBlock,
    Diagnostic,
    FirmwareCfg,
    Loop,
    parse_loop_bounds,
)

__all__ = [
    "DEFAULT_LOOP_BOUND",
    "TRAP_ENTRY_CYCLES",
    "CriticalStep",
    "WcetReport",
    "IrreducibleCfgError",
    "analyze_wcet",
    "parse_loop_bounds",
]

_MASK32 = 0xFFFFFFFF

#: Iteration cap assumed for inner loops without a ``# loop-bound N``
#: annotation.  Deliberately conservative: an unannotated drain loop is
#: charged 64 iterations per packet (and flagged).
DEFAULT_LOOP_BOUND = 64

#: Cycles ``RiscvCpu._take_interrupt`` charges before the first handler
#: instruction retires (trap entry latency).
TRAP_ENTRY_CYCLES = 3


# -- report structures --------------------------------------------------------


@dataclass(frozen=True)
class CriticalStep:
    """One node of the critical path: a block, or a collapsed loop."""

    pc: int
    where: str  # human-readable, e.g. "loop(0x18)" or "loop drain(0x54) x8"
    cycles: float  # this node's contribution to the bound

    def to_dict(self) -> dict:
        return {"pc": self.pc, "where": self.where, "cycles": self.cycles}


@dataclass
class WcetReport:
    name: str
    wcet_cycles: float  # worst-case cycles per packet (sw path)
    packet_loop: Optional[int]  # header pc of the per-packet loop
    critical_path: List[CriticalStep] = field(default_factory=list)
    handlers: Dict[str, float] = field(default_factory=dict)
    loop_bounds: Dict[str, int] = field(default_factory=dict)
    #: where each used bound came from: "inferred" (induction/stream
    #: analysis), "annotation" (trusted ``# loop-bound``), or "default"
    bound_provenance: Dict[str, str] = field(default_factory=dict)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def chain(self) -> str:
        return " -> ".join(step.where for step in self.critical_path)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wcet_cycles": self.wcet_cycles,
            "packet_loop": self.packet_loop,
            "critical_path": [s.to_dict() for s in self.critical_path],
            "handlers": self.handlers,
            "loop_bounds": self.loop_bounds,
            "bound_provenance": self.bound_provenance,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


class IrreducibleCfgError(Exception):
    """The loop nest cannot be collapsed into a DAG (irreducible
    control flow, or loops sharing bodies without nesting)."""


# -- the analyzer -------------------------------------------------------------


class _Wcet:
    def __init__(
        self,
        cfg: FirmwareCfg,
        cycle_model: CycleModel,
        bounds_by_label: Dict[str, int],
        pc_bounds: Optional[Dict[int, int]] = None,
        pc_provenance: Optional[Dict[int, str]] = None,
        infeasible: Optional[Set[Tuple[int, int]]] = None,
    ) -> None:
        self.cfg = cfg
        self.costs = cycle_model.cost_table()
        self.taken = cycle_model.branch_taken_cost
        self.diags: List[Diagnostic] = []
        self.used_bounds: Dict[str, int] = {}
        self.used_provenance: Dict[str, str] = {}
        #: loop header pc -> iteration bound
        self.bounds: Dict[int, int] = {}
        #: loop header pc -> bound provenance label
        self.provenance: Dict[int, str] = {}
        for header in cfg.loops:
            label = cfg.label_at(header)
            if label is not None and label in bounds_by_label:
                self.bounds[header] = bounds_by_label[label]
                self.provenance[header] = "annotation"
        if pc_bounds:
            self.bounds.update(pc_bounds)
            for header in pc_bounds:
                self.provenance[header] = "inferred"
        if pc_provenance:
            self.provenance.update(pc_provenance)
        #: CFG edges the abstract interpreter proved can never be taken;
        #: the longest-path search skips them (loop back edges are never
        #: in this set — the final-sweep refinement runs on loop-exit
        #: tests with the fixpoint state, which keeps the continue edge)
        self.infeasible: Set[Tuple[int, int]] = set(infeasible or ())

    # node/edge costs ------------------------------------------------------

    def body_cost(self, block: BasicBlock) -> int:
        """Cost of every instruction but the last (that one is charged
        on the out-edge, where taken/not-taken is known)."""
        return sum(self.costs[i.cost_class] for i in block.insts[:-1])

    def exit_cost(self, block: BasicBlock) -> int:
        """Cost of the last instruction when the path *ends* here
        (ebreak, mret, or a sink)."""
        last = block.last
        return self.costs[last.cost_class] if last is not None else 0

    def edge_cost(self, block: BasicBlock, succ: int) -> int:
        last = block.last
        if last is None:
            return 0
        if last.mnemonic in BRANCH_MNEMONICS and block.end_reason == "terminal":
            target = (block.pcs[-1] + last.imm) & _MASK32
            fall = (block.pcs[-1] + 4) & _MASK32
            if target == fall:
                return self.taken  # degenerate: both edges identical
            if succ == target:
                return self.taken
            if succ == fall:
                return self.costs[last.cost_class]
        return self.costs[last.cost_class]

    def bound_for(self, header: int) -> int:
        bound = self.bounds.get(header)
        label = self.cfg.label_at(header) or f"0x{header:x}"
        if bound is None:
            bound = DEFAULT_LOOP_BOUND
            self.provenance[header] = "default"
            self.diags.append(
                Diagnostic(
                    "warning",
                    "unannotated-loop",
                    f"inner loop at {self.cfg.describe(header)} has no "
                    "inferred or annotated bound; assuming "
                    f"{bound} iterations per packet",
                    pc=header,
                    firmware=self.cfg.name,
                )
            )
        self.used_bounds[label] = bound
        self.used_provenance[label] = self.provenance.get(header, "annotation")
        return bound

    # loop collapse --------------------------------------------------------

    def immediate_children(self, loop: Loop) -> List[Loop]:
        """Outermost loops strictly nested inside ``loop``."""
        nested = [
            other
            for other in self.cfg.loops.values()
            if other.header != loop.header and other.header in loop.body
        ]
        return [
            child
            for child in nested
            if not any(
                child.header in mid.body and mid.header != child.header
                for mid in nested
            )
        ]

    def iteration_wcet(self, loop: Loop) -> Tuple[float, List[CriticalStep]]:
        """Worst-case cycles for one full iteration of ``loop``
        (header back around the costliest back edge), with nested loops
        collapsed at their bounds."""
        children = self.immediate_children(loop)
        child_of: Dict[int, Loop] = {}
        for child in children:
            for node in child.body:
                child_of[node] = child
        if loop.header in child_of:
            raise IrreducibleCfgError(
                f"loop {self.cfg.describe(loop.header)} header sits inside "
                "a nested loop body"
            )

        # collapsed node id: block pc, or child-loop header pc
        def rep(node: int) -> int:
            child = child_of.get(node)
            return child.header if child else node

        nodes: Set[int] = {rep(n) for n in loop.body}
        edges: Dict[int, List[Tuple[int, float]]] = {n: [] for n in nodes}
        back_sources = {tail for tail, _ in loop.back_edges}
        for node in loop.body:
            block = self.cfg.blocks[node]
            for succ in block.successors:
                if succ not in loop.body:
                    continue  # loop exit: charged by the caller
                if succ == loop.header and node in back_sources:
                    continue  # the back edge closes the iteration
                if (node, succ) in self.infeasible:
                    continue  # proven never-taken: prune the path
                ru, rv = rep(node), rep(succ)
                if ru == rv:
                    continue  # internal to one collapsed child
                edges[ru].append((rv, self.edge_cost(block, succ)))

        weights: Dict[int, float] = {}
        notes: Dict[int, str] = {}
        for n in nodes:
            child = child_of.get(n)
            if child is not None:
                bound = self.bound_for(child.header)
                inner, _ = self.iteration_wcet(child)
                weights[n] = bound * inner
                notes[n] = (
                    f"loop {self.cfg.describe(child.header)} x{bound}"
                )
            else:
                weights[n] = float(self.body_cost(self.cfg.blocks[n]))
                notes[n] = self.cfg.describe(n)

        best = -1.0
        best_path: List[CriticalStep] = []
        for tail, header in loop.back_edges:
            close = self.edge_cost(self.cfg.blocks[tail], header)
            cycles, path = _longest_path(
                loop.header, rep(tail), nodes, edges, weights, notes
            )
            if cycles < 0:
                continue  # tail unreachable without re-crossing header
            total = cycles + close
            if total > best:
                best = total
                best_path = path
        if best < 0:
            raise IrreducibleCfgError(
                f"no path from header {self.cfg.describe(loop.header)} to "
                "any back edge"
            )
        return best, best_path

    # whole-region (non-loop) paths ----------------------------------------

    def region_wcet(
        self, root: int, nodes: Set[int]
    ) -> Tuple[float, List[CriticalStep]]:
        """Longest path from ``root`` to any sink within ``nodes``,
        collapsing loops fully contained in the region."""
        contained = [
            lp for lp in self.cfg.loops.values() if lp.body <= nodes
        ]
        outer = [
            lp
            for lp in contained
            if not any(
                lp.header in other.body and other.header != lp.header
                for other in contained
            )
        ]
        loop_of: Dict[int, Loop] = {}
        for lp in outer:
            for node in lp.body:
                loop_of[node] = lp

        def rep(node: int) -> int:
            lp = loop_of.get(node)
            return lp.header if lp else node

        rnodes = {rep(n) for n in nodes}
        edges: Dict[int, List[Tuple[int, float]]] = {n: [] for n in rnodes}
        weights: Dict[int, float] = {}
        notes: Dict[int, str] = {}
        sink_extra: Dict[int, float] = {}
        for n in rnodes:
            lp = loop_of.get(n)
            if lp is not None:
                bound = self.bound_for(lp.header)
                inner, _ = self.iteration_wcet(lp)
                weights[n] = bound * inner
                notes[n] = f"loop {self.cfg.describe(lp.header)} x{bound}"
            else:
                block = self.cfg.blocks[n]
                weights[n] = float(self.body_cost(block))
                notes[n] = self.cfg.describe(n)
                if not block.successors:
                    sink_extra[n] = float(self.exit_cost(block))
        for node in nodes:
            block = self.cfg.blocks[node]
            lp = loop_of.get(node)
            for succ in block.successors:
                if succ not in nodes:
                    continue
                if lp is not None and succ in lp.body:
                    continue  # internal to a collapsed loop
                if (node, succ) in self.infeasible:
                    continue  # proven never-taken: prune the path
                edges[rep(node)].append((rep(succ), self.edge_cost(block, succ)))

        best = 0.0
        best_path: List[CriticalStep] = []
        for sink in rnodes:
            if edges[sink] and sink not in sink_extra:
                continue
            cycles, path = _longest_path(
                rep(root), sink, rnodes, edges, weights, notes
            )
            if cycles < 0:
                continue
            cycles += sink_extra.get(sink, 0.0)
            if cycles > best or not best_path:
                best = cycles
                best_path = path
        if not best_path and rnodes and self.infeasible:
            # pruning disconnected every sink: retry without it (the
            # caller reruns with an empty infeasible set — looser but
            # still sound)
            raise IrreducibleCfgError(
                "infeasible-edge pruning disconnected the region"
            )
        return best, best_path


def _longest_path(
    src: int,
    dst: int,
    nodes: Set[int],
    edges: Dict[int, List[Tuple[int, float]]],
    weights: Dict[int, float],
    notes: Dict[int, str],
) -> Tuple[float, List[CriticalStep]]:
    """Longest ``src -> dst`` path in a DAG (node + edge weights).
    Returns ``(-1, [])`` when ``dst`` is unreachable; raises
    :class:`IrreducibleCfgError` on a cycle."""
    memo: Dict[int, Tuple[float, Optional[Tuple[int, float]]]] = {}
    on_stack: Set[int] = set()

    def visit(node: int) -> float:
        if node == dst:
            memo[node] = (weights[node], None)
            return weights[node]
        cached = memo.get(node)
        if cached is not None:
            return cached[0]
        if node in on_stack:
            raise IrreducibleCfgError("cycle survived loop collapse")
        on_stack.add(node)
        best = -1.0
        best_next: Optional[Tuple[int, float]] = None
        for succ, ecost in edges.get(node, ()):
            if succ not in nodes:
                continue
            sub = visit(succ)
            if sub < 0:
                continue
            total = weights[node] + ecost + sub
            if total > best:
                best = total
                best_next = (succ, ecost)
        on_stack.discard(node)
        memo[node] = (best, best_next)
        return best

    total = visit(src)
    if total < 0:
        return -1.0, []
    path: List[CriticalStep] = []
    node: Optional[int] = src
    while node is not None:
        entry = memo[node]
        path.append(CriticalStep(pc=node, where=notes[node], cycles=weights[node]))
        nxt = entry[1]
        node = nxt[0] if nxt else None
    return total, path


def analyze_wcet(
    cfg: FirmwareCfg,
    cycle_model: Optional[CycleModel] = None,
    source: Optional[str] = None,
    *,
    accel=None,
    config=None,
    bounds: Optional[Dict[int, int]] = None,
    infeasible: Optional[Set[Tuple[int, int]]] = None,
    infer: bool = True,
    absres=None,
) -> WcetReport:
    """Worst-case cycles-per-packet bound for ``cfg``.

    Loop bounds are **inferred** by default: the abstract-interpretation
    pipeline (:func:`repro.verify.absint.deep_analyze` — induction
    variables, accelerator stream depths) runs once, and any
    ``# loop-bound N`` annotation in ``source`` becomes a *cross-check*
    against the inferred value rather than a trusted input.  The same
    pass supplies statically infeasible edges, which the longest-path
    search prunes (path-sensitive refinement).

    ``accel``/``config`` parameterize the machine environment for
    inference (accelerator stream contracts, frame envelope).  Callers
    that already ran the deep pipeline pass its ``absres`` (an
    :class:`~repro.verify.absint.AbsintResult` carrying ``loop_bounds``)
    or raw ``bounds`` (header pc -> iterations) and ``infeasible``
    directly; ``infer=False`` restores the annotation-only PR-5
    behaviour.
    """
    cm = cycle_model or CycleModel.vexriscv_full()
    label_bounds = parse_loop_bounds(source) if source else {}
    extra_diags: List[Diagnostic] = []
    pc_provenance: Dict[int, str] = {}

    if bounds is None and cfg.loops and (infer or absres is not None):
        if absres is None:
            from .absint import MachineEnv, deep_analyze

            annotations = {
                cfg.program.symbols[label]: value
                for label, value in label_bounds.items()
                if label in cfg.program.symbols
            }
            env = MachineEnv(config=config, accel=accel)
            absres = deep_analyze(cfg, env, annotations=annotations)
        lb_report = absres.loop_bounds
        if lb_report is not None:
            bounds = lb_report.bound_map()
            pc_provenance = {
                h: ("annotation" if b.source == "annotation" else "inferred")
                for h, b in lb_report.bounds.items()
            }
            extra_diags.extend(lb_report.diagnostics)
            label_bounds = {}  # annotations were consumed as cross-checks
        if infeasible is None:
            infeasible = absres.infeasible_edges

    for attempt_infeasible in (set(infeasible or ()), set()):
        w = _Wcet(
            cfg,
            cm,
            label_bounds,
            pc_bounds=bounds,
            pc_provenance=pc_provenance,
            infeasible=attempt_infeasible,
        )
        report = _analyze_with(cfg, w)
        failed = any(d.code == "irreducible-cfg" for d in report.diagnostics)
        if failed and attempt_infeasible:
            extra_diags.append(
                Diagnostic(
                    "note",
                    "infeasible-pruning-disabled",
                    "infeasible-edge pruning disconnected the analysis; "
                    "recomputed without it (looser but sound)",
                    firmware=cfg.name,
                )
            )
            continue
        break

    report.diagnostics = extra_diags + report.diagnostics
    return report


def _analyze_with(cfg: FirmwareCfg, w: _Wcet) -> WcetReport:
    report = WcetReport(name=cfg.name, wcet_cycles=0.0, packet_loop=None)

    # the packet loop: outermost loop touching the interconnect window
    io_pcs = {
        acc.pc for acc in cfg.accesses if acc.region == "interconnect"
    }
    outermost = [
        lp
        for lp in cfg.loops.values()
        if not any(
            lp.header in other.body and other.header != lp.header
            for other in cfg.loops.values()
        )
    ]
    candidates = [
        lp
        for lp in outermost
        if any(
            pc in io_pcs
            for node in lp.body
            for pc in cfg.blocks[node].pcs
        )
    ]

    try:
        if candidates:
            best = -1.0
            for lp in candidates:
                cycles, path = w.iteration_wcet(lp)
                if cycles > best:
                    best = cycles
                    report.packet_loop = lp.header
                    report.critical_path = path
            report.wcet_cycles = best
            if len(candidates) > 1:
                w.diags.append(
                    Diagnostic(
                        "note",
                        "multiple-packet-loops",
                        f"{len(candidates)} outermost loops touch the "
                        "interconnect; reporting the costliest",
                        firmware=cfg.name,
                    )
                )
        else:
            # straight-line firmware (or loops never touch the
            # interconnect): bound the entry-to-halt path instead
            main_nodes = _reachable_blocks(cfg, cfg.entry)
            cycles, path = w.region_wcet(cfg.entry, main_nodes)
            report.wcet_cycles = cycles
            report.critical_path = path
            w.diags.append(
                Diagnostic(
                    "note",
                    "no-packet-loop",
                    "no loop touches the interconnect window; bounding "
                    "the entry-to-halt path as the per-packet cost",
                    firmware=cfg.name,
                )
            )
    except IrreducibleCfgError as exc:
        report.wcet_cycles = float("inf")
        w.diags.append(
            Diagnostic(
                "error",
                "irreducible-cfg",
                f"cannot bound the packet loop: {exc}",
                firmware=cfg.name,
            )
        )

    # trap handlers, separately: entry latency + longest path to mret
    for root in cfg.entries[1:]:
        label = cfg.label_at(root) or f"0x{root:x}"
        try:
            nodes = _reachable_blocks(cfg, root)
            cycles, _ = w.region_wcet(root, nodes)
            report.handlers[label] = TRAP_ENTRY_CYCLES + cycles
        except IrreducibleCfgError as exc:
            report.handlers[label] = float("inf")
            w.diags.append(
                Diagnostic(
                    "error",
                    "irreducible-cfg",
                    f"cannot bound handler '{label}': {exc}",
                    pc=root,
                    firmware=cfg.name,
                )
            )

    report.loop_bounds = dict(w.used_bounds)
    report.bound_provenance = dict(w.used_provenance)
    report.diagnostics = w.diags
    return report


def _reachable_blocks(cfg: FirmwareCfg, root: int) -> Set[int]:
    seen: Set[int] = set()
    work = [root]
    while work:
        node = work.pop()
        if node in seen or node not in cfg.blocks:
            continue
        seen.add(node)
        work.extend(cfg.blocks[node].successors)
    return seen
