"""Basic-block CFG construction and structural checks over RV32 firmware.

The analyzer decodes a loaded firmware image **once** and builds a
control-flow graph whose block boundaries are, by construction, the
same boundaries the closure-translation engine fuses superblocks at:
both sides import :func:`repro.riscv.blocks.is_block_terminal` (the
differential test in ``tests/test_verify_cfg.py`` keeps them honest).
The only difference is that a CFG block additionally ends *before* a
join point (another block's entry), so every CFG block is a prefix of
the superblock starting at the same pc.

On top of the graph the builder runs a small constant-propagation
dataflow (registers lattice: known 32-bit value / unknown) so that
absolute load/store addresses — ``li``-built MMIO window pointers, the
dominant idiom in the bundled firmwares — can be classified by memory
region.  That classification powers the structural checks:

* static self-modifying-code detection (stores into the text segment;
  the runtime twin is ``RiscvCpu._store_watch``),
* MMIO footprint extraction (which interconnect / accelerator window
  offsets each firmware can touch),
* worst-case stack depth (``sp`` deltas along paths),
* unreachable-block reporting.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core import funcsim
from ..riscv.assembler import Program, assemble
from ..riscv.blocks import (
    BRANCH_MNEMONICS,
    MAX_BLOCK,
    image_decoder,
    is_block_terminal,
    static_successors,
)
from ..riscv.isa import LOAD_BYTES as _LOAD_BYTES
from ..riscv.isa import STORE_BYTES as _STORE_BYTES
from ..riscv.isa import Instruction

_MASK32 = 0xFFFFFFFF

#: Register index of the stack pointer in the RV32 ABI.
_SP = 2

#: Memory regions of the functional RPU, in ascending base order.
#: The names match ``repro.core.funcsim``'s constants.
REGIONS: Tuple[Tuple[str, int], ...] = (
    ("imem", funcsim.IMEM_BASE),
    ("dmem", funcsim.DMEM_BASE),
    ("pmem", funcsim.PMEM_BASE),
    ("accmem", funcsim.ACCMEM_BASE),
    ("interconnect", funcsim.IO_BASE),
    ("accel", funcsim.IO_EXT_BASE),
)


def region_of(addr: int) -> Tuple[str, int]:
    """``(region name, offset within region)`` for an absolute address."""
    name, base = REGIONS[0]
    for candidate, cbase in REGIONS:
        if addr < cbase:
            break
        name, base = candidate, cbase
    return name, addr - base


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, pc-anchored when it concerns a location."""

    level: str  # "error" | "warning" | "note"
    code: str  # stable kebab-case identifier, e.g. "smc-store"
    message: str
    pc: Optional[int] = None
    firmware: str = ""

    def format(self) -> str:
        where = f" @0x{self.pc:x}" if self.pc is not None else ""
        fw = f"{self.firmware}: " if self.firmware else ""
        return f"{self.level}[{self.code}]{where}: {fw}{self.message}"

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "code": self.code,
            "message": self.message,
            "pc": self.pc,
            "firmware": self.firmware,
        }


@dataclass
class MemAccess:
    """A load or store site, with its statically-resolved address when
    the dataflow proved one."""

    pc: int
    kind: str  # "load" | "store"
    nbytes: int
    addr: Optional[int]  # absolute address, or None when unproven
    region: Optional[str] = None
    offset: Optional[int] = None  # offset within the region

    def __post_init__(self) -> None:
        if self.addr is not None and self.region is None:
            self.region, self.offset = region_of(self.addr)


@dataclass
class BasicBlock:
    start: int
    pcs: List[int]
    insts: List[Instruction]
    successors: Tuple[int, ...] = ()
    #: why the block ended: "terminal" (control-flow instruction),
    #: "join" (next pc is another block's entry), "fault" (undecodable
    #: word), or "cap" (MAX_BLOCK limit).
    end_reason: str = "terminal"

    @property
    def last(self) -> Optional[Instruction]:
        return self.insts[-1] if self.insts else None

    @property
    def end(self) -> int:
        """pc just past the last instruction."""
        return (self.pcs[-1] + 4) & _MASK32 if self.pcs else self.start


@dataclass
class Loop:
    """A natural loop: header plus the union of back-edge bodies."""

    header: int
    body: Set[int]  # block start pcs, header included
    back_edges: List[Tuple[int, int]]
    bound: Optional[int] = None  # iterations, from "# loop-bound N"
    annotated: bool = False


@dataclass
class FirmwareCfg:
    """The decoded firmware, its CFG, and every structural finding."""

    name: str
    program: Program
    entry: int
    entries: Tuple[int, ...]
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    loops: Dict[int, Loop] = field(default_factory=dict)
    accesses: List[MemAccess] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    max_stack_bytes: int = 0

    # -- derived views ------------------------------------------------------

    def label_at(self, pc: int) -> Optional[str]:
        for label, addr in self.program.symbols.items():
            if addr == pc:
                return label
        return None

    def describe(self, pc: int) -> str:
        label = self.label_at(pc)
        return f"{label}(0x{pc:x})" if label else f"0x{pc:x}"

    def mmio_footprint(self) -> Dict[str, Dict[int, Set[str]]]:
        """``{"interconnect"|"accel": {offset: {"load"/"store"}}}`` over
        all proven MMIO accesses."""
        out: Dict[str, Dict[int, Set[str]]] = {"interconnect": {}, "accel": {}}
        for acc in self.accesses:
            if acc.region in out and acc.offset is not None:
                out[acc.region].setdefault(acc.offset, set()).add(acc.kind)
        return out

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.level == "error"]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "entry": self.entry,
            "blocks": {
                f"0x{b.start:x}": {
                    "pcs": [f"0x{pc:x}" for pc in b.pcs],
                    "mnemonics": [i.mnemonic for i in b.insts],
                    "successors": sorted(f"0x{s:x}" for s in b.successors),
                    "end_reason": b.end_reason,
                }
                for b in sorted(self.blocks.values(), key=lambda b: b.start)
            },
            "loops": {
                f"0x{lp.header:x}": {
                    "body": sorted(f"0x{s:x}" for s in lp.body),
                    "bound": lp.bound,
                    "annotated": lp.annotated,
                }
                for lp in sorted(self.loops.values(), key=lambda lp: lp.header)
            },
            "mmio": {
                region: {hex(off): sorted(kinds) for off, kinds in sorted(offs.items())}
                for region, offs in self.mmio_footprint().items()
            },
            "max_stack_bytes": self.max_stack_bytes,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def fingerprint(self) -> str:
        """Deterministic digest of the whole analysis (stability tests)."""
        return json.dumps(self.to_dict(), sort_keys=True)


# -- successor rules ----------------------------------------------------------

# Edge rules live in repro.riscv.blocks next to the block-boundary
# rules; this alias keeps the historical local name for in-module use.
_successor_pcs = static_successors


# -- builder ------------------------------------------------------------------


def build_cfg(
    program: Program,
    name: str = "",
    entries: Optional[List[int]] = None,
) -> FirmwareCfg:
    """Decode ``program`` once and build its reachable CFG.

    ``entries`` defaults to the ``main`` symbol (or the image base) plus
    every ``*_handler`` symbol — trap handlers are roots the fall-through
    walk would otherwise never reach.
    """
    symbols = program.symbols
    base = program.base
    decode_at = image_decoder(program.image, base)

    if entries is None:
        entry = symbols.get("main", base)
        entries = [entry] + sorted(
            addr
            for label, addr in symbols.items()
            if label.endswith("_handler") and addr != entry
        )
    entry = entries[0]

    cfg = FirmwareCfg(name=name, program=program, entry=entry, entries=tuple(entries))
    diags = cfg.diagnostics

    # pass 1: reachable instructions + leaders
    insts: Dict[int, Instruction] = {}
    leaders: Set[int] = set(entries)
    worklist: List[int] = list(entries)
    seen: Set[int] = set()
    while worklist:
        pc = worklist.pop()
        if pc in seen:
            continue
        seen.add(pc)
        inst = decode_at(pc)
        if inst is None:
            diags.append(
                Diagnostic(
                    "error",
                    "undecodable-word",
                    "reachable pc does not decode (data executed as code, "
                    "or a jump outside the image)",
                    pc=pc,
                    firmware=name,
                )
            )
            continue
        insts[pc] = inst
        if is_block_terminal(inst.mnemonic):
            succs = _successor_pcs(inst, pc)
            leaders.update(succs)
            worklist.extend(succs)
            if inst.mnemonic == "jalr":
                diags.append(
                    Diagnostic(
                        "note",
                        "indirect-jump",
                        "jalr target is not statically known; successors "
                        "under-approximated",
                        pc=pc,
                        firmware=name,
                    )
                )
        else:
            worklist.append((pc + 4) & _MASK32)
    # jump/branch targets into label'd code count as leaders even when
    # discovered late; also treat every symbol that is reachable as a
    # potential join point so blocks align with source labels.
    for label, addr in symbols.items():
        if addr in insts:
            leaders.add(addr)

    # pass 2: blocks (each a prefix of the superblock at the same entry)
    for leader in sorted(pc for pc in leaders if pc in insts):
        pcs: List[int] = []
        block_insts: List[Instruction] = []
        pc = leader
        end_reason = "cap"
        for _ in range(MAX_BLOCK):
            inst = insts.get(pc)
            if inst is None:
                end_reason = "fault"
                break
            pcs.append(pc)
            block_insts.append(inst)
            if is_block_terminal(inst.mnemonic):
                end_reason = "terminal"
                break
            nxt = (pc + 4) & _MASK32
            if nxt in leaders:
                end_reason = "join"
                pc = nxt
                break
            pc = nxt
        block = BasicBlock(leader, pcs, block_insts, end_reason=end_reason)
        if end_reason == "terminal":
            block.successors = tuple(
                s for s in _successor_pcs(block.last, block.pcs[-1]) if s in insts
            )
        elif end_reason == "join":
            block.successors = (pc,)
        elif end_reason == "cap":
            block.successors = ((block.end) & _MASK32,) if block.end in insts else ()
        cfg.blocks[leader] = block

    _find_loops(cfg)
    _report_unreachable(cfg, decode_at)
    _dataflow(cfg)
    return cfg


def analyze_source(source: str, name: str = "", base: int = 0) -> FirmwareCfg:
    """Assemble ``source`` (at the RPU's imem base) and build its CFG.

    ``# loop-bound N`` annotations in the source are attached to their
    loops (``Loop.bound`` / ``Loop.annotated``) so downstream passes
    can cross-check them against inferred bounds."""
    cfg = build_cfg(assemble(source, base=base), name=name)
    for label, bound in parse_loop_bounds(source).items():
        header = cfg.program.symbols.get(label)
        if header is not None and header in cfg.loops:
            cfg.loops[header].bound = bound
            cfg.loops[header].annotated = True
    return cfg


# -- loop-bound annotations ---------------------------------------------------

_BOUND_RE = re.compile(r"#\s*loop-bound\s+(\d+)")
_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][\w.$]*)\s*:")


def parse_loop_bounds(source: str) -> Dict[str, int]:
    """``{label: bound}`` from ``# loop-bound N`` annotations.

    An annotation applies to the loop whose header label it shares a
    line with, or — when written on its own line — to the next label::

        drain:                  # loop-bound 8
        # loop-bound 8
        drain:
    """
    bounds: Dict[str, int] = {}
    pending: Optional[int] = None
    for line in source.splitlines():
        bound = _BOUND_RE.search(line)
        label = _LABEL_RE.match(line)
        if label and bound:
            bounds[label.group(1)] = int(bound.group(1))
            pending = None
        elif label and pending is not None:
            bounds[label.group(1)] = pending
            pending = None
        elif bound:
            pending = int(bound.group(1))
        elif line.strip():
            pending = None
    return bounds


# -- loops --------------------------------------------------------------------


def _find_loops(cfg: FirmwareCfg) -> None:
    """DFS back-edge detection + natural-loop bodies (blocks are the
    nodes).  Multiple back edges to one header merge into one loop."""
    color: Dict[int, int] = {}  # 0 absent/white, 1 grey, 2 black
    back_edges: List[Tuple[int, int]] = []

    for root in cfg.entries:
        if root not in cfg.blocks or color.get(root):
            continue
        # iterative DFS with explicit grey/black colouring
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = 1
        while stack:
            node, idx = stack[-1]
            succs = cfg.blocks[node].successors
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                succ = succs[idx]
                if succ not in cfg.blocks:
                    continue
                c = color.get(succ, 0)
                if c == 1:
                    back_edges.append((node, succ))
                elif c == 0:
                    color[succ] = 1
                    stack.append((succ, 0))
            else:
                color[node] = 2
                stack.pop()

    preds: Dict[int, List[int]] = {}
    for block in cfg.blocks.values():
        for succ in block.successors:
            preds.setdefault(succ, []).append(block.start)

    for tail, header in back_edges:
        loop = cfg.loops.get(header)
        if loop is None:
            loop = Loop(header=header, body={header}, back_edges=[])
            cfg.loops[header] = loop
        loop.back_edges.append((tail, header))
        # natural loop body: nodes that reach the tail without passing
        # through the header
        work = [tail]
        while work:
            node = work.pop()
            if node in loop.body:
                continue
            loop.body.add(node)
            work.extend(p for p in preds.get(node, ()) if p not in loop.body)


def _report_unreachable(cfg: FirmwareCfg, decode_at) -> None:
    reached = {pc for block in cfg.blocks.values() for pc in block.pcs}
    base = cfg.program.base
    dead_labels = []
    orphan_words = 0
    for off in range(0, len(cfg.program.image), 4):
        pc = base + off
        if pc in reached or decode_at(pc) is None:
            continue
        orphan_words += 1
        label = cfg.label_at(pc)
        if label:
            dead_labels.append((label, pc))
    for label, pc in dead_labels:
        cfg.diagnostics.append(
            Diagnostic(
                "warning",
                "unreachable-block",
                f"label '{label}' decodes but is unreachable from any entry",
                pc=pc,
                firmware=cfg.name,
            )
        )
    if orphan_words and not dead_labels:
        cfg.diagnostics.append(
            Diagnostic(
                "note",
                "unreachable-words",
                f"{orphan_words} decodable word(s) not reached from any "
                "entry (trailing data or padding)",
                firmware=cfg.name,
            )
        )


# -- constant-propagation dataflow --------------------------------------------

RegState = List[Optional[int]]

# Load/store widths come from repro.riscv.isa (imported above) so the
# dataflow, the abstract interpreter, and the decoder agree on them.

_ALU_IMM: Dict[str, Callable[[int, int], int]] = {
    "addi": lambda a, i: (a + i) & _MASK32,
    "andi": lambda a, i: a & i & _MASK32,
    "ori": lambda a, i: (a | i) & _MASK32,
    "xori": lambda a, i: (a ^ i) & _MASK32,
    "slli": lambda a, i: (a << (i & 0x1F)) & _MASK32,
    "srli": lambda a, i: (a & _MASK32) >> (i & 0x1F),
    "slti": lambda a, i: 1 if _sgn(a) < i else 0,
    "sltiu": lambda a, i: 1 if (a & _MASK32) < (i & _MASK32) else 0,
}

_ALU_RR: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: (a + b) & _MASK32,
    "sub": lambda a, b: (a - b) & _MASK32,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: (a << (b & 0x1F)) & _MASK32,
    "srl": lambda a, b: a >> (b & 0x1F),
    "slt": lambda a, b: 1 if _sgn(a) < _sgn(b) else 0,
    "sltu": lambda a, b: 1 if a < b else 0,
    "mul": lambda a, b: (a * b) & _MASK32,
}


def _sgn(v: int) -> int:
    return v - 0x1_0000_0000 if v & 0x8000_0000 else v


def _transfer(inst: Instruction, pc: int, regs: RegState) -> Optional[Tuple[str, int, Optional[int]]]:
    """Apply ``inst`` to the register lattice in place; return a memory
    access descriptor ``(kind, nbytes, addr)`` when it loads or stores."""
    m = inst.mnemonic
    rd, rs1, rs2, imm = inst.rd, inst.rs1, inst.rs2, inst.imm
    access = None

    if m in _LOAD_BYTES:
        a = regs[rs1]
        addr = (a + imm) & _MASK32 if a is not None else None
        access = ("load", _LOAD_BYTES[m], addr)
        if rd:
            regs[rd] = None
    elif m in _STORE_BYTES:
        a = regs[rs1]
        addr = (a + imm) & _MASK32 if a is not None else None
        access = ("store", _STORE_BYTES[m], addr)
    elif m == "lui":
        if rd:
            regs[rd] = imm & _MASK32
    elif m == "auipc":
        if rd:
            regs[rd] = (pc + imm) & _MASK32
    elif m in _ALU_IMM:
        a = regs[rs1]
        if rd:
            regs[rd] = _ALU_IMM[m](a, imm) if a is not None else None
    elif m in _ALU_RR:
        a, b = regs[rs1], regs[rs2]
        if rd:
            regs[rd] = _ALU_RR[m](a, b) if a is not None and b is not None else None
    elif m in ("jal", "jalr"):
        if rd:
            regs[rd] = (pc + 4) & _MASK32
    elif m in ("fence", "wfi", "mret", "ecall", "ebreak") or m in BRANCH_MNEMONICS:
        pass
    else:
        # csr reads, M-extension tail, anything else: clobber rd
        if rd:
            regs[rd] = None
    regs[0] = 0
    return access


def _join(a: RegState, b: RegState) -> Tuple[RegState, bool]:
    changed = False
    out = list(a)
    for i in range(32):
        if out[i] is not None and out[i] != b[i]:
            out[i] = None
            changed = True
    return out, changed


def _dataflow(cfg: FirmwareCfg) -> None:
    """Worklist constant propagation; classifies every load/store and
    runs the structural checks that need addresses."""
    blocks = cfg.blocks
    # entry state: the core resets its register file to zero, so the
    # primary entry starts fully known; handler entries inherit nothing
    in_states: Dict[int, RegState] = {}
    for i, root in enumerate(cfg.entries):
        if root in blocks:
            in_states[root] = [0] * 32 if i == 0 else [None] * 32
            in_states[root][0] = 0

    worklist = [root for root in cfg.entries if root in blocks]
    final_in: Dict[int, RegState] = {}
    iterations = 0
    cap = max(64, 16 * len(blocks))
    while worklist and iterations < cap * 4:
        iterations += 1
        start = worklist.pop(0)
        state = list(in_states[start])
        final_in[start] = list(state)
        block = blocks[start]
        for pc, inst in zip(block.pcs, block.insts):
            _transfer(inst, pc, state)
        for succ in block.successors:
            if succ not in blocks:
                continue
            prev = in_states.get(succ)
            if prev is None:
                in_states[succ] = list(state)
                worklist.append(succ)
            else:
                joined, changed = _join(prev, state)
                if changed:
                    in_states[succ] = joined
                    if succ not in worklist:
                        worklist.append(succ)

    # final pass: with the fixpoint in-states, record accesses + checks
    text_lo = cfg.program.base
    text_hi = text_lo + len(cfg.program.image)
    sp_tracked = True
    min_sp_delta = 0  # most negative sp excursion seen (bytes)

    for start in sorted(final_in):
        state = list(final_in[start])
        block = blocks[start]
        sp_in = state[_SP]
        for pc, inst in zip(block.pcs, block.insts):
            access = _transfer(inst, pc, state)
            if access is None:
                continue
            kind, nbytes, addr = access
            mem = MemAccess(pc=pc, kind=kind, nbytes=nbytes, addr=addr)
            cfg.accesses.append(mem)
            if addr is None:
                continue
            if kind == "store" and addr < text_hi and addr + nbytes > text_lo:
                cfg.diagnostics.append(
                    Diagnostic(
                        "error",
                        "smc-store",
                        f"store into the text segment (0x{addr:x}); the "
                        "runtime _store_watch would invalidate translated "
                        "code here",
                        pc=pc,
                        firmware=cfg.name,
                    )
                )
        # stack tracking: known sp in and out -> depth excursion
        sp_out = state[_SP]
        if sp_in is not None and sp_out is not None:
            delta = _sgn((sp_out - sp_in) & _MASK32)
            if delta < 0:
                min_sp_delta = min(min_sp_delta, delta)
                header = next(
                    (lp for lp in cfg.loops.values() if start in lp.body), None
                )
                if header is not None:
                    cfg.diagnostics.append(
                        Diagnostic(
                            "warning",
                            "stack-grows-in-loop",
                            f"block {cfg.describe(start)} lowers sp by "
                            f"{-delta} bytes inside a loop; worst-case "
                            "stack depth is unbounded",
                            pc=start,
                            firmware=cfg.name,
                        )
                    )
        elif sp_in is None and any(i.rd == _SP for i in block.insts):
            sp_tracked = False

    cfg.max_stack_bytes = -min_sp_delta
    if not sp_tracked:
        cfg.diagnostics.append(
            Diagnostic(
                "note",
                "stack-unproven",
                "sp written from a statically-unknown value; stack depth "
                "bound is best-effort",
                firmware=cfg.name,
            )
        )

    # unproven MMIO-looking accesses: flag stores through unknown
    # pointers only when the firmware never proves *any* address —
    # computed addresses into dmem tables (flow counter) are normal.
    unproven = sum(1 for a in cfg.accesses if a.addr is None)
    if unproven:
        cfg.diagnostics.append(
            Diagnostic(
                "note",
                "unproven-addresses",
                f"{unproven} access(es) through statically-unknown "
                "pointers (packet data / table indexing); excluded from "
                "the MMIO footprint",
                firmware=cfg.name,
            )
        )
