"""Bundled-firmware registry + the full verification pipeline.

One entry per assembly firmware the repo ships: its source, the
accelerator it drives (if any), the behavioural ``FirmwareModel`` twin
the event simulator runs, and the **documented operating point** the CI
gate re-verifies on every build (``make verify-fw``).  The operating
points mirror the paper's claims — e.g. the firewall holding 200 Gbps
from 256 B packets up on 16 RPUs (§7.2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..riscv.cpu import CycleModel
from ..sim.clock import ROSEBUD_CLOCK
from .absint import IO_REGISTER_SPECS, MachineEnv, deep_analyze
from .budget import BudgetVerdict, budget_verdict
from .cfg import Diagnostic, FirmwareCfg, analyze_source
from .memsafe import MemSafetyReport, check_memory_safety
from .replaylint import ReplayLintReport, lint_firmware_class
from .wcet import WcetReport, analyze_wcet

#: Offsets of the interconnect window registers, derived from the
#: abstract interpreter's register specs so the footprint check and the
#: value-range semantics can never disagree on the map (which is also
#: the one documented in ``repro/firmware/asm_sources.py``).
INTERCONNECT_REGISTERS = {spec.offset: spec.name for spec in IO_REGISTER_SPECS}


@dataclass(frozen=True)
class OperatingPoint:
    """The (rpus, size, rate) tuple a firmware is documented to hold."""

    n_rpus: int
    packet_size: int
    gbps: float


@dataclass(frozen=True)
class BundledFirmware:
    name: str
    asm: str
    point: OperatingPoint
    accel_factory: Optional[Callable[[], object]] = None
    behavioural: Optional[str] = None  # class name in repro.firmware
    note: str = ""


def _firewall_matcher():
    from ..accel import IpBlacklistMatcher, generate_blacklist, parse_blacklist

    return IpBlacklistMatcher(parse_blacklist(generate_blacklist(64)))


def _pigasus_matcher():
    from ..accel.pigasus import PigasusStringMatcher, generate_ruleset, parse_rules

    matcher = PigasusStringMatcher()
    matcher.load_rules(parse_rules(generate_ruleset(16)))
    return matcher


def bundled_firmwares() -> List[BundledFirmware]:
    """The registry, built lazily (assembly sources import instantly,
    accelerators only when verified)."""
    from ..firmware.asm_sources import (
        FIREWALL_ASM,
        FLOW_COUNTER_ASM,
        FORWARDER_ASM,
        FORWARDER_IRQ_ASM,
        PIGASUS_ASM,
        PKT_GEN_ASM,
    )

    return [
        BundledFirmware(
            "forwarder", FORWARDER_ASM, OperatingPoint(16, 512, 200.0),
            behavioural="ForwarderFirmware",
            note="basic_fw; paper §6.1 holds 200G from 512B up",
        ),
        BundledFirmware(
            "firewall", FIREWALL_ASM, OperatingPoint(16, 256, 200.0),
            accel_factory=_firewall_matcher,
            behavioural="FirewallFirmware",
            note="paper §7.2: line rate for >=256B packets",
        ),
        BundledFirmware(
            "forwarder_irq", FORWARDER_IRQ_ASM, OperatingPoint(16, 512, 200.0),
            behavioural="ForwarderFirmware",
            note="basic_fw + poke-interrupt checkpoint handler (§3.4)",
        ),
        BundledFirmware(
            "flow_counter", FLOW_COUNTER_ASM, OperatingPoint(16, 256, 200.0),
            note="per-flow counters in dmem (§3.4 state story)",
        ),
        BundledFirmware(
            "pkt_gen", PKT_GEN_ASM, OperatingPoint(1, 64, 10.0),
            note="tester pkt_gen; single RPU, minimum-size frames",
        ),
        BundledFirmware(
            "pigasus", PIGASUS_ASM, OperatingPoint(8, 1500, 50.0),
            accel_factory=_pigasus_matcher,
            behavioural="PigasusHwReorderFirmware",
            note="IPS orchestration; drain loop bound inferred from the "
            "matcher's declared FIFO depth",
        ),
    ]


def bundled_firmware_names() -> List[str]:
    return [fw.name for fw in bundled_firmwares()]


@dataclass
class FirmwareVerifyReport:
    """Everything ``repro verify`` knows about one firmware."""

    name: str
    point: OperatingPoint
    cfg: FirmwareCfg
    wcet: WcetReport
    verdict: BudgetVerdict
    safety: Optional[MemSafetyReport] = None
    lint: Optional[ReplayLintReport] = None
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.verdict.passed and not any(
            d.level == "error" for d in self.all_diagnostics()
        )

    def all_diagnostics(self) -> List[Diagnostic]:
        out = self.cfg.diagnostics + self.wcet.diagnostics + self.diagnostics
        if self.safety is not None:
            out = out + self.safety.diagnostics
        return out

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "point": {
                "n_rpus": self.point.n_rpus,
                "packet_size": self.point.packet_size,
                "gbps": self.point.gbps,
            },
            "passed": self.passed,
            "verdict": self.verdict.to_dict(),
            "wcet": self.wcet.to_dict(),
            "safety": self.safety.to_dict() if self.safety else None,
            "mmio": self.cfg.to_dict()["mmio"],
            "max_stack_bytes": self.cfg.max_stack_bytes,
            "lint": self.lint.to_dict() if self.lint else None,
            "diagnostics": [d.to_dict() for d in self.all_diagnostics()],
        }


def _accel_worst_cycles(accel, packet_size: int) -> float:
    """Worst-case accelerator occupancy per packet at ``packet_size``."""
    if accel is None:
        return 0.0
    scan = getattr(accel, "scan_cycles", None)
    if callable(scan):
        # payload-proportional (Pigasus): eth+ip+tcp headers are 54 B
        return float(scan(max(0, packet_size - 54)))
    lookup = getattr(accel, "lookup_cycles", None)
    if isinstance(lookup, (int, float)):
        return float(lookup)
    return 0.0


def _check_mmio(
    cfg: FirmwareCfg, accel, name: str, diags: List[Diagnostic]
) -> None:
    """Validate the extracted MMIO footprint against the interconnect
    map and the configured accelerator's register set."""
    footprint = cfg.mmio_footprint()
    for offset, kinds in sorted(footprint["interconnect"].items()):
        if offset not in INTERCONNECT_REGISTERS:
            diags.append(
                Diagnostic(
                    "error",
                    "unknown-interconnect-register",
                    f"access to interconnect offset 0x{offset:x} which no "
                    "documented register occupies",
                    firmware=name,
                )
            )
    accel_offsets = footprint["accel"]
    if accel_offsets and accel is None:
        diags.append(
            Diagnostic(
                "error",
                "no-accelerator",
                f"firmware touches the accelerator window at offsets "
                f"{sorted(hex(o) for o in accel_offsets)} but no "
                "accelerator is configured for it",
                firmware=name,
            )
        )
        return
    for offset, kinds in sorted(accel_offsets.items()):
        entry = accel._regs.get(offset) if accel is not None else None
        if entry is None:
            diags.append(
                Diagnostic(
                    "error",
                    "unmapped-accel-register",
                    f"access to accelerator offset 0x{offset:x} which "
                    f"'{getattr(accel, 'name', type(accel).__name__)}' "
                    "does not define",
                    firmware=name,
                )
            )
            continue
        read, write, _nbytes = entry
        if "load" in kinds and read is None:
            diags.append(
                Diagnostic(
                    "error",
                    "accel-register-not-readable",
                    f"load from write-only accelerator register 0x{offset:x}",
                    firmware=name,
                )
            )
        if "store" in kinds and write is None:
            diags.append(
                Diagnostic(
                    "error",
                    "accel-register-not-writable",
                    f"store to read-only accelerator register 0x{offset:x}",
                    firmware=name,
                )
            )


def _check_floorplan(n_rpus: int, name: str, diags: List[Diagnostic]) -> None:
    from ..hw import FpgaDevice, PlacementError

    try:
        FpgaDevice(n_rpus).check_fits()
    except PlacementError as exc:
        diags.append(
            Diagnostic(
                "error",
                "floorplan",
                f"{n_rpus} RPUs do not place on the device: {exc}",
                firmware=name,
            )
        )
    except ValueError as exc:
        diags.append(
            Diagnostic(
                "error", "floorplan", f"invalid RPU count {n_rpus}: {exc}",
                firmware=name,
            )
        )


def verify_firmware(
    name: str,
    n_rpus: Optional[int] = None,
    packet_size: Optional[int] = None,
    gbps: Optional[float] = None,
    cycle_model: Optional[CycleModel] = None,
    clock_hz: float = ROSEBUD_CLOCK.freq_hz,
) -> FirmwareVerifyReport:
    """Run the full pipeline on one bundled firmware.

    Operating-point parameters default to the registry's documented
    point; pass any of them to ask "would it hold *this* rate?".
    """
    table = {fw.name: fw for fw in bundled_firmwares()}
    if name not in table:
        raise KeyError(
            f"unknown firmware {name!r}; bundled: {sorted(table)}"
        )
    fw = table[name]
    point = OperatingPoint(
        n_rpus if n_rpus is not None else fw.point.n_rpus,
        packet_size if packet_size is not None else fw.point.packet_size,
        gbps if gbps is not None else fw.point.gbps,
    )

    accel = fw.accel_factory() if fw.accel_factory else None
    cfg = analyze_source(fw.asm, name=name)

    # the deep pipeline runs once: value-range fixpoint, loop-bound
    # inference (annotations demoted to cross-checks), memory safety —
    # then the WCET analysis consumes its bounds and infeasible edges
    env = MachineEnv(accel=accel)
    absres = deep_analyze(cfg, env, annotations=_annotations_by_pc(cfg, fw.asm))
    wcet = analyze_wcet(cfg, cycle_model=cycle_model, source=fw.asm, absres=absres)
    safety = check_memory_safety(cfg, absres, env)

    diags: List[Diagnostic] = []
    _check_mmio(cfg, accel, name, diags)
    _check_floorplan(point.n_rpus, name, diags)

    verdict = budget_verdict(
        firmware=name,
        wcet_cycles=wcet.wcet_cycles,
        accel_cycles=_accel_worst_cycles(accel, point.packet_size),
        n_rpus=point.n_rpus,
        packet_size=point.packet_size,
        target_gbps=point.gbps,
        clock_hz=clock_hz,
        memory_safe=safety.passed,
    )

    lint = None
    if fw.behavioural:
        import repro.firmware as firmware_mod

        cls = getattr(firmware_mod, fw.behavioural, None)
        if cls is not None:
            lint = lint_firmware_class(cls)

    return FirmwareVerifyReport(
        name=name, point=point, cfg=cfg, wcet=wcet, verdict=verdict,
        safety=safety, lint=lint, diagnostics=diags,
    )


def _annotations_by_pc(cfg: FirmwareCfg, source: str) -> dict:
    """``# loop-bound`` annotations keyed by header pc (cross-checks)."""
    from .wcet import parse_loop_bounds

    return {
        cfg.program.symbols[label]: value
        for label, value in parse_loop_bounds(source).items()
        if label in cfg.program.symbols
    }


def verify_all(
    cycle_model: Optional[CycleModel] = None,
) -> List[FirmwareVerifyReport]:
    """Verify every bundled firmware at its documented operating point
    (the CI gate's contract: all must PASS)."""
    return [
        verify_firmware(fw.name, cycle_model=cycle_model)
        for fw in bundled_firmwares()
    ]


def reports_to_json(reports: List[FirmwareVerifyReport]) -> str:
    """The documented ``repro verify --json`` schema (see
    ``docs/STATIC_ANALYSIS.md``)."""
    from ..schema import stamp

    return json.dumps(
        stamp(
            {
                "passed": all(r.passed for r in reports),
                "reports": [r.to_dict() for r in reports],
            },
            "repro-verify",
        ),
        indent=2,
        sort_keys=True,
    )
