"""The Snort-on-Xeon baseline (§7.1.3).

The paper's software comparison point runs Snort with Hyperscan and
AF_PACKET on a 32-core Xeon 6130, configured to perform *only* the same
fast-pattern matching as the Pigasus accelerators.  Its packet rate
plateaus between 4.7 and 5.6 MPPS regardless of packet size — pattern
matching on the CPU is per-packet-dominated, unlike the FPGA's
byte-parallel engines.

:class:`SnortBaseline` does the matching functionally (same
Aho–Corasick automaton as the accelerator, so verdicts agree exactly)
and reports throughput from a calibrated per-packet CPU cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..accel.pigasus.ruleset import Rule
from ..accel.pigasus.string_match import PigasusStringMatcher
from ..packet.packet import Packet
from ..sim.clock import line_rate_pps

#: Measured plateau of the paper's Snort runs (MPPS).
SNORT_MPPS_AT_64B = 5.6
SNORT_MPPS_AT_2048B = 4.7

#: The ramdisk experiment: removing AF_PACKET lifted 2048 B throughput
#: from 60 to 70 Gbps (~17 %), showing the kernel path is not the
#: primary bottleneck.
RAMDISK_SPEEDUP = 70.0 / 60.0


@dataclass
class SnortResult:
    """Aggregate outcome of running the baseline over a workload."""

    packets: int
    alerts: int
    matched_sids: List[int]
    mpps: float
    gbps: float


class SnortBaseline:
    """Software IDS with Hyperscan-style multi-pattern matching."""

    name = "snort+hyperscan"

    def __init__(self, rules: Sequence[Rule], ramdisk: bool = False) -> None:
        self.rules = list(rules)
        self.matcher = PigasusStringMatcher()
        self.matcher.load_rules(self.rules)
        self.ramdisk = ramdisk

    # -- performance model -------------------------------------------------------

    def peak_mpps(self, packet_size: int) -> float:
        """Linear interpolation of the measured 4.7-5.6 MPPS plateau."""
        size = min(max(packet_size, 64), 2048)
        frac = (size - 64) / (2048 - 64)
        mpps = SNORT_MPPS_AT_64B + frac * (SNORT_MPPS_AT_2048B - SNORT_MPPS_AT_64B)
        if self.ramdisk:
            mpps *= RAMDISK_SPEEDUP
        return mpps

    def throughput_gbps(self, packet_size: int, offered_gbps: float = 200.0) -> float:
        """Achievable rate for a packet size: CPU plateau vs line rate."""
        line_pps = line_rate_pps(offered_gbps, packet_size)
        pps = min(self.peak_mpps(packet_size) * 1e6, line_pps)
        return pps * packet_size * 8 / 1e9

    def throughput_mpps(self, packet_size: int, offered_gbps: float = 200.0) -> float:
        return self.throughput_gbps(packet_size, offered_gbps) * 1e9 / (packet_size * 8) / 1e6

    # -- functional matching ----------------------------------------------------------

    def inspect(self, packet: Packet) -> List[int]:
        """Fast-pattern + port-group match, identical to the accelerator."""
        parsed = packet.parsed
        if parsed.tcp is not None:
            return self.matcher.scan(
                packet.payload, "tcp", parsed.tcp.src_port, parsed.tcp.dst_port
            )
        if parsed.udp is not None:
            return self.matcher.scan(
                packet.payload, "udp", parsed.udp.src_port, parsed.udp.dst_port
            )
        return []

    def run(self, packets: Iterable[Packet], packet_size: int = 1024) -> SnortResult:
        """Inspect a workload and report alerts + modelled throughput."""
        count = 0
        alerts = 0
        sids: List[int] = []
        for packet in packets:
            count += 1
            matched = self.inspect(packet)
            if matched:
                alerts += 1
                sids.extend(matched)
        mpps = self.peak_mpps(packet_size)
        return SnortResult(
            packets=count,
            alerts=alerts,
            matched_sids=sids,
            mpps=mpps,
            gbps=mpps * 1e6 * packet_size * 8 / 1e9,
        )
