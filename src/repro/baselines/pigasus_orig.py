"""The original (pre-port) Pigasus reference point (§7.1, [38]).

Pigasus on its Stratix 10 MX is a fixed-function 100 Gbps pipeline:
32 string-matching engines consuming 32 B/cycle behind a hardware
reassembler, with no runtime ruleset updates (a new FPGA image is the
only way to change rules).  This model provides the 100 Gbps comparison
line for Figure 8 and the feature deltas the case study calls out.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.clock import line_rate_pps

#: Original design constants from the Pigasus paper as cited.
ORIG_ENGINES = 32
ORIG_BYTES_PER_CYCLE = 32
ORIG_CLOCK_HZ = 250e6
ORIG_LINE_GBPS = 100.0


@dataclass
class PigasusOriginal:
    """Throughput/feature model of the unported Pigasus."""

    line_gbps: float = ORIG_LINE_GBPS

    #: runtime-updateable ruleset? Only via full FPGA image reload.
    supports_runtime_rule_update: bool = False
    #: partial reconfiguration of the matcher at runtime?
    supports_partial_reconfiguration: bool = False

    def matcher_capacity_gbps(self) -> float:
        """32 engines x 1 B/cycle at 250 MHz = 64 Gbps of payload per
        pipeline stage group; the full-FPGA pipeline replicates to
        sustain the 100 Gbps line."""
        return ORIG_ENGINES * ORIG_BYTES_PER_CYCLE * ORIG_CLOCK_HZ * 8 / 1e9 / 4

    def throughput_gbps(self, packet_size: int) -> float:
        """Line-rate at 100 Gbps for all packet sizes (their result)."""
        pps = line_rate_pps(self.line_gbps, packet_size)
        return pps * packet_size * 8 / 1e9

    def throughput_mpps(self, packet_size: int) -> float:
        return self.throughput_gbps(packet_size) * 1e9 / (packet_size * 8) / 1e6
