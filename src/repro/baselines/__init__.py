"""Comparison baselines: Snort+Hyperscan on CPU, original Pigasus,
the mechanistic CPU cost model, and host-side full rule verification."""

from .cpu_model import CpuIdsModel, XEON_CORES, XEON_HZ
from .full_match import HostFullMatcher, Verdict
from .pigasus_orig import PigasusOriginal
from .snort import RAMDISK_SPEEDUP, SnortBaseline, SnortResult

__all__ = [
    "CpuIdsModel",
    "XEON_CORES",
    "XEON_HZ",
    "HostFullMatcher",
    "Verdict",
    "PigasusOriginal",
    "RAMDISK_SPEEDUP",
    "SnortBaseline",
    "SnortResult",
]
