"""A mechanistic CPU-IDS cost model (§7.1.3's software comparison).

The top-level :class:`SnortBaseline` reports the paper's measured
plateau; this module explains *why* the plateau looks like that, with a
per-packet cost pipeline on a Xeon-6130-like machine:

    AF_PACKET/kernel handoff -> parse -> Hyperscan fast-pattern scan

Hyperscan on AVX-512 processes tens of bytes per cycle per core for
bulk literals, but each packet also pays fixed costs (ring-buffer
dequeue, header parse, stream-context bookkeeping) that dominate at
small and medium sizes — which is exactly why the measured packet rate
is nearly flat in size while the FPGA's byte-parallel engines are not.
The ramdisk experiment (removing AF_PACKET: 60 -> 70 Gbps at 2048 B)
pins the kernel-path share of the fixed cost.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Xeon 6130: 16 physical cores per socket x2 = 32 physical cores at
#: 2.1 GHz base (the paper's box; hyperthreads add little here).
XEON_CORES = 32
XEON_HZ = 2.1e9

#: Per-packet fixed costs (cycles/packet/core), calibrated against the
#: paper's two measurements (5.6 MPPS at 64 B; 60->70 Gbps ramdisk
#: delta at 2048 B).
AF_PACKET_CYCLES = 2042.0
PARSE_DISPATCH_CYCLES = 9700.0

#: Hyperscan bulk scan throughput (bytes/cycle/core) for literal-heavy
#: pattern sets on AVX-512, and its per-scan startup cost.
HYPERSCAN_BYTES_PER_CYCLE = 0.865
HYPERSCAN_STARTUP_CYCLES = 250.0


@dataclass(frozen=True)
class CpuIdsModel:
    """Analytic per-packet cost model for the software IDS."""

    cores: int = XEON_CORES
    clock_hz: float = XEON_HZ
    ramdisk: bool = False

    def cycles_per_packet(self, packet_size: int) -> float:
        payload = max(0, packet_size - 54)
        cycles = PARSE_DISPATCH_CYCLES + HYPERSCAN_STARTUP_CYCLES
        cycles += payload / HYPERSCAN_BYTES_PER_CYCLE
        if not self.ramdisk:
            cycles += AF_PACKET_CYCLES
        return cycles

    def peak_mpps(self, packet_size: int) -> float:
        return self.cores * self.clock_hz / self.cycles_per_packet(packet_size) / 1e6

    def throughput_gbps(self, packet_size: int) -> float:
        return self.peak_mpps(packet_size) * packet_size * 8 / 1e3

    def bottleneck_share(self, packet_size: int) -> dict:
        """Fractional cost breakdown — the 'is AF_PACKET the problem?'
        analysis the paper runs with its ramdisk experiment."""
        payload = max(0, packet_size - 54)
        parts = {
            "af_packet": 0.0 if self.ramdisk else AF_PACKET_CYCLES,
            "parse_dispatch": PARSE_DISPATCH_CYCLES,
            "hyperscan": HYPERSCAN_STARTUP_CYCLES + payload / HYPERSCAN_BYTES_PER_CYCLE,
        }
        total = sum(parts.values())
        return {name: value / total for name, value in parts.items()}
