"""Host-side full rule verification (§7.1.1's division of labor).

Pigasus's FPGA performs *fast-pattern* matching and punts suspects to
the host; the Snort process there evaluates the complete rule (all
content options, in the real system also PCRE and flow state).  This is
why the architecture works: the FPGA filters line-rate traffic down to
the small suspect fraction the CPU can afford to inspect deeply.

:class:`HostFullMatcher` is that second stage: it takes packets the RPU
firmware punted (rule IDs appended) and confirms or refutes each
candidate, tracking the fast-pattern false-positive rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..accel.pigasus.ruleset import Rule
from ..packet.packet import Packet


@dataclass
class Verdict:
    """Outcome of fully verifying one punted packet."""

    packet_id: int
    confirmed_sids: List[int] = field(default_factory=list)
    refuted_sids: List[int] = field(default_factory=list)

    @property
    def is_alert(self) -> bool:
        return bool(self.confirmed_sids)


class HostFullMatcher:
    """Complete rule evaluation for hardware-punted packets."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self._rules: Dict[int, Rule] = {rule.sid: rule for rule in rules}
        self.packets_verified = 0
        self.alerts = 0
        self.false_positives = 0

    def verify(self, packet: Packet) -> Verdict:
        """Fully evaluate the candidates the RPU attached."""
        verdict = Verdict(packet_id=packet.packet_id)
        payload = packet.payload
        tup = packet.five_tuple
        for sid in packet.rule_ids:
            rule = self._rules.get(sid)
            if rule is None:
                verdict.refuted_sids.append(sid)
                continue
            ports_ok = True
            if tup is not None:
                _src, _dst, proto_num, sport, dport = tup
                proto = {6: "tcp", 17: "udp"}.get(proto_num, "ip")
                ports_ok = rule.matches_ports(proto, sport, dport)
            if ports_ok and rule.full_match(payload):
                verdict.confirmed_sids.append(sid)
            else:
                verdict.refuted_sids.append(sid)
        self.packets_verified += 1
        if verdict.is_alert:
            self.alerts += 1
        if verdict.refuted_sids:
            self.false_positives += 1
        return verdict

    def verify_all(self, packets: Iterable[Packet]) -> List[Verdict]:
        return [self.verify(packet) for packet in packets]

    @property
    def false_positive_rate(self) -> float:
        if self.packets_verified == 0:
            return 0.0
        return self.false_positives / self.packets_verified
