"""Discrete-event simulation kernel.

The kernel is deliberately small: timestamped events ordered by
``(time, seq)``, plus a handful of conveniences (named processes, stop
conditions, a monotonically increasing event sequence number so
same-time events fire in schedule order).

Internally events are *batched by timestamp*: the heap orders only the
distinct pending times, and every event sharing a timestamp lives in a
FIFO bucket behind that heap entry.  Middlebox simulations schedule
many same-cycle events (one per packet per pipeline stage), so this
cuts heap traffic by the average bucket size while preserving the
exact ``(time, seq)`` firing order.  Cancelled events are skipped when
their bucket drains and compacted wholesale once they exceed a
fraction of the pending set, so a workload that cancels aggressively
(e.g. timeout timers) cannot bloat the queue.

Time is kept in *cycles* of the Rosebud fabric clock by convention
(250 MHz => 4 ns per cycle), but the kernel itself is unit-agnostic; the
:mod:`repro.sim.clock` helpers convert between cycles, nanoseconds, and
throughput figures.

Invariant: :attr:`Simulator.events_processed` counts only *fired*
callbacks.  Cancelled events never contribute, no matter where in the
queue they were skipped or compacted away.
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the kernel is used inconsistently (e.g. scheduling in
    the past) or a driven process dies."""


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events run in
    the order they were scheduled, which keeps runs deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    _sim: Optional["Simulator"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelled events stay queued but are skipped when their bucket
        drains; this is O(1) and avoids heap surgery.  The owning
        simulator counts them and compacts the queue when they pile up.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()


@dataclass
class SimProfile:
    """What :meth:`Simulator.run_profile` measured."""

    events_processed: int
    wall_seconds: float
    events_per_sec: float
    top_events: List[Tuple[str, int]]

    def format(self) -> str:
        lines = [
            f"events processed : {self.events_processed}",
            f"wall seconds     : {self.wall_seconds:.4f}",
            f"events/sec       : {self.events_per_sec:,.0f}",
        ]
        for name, count in self.top_events:
            lines.append(f"  {name or '<unnamed>':24s} {count}")
        return "\n".join(lines)


#: Compact once cancelled events exceed this fraction of the pending set
#: (and the absolute floor below, so tiny queues never bother).
COMPACT_FRACTION = 0.5
COMPACT_MIN_CANCELLED = 64

_EMPTY: List[Event] = []


class Simulator:
    """An event-driven simulator with deterministic ordering.

    Typical use::

        sim = Simulator()
        sim.schedule(10, lambda: print("at t=10"))
        sim.run()
    """

    def __init__(self) -> None:
        # Distinct pending times; each has exactly one FIFO bucket in
        # _buckets, except the time currently promoted to _batch.
        self._times: List[float] = []
        self._buckets: Dict[float, List[Event]] = {}
        # The bucket currently being drained (always holds the minimum
        # pending time; see schedule_at's de-promotion path).
        self._batch: List[Event] = _EMPTY
        self._batch_pos = 0
        self._batch_time: Optional[float] = None
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._n_pending = 0  # live (non-cancelled) events queued
        self._n_cancelled = 0  # cancelled events still stored
        self.events_processed = 0
        self.compactions = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[[], Any], name: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, name)

    def schedule_at(
        self, time: float, callback: Callable[[], Any], name: str = ""
    ) -> Event:
        """Schedule ``callback`` at an absolute time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time=time, seq=self._seq, callback=callback, name=name, _sim=self)
        self._seq += 1
        self._n_pending += 1
        batch_time = self._batch_time
        if batch_time is not None:
            if time == batch_time:
                # Same timestamp as the active batch: appending keeps
                # (time, seq) order because every batched event has a
                # smaller seq.
                self._batch.append(event)
                self._maybe_compact()
                return event
            if time < batch_time:
                # Scheduled (from outside a callback) before the batch
                # we already promoted: push the batch back and let the
                # heap re-order.  Rare, so the slice is acceptable.
                self._demote_batch()
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        self._maybe_compact()
        return event

    def _demote_batch(self) -> None:
        remaining = self._batch[self._batch_pos :]
        if remaining:
            assert self._batch_time is not None
            existing = self._buckets.get(self._batch_time)
            if existing is None:
                self._buckets[self._batch_time] = remaining
                heapq.heappush(self._times, self._batch_time)
            else:  # pragma: no cover - batch time never coexists with a bucket
                existing.extend(remaining)
        self._batch = _EMPTY
        self._batch_pos = 0
        self._batch_time = None

    def _note_cancel(self) -> None:
        self._n_cancelled += 1
        self._n_pending -= 1

    def _maybe_compact(self) -> None:
        if self._n_cancelled < COMPACT_MIN_CANCELLED:
            return
        if self._n_cancelled <= COMPACT_FRACTION * (
            self._n_pending + self._n_cancelled
        ):
            return
        self.compact()

    def compact(self) -> None:
        """Drop every cancelled event still stored and rebuild the queue.

        Runs automatically once cancelled events exceed
        ``COMPACT_FRACTION`` of the pending set; callable directly for
        tests and long-idle housekeeping.
        """
        if self._batch_time is not None:
            live_batch = [
                e for e in self._batch[self._batch_pos :] if not e.cancelled
            ]
            if live_batch:
                self._batch = live_batch
                self._batch_pos = 0
            else:
                self._batch = _EMPTY
                self._batch_pos = 0
                self._batch_time = None
        buckets: Dict[float, List[Event]] = {}
        for time_key, bucket in self._buckets.items():
            live = [e for e in bucket if not e.cancelled]
            if live:
                buckets[time_key] = live
        self._buckets = buckets
        self._times = list(buckets.keys())
        heapq.heapify(self._times)
        self._n_cancelled = 0
        self.compactions += 1

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty.

        Skipped cancelled events are discarded as a side effect, so
        repeated peeks stay O(1) amortized.
        """
        while True:
            batch = self._batch
            pos = self._batch_pos
            n = len(batch)
            while pos < n:
                event = batch[pos]
                if event.cancelled:
                    pos += 1
                    self._n_cancelled -= 1
                    continue
                self._batch_pos = pos
                return event.time
            self._batch_pos = pos
            if not self._times:
                self._batch = _EMPTY
                self._batch_pos = 0
                self._batch_time = None
                return None
            next_time = heapq.heappop(self._times)
            self._batch = self._buckets.pop(next_time)
            self._batch_pos = 0
            self._batch_time = next_time

    def iter_pending(self) -> Iterator[Tuple[float, str]]:
        """Yield ``(time, name)`` for every live pending event.

        Non-destructive and unordered; cancelled events are skipped.
        This is the introspection surface the fluid fast-forward engine
        uses to fingerprint the queue and find far-future one-shots.
        """
        if self._batch_time is not None:
            for event in self._batch[self._batch_pos:]:
                if not event.cancelled:
                    yield event.time, event.name
        for bucket in self._buckets.values():
            for event in bucket:
                if not event.cancelled:
                    yield event.time, event.name

    def warp(self, delta: float, freeze_after: Optional[float] = None) -> None:
        """Jump the clock forward by ``delta``, carrying pending events.

        Every live event scheduled before ``freeze_after`` is shifted by
        ``delta`` (preserving relative offsets and the ``(time, seq)``
        firing order); events at or after ``freeze_after`` keep their
        absolute times — they are one-shot appointments (fault triggers,
        deadline timers) that must fire at the wall time they name.
        With ``freeze_after=None`` everything shifts.

        This is the *epoch skip* behind the fluid fast-forward tier: the
        caller is asserting that the skipped interval would have been a
        whole number of identical steady-state periods, so translating
        the recurring event set by ``delta`` lands the simulation in a
        state congruent to the one event-by-event execution would reach.
        ``events_processed`` is untouched; the caller accounts for the
        events it analytically skipped.

        Cancelled events still stored are dropped as a side effect.
        """
        if delta <= 0:
            raise SimulationError(f"warp delta must be positive (got {delta})")
        new_now = self._now + delta
        self._demote_batch()
        if freeze_after is not None and freeze_after < new_now:
            # frozen events keep absolute times, so none may end up in
            # the past; check before mutating anything
            for time_key in self._buckets:
                if freeze_after <= time_key < new_now:
                    raise SimulationError(
                        f"warp to t={new_now} would jump past the frozen "
                        f"event at t={time_key}"
                    )
        buckets: Dict[float, List[Event]] = {}
        merged = False
        for time_key, bucket in self._buckets.items():
            live = [e for e in bucket if not e.cancelled]
            if not live:
                continue
            if freeze_after is None or time_key < freeze_after:
                time_key = time_key + delta
                for event in live:
                    event.time = time_key
            existing = buckets.get(time_key)
            if existing is None:
                buckets[time_key] = live
            else:
                existing.extend(live)
                merged = True
        if merged:
            # a shifted time collided with a frozen one: restore the
            # (time, seq) invariant inside the merged bucket
            for bucket in buckets.values():
                bucket.sort(key=lambda e: e.seq)
        self._buckets = buckets
        self._times = list(buckets.keys())
        heapq.heapify(self._times)
        self._n_cancelled = 0
        self._now = new_now

    def _pop_next(self) -> Optional[Event]:
        """The next live event, already removed from the queue."""
        if self.peek() is None:
            return None
        event = self._batch[self._batch_pos]
        self._batch_pos += 1
        self._n_pending -= 1
        return event

    def step(self) -> bool:
        """Run the single next event.  Returns False if none remain.

        ``events_processed`` counts only fired callbacks; events that
        were cancelled before firing are purged here without touching
        the counter.
        """
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        self.events_processed += 1
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed.  Returns the final time.

        When ``until`` is given, time is advanced to exactly ``until``
        even if the last event fired earlier, mirroring how a testbench
        runs for a fixed interval.
        """
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while not self._stopped:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                event = self._batch[self._batch_pos]
                self._batch_pos += 1
                self._n_pending -= 1
                self._now = event.time
                self.events_processed += 1
                event.callback()
                processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def run_profile(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        top: int = 10,
    ) -> SimProfile:
        """Like :meth:`run`, but measure events/sec and count event names.

        Returns a :class:`SimProfile` with wall-clock dispatch rate and
        the ``top`` most frequent event names — the probe the benchmark
        suite tracks so kernel regressions surface as a number.
        """
        counts: Dict[str, int] = {}
        fired_before = self.events_processed
        self._running = True
        self._stopped = False
        processed = 0
        t0 = _time.perf_counter()  # detlint: ok(profiling wall-clock dispatch rate, not simulated time)
        try:
            while not self._stopped:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                event = self._batch[self._batch_pos]
                self._batch_pos += 1
                self._n_pending -= 1
                self._now = event.time
                self.events_processed += 1
                name = event.name
                counts[name] = counts.get(name, 0) + 1
                event.callback()
                processed += 1
        finally:
            self._running = False
        wall = _time.perf_counter() - t0  # detlint: ok(profiling wall-clock dispatch rate, not simulated time)
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        fired = self.events_processed - fired_before
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return SimProfile(
            events_processed=fired,
            wall_seconds=wall,
            events_per_sec=fired / wall if wall > 0 else 0.0,
            top_events=ranked[:top],
        )

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event."""
        self._stopped = True

    def process(self, generator: Iterator[float], name: str = "") -> None:
        """Drive a generator-based process.

        The generator yields delays; after each yield the kernel waits
        that many time units before resuming it.  This gives a light
        cooperative-coroutine style for sequential behaviours::

            def blinker():
                while True:
                    toggle()
                    yield 5.0

            sim.process(blinker())

        If the generator raises, the error is re-raised as
        :class:`SimulationError` naming the process, so a crash deep in
        a :meth:`run` points at the process that died instead of an
        anonymous callback.
        """

        def resume() -> None:
            try:
                delay = next(generator)
            except StopIteration:
                return
            except SimulationError:
                raise
            except Exception as exc:
                raise SimulationError(
                    f"process {name!r} died with {type(exc).__name__}: {exc}"
                ) from exc
            if delay < 0:
                raise SimulationError(f"process {name!r} yielded negative delay")
            self.schedule(delay, resume, name=name)

        self.schedule(0.0, resume, name=name)
