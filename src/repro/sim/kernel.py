"""Discrete-event simulation kernel.

The kernel is deliberately small: a priority queue of timestamped events,
plus a handful of conveniences (named processes, stop conditions, a
monotonically increasing event sequence number so same-time events fire
in schedule order).

Time is kept in *cycles* of the Rosebud fabric clock by convention
(250 MHz => 4 ns per cycle), but the kernel itself is unit-agnostic; the
:mod:`repro.sim.clock` helpers convert between cycles, nanoseconds, and
throughput figures.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional


class SimulationError(RuntimeError):
    """Raised when the kernel is used inconsistently (e.g. scheduling in
    the past)."""


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events run in
    the order they were scheduled, which keeps runs deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelled events stay in the heap but are skipped when popped;
        this is O(1) and avoids heap surgery.
        """
        self.cancelled = True


class Simulator:
    """An event-driven simulator with deterministic ordering.

    Typical use::

        sim = Simulator()
        sim.schedule(10, lambda: print("at t=10"))
        sim.run()
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[[], Any], name: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, name)

    def schedule_at(
        self, time: float, callback: Callable[[], Any], name: str = ""
    ) -> Event:
        """Schedule ``callback`` at an absolute time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time=time, seq=self._seq, callback=callback, name=name)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the single next event.  Returns False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed.  Returns the final time.

        When ``until`` is given, time is advanced to exactly ``until``
        even if the last event fired earlier, mirroring how a testbench
        runs for a fixed interval.
        """
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while not self._stopped:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event."""
        self._stopped = True

    def process(self, generator: Iterator[float], name: str = "") -> None:
        """Drive a generator-based process.

        The generator yields delays; after each yield the kernel waits
        that many time units before resuming it.  This gives a light
        cooperative-coroutine style for sequential behaviours::

            def blinker():
                while True:
                    toggle()
                    yield 5.0

            sim.process(blinker())
        """

        def resume() -> None:
            try:
                delay = next(generator)
            except StopIteration:
                return
            if delay < 0:
                raise SimulationError(f"process {name!r} yielded negative delay")
            self.schedule(delay, resume, name=name)

        self.schedule(0.0, resume, name=name)
