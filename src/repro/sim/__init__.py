"""Discrete-event simulation substrate for the Rosebud reproduction."""

from .clock import (
    Clock,
    ROSEBUD_CLOCK,
    WIRE_OVERHEAD_BYTES,
    bus_cycles,
    line_rate_gbps,
    line_rate_pps,
    max_effective_gbps,
    serialization_ns,
    wire_bytes,
)
from .kernel import Event, SimProfile, SimulationError, Simulator
from .resources import BoundedFifo, PriorityArbiter, RoundRobinArbiter, SerialLink
from .stats import Counter, CounterSet, Histogram, RateMeter, ThroughputSample

__all__ = [
    "Clock",
    "ROSEBUD_CLOCK",
    "WIRE_OVERHEAD_BYTES",
    "bus_cycles",
    "line_rate_gbps",
    "line_rate_pps",
    "max_effective_gbps",
    "serialization_ns",
    "wire_bytes",
    "Event",
    "SimProfile",
    "SimulationError",
    "Simulator",
    "BoundedFifo",
    "PriorityArbiter",
    "RoundRobinArbiter",
    "SerialLink",
    "Counter",
    "CounterSet",
    "Histogram",
    "RateMeter",
    "ThroughputSample",
]
