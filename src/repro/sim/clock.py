"""Clock and rate conversions.

Rosebud's fabric runs at 250 MHz (4 ns per cycle).  Throughput figures in
the paper use Ethernet "effective" rates: the quoted packet size excludes
the 4-byte FCS, and each frame additionally occupies 8 bytes of preamble
plus 12 bytes of inter-frame gap on the wire.  These helpers centralise
that arithmetic so benchmarks and the core model agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Per-frame wire overhead in bytes: preamble (8) + IFG (12).  The FCS
#: (4) is also on the wire but excluded from quoted packet sizes, so a
#: quoted ``size``-byte packet occupies ``size + FCS + preamble + IFG``.
PREAMBLE_BYTES = 8
IFG_BYTES = 12
FCS_BYTES = 4
WIRE_OVERHEAD_BYTES = PREAMBLE_BYTES + IFG_BYTES + FCS_BYTES  # 24


@dataclass(frozen=True)
class Clock:
    """A fabric clock.

    ``freq_hz`` defaults to Rosebud's 250 MHz.
    """

    freq_hz: float = 250e6

    @property
    def period_ns(self) -> float:
        return 1e9 / self.freq_hz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.period_ns

    def ns_to_cycles(self, ns: float) -> float:
        return ns / self.period_ns

    def cycles_to_us(self, cycles: float) -> float:
        return self.cycles_to_ns(cycles) / 1e3

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.freq_hz


ROSEBUD_CLOCK = Clock(250e6)


def wire_bytes(packet_size: int) -> int:
    """Bytes a quoted ``packet_size`` packet occupies on the wire."""
    return packet_size + WIRE_OVERHEAD_BYTES


def line_rate_pps(link_gbps: float, packet_size: int) -> float:
    """Maximum packets/second of ``packet_size`` frames on a link."""
    return link_gbps * 1e9 / (wire_bytes(packet_size) * 8)


def line_rate_gbps(pps: float, packet_size: int) -> float:
    """Effective goodput (quoted-size bits/s) achieved at ``pps``."""
    return pps * packet_size * 8 / 1e9


def max_effective_gbps(link_gbps: float, packet_size: int) -> float:
    """The paper's dotted "maximum theoretical effective rate" lines."""
    return line_rate_gbps(line_rate_pps(link_gbps, packet_size), packet_size)


def serialization_ns(nbytes: int, gbps: float) -> float:
    """Time to serialize ``nbytes`` over a ``gbps`` link, in ns."""
    return nbytes * 8 / gbps


def bus_cycles(nbytes: int, bus_bits: int) -> int:
    """Cycles to move ``nbytes`` over a ``bus_bits``-wide bus (one beat
    per cycle)."""
    bus_bytes = bus_bits // 8
    return -(-nbytes // bus_bytes)  # ceil division
