"""Shared resource models used across the datapath.

Three primitives cover nearly every contended element in Rosebud:

* :class:`BoundedFifo` — a finite queue with drop-or-block semantics,
  modelling MAC FIFOs and the width-conversion FIFOs in the switches.
* :class:`SerialLink` — a link that serializes items for a computed
  service time, modelling MAC serialization, switch output ports, and
  the 32 Gbps per-RPU ingress links.
* :class:`RoundRobinArbiter` — the default arbitration policy between
  inputs contending for the same output (§4.3).

All of them are *event-driven*: callers hand items to the resource and
get a callback when the item has passed through.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from .kernel import Simulator
from .stats import CounterSet


class BoundedFifo:
    """A byte-bounded FIFO with configurable overflow behaviour.

    ``capacity_bytes`` of None means unbounded.  When full, ``push``
    returns False and records a drop (tail-drop, like a MAC FIFO).
    """

    def __init__(
        self,
        name: str = "fifo",
        capacity_bytes: Optional[int] = None,
    ) -> None:
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._items: Deque[Tuple[Any, int]] = deque()
        self._occupancy = 0
        self.counters = CounterSet(["pushes", "pops", "drops", "bytes_in", "bytes_out"])

    @property
    def occupancy_bytes(self) -> int:
        return self._occupancy

    def __len__(self) -> int:
        return len(self._items)

    def space_for(self, nbytes: int) -> bool:
        if self.capacity_bytes is None:
            return True
        return self._occupancy + nbytes <= self.capacity_bytes

    def push(self, item: Any, nbytes: int) -> bool:
        if not self.space_for(nbytes):
            self.counters.add("drops")
            return False
        self._items.append((item, nbytes))
        self._occupancy += nbytes
        self.counters.add("pushes")
        self.counters.add("bytes_in", nbytes)
        return True

    def pop(self) -> Optional[Tuple[Any, int]]:
        if not self._items:
            return None
        item, nbytes = self._items.popleft()
        self._occupancy -= nbytes
        self.counters.add("pops")
        self.counters.add("bytes_out", nbytes)
        return item, nbytes

    def peek(self) -> Optional[Tuple[Any, int]]:
        return self._items[0] if self._items else None


class SerialLink:
    """A work-conserving serializer.

    Items queue in arrival order; each occupies the link for a service
    time computed by ``service_time(item, nbytes)``.  ``on_done(item)``
    fires when the item fully exits the link, i.e. after store-and-
    forward serialization — matching how a packet must fully land in an
    RPU's memory before the core is notified (§6.2).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        service_time: Callable[[Any, int], float],
        on_done: Callable[[Any], None],
        queue_capacity_bytes: Optional[int] = None,
        cut_through_cycles: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self._service_time = service_time
        self._on_done = on_done
        self.queue = BoundedFifo(name + ".q", queue_capacity_bytes)
        self._busy = False
        self._paused = False
        self.busy_time = 0.0
        #: if set, the item is *delivered* this many time units after
        #: service starts (cut-through), while the link stays occupied
        #: for the full service time (store-and-forward otherwise)
        self.cut_through_cycles = cut_through_cycles
        self.counters = CounterSet(["sent", "dropped", "bytes"])

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def paused(self) -> bool:
        return self._paused

    def pause(self) -> None:
        """Stop starting new items (the in-flight one completes); queued
        items wait — how a downed link backpressures its FIFO."""
        self._paused = True

    def resume(self) -> None:
        if not self._paused:
            return
        self._paused = False
        if not self._busy:
            self._start_next()

    def utilization(self, elapsed: float) -> float:
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def offer(self, item: Any, nbytes: int) -> bool:
        """Enqueue an item; returns False (and drops) if the queue is full."""
        if not self.queue.push(item, nbytes):
            self.counters.add("dropped")
            return False
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if self._paused:
            self._busy = False
            return
        entry = self.queue.pop()
        if entry is None:
            self._busy = False
            return
        item, nbytes = entry
        self._busy = True
        duration = self._service_time(item, nbytes)
        self.busy_time += duration
        if self.cut_through_cycles is not None:
            deliver_at = min(duration, self.cut_through_cycles)
            self.sim.schedule(
                deliver_at, lambda: self._deliver(item, nbytes), name=self.name
            )
            self.sim.schedule(duration, self._release, name=self.name)
        else:
            self.sim.schedule(
                duration, lambda: self._finish(item, nbytes), name=self.name
            )

    def _finish(self, item: Any, nbytes: int) -> None:
        self._deliver(item, nbytes)
        self._release()

    def _deliver(self, item: Any, nbytes: int) -> None:
        self.counters.add("sent")
        self.counters.add("bytes", nbytes)
        self._on_done(item)

    def _release(self) -> None:
        self._start_next()


class RoundRobinArbiter:
    """Round-robin selection among a fixed set of input indices.

    ``select(ready)`` picks the next ready input at or after the last
    grant + 1, the standard RR policy the paper's switches use.
    """

    def __init__(self, n_inputs: int) -> None:
        if n_inputs <= 0:
            raise ValueError("arbiter needs at least one input")
        self.n_inputs = n_inputs
        self._last = n_inputs - 1

    def select(self, ready: List[bool]) -> Optional[int]:
        if len(ready) != self.n_inputs:
            raise ValueError("ready vector length mismatch")
        for offset in range(1, self.n_inputs + 1):
            idx = (self._last + offset) % self.n_inputs
            if ready[idx]:
                self._last = idx
                return idx
        return None


class PriorityArbiter:
    """Fixed-priority arbitration (lowest index wins), the alternative
    policy §4.3 mentions can replace round robin."""

    def __init__(self, n_inputs: int) -> None:
        if n_inputs <= 0:
            raise ValueError("arbiter needs at least one input")
        self.n_inputs = n_inputs

    def select(self, ready: List[bool]) -> Optional[int]:
        if len(ready) != self.n_inputs:
            raise ValueError("ready vector length mismatch")
        for idx, is_ready in enumerate(ready):
            if is_ready:
                return idx
        return None
