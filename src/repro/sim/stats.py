"""Measurement primitives: counters, rate meters, histograms.

These mirror the status counters Rosebud exposes to the host (bytes,
frames, drops, stalled cycles per interface and per RPU, §4.3) plus the
latency-sampling machinery the evaluation uses (§6.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class Counter:
    """A monotonically increasing event counter."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class CounterSet:
    """A named group of counters, like one interface's status block."""

    def __init__(self, names: Optional[List[str]] = None) -> None:
        self._counters: Dict[str, Counter] = {}
        for name in names or []:
            self._counters[name] = Counter(name)

    def __getitem__(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def add(self, name: str, amount: int = 1) -> None:
        self[name].add(amount)

    def value(self, name: str) -> int:
        return self[name].value

    def snapshot(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()


class Histogram:
    """A streaming histogram with exact percentile support.

    Stores raw samples; fine for the 1e4–1e6 sample counts our runs use.
    The fluid fast-forward tier extrapolates whole steady-state periods
    at once, so bulk repetitions go through :meth:`record_repeated`,
    which keeps them as weighted groups instead of materializing
    ``len(values) * repeat`` floats; every statistic accounts for the
    weights exactly (nearest-rank percentiles over the weighted
    distribution).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted = True
        #: weighted groups from record_repeated: (values, repeat)
        self._bulk: List[tuple] = []

    def record(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = False

    def record_repeated(self, values, repeat: int) -> None:
        """Record every value in ``values``, ``repeat`` times each.

        Equivalent to ``repeat`` rounds of :meth:`record` over
        ``values`` for all statistics, at O(len(values)) memory.
        """
        if repeat < 0:
            raise ValueError("repeat must be non-negative")
        if repeat == 0 or not values:
            return
        self._bulk.append((tuple(values), int(repeat)))

    @property
    def raw_count(self) -> int:
        """Individually recorded samples only (excludes weighted bulk)."""
        return len(self._samples)

    def samples_tail(self, start: int) -> List[float]:
        """Copy of the individually recorded samples from index ``start``
        on, in record order (valid until someone asks for a percentile,
        which sorts in place)."""
        return list(self._samples[start:])

    def __len__(self) -> int:
        return self.count

    @property
    def count(self) -> int:
        return len(self._samples) + sum(len(v) * r for v, r in self._bulk)

    @property
    def mean(self) -> float:
        total = self.count
        if total == 0:
            return 0.0
        acc = sum(self._samples)
        for values, repeat in self._bulk:
            acc += sum(values) * repeat
        return acc / total

    @property
    def minimum(self) -> float:
        candidates = []
        if self._samples:
            candidates.append(min(self._samples))
        candidates.extend(min(v) for v, _r in self._bulk)
        return min(candidates) if candidates else 0.0

    @property
    def maximum(self) -> float:
        candidates = []
        if self._samples:
            candidates.append(max(self._samples))
        candidates.extend(max(v) for v, _r in self._bulk)
        return max(candidates) if candidates else 0.0

    @property
    def stddev(self) -> float:
        n = self.count
        if n < 2:
            return 0.0
        mu = self.mean
        acc = sum((x - mu) ** 2 for x in self._samples)
        for values, repeat in self._bulk:
            acc += sum((x - mu) ** 2 for x in values) * repeat
        return math.sqrt(acc / (n - 1))

    def percentile(self, pct: float) -> float:
        """Exact percentile by nearest-rank on the (weighted) samples."""
        total = self.count
        if total == 0:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        rank = max(0, math.ceil(pct / 100.0 * total) - 1)
        if not self._bulk:
            return self._samples[rank]
        weighted = [(v, 1) for v in self._samples]
        for values, repeat in self._bulk:
            weighted.extend((v, repeat) for v in values)
        weighted.sort(key=lambda pair: pair[0])
        cumulative = 0
        for value, weight in weighted:
            cumulative += weight
            if cumulative > rank:
                return value
        return weighted[-1][0]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.maximum,
        }


@dataclass
class RateMeter:
    """Computes average rates over an observation window.

    Feed it byte/packet completions, then ask for Gbps/MPPS given the
    elapsed time.  This matches how the artifact's host utility reports
    "RX bytes" averaged over the run.
    """

    bytes_total: int = 0
    packets_total: int = 0
    start_time: float = 0.0

    def record_packet(self, nbytes: int) -> None:
        self.bytes_total += nbytes
        self.packets_total += 1

    def gbps(self, elapsed_seconds: float) -> float:
        if elapsed_seconds <= 0:
            return 0.0
        return self.bytes_total * 8 / elapsed_seconds / 1e9

    def mpps(self, elapsed_seconds: float) -> float:
        if elapsed_seconds <= 0:
            return 0.0
        return self.packets_total / elapsed_seconds / 1e6

    def reset(self, now: float = 0.0) -> None:
        self.bytes_total = 0
        self.packets_total = 0
        self.start_time = now


@dataclass
class ThroughputSample:
    """One point on a throughput-vs-packet-size curve."""

    packet_size: int
    offered_gbps: float
    achieved_gbps: float
    achieved_mpps: float

    @property
    def fraction_of_offered(self) -> float:
        if self.offered_gbps == 0:
            return 0.0
        return self.achieved_gbps / self.offered_gbps
