"""Command-line interface — the reproduction's ``host_utils``.

The artifact drives its experiments with Makefiles and shell scripts
(``make do TEST=basic_fw ...``, ``run_latency.sh``, trace generators).
This module provides the equivalent entry points::

    python -m repro.cli profile   --rpus 16 --size 512 --gbps 200
    python -m repro.cli latency   --sizes 64,512,1500
    python -m repro.cli firewall  --size 512
    python -m repro.cli ids       --mode hw --size 800
    python -m repro.cli resources --rpus 16
    python -m repro.cli trace     --kind firewall --out attack.pcap
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .accel import IpBlacklistMatcher, generate_blacklist, parse_blacklist
from .accel.pigasus import generate_ruleset, parse_rules
from .analysis import (
    estimated_latency_us,
    format_table,
    format_utilization_row,
    forwarding_experiment,
    measure_latency,
    measure_throughput,
)
from .core import HashLB, RosebudConfig, RosebudSystem
from .firmware import (
    FirewallFirmware,
    ForwarderFirmware,
    PigasusHwReorderFirmware,
    PigasusSwReorderFirmware,
)
from .hw import FpgaDevice, VU9P_CAPACITY
from .packet import write_pcap
from .traffic import (
    FixedSizeSource,
    FlowTrafficSource,
    attack_trace_from_rules,
    firewall_trace,
)


def _parse_sizes(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def cmd_profile(args: argparse.Namespace) -> int:
    """Forwarding throughput for one (rpus, size, rate) point."""
    result = forwarding_experiment(
        args.rpus, args.size, args.gbps, ForwarderFirmware,
        n_ports_used=args.ports,
        warmup_packets=args.warmup, measure_packets=args.packets,
    )
    print(format_table(
        ["RPUs", "size(B)", "offered Gbps", "achieved Gbps", "MPPS", "% of line"],
        [[args.rpus, args.size, args.gbps, result.achieved_gbps,
          result.achieved_mpps, 100 * result.fraction_of_line]],
        title="basic_fw forwarding profile",
    ))
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    """Low-load forwarding latency vs Eq. 1 for a size sweep."""
    rows = []
    for size in _parse_sizes(args.sizes):
        system = RosebudSystem(RosebudConfig(n_rpus=args.rpus), ForwarderFirmware())
        sources = [FixedSizeSource(system, p, 1.0, size) for p in range(2)]
        hist = measure_latency(system, sources, warmup_packets=50,
                               measure_packets=args.packets)
        rows.append([size, hist.mean, estimated_latency_us(size)])
    print(format_table(
        ["size(B)", "measured us", "Eq.1 us"], rows, title="forwarding latency"
    ))
    return 0


def cmd_firewall(args: argparse.Namespace) -> int:
    """The §7.2 firewall at one packet size."""
    prefixes = parse_blacklist(generate_blacklist(args.rules))
    matcher = IpBlacklistMatcher(prefixes)
    system = RosebudSystem(RosebudConfig(n_rpus=args.rpus), FirewallFirmware(matcher))
    sources = [
        FixedSizeSource(system, port, 100.0, args.size,
                        respect_generator_cap=False, seed=port + 1)
        for port in range(2)
    ]
    result = measure_throughput(
        system, sources, args.size, 200.0,
        warmup_packets=args.warmup, measure_packets=args.packets,
        include_absorbed=True,
    )
    print(format_table(
        ["size(B)", "absorbed Gbps", "% of line", "fw drops"],
        [[args.size, result.achieved_gbps, 100 * result.fraction_of_line,
          system.counters.value("dropped_by_firmware")]],
        title=f"firewall ({args.rules} blacklist entries, {args.rpus} RPUs)",
    ))
    return 0


def cmd_ids(args: argparse.Namespace) -> int:
    """The §7.1 IPS at one packet size (hw or sw reordering)."""
    rules = parse_rules(generate_ruleset(args.rules))
    payloads = [r.content for r in rules]
    if args.mode == "hw":
        firmware, lb = PigasusHwReorderFirmware(rules), None
    else:
        firmware, lb = PigasusSwReorderFirmware(rules), HashLB(args.rpus)
    system = RosebudSystem(
        RosebudConfig(n_rpus=args.rpus, slots_per_rpu=32), firmware, lb_policy=lb
    )
    sources = [
        FlowTrafficSource(system, port, 100.0, args.size,
                          attack_fraction=0.01, attack_payloads=payloads,
                          reorder_fraction=0.003, n_flows=2048,
                          seed=port + 1, respect_generator_cap=False)
        for port in range(2)
    ]
    result = measure_throughput(
        system, sources, args.size, 200.0,
        warmup_packets=args.warmup, measure_packets=args.packets,
    )
    print(format_table(
        ["mode", "size(B)", "Gbps", "MPPS", "cycles/pkt", "to host"],
        [[args.mode, args.size, result.achieved_gbps, result.achieved_mpps,
          result.cycles_per_packet, system.counters.value("to_host")]],
        title=f"pigasus IPS ({args.rules} rules, {args.rpus} RPUs)",
    ))
    return 0


def cmd_resources(args: argparse.Namespace) -> int:
    """Print the Table 1/2-style utilization report."""
    device = FpgaDevice(args.rpus)
    device.check_fits()
    comp = device.components
    rows = [
        format_utilization_row("Single RPU", comp.rpu_base, VU9P_CAPACITY),
        format_utilization_row("Remaining (PR)", comp.rpu_remaining, VU9P_CAPACITY),
        format_utilization_row("LB", comp.lb, VU9P_CAPACITY),
        format_utilization_row("Single Interconnect", comp.interconnect, VU9P_CAPACITY),
        format_utilization_row("CMAC", comp.cmac, VU9P_CAPACITY),
        format_utilization_row("PCIe", comp.pcie, VU9P_CAPACITY),
        format_utilization_row("Switching", comp.switching, VU9P_CAPACITY),
    ]
    print(format_table(
        ["Component", "LUTs", "Registers", "BRAM", "URAM", "DSP"],
        rows, title=f"base utilization, {args.rpus} RPUs",
    ))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Generate an attack trace pcap (the artifact's `make gen`)."""
    if args.kind == "firewall":
        prefixes = parse_blacklist(generate_blacklist(args.rules))
        packets = firewall_trace(prefixes, packet_size=args.size)
    else:
        rules = parse_rules(generate_ruleset(args.rules))
        packets = attack_trace_from_rules(rules, packet_size=args.size)
    count = write_pcap(args.out, packets)
    print(f"wrote {count} packets to {args.out}")
    return 0


def cmd_nat(args: argparse.Namespace) -> int:
    """Run the NAT middlebox at one packet size."""
    from .core import HashLB
    from .firmware import NatFirmware

    system = RosebudSystem(
        RosebudConfig(n_rpus=args.rpus), NatFirmware(), lb_policy=HashLB(args.rpus)
    )
    sources = [
        FixedSizeSource(system, 0, 100.0, args.size,
                        respect_generator_cap=False, seed=1)
    ]
    result = measure_throughput(
        system, sources, args.size, 100.0,
        warmup_packets=args.warmup, measure_packets=args.packets,
    )
    translated = sum(
        getattr(rpu.firmware, "translated", 0) for rpu in system.rpus
    )
    print(format_table(
        ["size(B)", "Gbps", "MPPS", "translated"],
        [[args.size, result.achieved_gbps, result.achieved_mpps, translated]],
        title=f"NAT middlebox ({args.rpus} RPUs, hash LB)",
    ))
    return 0


def cmd_loopback(args: argparse.Namespace) -> int:
    """The §6.3 two-step-forwarding loopback measurement."""
    from .firmware import TwoStepForwarder

    system = RosebudSystem(RosebudConfig(n_rpus=args.rpus), TwoStepForwarder(args.rpus))
    system.lb.host_write(system.lb.REG_ENABLE_MASK, (1 << (args.rpus // 2)) - 1)
    sources = [
        FixedSizeSource(system, 0, 100.0, args.size, respect_generator_cap=False)
    ]
    result = measure_throughput(
        system, sources, args.size, 100.0,
        warmup_packets=args.warmup, measure_packets=args.packets,
    )
    print(format_table(
        ["size(B)", "Gbps", "% of line", "loopbacked"],
        [[args.size, result.achieved_gbps, 100 * result.fraction_of_line,
          system.counters.value("loopbacked")]],
        title="two-step forwarding over the loopback port",
    ))
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    """Disassemble a built-in firmware or an RFW image file."""
    from .firmware import FIREWALL_ASM, FORWARDER_ASM, PIGASUS_ASM
    from .riscv import assemble
    from .riscv.disasm import disassemble
    from .riscv.image import FirmwareImage, SEG_IMEM

    builtin = {
        "forwarder": FORWARDER_ASM,
        "firewall": FIREWALL_ASM,
        "pigasus": PIGASUS_ASM,
    }
    if args.target in builtin:
        image_bytes = assemble(builtin[args.target]).image
    else:
        blob = open(args.target, "rb").read()
        image_bytes = FirmwareImage.from_bytes(blob).segment(SEG_IMEM).payload
    for line in disassemble(image_bytes):
        print(line)
    return 0


def cmd_image(args: argparse.Namespace) -> int:
    """Build an RFW firmware image from a built-in firmware."""
    from .firmware import FIREWALL_ASM, FORWARDER_ASM, PIGASUS_ASM
    from .riscv.image import FirmwareImage

    builtin = {
        "forwarder": FORWARDER_ASM,
        "firewall": FIREWALL_ASM,
        "pigasus": PIGASUS_ASM,
    }
    if args.firmware not in builtin:
        print(f"unknown firmware {args.firmware!r}; choices: {sorted(builtin)}")
        return 1
    image = FirmwareImage.from_asm(builtin[args.firmware])
    blob = image.to_bytes()
    with open(args.out, "wb") as fh:
        fh.write(blob)
    print(f"wrote {len(blob)} bytes ({len(image.segments)} segments) to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Rosebud reproduction host utilities"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, rpus=16):
        p.add_argument("--rpus", type=int, default=rpus)
        p.add_argument("--warmup", type=int, default=800)
        p.add_argument("--packets", type=int, default=3000)

    p = sub.add_parser("profile", help="forwarding throughput point")
    common(p)
    p.add_argument("--size", type=int, default=512)
    p.add_argument("--gbps", type=float, default=200.0)
    p.add_argument("--ports", type=int, default=2)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("latency", help="latency sweep vs Eq.1")
    p.add_argument("--rpus", type=int, default=16)
    p.add_argument("--sizes", default="64,512,1500")
    p.add_argument("--packets", type=int, default=200)
    p.set_defaults(func=cmd_latency)

    p = sub.add_parser("firewall", help="firewall case study point")
    common(p)
    p.add_argument("--size", type=int, default=512)
    p.add_argument("--rules", type=int, default=1050)
    p.set_defaults(func=cmd_firewall)

    p = sub.add_parser("ids", help="pigasus IPS case study point")
    common(p, rpus=8)
    p.add_argument("--mode", choices=["hw", "sw"], default="hw")
    p.add_argument("--size", type=int, default=800)
    p.add_argument("--rules", type=int, default=120)
    p.set_defaults(func=cmd_ids)

    p = sub.add_parser("resources", help="utilization report")
    p.add_argument("--rpus", type=int, default=16)
    p.set_defaults(func=cmd_resources)

    p = sub.add_parser("nat", help="NAT middlebox point")
    common(p, rpus=8)
    p.add_argument("--size", type=int, default=512)
    p.set_defaults(func=cmd_nat)

    p = sub.add_parser("loopback", help="two-step loopback measurement")
    common(p)
    p.add_argument("--size", type=int, default=128)
    p.set_defaults(func=cmd_loopback)

    p = sub.add_parser("disasm", help="disassemble firmware")
    p.add_argument("target", help="builtin name (forwarder/firewall/pigasus) or .rfw file")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("image", help="build an RFW firmware image")
    p.add_argument("firmware", help="builtin name (forwarder/firewall/pigasus)")
    p.add_argument("--out", default="firmware.rfw")
    p.set_defaults(func=cmd_image)

    p = sub.add_parser("trace", help="generate an attack pcap")
    p.add_argument("--kind", choices=["firewall", "ids"], default="firewall")
    p.add_argument("--rules", type=int, default=100)
    p.add_argument("--size", type=int, default=512)
    p.add_argument("--out", default="attack.pcap")
    p.set_defaults(func=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
