"""Command-line interface — the reproduction's ``host_utils``.

The artifact drives its experiments with Makefiles and shell scripts
(``make do TEST=basic_fw ...``, ``run_latency.sh``, trace generators).
This module provides the equivalent entry points::

    python -m repro.cli profile   --rpus 16 --size 512 --gbps 200
    python -m repro.cli latency   --sizes 64,512,1500
    python -m repro.cli firewall  --size 512
    python -m repro.cli ids       --mode hw --size 800
    python -m repro.cli sweep     --sizes 64,512,1500 --rpu-set 8,16 --jobs 4
    python -m repro.cli resources --rpus 16
    python -m repro.cli trace     --kind firewall --out attack.pcap

Every measurement subcommand shares one parent parser (``--rpus``,
``--size``, ``--gbps``, ``--lb``, ``--warmup``, ``--packets``) and
builds its point as an :class:`~repro.analysis.ExperimentSpec`, so the
CLI, the harness, and the parallel engine construct systems the same
way.  ``sweep`` fans a grid out over a worker pool (``--jobs``) with
an optional on-disk result cache (``--cache-dir``).
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import Any, Dict, List, Optional

from .accel import IpBlacklistMatcher, generate_blacklist, parse_blacklist
from .accel.pigasus import generate_ruleset, parse_rules
from .analysis import (
    ExperimentSpec,
    MeasurementWindow,
    SweepRunner,
    SweepResult,
    TrafficProfile,
    estimated_latency_us,
    format_table,
    format_utilization_row,
    run_experiment,
)
from .core import RosebudConfig
from .faults import KNOWN_FAULT_KINDS, FaultSpec
from .firmware import (
    FirewallFirmware,
    ForwarderFirmware,
    NatFirmware,
    PigasusHwReorderFirmware,
    PigasusSwReorderFirmware,
    TwoStepForwarder,
)
from .hw import FpgaDevice, VU9P_CAPACITY
from .packet import write_pcap
from .traffic import attack_trace_from_rules, firewall_trace

LB_CHOICES = ["none", "hash", "rr", "p2c", "least"]


def _parse_sizes(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _parse_floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part]


def _lb(args: argparse.Namespace, default: Optional[str] = None) -> Optional[str]:
    choice = getattr(args, "lb", None) or default
    return None if choice in (None, "none") else choice


def _backend(args: argparse.Namespace) -> Optional[str]:
    return getattr(args, "cpu_backend", None)


def _replay(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "replay_cache", False))


def _fidelity(args: argparse.Namespace) -> str:
    return getattr(args, "fidelity", None) or "event"


def _print_fluid(outcome) -> None:
    """One-line fluid-tier accounting after a point's main table."""
    fluid = getattr(outcome, "fluid", None)
    if fluid is None:
        return
    occ = fluid.get("occupancy", {})
    line = (
        f"fluid tier: eligible={fluid.get('eligible')} "
        f"engaged={fluid.get('engaged')} warps={fluid.get('warps', 0)} "
        f"occupancy fluid={100 * occ.get('fluid', 0.0):.1f}% "
        f"event={100 * occ.get('event', 0.0):.1f}%"
    )
    reasons = fluid.get("reasons") or []
    if reasons:
        line += f" ({'; '.join(reasons)})"
    print(line)


def _replay_rate(replay: Dict[str, int]) -> float:
    lookups = sum(
        replay.get(k, 0) for k in ("hits", "misses", "fallbacks", "bypasses")
    )
    return replay.get("hits", 0) / lookups if lookups else 0.0


def _print_replay(outcome) -> None:
    """One-line replay-cache accounting after a point's main table."""
    replay = getattr(outcome, "replay", None)
    if replay is None:
        return
    print(
        f"replay cache: hits={replay.get('hits', 0)} "
        f"misses={replay.get('misses', 0)} "
        f"fallbacks={replay.get('fallbacks', 0)} "
        f"bypasses={replay.get('bypasses', 0)} "
        f"invalidations={replay.get('invalidations', 0)} "
        f"hit rate={100 * _replay_rate(replay):.1f}%"
    )


def _window(args: argparse.Namespace) -> MeasurementWindow:
    return MeasurementWindow(
        warmup_packets=args.warmup, measure_packets=args.packets
    )


def cmd_profile(args: argparse.Namespace) -> int:
    """Forwarding throughput for one (rpus, size, rate) point."""
    spec = ExperimentSpec(
        config=RosebudConfig(n_rpus=args.rpus),
        firmware=ForwarderFirmware,
        traffic=TrafficProfile(
            packet_size=args.size, offered_gbps=args.gbps, n_ports=args.ports
        ),
        window=_window(args),
        lb=_lb(args),
        cpu_backend=_backend(args),
        replay_cache=_replay(args),
        fidelity=_fidelity(args),
    )
    outcome = run_experiment(spec)
    result = outcome.throughput
    print(format_table(
        ["RPUs", "size(B)", "offered Gbps", "achieved Gbps", "MPPS", "% of line"],
        [[args.rpus, args.size, args.gbps, result.achieved_gbps,
          result.achieved_mpps, 100 * result.fraction_of_line]],
        title="basic_fw forwarding profile",
    ))
    _print_replay(outcome)
    _print_fluid(outcome)
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    """Low-load forwarding latency vs Eq. 1 for a size sweep."""
    rows = []
    for size in _parse_sizes(args.sizes):
        spec = ExperimentSpec(
            config=RosebudConfig(n_rpus=args.rpus),
            firmware=ForwarderFirmware,
            traffic=TrafficProfile(
                packet_size=size, offered_gbps=2.0, n_ports=2
            ),
            window=MeasurementWindow(
                warmup_packets=50, measure_packets=args.packets
            ),
            lb=_lb(args),
            measure="latency",
            cpu_backend=_backend(args),
            replay_cache=_replay(args),
            fidelity=_fidelity(args),
        )
        summary = run_experiment(spec).latency
        rows.append([size, summary["mean"], estimated_latency_us(size)])
    print(format_table(
        ["size(B)", "measured us", "Eq.1 us"], rows, title="forwarding latency"
    ))
    return 0


def cmd_firewall(args: argparse.Namespace) -> int:
    """The §7.2 firewall at one packet size."""
    prefixes = parse_blacklist(generate_blacklist(args.rules))
    matcher = IpBlacklistMatcher(prefixes)
    spec = ExperimentSpec(
        config=RosebudConfig(n_rpus=args.rpus),
        firmware=FirewallFirmware,
        firmware_args=(matcher,),
        traffic=TrafficProfile(
            packet_size=args.size, offered_gbps=args.gbps, n_ports=2,
            respect_generator_cap=False,
        ),
        window=_window(args),
        lb=_lb(args),
        include_absorbed=True,
        cpu_backend=_backend(args),
        replay_cache=_replay(args),
        fidelity=_fidelity(args),
    )
    outcome = run_experiment(spec)
    result = outcome.throughput
    print(format_table(
        ["size(B)", "absorbed Gbps", "% of line", "fw drops"],
        [[args.size, result.achieved_gbps, 100 * result.fraction_of_line,
          outcome.counters.get("dropped_by_firmware", 0)]],
        title=f"firewall ({args.rules} blacklist entries, {args.rpus} RPUs)",
    ))
    _print_replay(outcome)
    _print_fluid(outcome)
    return 0


def cmd_ids(args: argparse.Namespace) -> int:
    """The §7.1 IPS at one packet size (hw or sw reordering)."""
    rules = parse_rules(generate_ruleset(args.rules))
    payloads = [r.content for r in rules]
    if args.mode == "hw":
        firmware, lb = PigasusHwReorderFirmware, _lb(args)
    else:
        firmware, lb = PigasusSwReorderFirmware, _lb(args, default="hash")
    spec = ExperimentSpec(
        config=RosebudConfig(n_rpus=args.rpus, slots_per_rpu=32),
        firmware=firmware,
        firmware_args=(rules,),
        traffic=TrafficProfile(
            packet_size=args.size, offered_gbps=args.gbps, n_ports=2,
            source="flows", respect_generator_cap=False,
            source_kwargs={
                "attack_fraction": 0.01,
                "attack_payloads": tuple(payloads),
                "reorder_fraction": 0.003,
                "n_flows": 2048,
            },
        ),
        window=_window(args),
        lb=lb,
        cpu_backend=_backend(args),
        replay_cache=_replay(args),
        fidelity=_fidelity(args),
    )
    outcome = run_experiment(spec)
    result = outcome.throughput
    print(format_table(
        ["mode", "size(B)", "Gbps", "MPPS", "cycles/pkt", "to host"],
        [[args.mode, args.size, result.achieved_gbps, result.achieved_mpps,
          result.cycles_per_packet, outcome.counters.get("to_host", 0)]],
        title=f"pigasus IPS ({args.rules} rules, {args.rpus} RPUs)",
    ))
    _print_replay(outcome)
    _print_fluid(outcome)
    return 0


FIRMWARE_CHOICES = {
    "forwarder": ForwarderFirmware,
    "nat": NatFirmware,
}


def _sweep_spec(args: argparse.Namespace, rpus: int, size: int, gbps: float) -> ExperimentSpec:
    return ExperimentSpec(
        config=RosebudConfig(n_rpus=rpus),
        firmware=FIRMWARE_CHOICES[args.firmware],
        traffic=TrafficProfile(
            packet_size=size, offered_gbps=gbps, n_ports=args.ports
        ),
        window=_window(args),
        lb=_lb(args, default="hash" if args.firmware == "nat" else None),
        cpu_backend=_backend(args),
        replay_cache=_replay(args),
        fidelity=_fidelity(args),
        name=f"{args.firmware} rpus={rpus} size={size} gbps={gbps:g}",
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a (rpus x size x gbps) grid through the parallel engine."""
    sizes = _parse_sizes(args.sizes)
    rpu_set = _parse_sizes(args.rpu_set)
    gbps_set = _parse_floats(args.gbps_set)
    specs = [
        _sweep_spec(args, rpus, size, gbps)
        for rpus in rpu_set
        for size in sizes
        for gbps in gbps_set
    ]
    if not specs:
        print("sweep: empty grid (check --sizes/--rpu-set/--gbps-set)",
              file=sys.stderr)
        return 2
    try:
        runner = SweepRunner(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            point_timeout=args.timeout,
        )
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    outcome = runner.run(specs)
    rows = []
    csv_rows: List[Dict[str, Any]] = []
    for point in outcome:
        spec = point.spec
        if point.ok:
            t = point.result.throughput
            rows.append([
                spec.config.n_rpus, t.packet_size, t.offered_gbps,
                t.achieved_gbps, t.achieved_mpps, 100 * t.fraction_of_line,
                point.status,
            ])
            fluid = point.result.fluid
            row: Dict[str, Any] = {
                "rpus": spec.config.n_rpus,
                "size": t.packet_size,
                "offered_gbps": t.offered_gbps,
                "achieved_gbps": t.achieved_gbps,
                "achieved_mpps": t.achieved_mpps,
                "pct_of_line": 100 * t.fraction_of_line,
                "status": point.status,
                # per-point fidelity occupancy: fraction of simulated
                # time each tier covered (0 fluid for pure event runs)
                "fidelity": spec.fidelity,
                "fluid_occupancy": (
                    fluid["occupancy"]["fluid"] if fluid is not None else 0.0
                ),
            }
            replay = point.result.replay
            if replay is not None:
                row["replay_hits"] = replay.get("hits", 0)
                row["replay_misses"] = replay.get("misses", 0)
                row["replay_hit_rate"] = _replay_rate(replay)
            csv_rows.append(row)
        else:
            rows.append([
                spec.config.n_rpus, spec.traffic.packet_size,
                spec.traffic.offered_gbps, "-", "-", "-", point.status,
            ])
    print(format_table(
        ["RPUs", "size(B)", "offered Gbps", "Gbps", "MPPS", "% of line", "status"],
        rows,
        title=(
            f"{args.firmware} sweep ({len(specs)} points, jobs={args.jobs}, "
            f"{runner.stats['cached']} cached, {runner.stats['simulated']} simulated)"
        ),
    ))
    if args.out and csv_rows:
        columns = list(csv_rows[0].keys())
        SweepResult(columns=columns, rows=csv_rows).to_csv(args.out)
        print(f"wrote {len(csv_rows)} rows to {args.out}")
    return 0 if not outcome.failed else 1


def cmd_resources(args: argparse.Namespace) -> int:
    """Print the Table 1/2-style utilization report."""
    device = FpgaDevice(args.rpus)
    device.check_fits()
    comp = device.components
    rows = [
        format_utilization_row("Single RPU", comp.rpu_base, VU9P_CAPACITY),
        format_utilization_row("Remaining (PR)", comp.rpu_remaining, VU9P_CAPACITY),
        format_utilization_row("LB", comp.lb, VU9P_CAPACITY),
        format_utilization_row("Single Interconnect", comp.interconnect, VU9P_CAPACITY),
        format_utilization_row("CMAC", comp.cmac, VU9P_CAPACITY),
        format_utilization_row("PCIe", comp.pcie, VU9P_CAPACITY),
        format_utilization_row("Switching", comp.switching, VU9P_CAPACITY),
    ]
    print(format_table(
        ["Component", "LUTs", "Registers", "BRAM", "URAM", "DSP"],
        rows, title=f"base utilization, {args.rpus} RPUs",
    ))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Generate an attack trace pcap (the artifact's `make gen`)."""
    if args.kind == "firewall":
        prefixes = parse_blacklist(generate_blacklist(args.rules))
        packets = firewall_trace(prefixes, packet_size=args.size)
    else:
        rules = parse_rules(generate_ruleset(args.rules))
        packets = attack_trace_from_rules(rules, packet_size=args.size)
    count = write_pcap(args.out, packets)
    print(f"wrote {count} packets to {args.out}")
    return 0


def cmd_nat(args: argparse.Namespace) -> int:
    """Run the NAT middlebox at one packet size."""
    spec = ExperimentSpec(
        config=RosebudConfig(n_rpus=args.rpus),
        firmware=NatFirmware,
        traffic=TrafficProfile(
            packet_size=args.size, offered_gbps=args.gbps, n_ports=1,
            respect_generator_cap=False,
        ),
        window=_window(args),
        lb=_lb(args, default="hash"),
        cpu_backend=_backend(args),
        replay_cache=_replay(args),
        fidelity=_fidelity(args),
    )
    outcome = run_experiment(spec)
    result = outcome.throughput
    print(format_table(
        ["size(B)", "Gbps", "MPPS", "translated"],
        [[args.size, result.achieved_gbps, result.achieved_mpps,
          outcome.firmware_totals.get("translated", 0)]],
        title=f"NAT middlebox ({args.rpus} RPUs, {spec.lb or 'hash'} LB)",
    ))
    _print_replay(outcome)
    _print_fluid(outcome)
    return 0


#: --fault shorthand names -> FaultSpec field names.
_FAULT_FIELD_ALIASES = {
    "at": "at_cycles",
    "duration": "duration_cycles",
    "at_cycles": "at_cycles",
    "duration_cycles": "duration_cycles",
    "target": "target",
    "magnitude": "magnitude",
    "seed": "seed",
}


def _fault_value(text: str) -> Any:
    """Best-effort typing for --fault values: int, then float, then str."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def parse_fault_arg(text: str) -> FaultSpec:
    """Parse one ``--fault kind:key=val,key=val`` argument.

    Keys matching FaultSpec fields (``at``/``at_cycles``, ``target``,
    ``duration``/``duration_cycles``, ``magnitude``, ``seed``) set those
    fields; everything else rides in ``params`` (e.g. ``mode=lose``,
    ``threshold_cycles=30000``).
    """
    kind, _, rest = text.partition(":")
    kind = kind.strip()
    if kind not in KNOWN_FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; choices: {sorted(KNOWN_FAULT_KINDS)}"
        )
    fields: Dict[str, Any] = {}
    params: Dict[str, Any] = {}
    for item in rest.split(","):
        item = item.strip()
        if not item:
            continue
        key, eq, value = item.partition("=")
        if not eq:
            raise ValueError(f"--fault item {item!r} is not key=value")
        key = key.strip()
        if key in _FAULT_FIELD_ALIASES:
            fields[_FAULT_FIELD_ALIASES[key]] = _fault_value(value.strip())
        else:
            params[key] = _fault_value(value.strip())
    return FaultSpec(kind=kind, params=tuple(sorted(params.items())), **fields)


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a fault-injection campaign and print the resilience report."""
    try:
        faults = tuple(parse_fault_arg(text) for text in args.fault)
    except ValueError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    if not faults:
        print("chaos: no --fault given (try --fault reconfig:at=200000,"
              "target=0,pr_load_ms=0.1)", file=sys.stderr)
        return 2
    if args.firmware == "firewall":
        prefixes = parse_blacklist(generate_blacklist(args.rules))
        firmware, fw_args = FirewallFirmware, (IpBlacklistMatcher(prefixes),)
    else:
        firmware, fw_args = ForwarderFirmware, ()
    spec = ExperimentSpec(
        config=RosebudConfig(n_rpus=args.rpus),
        firmware=firmware,
        firmware_args=fw_args,
        traffic=TrafficProfile(
            packet_size=args.size, offered_gbps=args.gbps, n_ports=args.ports
        ),
        window=_window(args),
        lb=_lb(args),
        cpu_backend=_backend(args),
        replay_cache=_replay(args),
        fidelity=_fidelity(args),
        faults=faults,
    )
    outcome = run_experiment(spec)
    result = outcome.throughput
    resilience = outcome.resilience or {}
    dip = resilience.get("dip", {})
    print(format_table(
        ["RPUs", "size(B)", "Gbps", "baseline Gbps", "min Gbps", "dip depth",
         "dip width (cyc)"],
        [[args.rpus, args.size, result.achieved_gbps,
          dip.get("baseline_gbps", 0.0), dip.get("min_gbps", 0.0),
          dip.get("depth", 0.0), dip.get("width_cycles", 0.0)]],
        title=f"chaos: {', '.join(f.kind for f in faults)}",
    ))
    watchdog_rows = [
        [w["rpu"], w["detected_at"], w["packets_lost"], w["recovery_cycles"]]
        for w in resilience.get("watchdog", [])
    ]
    if watchdog_rows:
        print(format_table(
            ["RPU", "detected at (cyc)", "packets lost", "MTTR (cyc)"],
            watchdog_rows, title="watchdog recoveries",
        ))
    mac = resilience.get("mac", {})
    print(f"time to detect: {resilience.get('time_to_detect_cycles', 0.0):g} cycles; "
          f"packets lost to eviction: {resilience.get('packets_lost', 0)}; "
          f"csum drops: {mac.get('rx_csum_drops', 0)}; "
          f"link drops: {mac.get('rx_link_drops', 0)}; "
          f"poisoned accel results: {resilience.get('accel_results_poisoned', 0)}")
    _print_replay(outcome)
    _print_fluid(outcome)
    if args.json:
        import json as _json

        with open(args.json, "w") as fh:
            _json.dump(outcome.to_dict(), fh, sort_keys=True, indent=1)
        print(f"wrote report to {args.json}")
    return 0


def parse_cluster_event(text: str):
    """``KIND:AT:BOARD`` -> a cluster event tuple, e.g. ``drain:50000:1``."""
    parts = text.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"cluster event {text!r} is not KIND:AT_CYCLES:BOARD "
            "(e.g. drain:50000:1)"
        )
    kind, at, board = parts
    return (float(at), kind, int(board))


def cmd_cluster(args: argparse.Namespace) -> int:
    """Run an N-board cluster point and print the rack-level report."""
    from .cluster import ClusterSpec
    from .cluster.engine import ClusterEngine

    try:
        events = [parse_cluster_event(text) for text in args.event]
    except ValueError as exc:
        print(f"cluster: {exc}", file=sys.stderr)
        return 2
    if args.firmware == "firewall":
        prefixes = parse_blacklist(generate_blacklist(args.rules))
        firmware, fw_args = FirewallFirmware, (IpBlacklistMatcher(prefixes),)
    else:
        firmware, fw_args = ForwarderFirmware, ()
    spec = ExperimentSpec(
        config=RosebudConfig(n_rpus=args.rpus),
        firmware=firmware,
        firmware_args=fw_args,
        traffic=TrafficProfile(
            packet_size=args.size, offered_gbps=args.gbps, n_ports=args.ports
        ),
        window=_window(args),
        lb=_lb(args),
        cpu_backend=_backend(args),
        replay_cache=_replay(args),
        fidelity=_fidelity(args),
        cluster=ClusterSpec(
            boards=args.boards,
            link_gbps=args.link_gbps,
            link_latency_cycles=args.link_latency_cycles,
            affinity=args.affinity,
            watchdog_horizons=args.watchdog_horizons,
        ),
    )
    outcome = ClusterEngine(spec, shards=args.shards, events=events).run_to_completion()
    result = outcome.throughput
    cluster = outcome.cluster
    cross = cluster["cross_board"]
    print(format_table(
        ["boards", "RPUs/board", "size(B)", "offered Gbps", "achieved Gbps",
         "MPPS", "x-board pkts", "repinned"],
        [[args.boards, args.rpus, args.size, result.offered_gbps,
          result.achieved_gbps, result.achieved_mpps,
          cross["packets"], cross["repinned_flows"]]],
        title=f"cluster: {args.boards}x boards, {args.affinity} affinity, "
              f"{args.shards} shard(s)",
    ))
    if cluster.get("fluid") is not None:
        print(format_table(
            ["board", "live", "completions", "tx pkts", "rx drops",
             "fluid occ", "warps", "de-opts"],
            [[b["board"], b["live"], b["completions"], b["tx_packets"],
              b["rx_drops"],
              f"{b['fluid']['occupancy']['fluid']:.1%}",
              b["fluid"]["warps"], b["fluid"]["cross_deopts"]]
             for b in cluster["per_board"]],
            title="per board",
        ))
        agg = cluster["fluid"]
        print(f"fluid: {agg['boards_engaged']}/{len(cluster['per_board'])} "
              f"boards warping, {agg['warps']} warps "
              f"({agg['periods_warped']} periods, "
              f"{agg['warped_cycles']:g} cycles), "
              f"{agg['cross_deopts']} cross-board de-opts, "
              f"occupancy {agg['occupancy']['fluid']:.1%} fluid")
    else:
        print(format_table(
            ["board", "live", "completions", "tx pkts", "rx drops"],
            [[b["board"], b["live"], b["completions"], b["tx_packets"],
              b["rx_drops"]] for b in cluster["per_board"]],
            title="per board",
        ))
    resilience = cluster["resilience"]
    if cluster["events"] or resilience["watchdog"]:
        for event in cluster["events"]:
            print(f"  t={event['t']:g}: {event['kind']} board {event['board']}"
                  f" ({event['source']})")
        dip = resilience["dip"]
        print(f"dip: baseline={dip['baseline_gbps']:.1f} Gbps "
              f"min={dip['min_gbps']:.1f} Gbps depth={dip['depth']:.3f} "
              f"width={dip['width_cycles']:g} cyc; "
              f"MTTR={resilience['mttr_cycles']:g} cyc")
    _print_replay(outcome)
    if args.json:
        import json as _json

        with open(args.json, "w") as fh:
            _json.dump(outcome.to_dict(), fh, sort_keys=True, indent=1)
        print(f"wrote report to {args.json}")
    return 0


def _loopback_setup(n_rpus: int, system) -> None:
    system.lb.host_write(system.lb.REG_ENABLE_MASK, (1 << (n_rpus // 2)) - 1)


def cmd_loopback(args: argparse.Namespace) -> int:
    """The §6.3 two-step-forwarding loopback measurement."""
    spec = ExperimentSpec(
        config=RosebudConfig(n_rpus=args.rpus),
        firmware=TwoStepForwarder,
        firmware_args=(args.rpus,),
        traffic=TrafficProfile(
            packet_size=args.size, offered_gbps=args.gbps, n_ports=1,
            respect_generator_cap=False, seed_base=1,
        ),
        window=_window(args),
        setup=functools.partial(_loopback_setup, args.rpus),
        cpu_backend=_backend(args),
        replay_cache=_replay(args),
        fidelity=_fidelity(args),
    )
    outcome = run_experiment(spec)
    result = outcome.throughput
    print(format_table(
        ["size(B)", "Gbps", "% of line", "loopbacked"],
        [[args.size, result.achieved_gbps, 100 * result.fraction_of_line,
          outcome.counters.get("loopbacked", 0)]],
        title="two-step forwarding over the loopback port",
    ))
    _print_replay(outcome)
    _print_fluid(outcome)
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    """Time the forwarder loop on one functional RPU (ISS calibration).

    Reports cycles/packet (the §6.1 firmware-loop number) and host-side
    instructions/sec for the selected ``--cpu-backend``, so the cost of
    a simulation campaign can be estimated before launching it.
    """
    import time

    from .core.funcsim import FunctionalRpu
    from .firmware import FORWARDER_ASM
    from .riscv import get_default_backend

    backend = _backend(args) or get_default_backend()
    rpu = FunctionalRpu(FORWARDER_ASM, cpu_backend=backend)
    payload = bytes(range(256)) * ((args.size + 255) // 256)
    packets = max(args.packets, 10)

    start_instret = rpu.cpu.instret
    wall = 0.0
    for i in range(packets):
        rpu.push_packet(payload[: args.size], port=i % 2)
        t0 = time.perf_counter()
        rpu.run_until_sent(len(rpu.sent) + 1)
        wall += time.perf_counter() - t0
    instructions = rpu.cpu.instret - start_instret

    deltas = FunctionalRpu(FORWARDER_ASM, cpu_backend=backend).measure_cycles_per_packet(
        [payload[: args.size]] * 8
    )
    cycles_per_pkt = deltas[-1] if deltas else 0
    ips = instructions / wall if wall > 0 else float("inf")
    print(format_table(
        ["backend", "packets", "cycles/pkt", "instructions", "inst/sec"],
        [[backend, packets, cycles_per_pkt, instructions, f"{ips:,.0f}"]],
        title="ISS calibration (forwarder firmware)",
    ))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Online serving mode: a line-delimited JSON-RPC session loop.

    Interactive by default (requests on stdin, ``repro-serve/1``
    replies on stdout); ``--script scenario.jsonl`` replays a recorded
    scenario instead, and ``--check`` makes any error reply fail the
    exit status (the CI smoke mode).
    """
    from .serve.rpc import serve_loop

    if args.script and args.script != "-":
        with open(args.script) as fh:
            return serve_loop(fh, sys.stdout, check=args.check)
    return serve_loop(sys.stdin, sys.stdout, check=args.check)


def cmd_verify(args: argparse.Namespace) -> int:
    """Static firmware verification: CFG/WCET budget + MMIO + replay lint.

    ``--deep`` additionally prints what the abstract interpreter proved:
    the memory-safety verdict of every load/store site with its abstract
    address, the inferred loop bounds with their provenance
    (inferred / annotation / default), and the worst-case stack depth.

    Exit status: 0 = every verified firmware PASSes, 1 = at least one
    FAILs (or has error-level diagnostics), 2 = unknown firmware name.
    """
    from .verify import bundled_firmware_names, reports_to_json, verify_firmware

    names = bundled_firmware_names()
    if args.all:
        targets = names
    else:
        if args.fw is None:
            print(f"choose --fw {{{','.join(names)}}} or --all")
            return 2
        if args.fw not in names:
            print(f"unknown firmware {args.fw!r}; bundled: {names}")
            return 2
        targets = [args.fw]

    reports = []
    for name in targets:
        # point overrides apply only when given; otherwise each firmware
        # is verified at its registry-documented operating point
        reports.append(
            verify_firmware(
                name, n_rpus=args.rpus, packet_size=args.size, gbps=args.gbps
            )
        )

    if args.json is not None:
        payload = reports_to_json(reports)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.json}")
    else:
        rows = []
        for r in reports:
            print(r.verdict.summary())
            print(f"  critical path: {r.wcet.chain()}")
            for handler, cycles in sorted(r.wcet.handlers.items()):
                print(f"  handler {handler}: {cycles:.0f} cycles (incl. trap entry)")
            if r.lint is not None:
                print(f"  replay lint: {r.lint.cls_name} is {r.lint.classification}")
            if r.safety is not None:
                s = r.safety
                print(
                    f"  memory safety: {'PASS' if s.passed else 'FAIL'} — "
                    f"{s.proven} proven / {s.unproven} unproven / "
                    f"{s.violations} violation(s); stack "
                    f"{s.stack_depth_bytes}/{s.stack_limit_bytes} B"
                )
            if args.deep:
                bounds = r.wcet.loop_bounds or {}
                prov = r.wcet.bound_provenance or {}
                for label in sorted(bounds):
                    print(
                        f"  loop {label}: bound {bounds[label]} "
                        f"({prov.get(label, 'default')})"
                    )
                if r.safety is not None:
                    for c in r.safety.checks:
                        extra = ""
                        if c.within_pkt_len is not None:
                            extra = (
                                "  [within pkt_len]" if c.within_pkt_len
                                else "  [may exceed pkt_len]"
                            )
                        print(
                            f"    {c.pc:#06x} {c.kind:<5} {c.nbytes}B "
                            f"{c.addr_desc:<28} {c.verdict:<9} "
                            f"{c.region or '-':<12} {c.detail}{extra}"
                        )
            for d in r.all_diagnostics():
                print(f"  {d.format()}")
            rows.append([
                r.name, r.verdict.verdict, f"{r.wcet.wcet_cycles:.0f}",
                f"{r.verdict.budget_cycles:.1f}", f"{r.verdict.headroom_pct:+.1f}%",
                f"{r.verdict.ceiling_gbps:.1f}", r.point.n_rpus,
                r.point.packet_size, f"{r.point.gbps:g}",
            ])
        if len(reports) > 1:
            print(format_table(
                ["firmware", "verdict", "wcet", "budget", "headroom",
                 "ceiling Gbps", "rpus", "size", "Gbps"],
                rows, title="static verification",
            ))
    return 0 if all(r.passed for r in reports) else 1


def cmd_disasm(args: argparse.Namespace) -> int:
    """Disassemble a built-in firmware or an RFW image file."""
    from .firmware import FIREWALL_ASM, FORWARDER_ASM, PIGASUS_ASM
    from .riscv import assemble
    from .riscv.disasm import disassemble
    from .riscv.image import FirmwareImage, SEG_IMEM

    builtin = {
        "forwarder": FORWARDER_ASM,
        "firewall": FIREWALL_ASM,
        "pigasus": PIGASUS_ASM,
    }
    if args.target in builtin:
        image_bytes = assemble(builtin[args.target]).image
    else:
        blob = open(args.target, "rb").read()
        image_bytes = FirmwareImage.from_bytes(blob).segment(SEG_IMEM).payload
    for line in disassemble(image_bytes):
        print(line)
    return 0


def cmd_image(args: argparse.Namespace) -> int:
    """Build an RFW firmware image from a built-in firmware."""
    from .firmware import FIREWALL_ASM, FORWARDER_ASM, PIGASUS_ASM
    from .riscv.image import FirmwareImage

    builtin = {
        "forwarder": FORWARDER_ASM,
        "firewall": FIREWALL_ASM,
        "pigasus": PIGASUS_ASM,
    }
    if args.firmware not in builtin:
        print(f"unknown firmware {args.firmware!r}; choices: {sorted(builtin)}")
        return 1
    image = FirmwareImage.from_asm(builtin[args.firmware])
    blob = image.to_bytes()
    with open(args.out, "wb") as fh:
        fh.write(blob)
    print(f"wrote {len(blob)} bytes ({len(image.segments)} segments) to {args.out}")
    return 0


def _common_parser() -> argparse.ArgumentParser:
    """The point-selection flags every experiment subcommand accepts.

    Built fresh per subparser: ``set_defaults`` mutates the matching
    action objects, so a *shared* parent would leak one subcommand's
    defaults (e.g. loopback's ``size=128``) into every other.
    """
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--rpus", type=int, default=16, help="number of RPUs")
    common.add_argument("--size", type=int, default=512, help="packet size, bytes")
    common.add_argument("--gbps", type=float, default=200.0,
                        help="total offered rate, Gbps")
    common.add_argument("--lb", choices=LB_CHOICES, default=None,
                        help="load-balancer policy override")
    common.add_argument("--warmup", type=int, default=800,
                        help="warmup packets before the window")
    common.add_argument("--packets", type=int, default=3000,
                        help="packets in the measurement window")
    common.add_argument("--replay-cache", action="store_true",
                        help="memoize per-packet firmware execution by packet "
                             "class (identical statistics, less wall clock)")
    common.add_argument("--cpu-backend", choices=["interp", "translated"],
                        default=None,
                        help="ISS execution backend (default: translated)")
    common.add_argument("--fidelity", choices=["event", "fluid"], default=None,
                        help="simulation fidelity tier: event (pure "
                             "discrete-event) or fluid (skip provably "
                             "repetitive steady-state periods arithmetically; "
                             "counters stay byte-identical)")
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Rosebud reproduction host utilities"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", parents=[_common_parser()],
                       help="forwarding throughput point")
    p.add_argument("--ports", type=int, default=2)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("latency", parents=[_common_parser()], help="latency sweep vs Eq.1")
    p.add_argument("--sizes", default="64,512,1500")
    p.set_defaults(func=cmd_latency, packets=200)

    p = sub.add_parser("firewall", parents=[_common_parser()],
                       help="firewall case study point")
    p.add_argument("--rules", type=int, default=1050)
    p.set_defaults(func=cmd_firewall)

    p = sub.add_parser("ids", parents=[_common_parser()], help="pigasus IPS case study point")
    p.add_argument("--mode", choices=["hw", "sw"], default="hw")
    p.add_argument("--rules", type=int, default=120)
    p.set_defaults(func=cmd_ids, rpus=8, size=800)

    p = sub.add_parser("sweep", parents=[_common_parser()],
                       help="grid sweep through the parallel engine")
    p.add_argument("--firmware", choices=sorted(FIRMWARE_CHOICES), default="forwarder")
    p.add_argument("--sizes", default="64,512,1500",
                   help="comma-separated packet sizes")
    p.add_argument("--rpu-set", default="16", help="comma-separated RPU counts")
    p.add_argument("--gbps-set", default="200", help="comma-separated offered rates")
    p.add_argument("--jobs", type=int, default=1, help="parallel worker processes")
    p.add_argument("--ports", type=int, default=2)
    p.add_argument("--cache-dir", default=None,
                   help="skip points already measured into this directory")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-point wall-clock limit, seconds")
    p.add_argument("--out", default=None, help="CSV path for the rows")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("chaos", parents=[_common_parser()],
                       help="fault-injection campaign + resilience report")
    p.add_argument("--fault", action="append", default=[],
                   metavar="KIND:KEY=VAL,...",
                   help="add a fault, e.g. rpu_wedge:at=100000,target=3 "
                        "(repeatable; kinds: " + ",".join(sorted(KNOWN_FAULT_KINDS)) + ")")
    p.add_argument("--firmware", choices=["forwarder", "firewall"],
                   default="forwarder")
    p.add_argument("--rules", type=int, default=1050,
                   help="blacklist size for --firmware firewall")
    p.add_argument("--ports", type=int, default=2)
    p.add_argument("--json", default=None, help="write the full report as JSON")
    p.set_defaults(func=cmd_chaos, gbps=80.0, rpus=8, packets=20000, warmup=2000)

    p = sub.add_parser("cluster", parents=[_common_parser()],
                       help="N-board rack point (flow-affine scale-out)")
    p.add_argument("--boards", type=int, default=2, help="boards in the rack")
    p.add_argument("--link-gbps", type=float, default=100.0,
                   help="inter-board link rate per direction")
    p.add_argument("--link-latency-cycles", type=float, default=250.0,
                   help="inter-board propagation latency (also the "
                        "barrier lookahead; larger values give fluid "
                        "boards longer uninterrupted warp windows)")
    p.add_argument("--affinity", choices=["hash", "local"], default="hash",
                   help="flow steering policy across boards")
    p.add_argument("--watchdog-horizons", type=int, default=8,
                   help="zero-progress horizons before board eviction "
                        "(0 disables failover)")
    p.add_argument("--shards", type=int, default=1,
                   help="worker processes to spread the boards over "
                        "(results are byte-identical for any value)")
    p.add_argument("--event", action="append", default=[],
                   metavar="KIND:AT:BOARD",
                   help="schedule a liveness event, e.g. drain:50000:1 "
                        "(kinds: drain, restore, wedge_board, unwedge_board; "
                        "repeatable)")
    p.add_argument("--firmware", choices=["forwarder", "firewall"],
                   default="forwarder")
    p.add_argument("--rules", type=int, default=1050,
                   help="blacklist size for --firmware firewall")
    p.add_argument("--ports", type=int, default=2)
    p.add_argument("--json", default=None, help="write the full report as JSON")
    p.set_defaults(func=cmd_cluster, gbps=80.0, rpus=8, packets=6000, warmup=500)

    p = sub.add_parser("resources", parents=[_common_parser()], help="utilization report")
    p.set_defaults(func=cmd_resources)

    p = sub.add_parser("nat", parents=[_common_parser()], help="NAT middlebox point")
    p.set_defaults(func=cmd_nat, rpus=8, gbps=100.0)

    p = sub.add_parser("loopback", parents=[_common_parser()],
                       help="two-step loopback measurement")
    p.set_defaults(func=cmd_loopback, size=128, gbps=100.0)

    p = sub.add_parser("calibrate", parents=[_common_parser()],
                       help="ISS speed/cycles-per-packet calibration")
    p.set_defaults(func=cmd_calibrate, packets=200)

    p = sub.add_parser("serve",
                       help="interactive JSON-RPC session over stdin/stdout")
    p.add_argument("--script", default=None, metavar="PATH",
                   help="replay a .jsonl scenario ('-' or omitted: stdin)")
    p.add_argument("--check", action="store_true",
                   help="exit nonzero if any request errors (scripted mode)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("verify", parents=[_common_parser()],
                       help="static firmware verification (CFG/WCET budget, "
                            "MMIO footprint, replay lint)")
    p.add_argument("--fw", default=None,
                   help="bundled firmware to verify (see repro.verify registry)")
    p.add_argument("--all", action="store_true",
                   help="verify every bundled firmware at its documented point")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="emit the repro-verify/1 JSON report to PATH ('-' for "
                        "stdout) instead of the table")
    p.add_argument("--deep", action="store_true",
                   help="print the abstract-interpretation detail: per-access "
                        "memory-safety verdicts with provenance, inferred "
                        "loop bounds, worst-case stack depth")
    # point flags fall back to each firmware's registry-documented
    # operating point, not the generic experiment defaults
    p.set_defaults(func=cmd_verify, rpus=None, size=None, gbps=None)

    p = sub.add_parser("disasm", parents=[_common_parser()], help="disassemble firmware")
    p.add_argument("target", help="builtin name (forwarder/firewall/pigasus) or .rfw file")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("image", parents=[_common_parser()], help="build an RFW firmware image")
    p.add_argument("firmware", help="builtin name (forwarder/firewall/pigasus)")
    p.add_argument("--out", default="firmware.rfw")
    p.set_defaults(func=cmd_image)

    p = sub.add_parser("trace", parents=[_common_parser()], help="generate an attack pcap")
    p.add_argument("--kind", choices=["firewall", "ids"], default="firewall")
    p.add_argument("--rules", type=int, default=100)
    p.add_argument("--out", default="attack.pcap")
    p.set_defaults(func=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    backend = getattr(args, "cpu_backend", None)
    if backend is not None:
        # covers every RiscvCpu built this process; specs additionally
        # carry the choice so spawn-pool workers follow it too
        from .riscv import set_default_backend

        set_default_backend(backend)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
