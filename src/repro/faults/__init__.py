"""Deterministic fault injection & resilience measurement.

The paper's key operational claims — hanged-RPU eviction (§3.4,
Appendix A.8) and no-pause partial reconfiguration (§4.1) — are about
how the system behaves *when things go wrong*.  This package makes
"things going wrong" a declarative, seedable part of an experiment:

* :class:`FaultSpec` — one fault as plain data (picklable, hashable),
* :class:`InjectorRegistry` / :func:`install_faults` — schedule faults
  on the simulation clock,
* :func:`resilience_report` — time-to-detect, MTTR, packets lost, and
  throughput dip depth/width from the sampler time series.

``ExperimentSpec(faults=[...])`` runs a chaos experiment through the
same engine, cache, and spawn pool as any other measurement.
"""

from .injectors import (
    REGISTRY,
    FaultController,
    FaultInjector,
    InjectorRegistry,
    install_faults,
)
from .metrics import (
    DIP_THRESHOLD,
    baseline_gbps,
    dip_profile,
    reconfig_summary,
    resilience_report,
    time_to_detect,
    watchdog_summary,
)
from .spec import KNOWN_FAULT_KINDS, FaultSpec, FaultSpecError

__all__ = [
    "REGISTRY",
    "FaultController",
    "FaultInjector",
    "InjectorRegistry",
    "install_faults",
    "DIP_THRESHOLD",
    "baseline_gbps",
    "dip_profile",
    "reconfig_summary",
    "resilience_report",
    "time_to_detect",
    "watchdog_summary",
    "KNOWN_FAULT_KINDS",
    "FaultSpec",
    "FaultSpecError",
]
