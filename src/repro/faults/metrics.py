"""Resilience metrics over a chaos run.

Everything here is computed from *simulation-time* quantities — sample
timestamps in cycles, watchdog/reconfiguration logs, counter deltas —
so the report is bit-identical between a serial run and a spawn-pool
worker, and byte-identical when serialised with ``json.dumps``.
"""

from __future__ import annotations

from statistics import median
from typing import Any, Dict, List, Sequence

from ..core.profiler import Sample

#: A sample counts as inside the dip when its rate falls below this
#: fraction of baseline.
DIP_THRESHOLD = 0.9


def baseline_gbps(samples: Sequence[Sample], skip: int = 1) -> float:
    """Robust steady-state throughput: the median across the window —
    a dip of a few intervals cannot move it the way a mean would."""
    steady = list(samples[skip:])
    if not steady:
        return 0.0
    return median(s.gbps for s in steady)


def dip_profile(
    samples: Sequence[Sample],
    skip: int = 1,
    threshold: float = DIP_THRESHOLD,
) -> Dict[str, float]:
    """Depth and width of the worst throughput excursion.

    * ``depth`` — ``1 - min/baseline`` (0 means perfectly flat),
    * ``width_cycles`` — total simulated time spent below
      ``threshold * baseline``,
    * ``recovered`` — whether the *last* sample is back above the
      threshold (the dip ended inside the window).
    """
    steady = list(samples[skip:])
    base = baseline_gbps(samples, skip)
    if not steady or base <= 0:
        return {
            "baseline_gbps": 0.0,
            "min_gbps": 0.0,
            "depth": 0.0,
            "width_cycles": 0.0,
            "recovered": True,
        }
    floor = threshold * base
    low = min(s.gbps for s in steady)
    width = sum(
        s.t_end_cycles - s.t_start_cycles for s in steady if s.gbps < floor
    )
    return {
        "baseline_gbps": base,
        "min_gbps": low,
        "depth": max(0.0, 1.0 - low / base),
        "width_cycles": width,
        "recovered": steady[-1].gbps >= floor,
    }


def watchdog_summary(watchdog_log) -> List[Dict[str, Any]]:
    """One row per automatic recovery: detection time, packets lost to
    the eviction, and MTTR in cycles (0 while still reloading)."""
    return [
        {
            "rpu": event.rpu,
            "detected_at": event.detected_at,
            "packets_lost": event.packets_lost,
            "recovered_at": event.recovered_at,
            "recovery_cycles": event.recovery_cycles() if event.recovered else 0.0,
        }
        for event in watchdog_log
    ]


def reconfig_summary(reconfig_log) -> List[Dict[str, Any]]:
    return [
        {
            "rpu": record.rpu,
            "requested_at": record.requested_at,
            "drained_at": record.drained_at,
            "booted_at": record.booted_at,
            "drain_cycles": record.drain_cycles() if record.drained_at else 0.0,
            "total_cycles": record.total_cycles() if record.booted_at else 0.0,
        }
        for record in reconfig_log
    ]


def time_to_detect(events: Sequence[Dict[str, Any]], watchdog_log) -> float:
    """Cycles from the first fault firing to the first watchdog
    detection (0 when either never happened)."""
    starts = [
        e["t"]
        for e in events
        if e["phase"] == "start" and e["kind"] not in ("watchdog", "reconfig")
    ]
    if not starts or not watchdog_log:
        return 0.0
    return max(0.0, watchdog_log[0].detected_at - min(starts))


def resilience_report(controller, skip: int = 1) -> Dict[str, Any]:
    """The full chaos-run summary, JSON-safe and deterministic.

    ``controller`` is the :class:`~repro.faults.injectors.FaultController`
    returned by ``install_faults``; call after the measurement window.
    """
    system = controller.system
    mac_totals = {
        key: sum(mac.counters.value(key) for mac in system.macs)
        for key in ("rx_drops", "rx_csum_drops", "rx_link_drops")
    }
    report: Dict[str, Any] = {
        "dip": dip_profile(controller.sampler.samples, skip),
        "samples": len(controller.sampler.samples),
        "events": list(controller.events),
        "watchdog": watchdog_summary(controller.host.watchdog_log),
        "reconfig": reconfig_summary(controller.host.reconfig_log),
        "time_to_detect_cycles": time_to_detect(
            controller.events, controller.host.watchdog_log
        ),
        "packets_lost": sum(e.packets_lost for e in controller.host.watchdog_log),
        "mac": mac_totals,
        "accel_results_poisoned": sum(
            accel.results_poisoned for accel in controller.rpu_accelerators(-1)
        ),
    }
    return report
