"""Declarative fault descriptions: :class:`FaultSpec`.

A fault is *data*, not code: kind, trigger time, target, duration and
a seed.  This keeps chaos experiments first-class citizens of the
:class:`~repro.analysis.spec.ExperimentSpec` world — picklable for the
spawn pool, stably hashable for the result cache, and reproducible
from the JSON the sweep engine writes out.

Known kinds (each maps to an injector in :mod:`repro.faults.injectors`):

``rpu_wedge``
    Firmware on RPU ``target`` stops making progress at ``at_cycles``;
    a positive ``duration_cycles`` makes the wedge transient.
``mac_corrupt``
    Frames on port ``target`` are corrupted / truncated / lost with
    probability ``magnitude`` for ``duration_cycles`` (``params``:
    ``mode`` in ``corrupt``/``truncate``/``lose``).
``link_flap``
    Port ``target`` loses link for ``duration_cycles``.
``accel_fault``
    The accelerator(s) of RPU ``target`` return poisoned results for
    ``duration_cycles`` (``target < 0`` poisons every RPU).
``reconfig``
    A host-initiated evict-free partial reconfiguration of RPU
    ``target`` at ``at_cycles`` (the §4.1 no-pause experiment).
``watchdog``
    Start the host hang watchdog at ``at_cycles`` (``params``:
    ``threshold_cycles``, ``poll_cycles``).
``sampler``
    Override the resilience sampler interval (``params``:
    ``interval_cycles``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Tuple

KNOWN_FAULT_KINDS = (
    "rpu_wedge",
    "mac_corrupt",
    "link_flap",
    "accel_fault",
    "reconfig",
    "watchdog",
    "sampler",
)


class FaultSpecError(ValueError):
    """Raised for inconsistent fault specifications."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault event.

    ``params`` accepts a plain dict for convenience and is normalised
    to sorted ``(key, value)`` tuples so specs hash and pickle stably.
    """

    kind: str
    at_cycles: float = 0.0
    target: int = 0
    duration_cycles: float = 0.0
    magnitude: float = 1.0
    seed: int = 0
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; "
                f"choices: {sorted(KNOWN_FAULT_KINDS)}"
            )
        if self.at_cycles < 0:
            raise FaultSpecError(f"fault cannot fire in the past (at={self.at_cycles})")
        if self.duration_cycles < 0:
            raise FaultSpecError("duration must be non-negative")
        if not 0.0 <= self.magnitude <= 1.0:
            raise FaultSpecError(
                f"magnitude {self.magnitude} must be a probability in [0, 1]"
            )
        if isinstance(self.params, dict):
            object.__setattr__(self, "params", tuple(sorted(self.params.items())))

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def param(self, key: str, default: Any = None) -> Any:
        return self.kwargs.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "at_cycles": self.at_cycles,
            "target": self.target,
            "duration_cycles": self.duration_cycles,
            "magnitude": self.magnitude,
            "seed": self.seed,
            "params": {k: v for k, v in self.params},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultSpecError(f"unknown FaultSpec fields: {sorted(unknown)}")
        return cls(**data)
