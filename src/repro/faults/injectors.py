"""Fault injectors: turn :class:`FaultSpec` data into scheduled events.

The :class:`InjectorRegistry` maps fault kinds to injector classes;
:func:`install_faults` builds a :class:`FaultController` that owns the
host interface and the resilience :class:`~repro.core.profiler.StatsSampler`
and schedules every fault on the simulation clock.  All randomness is
drawn from ``random.Random(spec.seed)`` so a chaos experiment replays
bit-identically — in-process, in a spawn-pool worker, or from a cached
spec JSON.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Type

from ..accel.base import Accelerator
from ..core.host import HostInterface
from ..core.profiler import StatsSampler
from ..core.system import RosebudSystem
from ..packet.packet import Packet
from .spec import FaultSpec, FaultSpecError

#: Default resilience sampler interval (overridable via a ``sampler``
#: fault spec) — fine enough to resolve a reconfiguration dip.
DEFAULT_SAMPLE_CYCLES = 25_000.0


class FaultInjector:
    """Base class: one spec, installed once onto a controller."""

    kind = ""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)

    def install(self, controller: "FaultController") -> None:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------------

    def _mark(self, controller: "FaultController", phase: str) -> None:
        controller.record(self.spec, phase)

    def _schedule_window(self, controller: "FaultController", start, end=None) -> None:
        """Schedule ``start`` at ``at_cycles`` and, if the spec has a
        duration, ``end`` at ``at_cycles + duration_cycles``."""
        sim = controller.system.sim

        def begin() -> None:
            self._mark(controller, "start")
            start()

        sim.schedule_at(self.spec.at_cycles, begin, name=f"fault.{self.kind}")
        if end is not None and self.spec.duration_cycles > 0:
            def finish() -> None:
                self._mark(controller, "end")
                end()

            sim.schedule_at(
                self.spec.at_cycles + self.spec.duration_cycles,
                finish,
                name=f"fault.{self.kind}.end",
            )


class InjectorRegistry:
    """kind -> injector class, the extension point for new faults."""

    def __init__(self) -> None:
        self._kinds: Dict[str, Type[FaultInjector]] = {}

    def register(self, cls: Type[FaultInjector]) -> Type[FaultInjector]:
        if not cls.kind:
            raise FaultSpecError(f"{cls.__name__} has no kind")
        self._kinds[cls.kind] = cls
        return cls

    def create(self, spec: FaultSpec) -> FaultInjector:
        cls = self._kinds.get(spec.kind)
        if cls is None:
            raise FaultSpecError(f"no injector registered for kind {spec.kind!r}")
        return cls(spec)

    def kinds(self) -> List[str]:
        return sorted(self._kinds)


REGISTRY = InjectorRegistry()


class FaultController:
    """Owns the fault campaign for one simulated system.

    Holds the :class:`HostInterface` (watchdog + reconfiguration), the
    resilience sampler, the installed injectors and a time-ordered
    ``events`` log of every fault transition — everything
    :func:`repro.faults.metrics.resilience_report` needs.
    """

    def __init__(
        self,
        system: RosebudSystem,
        host: HostInterface,
        sampler: StatsSampler,
    ) -> None:
        self.system = system
        self.host = host
        self.sampler = sampler
        self.injectors: List[FaultInjector] = []
        #: every fault transition: {"t", "kind", "target", "phase"}
        self.events: List[Dict] = []

    def record(self, spec: FaultSpec, phase: str) -> None:
        self.events.append(
            {
                "t": self.system.sim.now,
                "kind": spec.kind,
                "target": spec.target,
                "phase": phase,
            }
        )

    def firmware_factory(self):
        """A fresh firmware image for recovery reloads (the same image
        every RPU booted with)."""
        return self.system.rpus[0].firmware.clone()

    def rpu_accelerators(self, target: int) -> List[Accelerator]:
        """The accelerator instances reachable from RPU ``target``'s
        firmware (``target < 0`` means every RPU's)."""
        rpus = self.system.rpus if target < 0 else [self.system.rpus[target]]
        found: List[Accelerator] = []
        for rpu in rpus:
            for value in vars(rpu.firmware).values():
                if isinstance(value, Accelerator) and value not in found:
                    found.append(value)
        return found

    def install(self, specs: Iterable[FaultSpec]) -> None:
        for spec in specs:
            if spec.kind == "sampler":
                continue  # consumed at construction time
            injector = REGISTRY.create(spec)
            self.injectors.append(injector)
            injector.install(self)
        self.sampler.start()


@REGISTRY.register
class RpuWedgeInjector(FaultInjector):
    """Firmware hang: the RPU holds its packets and makes no progress.
    A positive duration makes the wedge transient (the firmware
    recovers by itself); otherwise only eviction clears it."""

    kind = "rpu_wedge"

    def install(self, controller: FaultController) -> None:
        rpu = controller.system.rpus[self.spec.target]
        self._schedule_window(controller, rpu.wedge, rpu.unwedge)


@REGISTRY.register
class WatchdogInjector(FaultInjector):
    """Start the host hang watchdog (detect -> evict -> reconfigure)."""

    kind = "watchdog"

    def install(self, controller: FaultController) -> None:
        threshold = float(self.spec.param("threshold_cycles", 50_000.0))
        poll = float(self.spec.param("poll_cycles", 5_000.0))
        pr_load_ms = self.spec.param("pr_load_ms")
        if pr_load_ms is not None:
            controller.host.pr_load_ms = float(pr_load_ms)

        def start() -> None:
            controller.host.start_watchdog(
                controller.firmware_factory,
                threshold_cycles=threshold,
                poll_cycles=poll,
            )

        self._schedule_window(controller, start, controller.host.stop_watchdog)


@REGISTRY.register
class MacCorruptInjector(FaultInjector):
    """Bit errors on the wire: frames arriving on port ``target`` are
    corrupted (IPv4 header byte flip), truncated to a runt, or lost
    outright, each with probability ``magnitude``.  Corrupted frames
    are caught by the MAC's checksum-verify stage and counted in
    ``rx_csum_drops``."""

    kind = "mac_corrupt"

    def install(self, controller: FaultController) -> None:
        mac = controller.system.macs[self.spec.target]
        mac.verify_checksums = True
        mode = self.spec.param("mode", "corrupt")
        if mode not in ("corrupt", "truncate", "lose"):
            raise FaultSpecError(f"unknown mac_corrupt mode {mode!r}")
        probability = self.spec.magnitude
        rng = self.rng

        def hook(packet: Packet) -> Optional[Packet]:
            if rng.random() >= probability:
                return packet
            if mode == "lose":
                return None
            if mode == "truncate":
                packet.data = packet.data[: max(1, len(packet.data) // 4)]
            else:
                data = bytearray(packet.data)
                # flip a byte inside the IPv4 header so the checksum
                # catches it (falls back to anywhere in short frames)
                hi = min(len(data), 14 + 20)
                index = rng.randrange(14, hi) if hi > 14 else rng.randrange(len(data))
                data[index] ^= 1 + rng.randrange(255)
                packet.data = bytes(data)
            # headers changed: reparse lazily AND leave the packet's
            # replay class (corrupted frames must never hit the cache)
            packet.mark_mutated()
            return packet

        def start() -> None:
            mac.rx_fault_hook = hook

        def end() -> None:
            mac.rx_fault_hook = None

        self._schedule_window(controller, start, end)


@REGISTRY.register
class LinkFlapInjector(FaultInjector):
    """Transient loss of light on port ``target``: wire arrivals are
    lost, the TX serializer pauses, and the backlog drains on resume."""

    kind = "link_flap"

    def install(self, controller: FaultController) -> None:
        mac = controller.system.macs[self.spec.target]
        self._schedule_window(
            controller,
            lambda: mac.set_link(False),
            lambda: mac.set_link(True),
        )


@REGISTRY.register
class AccelFaultInjector(FaultInjector):
    """Poison the accelerator response path of RPU ``target`` (or every
    RPU when ``target < 0``): reads come back corrupted with the parity
    flag low, and firmware must re-run the work in software."""

    kind = "accel_fault"

    def install(self, controller: FaultController) -> None:
        accels = controller.rpu_accelerators(self.spec.target)
        if not accels:
            raise FaultSpecError(
                f"rpu {self.spec.target} firmware has no accelerator to fault"
            )

        system = controller.system

        def arm() -> None:
            for accel in accels:
                accel.inject_fault(True)
            # records made while healthy must not replay against a
            # poisoned accelerator (and vice versa); tokens usually
            # cover fault_active, but flushing is cheap and makes the
            # guarantee unconditional
            system.invalidate_replay_caches("accel_fault armed")

        def disarm() -> None:
            for accel in accels:
                accel.inject_fault(False)
            system.invalidate_replay_caches("accel_fault disarmed")

        self._schedule_window(controller, arm, disarm)


@REGISTRY.register
class ReconfigInjector(FaultInjector):
    """A planned no-pause partial reconfiguration of RPU ``target`` —
    the §4.1 experiment expressed as a fault event."""

    kind = "reconfig"

    def install(self, controller: FaultController) -> None:
        pr_load_ms = self.spec.param("pr_load_ms")
        if pr_load_ms is not None:
            controller.host.pr_load_ms = float(pr_load_ms)

        def start() -> None:
            controller.host.reconfigure_rpu(
                self.spec.target, controller.firmware_factory()
            )

        self._schedule_window(controller, start)


def install_faults(
    system: RosebudSystem,
    faults: Iterable[FaultSpec],
    host: Optional[HostInterface] = None,
) -> FaultController:
    """Wire a fault campaign onto a freshly built system.

    Must run before the simulation starts (fault times are absolute
    cycles).  Returns the controller; after the run, feed it to
    :func:`repro.faults.metrics.resilience_report`.
    """
    specs = [
        f if isinstance(f, FaultSpec) else FaultSpec.from_dict(dict(f))
        for f in faults
    ]
    interval = DEFAULT_SAMPLE_CYCLES
    for spec in specs:
        if spec.kind == "sampler":
            interval = float(spec.param("interval_cycles", interval))
    if host is None:
        host = HostInterface(system)
    sampler = StatsSampler(system, interval_cycles=interval)
    controller = FaultController(system, host, sampler)
    controller.install(specs)
    return controller
