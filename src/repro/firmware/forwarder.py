"""The basic packet forwarder (``basic_fw`` in the artifact, §6.1).

Reads a descriptor, swaps the port bit, releases the descriptor: the
paper measures 16 cycles for this loop on the VexRiscv, which caps each
RPU at one packet per 16 cycles and the 16-RPU design at 250 MPPS.
The corresponding assembly firmware (``repro.firmware.asm_sources``)
runs on the instruction-set simulator and the funcsim tests assert its
measured loop time is consistent with this constant.
"""

from __future__ import annotations

from ..core.firmware_api import (
    ACTION_FORWARD,
    FirmwareModel,
    FirmwareResult,
)
from ..packet.packet import Packet

#: Minimum descriptor turnaround measured by the paper (§6.1).
FORWARDER_CYCLES = 16


class ForwarderFirmware(FirmwareModel):
    """Swap-port forwarder.

    ``single_port`` pins all egress to one port (the artifact's 100 G
    single-port variant built by "updating the C code to use a single
    port", Artifact D.6).
    """

    name = "basic_fw"

    def __init__(self, sw_cycles: int = FORWARDER_CYCLES, single_port: int = -1) -> None:
        self.sw_cycles = sw_cycles
        self.single_port = single_port

    def process(self, packet: Packet, rpu_index: int) -> FirmwareResult:
        if self.single_port >= 0:
            egress = self.single_port
        else:
            egress = packet.ingress_port ^ 1
        return FirmwareResult(
            action=ACTION_FORWARD, sw_cycles=self.sw_cycles, egress_port=egress
        )

    def replay_token(self) -> object:
        # stateless: the decision is a pure function of the packet class
        return ("forwarder", self.sw_cycles, self.single_port)

    def clone(self) -> "ForwarderFirmware":
        return ForwarderFirmware(self.sw_cycles, self.single_port)


class NicFirmware(FirmwareModel):
    """Rosebud operating as a plain NIC (§5: the Corundum subsystem
    "enables Rosebud's operation as a NIC").

    Wire traffic is punted to the host over PCIe; host-sourced traffic
    (via the virtual Ethernet interface) goes out a physical port.
    """

    name = "nic"

    def __init__(self, sw_cycles: int = FORWARDER_CYCLES, egress_port: int = 0) -> None:
        self.sw_cycles = sw_cycles
        self.egress_port = egress_port

    def process(self, packet: Packet, rpu_index: int) -> FirmwareResult:
        if packet.timestamps.get("mac_rx_done") is not None:
            # arrived on a physical port: deliver to the host
            return FirmwareResult(action="host", sw_cycles=self.sw_cycles)
        # host-sourced (vNIC): transmit on the wire
        return FirmwareResult(
            action=ACTION_FORWARD, sw_cycles=self.sw_cycles,
            egress_port=self.egress_port,
        )

    def clone(self) -> "NicFirmware":
        return NicFirmware(self.sw_cycles, self.egress_port)


class TwoStepForwarder(FirmwareModel):
    """The inter-core loopback benchmark firmware (§6.3).

    Half the RPUs receive from the wire and forward each packet to a
    partner RPU in the other half via the loopback port; the partner
    returns it to the link.
    """

    name = "loopback_fw"

    def __init__(self, n_rpus: int, sw_cycles: int = FORWARDER_CYCLES) -> None:
        self.n_rpus = n_rpus
        self.sw_cycles = sw_cycles

    def process(self, packet: Packet, rpu_index: int) -> FirmwareResult:
        half = self.n_rpus // 2
        if rpu_index < half:
            return FirmwareResult(
                action="loopback",
                sw_cycles=self.sw_cycles,
                loopback_dest=rpu_index + half,
            )
        return FirmwareResult(
            action=ACTION_FORWARD,
            sw_cycles=self.sw_cycles,
            egress_port=packet.ingress_port ^ 1,
        )

    def replay_token(self) -> object:
        # stateless, but rpu_index-sensitive — safe because the cache
        # key carries the rpu index
        return ("loopback_fw", self.n_rpus, self.sw_cycles)

    def clone(self) -> "TwoStepForwarder":
        return TwoStepForwarder(self.n_rpus, self.sw_cycles)
