"""A NAT middlebox built on the Rosebud public API.

Not a paper case study — it's the kind of "future effort bolstered by
this platform" §8.2 anticipates, and it exercises parts of the
framework the two case studies don't: in-place header *rewriting* (the
shared packet memory is writable by the core, §4.1), the incremental
checksum accelerator, and per-RPU connection state behind the hash LB
(flow affinity makes the NAT table purely local, no cross-RPU
coherence needed).

Behaviour: source NAT for traffic entering port 0 ("inside") — rewrite
(src_ip, src_port) to (public_ip, allocated port) and forward out
port 1; reverse-translate traffic entering port 1 that matches an
allocated port; drop unknown outside traffic.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

from ..accel.checksum_accel import (
    ChecksumUpdateAccelerator,
    update_for_fields,
    words_of_ip,
)
from ..core.firmware_api import (
    ACTION_DROP,
    ACTION_FORWARD,
    FirmwareModel,
    FirmwareResult,
)
from ..packet.headers import ETH_HEADER_SIZE, ip_to_int
from ..packet.packet import Packet

#: Per-packet core cost: parse + table lookup + two header stores +
#: three accelerator round trips.  Comparable to the firewall's cost
#: plus the rewrite work.
NAT_HIT_CYCLES = 58
NAT_MISS_ALLOC_CYCLES = 74  # first packet of a flow allocates a port
NAT_DROP_CYCLES = 24

INSIDE_PORT = 0
OUTSIDE_PORT = 1


class NatFirmware(FirmwareModel):
    """Source NAT with per-RPU port allocation.

    Each RPU owns a disjoint public-port range (``base + index*span``),
    so no inter-RPU coordination is needed — the allocation-partitioning
    trick real scaled-out NATs use, here for free via the LB.
    """

    name = "nat"

    def __init__(
        self,
        public_ip: str = "198.51.100.1",
        port_span: int = 4096,
        port_base: int = 10_000,
    ) -> None:
        self.public_ip = public_ip
        self.public_ip_int = ip_to_int(public_ip)
        self.port_span = port_span
        self.port_base = port_base
        self.csum_accel = ChecksumUpdateAccelerator()
        # per-RPU state, created on boot
        self._forward: Dict[Tuple[str, int], int] = {}
        self._reverse: Dict[int, Tuple[str, int]] = {}
        self._next_port = 0
        self._rpu_index = 0
        self.translated = 0
        self.dropped = 0

    def on_boot(self, rpu_index: int, config) -> None:
        self._rpu_index = rpu_index
        self._forward = {}
        self._reverse = {}
        self._next_port = 0

    # -- translation helpers ---------------------------------------------------------

    def _allocate_port(self, key: Tuple[str, int]) -> Optional[int]:
        if self._next_port >= self.port_span:
            return None
        port = self.port_base + self._rpu_index * self.port_span + self._next_port
        self._next_port += 1
        self._forward[key] = port
        self._reverse[port] = key
        return port

    def _rewrite_outbound(self, packet: Packet, nat_port: int) -> None:
        """In-place rewrite of src IP/port + incremental checksums."""
        parsed = packet.parsed
        old_ip = ip_to_int(parsed.ipv4.src)
        old_port = parsed.tcp.src_port
        data = bytearray(packet.data)
        ip_off = ETH_HEADER_SIZE
        struct.pack_into("!I", data, ip_off + 12, self.public_ip_int)
        struct.pack_into("!H", data, ip_off + 20, nat_port)
        # IP header checksum: two IP words changed
        old_csum = struct.unpack_from("!H", data, ip_off + 10)[0]
        edits = list(zip(words_of_ip(old_ip), words_of_ip(self.public_ip_int)))
        new_csum = update_for_fields(old_csum, edits)
        struct.pack_into("!H", data, ip_off + 10, new_csum)
        # TCP checksum covers the pseudo-header IPs and the port
        tcp_off = ip_off + 20
        old_tcp_csum = struct.unpack_from("!H", data, tcp_off + 16)[0]
        tcp_edits = edits + [(old_port, nat_port)]
        struct.pack_into("!H", data, tcp_off + 16, update_for_fields(old_tcp_csum, tcp_edits))
        packet.data = bytes(data)
        packet.invalidate_parse_cache()
        self.csum_accel.updates += len(edits) + len(tcp_edits)

    def _rewrite_inbound(self, packet: Packet, inside: Tuple[str, int]) -> None:
        parsed = packet.parsed
        inside_ip, inside_port = inside
        old_ip = ip_to_int(parsed.ipv4.dst)
        old_port = parsed.tcp.dst_port
        data = bytearray(packet.data)
        ip_off = ETH_HEADER_SIZE
        new_ip = ip_to_int(inside_ip)
        struct.pack_into("!I", data, ip_off + 16, new_ip)
        struct.pack_into("!H", data, ip_off + 22, inside_port)
        old_csum = struct.unpack_from("!H", data, ip_off + 10)[0]
        edits = list(zip(words_of_ip(old_ip), words_of_ip(new_ip)))
        struct.pack_into("!H", data, ip_off + 10, update_for_fields(old_csum, edits))
        tcp_off = ip_off + 20
        old_tcp_csum = struct.unpack_from("!H", data, tcp_off + 16)[0]
        tcp_edits = edits + [(old_port, inside_port)]
        struct.pack_into("!H", data, tcp_off + 16, update_for_fields(old_tcp_csum, tcp_edits))
        packet.data = bytes(data)
        packet.invalidate_parse_cache()
        self.csum_accel.updates += len(edits) + len(tcp_edits)

    # -- the firmware entry point --------------------------------------------------------

    def process(self, packet: Packet, rpu_index: int) -> FirmwareResult:
        parsed = packet.parsed
        if parsed.ipv4 is None or parsed.tcp is None:
            self.dropped += 1
            return FirmwareResult(action=ACTION_DROP, sw_cycles=NAT_DROP_CYCLES)

        if packet.ingress_port == INSIDE_PORT:
            key = (parsed.ipv4.src, parsed.tcp.src_port)
            nat_port = self._forward.get(key)
            cycles = NAT_HIT_CYCLES
            if nat_port is None:
                nat_port = self._allocate_port(key)
                cycles = NAT_MISS_ALLOC_CYCLES
                if nat_port is None:
                    self.dropped += 1
                    return FirmwareResult(action=ACTION_DROP, sw_cycles=NAT_DROP_CYCLES)
            self._rewrite_outbound(packet, nat_port)
            self.translated += 1
            return FirmwareResult(
                action=ACTION_FORWARD, sw_cycles=cycles, egress_port=OUTSIDE_PORT
            )

        # outside -> inside: must match an allocated mapping
        inside = self._reverse.get(parsed.tcp.dst_port)
        if inside is None or parsed.ipv4.dst != self.public_ip:
            self.dropped += 1
            return FirmwareResult(action=ACTION_DROP, sw_cycles=NAT_DROP_CYCLES)
        self._rewrite_inbound(packet, inside)
        self.translated += 1
        return FirmwareResult(
            action=ACTION_FORWARD, sw_cycles=NAT_HIT_CYCLES, egress_port=INSIDE_PORT
        )

    def clone(self) -> "NatFirmware":
        return NatFirmware(self.public_ip, self.port_span, self.port_base)
