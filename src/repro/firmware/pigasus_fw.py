"""Pigasus IDS firmware, both reordering variants (§7.1).

*HW reorder* (``pigasus2`` in the artifact): a reassembly accelerator
in the (round-robin) LB attaches per-flow state to each packet, so the
RPU software only parses headers and manages the string matcher.  The
paper's cocotb simulation measures 61 cycles for safe TCP packets,
59 for safe UDP, and 82 for attack traffic; those constants drive the
behavioural model and the measured average (~60.2 cycles at 1 % attack
rate) emerges from the traffic mix.

*SW reorder* (``pigasus``): the hash LB steers flows to RPUs and
prepends the flow hash; the RISC-V keeps a 32 K-entry flow table in the
0.5 MB scratch pad (16 B per entry: time, sequence number, flow hash,
trailing bytes) and performs TCP reordering in software.  The flow
table walk serializes with starting the accelerator, which is why the
per-packet cost starts at ~138 cycles and grows slightly with packet
size (§7.1.4).  Collisions and reorder-buffer exhaustion punt packets
to the host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..accel.pigasus.port_match import PigasusPortMatcher
from ..accel.pigasus.ruleset import Rule
from ..accel.pigasus.string_match import PigasusStringMatcher
from ..core.firmware_api import (
    ACTION_DROP,
    ACTION_FORWARD,
    ACTION_HOST,
    FirmwareModel,
    FirmwareResult,
)
from ..core.lb import flow_hash
from ..packet.packet import Packet

# cocotb-measured software costs from §7.1.4
TCP_SAFE_CYCLES = 61
UDP_SAFE_CYCLES = 59
ATTACK_CYCLES = 82
NON_IP_CYCLES = 20

# SW-reorder calibration: 138.4 cycles at 64 B rising to ~150 at 1500 B
SW_REORDER_BASE = 138.0
SW_REORDER_SLOPE = 12.0 / 1436.0  # per byte above 64
SW_COLLISION_EXTRA = 10
SW_OUT_OF_ORDER_EXTRA = 25
SW_RETRANSMIT_EXTRA = 8

FLOW_TABLE_BITS = 15  # 32K entries of 16 B in 0.5 MB scratch
FLOW_TIMEOUT_CYCLES = 250_000  # 1 ms: "older flows quickly time out"


class _PigasusBase(FirmwareModel):
    """Shared scan/verdict logic for both reordering variants."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)
        self.matcher = PigasusStringMatcher()
        self.matcher.load_rules(self.rules)
        self.port_matcher = PigasusPortMatcher()
        self.port_matcher.load_rules(self.rules)
        self.matched_packets = 0

    def _share_engines(self, other: "_PigasusBase") -> None:
        """Clones share the functional matcher (identical tables in
        every RPU's accelerator)."""
        other.matcher = self.matcher
        other.port_matcher = self.port_matcher
        other.rules = self.rules

    def _scan(self, packet: Packet) -> List[int]:
        parsed = packet.parsed
        if parsed.tcp is not None:
            proto, sport, dport = "tcp", parsed.tcp.src_port, parsed.tcp.dst_port
        elif parsed.udp is not None:
            proto, sport, dport = "udp", parsed.udp.src_port, parsed.udp.dst_port
        else:
            return []
        return self.matcher.scan(packet.payload, proto, sport, dport)

    def _verdict(
        self, packet: Packet, sw_cycles: float, to_host: bool = False
    ) -> FirmwareResult:
        sids = self._scan(packet)
        accel = self.matcher.scan_cycles(len(packet.payload))
        if sids:
            self.matched_packets += 1
            packet.rule_ids = list(sids)
            return FirmwareResult(
                action=ACTION_HOST,
                sw_cycles=ATTACK_CYCLES if sw_cycles < ATTACK_CYCLES else sw_cycles + (ATTACK_CYCLES - TCP_SAFE_CYCLES),
                accel_cycles=accel,
                appended_bytes=4 * (len(sids) + 1),
            )
        if to_host:
            return FirmwareResult(
                action=ACTION_HOST, sw_cycles=sw_cycles, accel_cycles=accel
            )
        return FirmwareResult(
            action=ACTION_FORWARD,
            sw_cycles=sw_cycles,
            accel_cycles=accel,
            egress_port=packet.ingress_port ^ 1,
        )


class PigasusHwReorderFirmware(_PigasusBase):
    """HW-reassembly variant: software is parse + accelerator management."""

    name = "pigasus_hw_reorder"

    def process(self, packet: Packet, rpu_index: int) -> FirmwareResult:
        parsed = packet.parsed
        if parsed.ipv4 is None:
            return FirmwareResult(action=ACTION_DROP, sw_cycles=NON_IP_CYCLES)
        if parsed.tcp is not None:
            return self._verdict(packet, TCP_SAFE_CYCLES)
        if parsed.udp is not None:
            return self._verdict(packet, UDP_SAFE_CYCLES)
        return FirmwareResult(action=ACTION_DROP, sw_cycles=NON_IP_CYCLES)

    def clone(self) -> "PigasusHwReorderFirmware":
        other = PigasusHwReorderFirmware.__new__(PigasusHwReorderFirmware)
        other.matched_packets = 0
        self._share_engines(other)
        return other


@dataclass
class _FlowEntry:
    """One 16-byte flow-table entry (§7.1.2)."""

    flow_hash: int
    next_seq: int
    last_time: float
    buffered: int = 0  # out-of-order packets currently held


class PigasusSwReorderFirmware(_PigasusBase):
    """SW-reassembly variant: flow table + reorder buffers on the core.

    The model tracks real per-flow sequence state and charges the
    measured software costs; out-of-order packets are accounted (and
    punted to the host on buffer exhaustion or hash collision) without
    physically retaining them, which preserves the throughput behaviour
    the benchmark measures.
    """

    name = "pigasus_sw_reorder"

    def __init__(self, rules: Sequence[Rule], max_reorder_slots: int = 8) -> None:
        super().__init__(rules)
        self.max_reorder_slots = max_reorder_slots
        self.flow_table: Dict[int, _FlowEntry] = {}
        self.collisions = 0
        self.out_of_order = 0
        self.punted_to_host = 0

    def on_boot(self, rpu_index: int, config) -> None:
        self.flow_table = {}

    def _sw_base(self, size: int) -> float:
        return SW_REORDER_BASE + SW_REORDER_SLOPE * max(0, size - 64)

    def process(self, packet: Packet, rpu_index: int) -> FirmwareResult:
        parsed = packet.parsed
        if parsed.ipv4 is None:
            return FirmwareResult(action=ACTION_DROP, sw_cycles=NON_IP_CYCLES)
        sw = self._sw_base(packet.size)
        if parsed.udp is not None:
            return self._verdict(packet, sw - 2)  # UDP skips seq handling
        if parsed.tcp is None:
            return FirmwareResult(action=ACTION_DROP, sw_cycles=NON_IP_CYCLES)

        fhash = packet.flow_hash if packet.flow_hash is not None else flow_hash(packet)
        index = (fhash >> 3) & ((1 << FLOW_TABLE_BITS) - 1)
        now = packet.timestamps.get("rpu_deliver", 0.0)
        entry = self.flow_table.get(index)
        if entry is not None and now - entry.last_time > FLOW_TIMEOUT_CYCLES:
            entry = None  # timed out; slot is reusable
        seq = parsed.tcp.seq
        seg_len = max(1, len(packet.payload))

        if entry is None:
            self.flow_table[index] = _FlowEntry(fhash, seq + seg_len, now)
            return self._verdict(packet, sw)
        if entry.flow_hash != fhash:
            # hash collision: forward to the host (rare by design)
            self.collisions += 1
            self.punted_to_host += 1
            return self._verdict(packet, sw + SW_COLLISION_EXTRA, to_host=True)

        entry.last_time = now
        if seq == entry.next_seq:
            entry.next_seq = seq + seg_len
            if entry.buffered:
                # gap closed: drain buffered packets' bookkeeping
                sw += SW_OUT_OF_ORDER_EXTRA * entry.buffered
                entry.next_seq += entry.buffered * seg_len
                entry.buffered = 0
            return self._verdict(packet, sw)
        if seq > entry.next_seq:
            self.out_of_order += 1
            if entry.buffered >= self.max_reorder_slots:
                self.punted_to_host += 1
                return self._verdict(packet, sw + SW_OUT_OF_ORDER_EXTRA, to_host=True)
            entry.buffered += 1
            return self._verdict(packet, sw + SW_OUT_OF_ORDER_EXTRA)
        # seq < expected: retransmission / already-seen data
        return self._verdict(packet, sw + SW_RETRANSMIT_EXTRA)

    def clone(self) -> "PigasusSwReorderFirmware":
        other = PigasusSwReorderFirmware.__new__(PigasusSwReorderFirmware)
        other.max_reorder_slots = self.max_reorder_slots
        other.flow_table = {}
        other.collisions = 0
        other.out_of_order = 0
        other.punted_to_host = 0
        other.matched_packets = 0
        self._share_engines(other)
        return other
