"""RPU firmware: behavioural models + assembly sources for the ISS."""

from .asm_sources import FIREWALL_ASM, FORWARDER_ASM, IO_BASE, IO_EXT_BASE, PIGASUS_ASM
from .firewall_fw import FIREWALL_CYCLES, FirewallFirmware
from .chain_fw import ChainStageFirmware, build_chain
from .nat_fw import NatFirmware
from .forwarder import FORWARDER_CYCLES, ForwarderFirmware, NicFirmware, TwoStepForwarder
from .pigasus_fw import (
    ATTACK_CYCLES,
    PigasusHwReorderFirmware,
    PigasusSwReorderFirmware,
    SW_REORDER_BASE,
    TCP_SAFE_CYCLES,
    UDP_SAFE_CYCLES,
)

__all__ = [
    "FIREWALL_ASM",
    "FORWARDER_ASM",
    "IO_BASE",
    "IO_EXT_BASE",
    "PIGASUS_ASM",
    "FIREWALL_CYCLES",
    "FirewallFirmware",
    "FORWARDER_CYCLES",
    "NatFirmware",
    "ChainStageFirmware",
    "build_chain",
    "ForwarderFirmware",
    "NicFirmware",
    "TwoStepForwarder",
    "ATTACK_CYCLES",
    "PigasusHwReorderFirmware",
    "PigasusSwReorderFirmware",
    "SW_REORDER_BASE",
    "TCP_SAFE_CYCLES",
    "UDP_SAFE_CYCLES",
]
