"""Heterogeneous processing chains over the loopback port (§4.4).

"Inter-core packet messaging can also be used to implement a processing
chain of heterogeneous RPUs with different accelerators and
capabilities."  :class:`ChainStageFirmware` wraps any firmware model as
one stage of such a chain: packets it would *forward* are instead
looped to the next stage's RPU; packets it drops or punts to the host
leave the chain immediately.  The last stage forwards normally.

The canonical composition — firewall stages feeding IDS stages — gives
a two-function middlebox where each PR region holds only one
accelerator (useful when both don't fit in a single RPU's region).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.firmware_api import (
    ACTION_FORWARD,
    ACTION_LOOPBACK,
    FirmwareModel,
    FirmwareResult,
)
from ..packet.packet import Packet

#: Extra core cycles to request a remote slot and relabel the packet.
CHAIN_HOP_CYCLES = 8


class ChainStageFirmware(FirmwareModel):
    """One stage of a loopback chain.

    ``next_rpu`` is the RPU index of the next stage, or None for the
    final stage (whose forwards go to the wire).
    """

    name = "chain_stage"

    def __init__(self, inner: FirmwareModel, next_rpu: Optional[int]) -> None:
        self.inner = inner
        self.next_rpu = next_rpu

    def on_boot(self, rpu_index: int, config) -> None:
        self.inner.on_boot(rpu_index, config)

    def process(self, packet: Packet, rpu_index: int) -> FirmwareResult:
        result = self.inner.process(packet, rpu_index)
        if result.action == ACTION_FORWARD and self.next_rpu is not None:
            return FirmwareResult(
                action=ACTION_LOOPBACK,
                sw_cycles=result.sw_cycles + CHAIN_HOP_CYCLES,
                accel_cycles=result.accel_cycles,
                loopback_dest=self.next_rpu,
                appended_bytes=result.appended_bytes,
            )
        return result

    def clone(self) -> "ChainStageFirmware":
        return ChainStageFirmware(self.inner.clone(), self.next_rpu)


def build_chain(
    stages: Sequence[Sequence[FirmwareModel]],
) -> list:
    """Compose per-RPU firmware for a chain.

    ``stages`` is a list of stages, each a list of firmware models (one
    per RPU in that stage).  RPU indices are assigned in order; each
    stage-``k`` RPU ``i`` forwards to stage-``k+1`` RPU ``i % width``.
    Returns the flat per-RPU firmware list for ``RosebudSystem``.
    """
    if not stages or any(not stage for stage in stages):
        raise ValueError("every stage needs at least one firmware")
    # compute the base index of every stage
    bases = []
    base = 0
    for stage in stages:
        bases.append(base)
        base += len(stage)
    firmwares = []
    for stage_idx, stage in enumerate(stages):
        last = stage_idx == len(stages) - 1
        next_base = bases[stage_idx + 1] if not last else 0
        next_width = len(stages[stage_idx + 1]) if not last else 0
        for i, inner in enumerate(stage):
            next_rpu = None if last else next_base + (i % next_width)
            firmwares.append(ChainStageFirmware(inner, next_rpu))
    return firmwares
