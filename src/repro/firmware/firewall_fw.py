"""Firewall firmware (§7.2, Appendix C).

Per packet: check the Ethernet type, load the source IP into the IP
matcher over MMIO, read the match flag, then either drop (set length
to zero) or forward out the other port.  The paper's measured result —
200 Gbps for packets of 256 B and up on 16 RPUs — pins the per-packet
software cost at roughly 44 cycles (16 RPUs x 250 MHz / 90.6 MPPS);
the assembly version of this firmware measures in that range on the
instruction-set simulator.
"""

from __future__ import annotations

from ..accel.firewall import IpBlacklistMatcher
from ..core.firmware_api import (
    ACTION_DROP,
    ACTION_FORWARD,
    FirmwareModel,
    FirmwareResult,
)
from ..packet.headers import ip_to_int
from ..packet.packet import Packet

#: Per-packet core cycles: parse + MMIO round trip + descriptor release.
#: Calibrated so 16 RPUs sustain 200 Gbps at 256 B like the paper.
FIREWALL_CYCLES = 42
#: Non-IPv4 packets skip the accelerator round trip.
FIREWALL_NON_IP_CYCLES = 24
#: Extra core cycles when the accelerator's parity check fails and the
#: lookup is redone in software (linear prefix scan) — the paper's
#: orchestration-in-software insight applied to fault recovery.
FIREWALL_SW_FALLBACK_CYCLES = 400


class FirewallFirmware(FirmwareModel):
    """Blacklist firewall on one RPU.

    All RPUs share one functional matcher instance (the compiled rule
    table is identical hardware in each PR region); per-RPU counters
    live in the RPU model.
    """

    name = "firewall"

    def __init__(self, matcher: IpBlacklistMatcher) -> None:
        self.matcher = matcher
        self.dropped = 0
        self.forwarded = 0
        #: poisoned accelerator reads this firmware caught and redid in
        #: software (summed into ``firmware_totals`` by the engine)
        self.accel_faults_recovered = 0

    def _software_check(self, src_ip: int) -> bool:
        """Pure-software fallback: linear scan of the compiled prefix
        list, no accelerator involved."""
        return any(prefix.matches(src_ip) for prefix in self.matcher.prefixes)

    def process(self, packet: Packet, rpu_index: int) -> FirmwareResult:
        parsed = packet.parsed
        if parsed.ipv4 is None:
            # non-IPv4 goes to the drop path in the Appendix C listing
            self.dropped += 1
            return FirmwareResult(action=ACTION_DROP, sw_cycles=FIREWALL_NON_IP_CYCLES)
        src_ip = ip_to_int(parsed.ipv4.src)
        # MMIO: write ACC_SRC_IP, 2-cycle lookup, read ACC_FW_MATCH —
        # the blocking read is included in FIREWALL_CYCLES
        seen, parity_ok = self.matcher.guard(int(self.matcher.check(src_ip)))
        sw_cycles = FIREWALL_CYCLES
        if parity_ok:
            match = bool(seen)
        else:
            # parity failed: distrust the read and redo it in software
            self.accel_faults_recovered += 1
            match = self._software_check(src_ip)
            sw_cycles += FIREWALL_SW_FALLBACK_CYCLES
        if match:
            self.dropped += 1
            return FirmwareResult(action=ACTION_DROP, sw_cycles=sw_cycles)
        self.forwarded += 1
        return FirmwareResult(
            action=ACTION_FORWARD,
            sw_cycles=sw_cycles,
            egress_port=packet.ingress_port ^ 1,
        )

    def replay_token(self) -> object:
        # decisions depend on the packet class (src IP), the immutable
        # compiled prefix tables, and whether a fault is armed on the
        # matcher; counters are the only mutations
        return ("firewall", self.matcher.fault_active)

    def replay_owners(self) -> list:
        # the shared matcher's lookups/results_poisoned counters move
        # with every packet too
        return [self, self.matcher]

    def clone(self) -> "FirewallFirmware":
        return FirewallFirmware(self.matcher)
