"""RV32 assembly firmware for the functional RPU simulator.

These are the reproduction's equivalent of the artifact's bare-metal C
firmware: they run on the RV32IM instruction-set simulator inside
:class:`repro.core.funcsim.FunctionalRpu` against the interconnect and
accelerator register maps below, and the funcsim tests measure their
per-packet cycle costs the same way the paper cross-checks C code in
cocotb simulation (§7.1.4).

Interconnect register map (``IO_BASE`` = 0x0100_0000)::

    0x00  RECV_READY    (r)  1 when a descriptor is waiting
    0x04  RECV_TAG      (r)  slot tag of the head descriptor
    0x08  RECV_LEN      (r)  packet length
    0x0c  RECV_PORT     (r)  ingress port
    0x10  RECV_DATA     (r)  packet data pointer (in packet memory)
    0x14  RECV_RELEASE  (w)  pop the descriptor queue
    0x18  SEND_TAG      (w)  slot tag to send
    0x1c  SEND_LEN      (w)  length to send (0 = drop)
    0x20  SEND_PORT_GO  (w)  egress port; the write fires the send
    0x28  DEBUG_OUT_L   (w)  64-bit debug channel to the host
    0x2c  DEBUG_OUT_H   (w)
    0x30  CYCLES        (r)  free-running cycle counter

Accelerator windows sit at ``IO_EXT_BASE`` = 0x0200_0000.
"""

IO_BASE = 0x0100_0000
IO_EXT_BASE = 0x0200_0000

#: Basic forwarder (basic_fw): read descriptor, flip port, send.
FORWARDER_ASM = """
# basic_fw: forward every packet out the other port
.equ IO_BASE, 0x01000000

main:
    li   a0, IO_BASE
loop:
    lw   t0, 0(a0)        # RECV_READY
    beqz t0, loop
    lw   t1, 4(a0)        # tag
    lw   t2, 8(a0)        # len
    lw   t3, 12(a0)       # port
    sw   zero, 20(a0)     # release descriptor
    xori t3, t3, 1        # other port
    sw   t1, 24(a0)       # SEND_TAG
    sw   t2, 28(a0)       # SEND_LEN
    sw   t3, 32(a0)       # SEND_PORT_GO
    j    loop
"""

#: Firewall firmware (Appendix C): check ethertype, MMIO the source IP
#: into the blacklist matcher, drop on match else forward.
FIREWALL_ASM = """
# firewall: drop blacklisted source IPs
.equ IO_BASE,     0x01000000
.equ IO_EXT_BASE, 0x02000000

main:
    li   a0, IO_BASE
    li   a1, IO_EXT_BASE
    li   s2, 0x0008       # ethertype 0x0800, little-endian halfword read
loop:
    lw   t0, 0(a0)        # RECV_READY
    beqz t0, loop
    lw   t1, 4(a0)        # tag
    lw   t2, 8(a0)        # len
    lw   t3, 12(a0)       # port
    lw   t4, 16(a0)       # data pointer
    sw   zero, 20(a0)     # release
    lhu  t5, 12(t4)       # ethertype
    bne  t5, s2, drop
    lw   t5, 26(t4)       # source IP (data offset keeps this aligned)
    sw   t5, 0(a1)        # ACC_SRC_IP: start the 2-cycle lookup
    lbu  t6, 4(a1)        # ACC_FW_MATCH
    bnez t6, drop
    xori t3, t3, 1
    sw   t1, 24(a0)
    sw   t2, 28(a0)
    sw   t3, 32(a0)
    j    loop
drop:
    sw   t1, 24(a0)
    sw   zero, 28(a0)     # length 0 = drop
    sw   t3, 32(a0)
    j    loop
"""

#: Forwarder with a poke-interrupt handler (§3.4): on a host poke the
#: firmware dumps a checkpoint word to the debug channel and resumes.
#: Interrupt line 1 (poke) maps to mcause bit 16 in the CPU model.
FORWARDER_IRQ_ASM = """
# basic_fw with poke-interrupt support
.equ IO_BASE, 0x01000000

main:
    la   t0, poke_handler
    csrw mtvec, t0
    li   t0, 0x10000       # enable external line 1 (poke)
    csrw mie, t0
    # the handler reads a0/s4, so they must be live before interrupts
    # are enabled globally — an early poke would otherwise store its
    # checkpoint through whatever a0 happened to hold (the static
    # verifier's handler-entry join catches exactly this ordering bug)
    li   a0, IO_BASE
    li   s4, 0             # packets forwarded (visible to the handler)
    csrrsi x0, mstatus, 8  # global interrupt enable
loop:
    lw   t0, 0(a0)         # RECV_READY
    beqz t0, loop
    lw   t1, 4(a0)
    lw   t2, 8(a0)
    lw   t3, 12(a0)
    sw   zero, 20(a0)
    xori t3, t3, 1
    sw   t1, 24(a0)
    sw   t2, 28(a0)
    sw   t3, 32(a0)
    addi s4, s4, 1
    j    loop

poke_handler:
    # checkpoint: report the forward count to the host and resume
    sw   s4, 40(a0)        # DEBUG_OUT_L = packets forwarded
    li   t6, 0x504B        # 'PK'
    sw   t6, 44(a0)        # DEBUG_OUT_H = poke marker
    mret
"""

#: Packet generator firmware (the tester FPGA's pkt_gen): builds a
#: frame in its packet slot once, then emits descriptors back-to-back.
PKT_GEN_ASM = """
# pkt_gen: synthesize same-size frames as fast as the core can
.equ IO_BASE,  0x01000000
.equ PMEM,     0x00100000
.equ PKT_LEN,  64
.equ COUNT,    32

main:
    li   a0, IO_BASE
    li   t0, PMEM+2        # slot 1 data pointer (PKT_OFFSET 2)
    # build a minimal frame: dst MAC ff.., ethertype 0x88B5
    li   t1, 0xFFFFFFFF
    sw   t1, 0(t0)
    sh   t1, 4(t0)
    li   t1, 0xB588        # ethertype, big-endian on the wire
    sh   t1, 12(t0)
    li   s2, 0             # sent count
    li   s3, COUNT
gen:
    li   t1, 1
    sw   t1, 24(a0)        # SEND_TAG = slot 1
    li   t2, PKT_LEN
    sw   t2, 28(a0)        # SEND_LEN
    sw   zero, 32(a0)      # SEND_PORT_GO (port 0)
    addi s2, s2, 1
    blt  s2, s3, gen
    ebreak
"""

#: Flow-statistics firmware: a per-flow packet counter table kept in
#: core-local data memory — data structures in firmware, host-readable
#: via memory dump (the §3.4 "read and modify the state" story).
FLOW_COUNTER_ASM = """
# flow_stats: count packets per source-IP hash bucket, then forward
.equ IO_BASE,    0x01000000
.equ TABLE,      0x00010000   # dmem base: 256 buckets x 4 bytes

main:
    li   a0, IO_BASE
    li   a1, TABLE
    li   s2, 0x0008           # ethertype IPv4 (LE halfword)
loop:
    lw   t0, 0(a0)            # RECV_READY
    beqz t0, loop
    lw   t1, 4(a0)            # tag
    lw   t2, 8(a0)            # len
    lw   t3, 12(a0)           # port
    lw   t4, 16(a0)           # data ptr
    sw   zero, 20(a0)         # release
    lhu  t5, 12(t4)           # ethertype
    bne  t5, s2, send         # non-IP: forward uncounted
    lw   t5, 26(t4)           # source IP (LE word of the 4 bytes)
    srli t6, t5, 16
    xor  t5, t5, t6           # fold the IP into 16 bits
    srli t6, t5, 8
    xor  t5, t5, t6           # ...then into 8
    andi t5, t5, 0xFF
    slli t5, t5, 2            # bucket offset
    add  t5, t5, a1
    lw   t6, 0(t5)            # counter++
    addi t6, t6, 1
    sw   t6, 0(t5)
send:
    xori t3, t3, 1
    sw   t1, 24(a0)
    sw   t2, 28(a0)
    sw   t3, 32(a0)
    j    loop
"""

#: Pigasus accelerator management (HW-reorder flavour, Appendix B
#: abridged): feed payload pointer/length to the matcher, drain the
#: match FIFO, append rule ids, choose host vs wire.
PIGASUS_ASM = """
# pigasus (hw reorder): orchestrate the string matcher
.equ IO_BASE,     0x01000000
.equ IO_EXT_BASE, 0x02000000
.equ HOST_PORT,   2

main:
    li   a0, IO_BASE
    li   a1, IO_EXT_BASE
    li   s2, 0x0008        # ethertype IPv4 (LE halfword)
loop:
    lw   t0, 0(a0)         # RECV_READY
    beqz t0, loop
    lw   t1, 4(a0)         # tag
    lw   t2, 8(a0)         # len
    lw   t3, 12(a0)        # port
    lw   t4, 16(a0)        # data ptr
    sw   zero, 20(a0)      # release
    lhu  t5, 12(t4)        # ethertype
    bne  t5, s2, drop
    lbu  t5, 23(t4)        # IP protocol
    li   t6, 6
    bne  t5, t6, drop      # only TCP in this firmware
    lw   t5, 34(t4)        # both TCP ports in one word
    sw   t5, 12(a1)        # ACC_PIG_PORTS
    addi t5, t4, 54        # payload = data + eth(14)+ip(20)+tcp(20)
    sw   t5, 8(a1)         # ACC_DMA_ADDR
    addi t6, t2, -54
    sw   t6, 4(a1)         # ACC_DMA_LEN
    li   t6, 1
    sb   t6, 0(a1)         # ACC_PIG_CTRL = 1 (start)
    li   s3, 0             # match flag
drain:                     # bounded by the matcher's 8-deep FIFO
    lw   t5, 28(a1)        # ACC_PIG_RULE_ID
    li   t6, 2
    sb   t6, 0(a1)         # release the word
    beqz t5, done          # 0 = end of packet, no (more) matches
    # append rule id at dword-aligned end of packet
    addi t6, t2, 3
    andi t6, t6, -4
    add  t6, t6, t4
    sw   t5, 0(t6)
    addi t2, t2, 4         # grow len past the appended word
    li   s3, 1
    j    drain
done:
    beqz s3, fwd
    li   t3, HOST_PORT     # matched: punt to host
    j    send
fwd:
    xori t3, t3, 1         # safe: out the other port
send:
    sw   t1, 24(a0)        # SEND_TAG
    sw   t2, 28(a0)        # SEND_LEN
    sw   t3, 32(a0)        # SEND_PORT_GO
    j    loop
drop:
    sw   t1, 24(a0)
    sw   zero, 28(a0)
    sw   t3, 32(a0)
    j    loop
"""
