"""Versioned JSON envelopes shared by every machine-readable output.

Telemetry snapshots (:meth:`repro.serve.SimSession.snapshot`),
experiment result dumps (:meth:`repro.analysis.ExperimentResult.to_dict`),
the ``repro verify --json`` report and the ``repro serve`` RPC loop all
declare the same ``"schema": "repro-<family>/<version>"`` field, stamped
and checked here instead of each CLI inventing its own envelope.

The version is bumped when a payload changes incompatibly, so consumers
can reject documents produced by newer (or much older) code instead of
silently misreading them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: family -> current version.  One registry so a grep for a schema
#: string has exactly one place to look.
SCHEMAS: Dict[str, int] = {
    "repro-snapshot": 1,
    "repro-cluster-snapshot": 1,
    "repro-result": 1,
    "repro-verify": 1,
    "repro-serve": 1,
    "repro-bench": 1,
}


class SchemaError(ValueError):
    """A JSON document's ``schema`` field is missing, malformed, or
    names a family/version this code does not understand."""


def schema_id(family: str, version: Optional[int] = None) -> str:
    """The canonical ``family/version`` string (current version by default)."""
    if family not in SCHEMAS:
        raise SchemaError(f"unknown schema family {family!r}; known: {sorted(SCHEMAS)}")
    return f"{family}/{SCHEMAS[family] if version is None else version}"


def stamp(payload: Dict[str, Any], family: str) -> Dict[str, Any]:
    """Return ``payload`` with the current ``schema`` field set (in place)."""
    payload["schema"] = schema_id(family)
    return payload


def parse_schema(value: Any) -> tuple:
    """Split a ``family/version`` string, validating its shape."""
    if not isinstance(value, str) or "/" not in value:
        raise SchemaError(f"malformed schema field {value!r} (want 'family/N')")
    family, _, version = value.rpartition("/")
    if not version.isdigit():
        raise SchemaError(f"malformed schema version in {value!r}")
    return family, int(version)


def check(data: Dict[str, Any], family: str) -> str:
    """Validate ``data['schema']`` against ``family``'s current version.

    Returns the schema string on success; raises :class:`SchemaError`
    on a missing field, a different family, or a version from the
    future.  Older versions of a known family are accepted (readers
    stay tolerant; writers always stamp the current version).
    """
    value = data.get("schema")
    if value is None:
        raise SchemaError(f"document has no 'schema' field (expected {schema_id(family)})")
    got_family, got_version = parse_schema(value)
    if got_family != family:
        raise SchemaError(f"schema family mismatch: got {value!r}, expected {family!r}")
    if got_version > SCHEMAS[family]:
        raise SchemaError(
            f"document schema {value!r} is newer than this code understands "
            f"({schema_id(family)})"
        )
    return value
