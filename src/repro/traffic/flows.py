"""Stateful TCP flow traffic with controlled reordering (§7.1.3).

The IPS evaluation plays TCP flows with 0.3 % of packets reordered (the
"typical reordering happening for middlebox traffic") and 1 % attack
traffic mixed in.  :class:`FlowTrafficSource` maintains real per-flow
sequence numbers so the software-reordering firmware's flow table is
exercised honestly: in-order delivery, swapped pairs (reordering), and
flow expiry all occur.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Optional, Sequence

from ..core.system import RosebudSystem
from ..packet.builder import TCP_OVERHEAD, build_tcp
from ..packet.packet import Packet
from .generator import TrafficSource


class _Flow:
    """Per-flow generator state."""

    __slots__ = ("flow_id", "src_ip", "dst_ip", "src_port", "dst_port", "seq")

    def __init__(self, flow_id: int, src_ip: str, dst_ip: str, src_port: int, dst_port: int) -> None:
        self.flow_id = flow_id
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = 1


class FlowTrafficSource(TrafficSource):
    """TCP flows + attack mix + reordering.

    * ``attack_fraction`` of packets carry one of ``attack_payloads``
      (fast patterns from the ruleset) in their payload.
    * ``reorder_fraction`` of packets are emitted one position late,
      swapping with their successor in the same flow.
    """

    def __init__(
        self,
        system: RosebudSystem,
        port: int,
        offered_gbps: float,
        packet_size: int,
        n_flows: int = 256,
        attack_fraction: float = 0.0,
        attack_payloads: Sequence[bytes] = (),
        reorder_fraction: float = 0.0,
        n_packets: Optional[int] = None,
        seed: int = 3,
        respect_generator_cap: bool = True,
    ) -> None:
        super().__init__(system, port, offered_gbps, n_packets, respect_generator_cap)
        if attack_fraction > 0 and not attack_payloads:
            raise ValueError("attack traffic requested but no payloads supplied")
        if packet_size < TCP_OVERHEAD + 8:
            raise ValueError(f"packet size {packet_size} too small for flow traffic")
        self.packet_size = packet_size
        self.attack_fraction = attack_fraction
        self.attack_payloads = list(attack_payloads)
        self.reorder_fraction = reorder_fraction
        self.rng = random.Random(seed)
        self.flows: List[_Flow] = [
            _Flow(
                flow_id=i,
                src_ip=f"10.{port}.{i // 250}.{i % 250 + 1}",
                dst_ip="10.201.0.1",
                src_port=1024 + self.rng.randrange(60000),
                dst_port=self.rng.choice([80, 443, 8080, 25]),
            )
            for i in range(n_flows)
        ]
        self._pending: Deque[Packet] = deque()
        self.attack_sent = 0
        self.reordered = 0

    def _build(self, flow: _Flow, attack: bool) -> Packet:
        payload_len = self.packet_size - TCP_OVERHEAD
        if attack:
            pattern = self.rng.choice(self.attack_payloads)
            filler = b"A" * max(0, payload_len - len(pattern) - 2)
            payload = b"x" + pattern + filler
            payload = payload[:payload_len]
        else:
            payload = b"s" * payload_len
        packet = build_tcp(
            src_ip=flow.src_ip,
            dst_ip=flow.dst_ip,
            src_port=flow.src_port,
            dst_port=flow.dst_port,
            seq=flow.seq,
            payload=payload,
            pad_to=self.packet_size,
            is_attack=attack,
            flow_id=flow.flow_id,
            seq_index=flow.seq,
        )
        flow.seq += len(payload)
        return packet

    def next_packet(self) -> Packet:
        if self._pending:
            return self._pending.popleft()
        flow = self.rng.choice(self.flows)
        attack = self.rng.random() < self.attack_fraction
        if attack:
            self.attack_sent += 1
        packet = self._build(flow, attack)
        if self.rng.random() < self.reorder_fraction:
            # emit the *next* packet of this flow first, this one after
            successor = self._build(flow, False)
            self._pending.append(packet)
            self.reordered += 1
            return successor
        return packet
