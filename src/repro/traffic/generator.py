"""Rate-controlled packet sources (the tester FPGA, §6).

The artifact's tester is another Rosebud instance running ``pkt_gen``
firmware; it saturates every packet size except tiny frames, where it
tops out at 250 MPPS (125 MPPS per port).  :class:`TrafficSource`
schedules arrivals at an offered rate and honours that generation cap;
subclasses decide what each packet looks like.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..packet.builder import build_tcp
from ..packet.packet import Packet
from ..packet.template import PacketTemplate, intern_template
from ..sim.clock import wire_bytes
from ..core.system import RosebudSystem

#: Tester generation caps (16-RPU pkt_gen design, §6.1)
GENERATOR_MAX_PPS_PER_PORT = 125e6


class TrafficSource:
    """Feeds one port of a system at an offered rate.

    ``offered_gbps`` is the effective rate (quoted packet bytes); the
    source converts to wire pacing.  The per-port generation cap of the
    tester FPGA applies unless ``respect_generator_cap`` is False.
    """

    def __init__(
        self,
        system: RosebudSystem,
        port: int,
        offered_gbps: float,
        n_packets: Optional[int] = None,
        respect_generator_cap: bool = True,
    ) -> None:
        self.system = system
        self.port = port
        self.offered_gbps = offered_gbps
        self.n_packets = n_packets
        self.respect_generator_cap = respect_generator_cap
        self.sent = 0
        self._started = False

    def next_packet(self) -> Packet:
        raise NotImplementedError

    def fluid_profile(self):
        """``(period_packets, phase)`` when the emission stream is a
        deterministic cycle, else ``None``.

        ``period_packets`` is the number of emissions after which the
        stream repeats exactly; ``phase`` is the position within that
        cycle.  Sources that draw from an RNG or a user callback return
        ``None``, which makes any session they feed ineligible for the
        fluid fast-forward tier (it may only skip provably periodic
        steady state).
        """
        return None

    def interarrival_cycles(self, packet: Packet) -> float:
        ns = wire_bytes(packet.size) * 8 / self.offered_gbps
        cycles = self.system.config.clock.ns_to_cycles(ns)
        if self.respect_generator_cap:
            min_gap = self.system.config.clock.freq_hz / GENERATOR_MAX_PPS_PER_PORT
            cycles = max(cycles, min_gap)
        return cycles

    def start(self, delay: float = 0.0) -> None:
        if self._started:
            raise RuntimeError("source already started")
        self._started = True
        self.system.sim.schedule(delay, self._emit, name=f"src_port{self.port}")

    def _emit(self) -> None:
        if self.n_packets is not None and self.sent >= self.n_packets:
            return
        packet = self.next_packet()
        self.system.offer_packet(self.port, packet)
        self.sent += 1
        self.system.sim.schedule(
            self.interarrival_cycles(packet), self._emit, name=f"src_port{self.port}"
        )


class FixedSizeSource(TrafficSource):
    """Same-size TCP packets over a pool of distinct flows.

    Distinct 5-tuples matter for the hash LB; each flow's frame is a
    flyweight :class:`~repro.packet.template.PacketTemplate` built
    once — emissions share its bytes, its parse, and its replay-cache
    class signature, so the per-packet hot loop allocates one
    :class:`Packet` and nothing else.
    """

    def __init__(
        self,
        system: RosebudSystem,
        port: int,
        offered_gbps: float,
        packet_size: int,
        n_flows: int = 64,
        n_packets: Optional[int] = None,
        seed: int = 1,
        respect_generator_cap: bool = True,
    ) -> None:
        super().__init__(system, port, offered_gbps, n_packets, respect_generator_cap)
        self.packet_size = packet_size
        rng = random.Random(seed)
        self._templates: List[PacketTemplate] = []
        for flow in range(n_flows):
            pkt = build_tcp(
                src_ip=f"10.{port}.{flow // 250}.{flow % 250 + 1}",
                dst_ip="10.200.0.1",
                src_port=1024 + rng.randrange(60000),
                dst_port=80,
                pad_to=max(packet_size, 60),
            )
            self._templates.append(intern_template(pkt.data, port))
        # explicit index (not itertools.cycle) so the fluid tier can
        # observe the flow-cycle phase without consuming the iterator
        self._next_template = 0

    def next_packet(self) -> Packet:
        template = self._templates[self._next_template]
        self._next_template = (self._next_template + 1) % len(self._templates)
        return template.make_packet()

    def fluid_profile(self):
        return len(self._templates), self._next_template


#: The classic simple-IMIX mix: (size, weight).
IMIX_MIX = ((64, 7), (570, 4), (1500, 1))


class ImixSource(TrafficSource):
    """Internet-mix traffic: 64/570/1500 B at 7:4:1 (by packets).

    The paper motivates its 800 B IPS sweet spot with "the average
    packet size for internet traces is over 800 bytes"; IMIX workloads
    probe how the software-per-packet costs behave on a realistic size
    mix rather than fixed-size sweeps.
    """

    def __init__(
        self,
        system: RosebudSystem,
        port: int,
        offered_gbps: float,
        n_flows: int = 64,
        n_packets: Optional[int] = None,
        seed: int = 2,
        respect_generator_cap: bool = True,
        mix=IMIX_MIX,
    ) -> None:
        super().__init__(system, port, offered_gbps, n_packets, respect_generator_cap)
        self.rng = random.Random(seed)
        self._sizes = [size for size, weight in mix for _ in range(weight)]
        self._templates = {}
        for size, _weight in mix:
            self._templates[size] = [
                intern_template(
                    build_tcp(
                        src_ip=f"10.{port}.{flow // 250}.{flow % 250 + 1}",
                        dst_ip="10.200.0.2",
                        src_port=2048 + flow,
                        dst_port=443,
                        pad_to=max(size, 60),
                    ).data,
                    port,
                )
                for flow in range(max(1, n_flows // len(mix)))
            ]

    @property
    def average_size(self) -> float:
        return sum(self._sizes) / len(self._sizes)

    def next_packet(self) -> Packet:
        size = self.rng.choice(self._sizes)
        return self.rng.choice(self._templates[size]).make_packet()


class CallbackSource(TrafficSource):
    """A source whose packets come from a user callable."""

    def __init__(
        self,
        system: RosebudSystem,
        port: int,
        offered_gbps: float,
        make_packet: Callable[[], Packet],
        n_packets: Optional[int] = None,
        respect_generator_cap: bool = True,
    ) -> None:
        super().__init__(system, port, offered_gbps, n_packets, respect_generator_cap)
        self._make_packet = make_packet

    def next_packet(self) -> Packet:
        return self._make_packet()


class ReplaySource(TrafficSource):
    """Replays a pre-built packet list (tcpreplay of a pcap trace)."""

    def __init__(
        self,
        system: RosebudSystem,
        port: int,
        offered_gbps: float,
        packets: Sequence[Packet],
        loop: bool = False,
        respect_generator_cap: bool = True,
    ) -> None:
        n = None if loop else len(packets)
        super().__init__(system, port, offered_gbps, n, respect_generator_cap)
        if not packets:
            raise ValueError("nothing to replay")
        # flyweight the trace up front: distinct frames intern to one
        # template each, carrying the per-packet trace metadata along
        self._packets = [
            (intern_template(p.data, port), p.is_attack, p.flow_id, p.seq_index)
            for p in packets
        ]
        self._index = 0

    def next_packet(self) -> Packet:
        template, is_attack, flow_id, seq_index = self._packets[
            self._index % len(self._packets)
        ]
        self._index += 1
        return template.make_packet(
            is_attack=is_attack, flow_id=flow_id, seq_index=seq_index
        )

    def fluid_profile(self):
        if self.n_packets is not None:  # finite replay: drains, not steady
            return None
        return len(self._packets), self._index % len(self._packets)
