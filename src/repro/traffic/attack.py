"""Attack-trace synthesis (§7.1.3, Artifact D.6).

The artifact generates a pcap from the ruleset (one packet per rule,
carrying that rule's fast pattern and satisfying its port constraint)
plus a few safe packets, then tcpreplays it into the background
traffic.  These helpers build the same traces from our rulesets and
blacklists.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..accel.firewall import Prefix
from ..accel.pigasus.ruleset import Rule
from ..packet.builder import TCP_OVERHEAD, UDP_OVERHEAD, build_tcp, build_udp
from ..packet.headers import int_to_ip
from ..packet.packet import Packet


def attack_trace_from_rules(
    rules: Sequence[Rule],
    packet_size: int = 1024,
    safe_packets: int = 4,
    seed: int = 5,
) -> List[Packet]:
    """One attack packet per rule + a few safe ones, like the artifact's
    trace generator for the Pigasus case study."""
    rng = random.Random(seed)
    packets: List[Packet] = []
    for rule in rules:
        dst_port = rule.dst_ports.low if not rule.dst_ports.is_any else 80
        src_port = rule.src_ports.low if not rule.src_ports.is_any else 1024 + rng.randrange(60000)
        overhead = TCP_OVERHEAD if rule.protocol != "udp" else UDP_OVERHEAD
        payload_len = max(len(rule.content) + 8, packet_size - overhead)
        payload = (b"Z" * 4 + rule.content + b"Z" * payload_len)[:payload_len]
        builder = build_udp if rule.protocol == "udp" else build_tcp
        packets.append(
            builder(
                src_ip=f"172.16.{rng.randrange(256)}.{rng.randrange(1, 255)}",
                dst_ip="10.201.0.1",
                src_port=src_port,
                dst_port=dst_port,
                payload=payload,
                pad_to=max(packet_size, overhead + payload_len),
                is_attack=True,
            )
        )
    for i in range(safe_packets):
        packets.append(
            build_tcp(
                src_ip=f"172.17.0.{i + 1}",
                dst_ip="10.201.0.1",
                src_port=2000 + i,
                dst_port=80,
                payload=b"safe" * 8,
                pad_to=packet_size,
                is_attack=False,
            )
        )
    return packets


def firewall_trace(
    prefixes: Sequence[Prefix],
    packet_size: int = 1024,
    safe_packets: int = 4,
    seed: int = 9,
) -> List[Packet]:
    """The firewall case-study trace: one packet per blacklisted prefix
    (1050 of them) plus ``safe_packets`` clean ones (Artifact D.6)."""
    rng = random.Random(seed)
    packets: List[Packet] = []
    for prefix in prefixes:
        # pick a concrete source address inside the prefix
        host_bits = 32 - prefix.length
        ip = prefix.network | (rng.randrange(1 << host_bits) if host_bits else 0)
        packets.append(
            build_tcp(
                src_ip=int_to_ip(ip),
                dst_ip="10.201.0.1",
                src_port=1024 + rng.randrange(60000),
                dst_port=443,
                pad_to=packet_size,
                is_attack=True,
            )
        )
    for i in range(safe_packets):
        packets.append(
            build_tcp(
                src_ip=f"10.55.0.{i + 1}",  # RFC1918: never blacklisted
                dst_ip="10.201.0.1",
                src_port=3000 + i,
                dst_port=443,
                pad_to=packet_size,
                is_attack=False,
            )
        )
    return packets
