"""Workload generation: rate-controlled sources, flows, attack traces."""

from .attack import attack_trace_from_rules, firewall_trace
from .flows import FlowTrafficSource
from .generator import (
    CallbackSource,
    IMIX_MIX,
    ImixSource,
    FixedSizeSource,
    GENERATOR_MAX_PPS_PER_PORT,
    ReplaySource,
    TrafficSource,
)

__all__ = [
    "attack_trace_from_rules",
    "firewall_trace",
    "FlowTrafficSource",
    "CallbackSource",
    "IMIX_MIX",
    "ImixSource",
    "FixedSizeSource",
    "GENERATOR_MAX_PPS_PER_PORT",
    "ReplaySource",
    "TrafficSource",
]
