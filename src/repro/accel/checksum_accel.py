"""Incremental checksum-update accelerator (RFC 1624).

Header-rewriting middleboxes (NAT, L4 load balancers — the kind §8.2
expects to be built on the platform) must fix IPv4/TCP/UDP checksums
after changing addresses or ports.  Recomputing over the payload is
exactly the byte-touching work RPU software cannot afford; the RFC 1624
incremental update (``HC' = ~(~HC + ~m + m')``) needs only the old and
new field values, a perfect one-cycle accelerator.

Register map::

    0x00  OLD_WORD   (write: 16-bit field value being replaced)
    0x04  NEW_WORD   (write: its replacement)
    0x08  CHECKSUM   (write: current checksum; read: updated checksum)
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .base import Accelerator

#: One cycle per (old, new) field pair.
UPDATE_CYCLES = 1


def incremental_update(checksum: int, old_word: int, new_word: int) -> int:
    """RFC 1624 eqn. 3: update ``checksum`` for one 16-bit field edit."""
    csum = (~checksum) & 0xFFFF
    csum += ((~old_word) & 0xFFFF) + (new_word & 0xFFFF)
    while csum >> 16:
        csum = (csum & 0xFFFF) + (csum >> 16)
    return (~csum) & 0xFFFF


def update_for_fields(
    checksum: int, edits: Sequence[Tuple[int, int]]
) -> int:
    """Apply a sequence of (old, new) 16-bit field edits."""
    for old_word, new_word in edits:
        checksum = incremental_update(checksum, old_word, new_word)
    return checksum


def words_of_ip(ip_value: int) -> Tuple[int, int]:
    """An IPv4 address as the two 16-bit words checksums see."""
    return (ip_value >> 16) & 0xFFFF, ip_value & 0xFFFF


class ChecksumUpdateAccelerator(Accelerator):
    """The MMIO wrapper around the incremental update."""

    name = "csum_update"

    REG_OLD = 0x00
    REG_NEW = 0x04
    REG_CSUM = 0x08

    def __init__(self) -> None:
        super().__init__()
        self._old = 0
        self._new = 0
        self._csum = 0
        self.updates = 0
        self.define_register(self.REG_OLD, 4, write=self._write_old)
        self.define_register(self.REG_NEW, 4, write=self._write_new)
        self.define_register(self.REG_CSUM, 4, read=self._read_csum, write=self._write_csum)

    def _write_old(self, value: int) -> None:
        self._old = value & 0xFFFF

    def _write_new(self, value: int) -> None:
        self._new = value & 0xFFFF

    def _write_csum(self, value: int) -> None:
        # writing the checksum triggers the update with the staged pair
        self._csum = incremental_update(value & 0xFFFF, self._old, self._new)
        self.updates += 1

    def _read_csum(self) -> int:
        return self._csum

    @property
    def update_cycles(self) -> int:
        return UPDATE_CYCLES

    def reset(self) -> None:
        self._old = self._new = self._csum = 0
