"""The blacklist-firewall IP matcher (§7.2).

The paper generates Verilog from the 1050-entry "emerging threats"
blacklist with a Python script; the accelerator checks the first 9 bits
of the source IP in one cycle and the remaining bits the next cycle —
a two-cycle lookup.  Here the same structure is a two-level dict: a
first-level table keyed by the top 9 bits, each entry holding the set
of (remaining-bits, prefix-length) patterns to check in stage two.

Register map (matches the firmware listing in Appendix C):

========  =====================================================
offset    register
========  =====================================================
0x00      ``ACC_SRC_IP`` (write: IP to check, starts the lookup)
0x04      ``ACC_FW_MATCH`` (read: 1 if blacklisted)
========  =====================================================
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from ..packet.headers import int_to_ip, ip_to_int
from .base import Accelerator

#: Cycles for one lookup: stage-1 (9 bits) + stage-2 (remaining bits).
LOOKUP_CYCLES = 2

_RULE_RE = re.compile(
    r"^(?:block\s+)?(?:drop\s+)?(?:quick\s+)?(?:from\s+)?"
    r"(\d+\.\d+\.\d+\.\d+)(?:/(\d+))?"
)


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix in the blacklist."""

    network: int
    length: int

    def matches(self, ip: int) -> bool:
        if self.length == 0:
            return True
        shift = 32 - self.length
        return (ip >> shift) == (self.network >> shift)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


def parse_blacklist(text: str) -> List[Prefix]:
    """Parse pf/emerging-threats style drop rules into prefixes.

    Accepts lines like ``block drop from 192.0.2.0/24 to any`` or bare
    ``192.0.2.1`` entries; comments (#) and blanks are skipped.
    """
    prefixes: List[Prefix] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip().lower()
        if not line:
            continue
        match = _RULE_RE.search(line)
        if not match:
            raise ValueError(f"unparseable blacklist rule: {raw!r}")
        network = ip_to_int(match.group(1))
        length = int(match.group(2)) if match.group(2) else 32
        if not 0 <= length <= 32:
            raise ValueError(f"bad prefix length in {raw!r}")
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
        prefixes.append(Prefix(network & mask, length))
    return prefixes


class IpBlacklistMatcher(Accelerator):
    """The two-stage prefix-match accelerator.

    Stage one indexes the top 9 bits of the IP; stage two linearly
    checks the (tiny) per-bucket pattern list — in hardware both are
    single-cycle because each bucket is a parallel comparator bank.
    """

    name = "ip_blacklist"

    REG_SRC_IP = 0x00
    REG_MATCH = 0x04

    def __init__(self, prefixes: Iterable[Prefix]) -> None:
        super().__init__()
        self.prefixes: List[Prefix] = list(prefixes)
        self._stage1: Dict[int, List[Prefix]] = {}
        self._wildcards: List[Prefix] = []  # prefixes shorter than 9 bits
        for prefix in self.prefixes:
            if prefix.length < 9:
                self._wildcards.append(prefix)
                continue
            bucket = prefix.network >> 23
            self._stage1.setdefault(bucket, []).append(prefix)
        self._match_flag = 0
        self.lookups = 0
        self.define_register(self.REG_SRC_IP, 4, write=self._write_ip)
        self.define_register(
            self.REG_MATCH, 1, read=lambda: self._match_flag, value_range=(0, 1)
        )

    def _write_ip(self, ip: int) -> None:
        # firmware does a little-endian word load of the network-order
        # IP bytes (like the paper's C code); the generated hardware
        # comparators are wired for that representation, which here
        # means byte-swapping back to host order
        swapped = (
            ((ip & 0xFF) << 24)
            | ((ip & 0xFF00) << 8)
            | ((ip >> 8) & 0xFF00)
            | ((ip >> 24) & 0xFF)
        )
        self._match_flag = int(self.check(swapped))

    def check(self, ip: int) -> bool:
        """Functional lookup: is ``ip`` blacklisted?"""
        self.lookups += 1
        for prefix in self._stage1.get(ip >> 23, ()):
            if prefix.matches(ip):
                return True
        for prefix in self._wildcards:
            if prefix.matches(ip):
                return True
        return False

    def check_str(self, ip: str) -> bool:
        return self.check(ip_to_int(ip))

    @property
    def lookup_cycles(self) -> int:
        return LOOKUP_CYCLES

    def replay_token(self):
        # MMIO reads expose only the match flag; the prefix tables are
        # immutable after construction, so (fault arm, flag) is the
        # whole mutable slice a bracket's reads can depend on
        return (self._fault_active, self._match_flag)

    def reset(self) -> None:
        self._match_flag = 0
        self.lookups = 0


def generate_blacklist(n_rules: int = 1050, seed: int = 7) -> str:
    """A synthetic stand-in for the emerging-threats PF-DROP list.

    Deterministic, mixes /32 hosts with a sprinkling of /24 and /16
    networks like the real list, and avoids RFC1918 space so test
    traffic can be crafted on either side of the list.
    """
    import random

    rng = random.Random(seed)
    lines = ["# synthetic emerging-threats style blacklist"]
    seen: Set[Tuple[int, int]] = set()
    while len(seen) < n_rules:
        roll = rng.random()
        if roll < 0.85:
            length = 32
        elif roll < 0.97:
            length = 24
        else:
            length = 16
        # public-ish space: first octet 11..200, skipping 127
        first = rng.choice([o for o in range(11, 200) if o != 127 and o != 192])
        ip = (
            (first << 24)
            | (rng.randrange(256) << 16)
            | (rng.randrange(256) << 8)
            | rng.randrange(256)
        )
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        key = (ip & mask, length)
        if key in seen:
            continue
        seen.add(key)
        lines.append(f"block drop from {int_to_ip(key[0])}/{length} to any")
    return "\n".join(lines) + "\n"


def generate_verilog(prefixes: Iterable[Prefix], module_name: str = "fw_ip_match") -> str:
    """Emit the Verilog the paper's script would generate.

    Not consumed anywhere in the simulation — it exists to demonstrate
    (and test) the rule-compiler path of the case study: a two-stage
    comparator tree over the 9-bit index and the remaining bits.
    """
    prefixes = list(prefixes)
    lines = [
        f"module {module_name} (",
        "    input wire clk,",
        "    input wire [31:0] src_ip,",
        "    output reg match",
        ");",
        "  reg [8:0] stage1_idx;",
        "  reg [22:0] stage1_rest;",
        "  always @(posedge clk) begin",
        "    stage1_idx  <= src_ip[31:23];",
        "    stage1_rest <= src_ip[22:0];",
        "    match <= 1'b0;",
        "    case (stage1_idx)",
    ]
    buckets: Dict[int, List[Prefix]] = {}
    for prefix in prefixes:
        buckets.setdefault(prefix.network >> 23, []).append(prefix)
    for bucket in sorted(buckets):
        terms = []
        for prefix in buckets[bucket]:
            rest_bits = prefix.length - 9
            if rest_bits <= 0:
                terms.append("1'b1")
                continue
            rest_value = (prefix.network >> (32 - prefix.length)) & ((1 << rest_bits) - 1)
            hi = 22
            lo = 23 - rest_bits
            terms.append(f"(stage1_rest[{hi}:{lo}] == {rest_bits}'d{rest_value})")
        lines.append(f"      9'd{bucket}: match <= {' || '.join(terms)};")
    lines += [
        "      default: match <= 1'b0;",
        "    endcase",
        "  end",
        "endmodule",
    ]
    return "\n".join(lines) + "\n"
