"""The rule packer (Appendix A.1).

Pigasus's rule packer emits matched rule IDs in output chunks; the port
sets the chunk width to 32 bits to match the RISC-V word size, and the
firmware appends the words to the end of the matched packet before
punting it to the host (Appendix B).  The host side then unpacks them.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

#: The port's chunk width (bits) — changed from Pigasus's 128 to match
#: the RISC-V word size.
CHUNK_BITS = 32


def pack_rule_ids(sids: Sequence[int]) -> bytes:
    """Pack matched rule IDs into 32-bit little-endian words.

    A zero word terminates the list (the EoP marker firmware sees when
    draining the match FIFO), so rule IDs of zero are not representable
    — real snort sids start at 1.
    """
    for sid in sids:
        if not 0 < sid < 2**32:
            raise ValueError(f"rule id {sid} out of range")
    return b"".join(struct.pack("<I", sid) for sid in sids) + struct.pack("<I", 0)


def unpack_rule_ids(blob: bytes) -> List[int]:
    """Host-side unpack: read words until the zero terminator."""
    if len(blob) % 4:
        raise ValueError("rule-id blob must be a whole number of words")
    sids: List[int] = []
    for offset in range(0, len(blob), 4):
        (word,) = struct.unpack_from("<I", blob, offset)
        if word == 0:
            return sids
        sids.append(word)
    raise ValueError("missing zero terminator in rule-id blob")


def extract_appended_rule_ids(packet_data: bytes, original_len: int) -> List[int]:
    """Pull the rule IDs the firmware appended past the original payload."""
    if original_len > len(packet_data):
        raise ValueError("original length exceeds packet")
    # firmware dword-aligns the append position (mem_align in Appendix B)
    start = (original_len + 3) & ~3
    return unpack_rule_ids(packet_data[start:])
