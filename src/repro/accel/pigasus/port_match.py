"""The Pigasus port-group matcher (§7.1, Appendix A).

In Pigasus the port matcher narrows the candidate rule set by the
packet's TCP/UDP port pair before the expensive string verify.  The
port groups are a lookup table over (protocol, port) -> rule-id bitmap;
like the string matcher's tables it is URAM-resident and loaded at
runtime through Rosebud's memory subsystem.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from .ruleset import Rule
from ..base import Accelerator

#: One cycle to index each of src/dst tables, one to intersect.
LOOKUP_CYCLES = 3


class PigasusPortMatcher(Accelerator):
    """Port-group lookup: rules whose port constraints admit a packet.

    Register map (mirrors ``ACC_PIG_PORTS`` usage in Appendix B):

    ========  ==========================================
    offset    register
    ========  ==========================================
    0x0c      ``ACC_PIG_PORTS`` (write: src<<16 | dst)
    0x20      candidate count (read)
    ========  ==========================================
    """

    name = "pigasus_port_match"

    REG_PORTS = 0x0C
    REG_COUNT = 0x20

    def __init__(self) -> None:
        super().__init__()
        self._rules: List[Rule] = []
        #: dense tables: port -> frozenset of rule indices (per proto/side)
        self._any_rules: Dict[str, Set[int]] = {"tcp": set(), "udp": set()}
        self._src_table: Dict[str, Dict[int, Set[int]]] = {"tcp": {}, "udp": {}}
        self._dst_table: Dict[str, Dict[int, Set[int]]] = {"tcp": {}, "udp": {}}
        self._last_count = 0
        self.table_generation = 0
        self.define_register(self.REG_PORTS, 4, write=self._write_ports)
        self.define_register(self.REG_COUNT, 4, read=lambda: self._last_count)
        self._last_proto = "tcp"

    @property
    def ready(self) -> bool:
        return self.table_generation > 0

    def load_rules(self, rules: Iterable[Rule]) -> int:
        """Build the port tables at runtime; returns load cycles."""
        self._rules = list(rules)
        self._any_rules = {"tcp": set(), "udp": set()}
        self._src_table = {"tcp": {}, "udp": {}}
        self._dst_table = {"tcp": {}, "udp": {}}
        entries = 0
        for idx, rule in enumerate(self._rules):
            protos = ("tcp", "udp") if rule.protocol == "ip" else (rule.protocol,)
            for proto in protos:
                if rule.src_ports.is_any and rule.dst_ports.is_any:
                    self._any_rules[proto].add(idx)
                    continue
                # ranges expand into the dense tables like the hardware's
                # port-group RAM; cap expansion for giant ranges by
                # treating >1024-wide ranges as "any"
                for table, spec in (
                    (self._src_table[proto], rule.src_ports),
                    (self._dst_table[proto], rule.dst_ports),
                ):
                    if spec.is_any:
                        continue
                    if spec.high - spec.low > 1024:
                        self._any_rules[proto].add(idx)
                        continue
                    for port in range(spec.low, spec.high + 1):
                        table.setdefault(port, set()).add(idx)
                        entries += 1
        self.table_generation += 1
        return max(1, entries // 8)

    def candidates(self, proto: str, src_port: int, dst_port: int) -> List[Rule]:
        """Rules whose port groups admit this packet."""
        if not self.ready:
            raise RuntimeError("port tables not loaded")
        result: List[Rule] = []
        for idx in self._candidate_indices(proto, src_port, dst_port):
            result.append(self._rules[idx])
        self._last_count = len(result)
        return result

    def _candidate_indices(self, proto: str, src_port: int, dst_port: int) -> List[int]:
        if proto not in ("tcp", "udp"):
            return []
        hits = set(self._any_rules[proto])
        hits |= self._src_table[proto].get(src_port, set())
        hits |= self._dst_table[proto].get(dst_port, set())
        # verify both sides (a src-table hit may still fail dst ports)
        return sorted(
            idx
            for idx in hits
            if self._rules[idx].matches_ports(proto, src_port, dst_port)
        )

    def _write_ports(self, value: int) -> None:
        src = (value >> 16) & 0xFFFF
        dst = value & 0xFFFF
        self.candidates(self._last_proto, src, dst)

    @property
    def lookup_cycles(self) -> int:
        return LOOKUP_CYCLES

    def reset(self) -> None:
        self._last_count = 0
