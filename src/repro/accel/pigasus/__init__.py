"""Ported Pigasus IDS accelerators: ruleset, string matcher, port matcher."""

from .port_match import PigasusPortMatcher
from .rule_packer import (
    CHUNK_BITS,
    extract_appended_rule_ids,
    pack_rule_ids,
    unpack_rule_ids,
)
from .ruleset import (
    PortSpec,
    Rule,
    RulesetError,
    generate_ruleset,
    parse_rules,
)
from .string_match import (
    AhoCorasick,
    BYTES_PER_CYCLE,
    ENGINES_PER_RPU,
    PigasusStringMatcher,
)

__all__ = [
    "PigasusPortMatcher",
    "CHUNK_BITS",
    "extract_appended_rule_ids",
    "pack_rule_ids",
    "unpack_rule_ids",
    "PortSpec",
    "Rule",
    "RulesetError",
    "generate_ruleset",
    "parse_rules",
    "AhoCorasick",
    "BYTES_PER_CYCLE",
    "ENGINES_PER_RPU",
    "PigasusStringMatcher",
]
