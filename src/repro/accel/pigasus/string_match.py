"""The Pigasus multi-string pattern matcher, ported to an RPU (§7.1).

Functionally this is exact multi-pattern search over packet payloads
(Aho–Corasick, which is what a bank of parallel hash-probed shift
registers computes in aggregate).  The performance model follows the
RPU port: 16 parallel string-matching engines, together consuming
16 bytes of payload per cycle (§7.1.4), fed by the DMA engine from
packet memory.

The port's key Rosebud-enabled feature is *runtime table loading*: the
big hash/lookup tables live in URAM, which cannot be initialized from
the bitstream, so Rosebud's memory subsystem fills them at runtime —
and can refresh them later to change the ruleset without a new FPGA
image (§7.1.2).  :meth:`load_rules` is that operation; until it has
been called the matcher reports itself unready, like uninitialized
hardware.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .ruleset import Rule
from ..base import Accelerator

#: Paper: 16 engines inside each RPU, 16 payload bytes consumed per cycle.
ENGINES_PER_RPU = 16
BYTES_PER_CYCLE = 16

#: Cycles to stream one table word into URAM over the added write port.
TABLE_LOAD_BYTES_PER_CYCLE = 16

#: Capacity of the hardware match FIFO, end-of-packet marker included.
#: This is a *verified contract*: the wrapper declares it as
#: ``stream_depth`` on ``REG_RULE_ID``, the static verifier bounds
#: firmware drain loops by it, so the functional model must enforce it
#: (overflowing matches are dropped and counted, as the RTL would).
MATCH_FIFO_DEPTH = 8


class AhoCorasick:
    """A plain Aho–Corasick automaton over byte strings."""

    def __init__(self, patterns: Dict[bytes, int]) -> None:
        """``patterns`` maps pattern bytes -> opaque id (rule sid)."""
        if not patterns:
            raise ValueError("need at least one pattern")
        # goto function as list of dicts; output sets per state
        self._goto: List[Dict[int, int]] = [{}]
        self._fail: List[int] = [0]
        self._output: List[Set[int]] = [set()]
        for pattern, pid in patterns.items():
            if not pattern:
                raise ValueError("empty pattern")
            state = 0
            for byte in pattern:
                nxt = self._goto[state].get(byte)
                if nxt is None:
                    self._goto.append({})
                    self._fail.append(0)
                    self._output.append(set())
                    nxt = len(self._goto) - 1
                    self._goto[state][byte] = nxt
                state = nxt
            self._output[state].add(pid)
        # BFS to build failure links
        queue = deque()
        for state in self._goto[0].values():
            queue.append(state)
        while queue:
            state = queue.popleft()
            for byte, nxt in self._goto[state].items():
                queue.append(nxt)
                fail = self._fail[state]
                while fail and byte not in self._goto[fail]:
                    fail = self._fail[fail]
                self._fail[nxt] = self._goto[fail].get(byte, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt] |= self._output[self._fail[nxt]]

    @property
    def n_states(self) -> int:
        return len(self._goto)

    def search(self, data: bytes) -> List[Tuple[int, int]]:
        """All matches as (end_offset, pattern_id), in stream order."""
        matches: List[Tuple[int, int]] = []
        state = 0
        for offset, byte in enumerate(data):
            while state and byte not in self._goto[state]:
                state = self._fail[state]
            state = self._goto[state].get(byte, 0)
            if self._output[state]:
                for pid in sorted(self._output[state]):
                    matches.append((offset, pid))
        return matches


class PigasusStringMatcher(Accelerator):
    """The ported fast-pattern matcher with its MMIO wrapper registers.

    Register map (subset of the Appendix B listing)::

        0x00  ACC_PIG_CTRL   (write 1: start, write 2: release match/EoP)
        0x00  ACC_PIG_MATCH  (read: 1 when a match word is waiting)
        0x04  ACC_DMA_LEN    (payload length)
        0x08  ACC_DMA_ADDR   (payload address — functional model takes bytes)
        0x1c  ACC_PIG_RULE_ID (read: matched rule id, 0 = end of packet)
    """

    name = "pigasus_sme"

    REG_CTRL = 0x00
    REG_DMA_LEN = 0x04
    REG_DMA_ADDR = 0x08
    REG_PORTS = 0x0C
    REG_RULE_ID = 0x1C

    def __init__(self, n_engines: int = ENGINES_PER_RPU) -> None:
        super().__init__()
        if n_engines < 1:
            raise ValueError("need at least one engine")
        self.n_engines = n_engines
        self._automaton: Optional[AhoCorasick] = None
        self._rules_by_sid: Dict[int, Rule] = {}
        self.table_generation = 0
        self._match_fifo: deque = deque()
        self._dma_len = 0
        self._dma_addr = 0
        self._payload: bytes = b""
        self._src_port = 0
        self._dst_port = 0
        self.packets_scanned = 0
        self.bytes_scanned = 0
        self.matches_overflowed = 0
        self.define_register(
            self.REG_CTRL,
            1,
            read=self._read_match_flag,
            write=self._write_ctrl,
            value_range=(0, 1),
            stream_advance=True,
        )
        self.define_register(self.REG_DMA_LEN, 4, write=self._write_len)
        self.define_register(self.REG_DMA_ADDR, 4, write=self._write_addr)
        self.define_register(self.REG_PORTS, 4, write=self._write_ports)
        self.define_register(
            self.REG_RULE_ID,
            4,
            read=self._read_rule_id,
            stream_depth=MATCH_FIFO_DEPTH,
        )

    # -- runtime table loading (the URAM trick) -----------------------------------

    @property
    def ready(self) -> bool:
        return self._automaton is not None

    def load_rules(self, rules: Iterable[Rule]) -> int:
        """Fill the lookup tables at runtime; returns the load cost in
        cycles (table bytes / write-port width)."""
        rules = list(rules)
        patterns = {rule.content: rule.sid for rule in rules}
        self._automaton = AhoCorasick(patterns)
        self._rules_by_sid = {rule.sid: rule for rule in rules}
        self.table_generation += 1
        table_bytes = self._automaton.n_states * 16  # state word estimate
        return -(-table_bytes // TABLE_LOAD_BYTES_PER_CYCLE)

    # -- functional matching ---------------------------------------------------------

    def scan(
        self,
        payload: bytes,
        proto: str = "tcp",
        src_port: int = 0,
        dst_port: int = 0,
    ) -> List[int]:
        """Fast-pattern scan + port-group filter; returns matched sids."""
        if self._automaton is None:
            raise RuntimeError("matcher tables not loaded (URAMs uninitialized)")
        self.packets_scanned += 1
        self.bytes_scanned += len(payload)
        sids: List[int] = []
        seen: Set[int] = set()
        for _offset, sid in self._automaton.search(payload):
            if sid in seen:
                continue
            rule = self._rules_by_sid[sid]
            if rule.matches_ports(proto, src_port, dst_port):
                seen.add(sid)
                sids.append(sid)
        return sids

    def scan_cycles(self, payload_len: int) -> int:
        """Accelerator occupancy: 16 B of payload per cycle, min 1."""
        return max(1, -(-payload_len // BYTES_PER_CYCLE))

    # -- MMIO behaviour (used by the functional ISS RPU) ------------------------------

    def set_payload(self, payload: bytes) -> None:
        """Functional stand-in for the DMA stream into the matcher."""
        self._payload = payload

    def _write_ctrl(self, value: int) -> None:
        if value == 1:  # start
            payload = self._payload[: self._dma_len] if self._dma_len else self._payload
            sids = self.scan(payload, "tcp", self._src_port, self._dst_port)
            # the hardware FIFO holds MATCH_FIFO_DEPTH words including
            # the EoP marker; matches past the cap are dropped (the rule
            # id still reaches the host via the punted packet itself)
            room = MATCH_FIFO_DEPTH - 1 - len(self._match_fifo)
            if len(sids) > room:
                self.matches_overflowed += len(sids) - room
                sids = sids[:room]
            for sid in sids:
                self._match_fifo.append(sid)
            self._match_fifo.append(0)  # EoP marker
        elif value == 2:  # release current word
            if self._match_fifo:
                self._match_fifo.popleft()

    def _write_len(self, value: int) -> None:
        self._dma_len = value

    def _write_addr(self, value: int) -> None:
        self._dma_addr = value

    def _write_ports(self, value: int) -> None:
        # firmware does one LE word load of the TCP header's first four
        # bytes (src/dst port, each big-endian on the wire)
        self._src_port = ((value & 0xFF) << 8) | ((value >> 8) & 0xFF)
        self._dst_port = ((value >> 8) & 0xFF00) | ((value >> 24) & 0xFF)

    def _read_match_flag(self) -> int:
        return int(bool(self._match_fifo))

    def _read_rule_id(self) -> int:
        return self._match_fifo[0] if self._match_fifo else 0

    def reset(self) -> None:
        self._match_fifo.clear()
        self._payload = b""
        self._dma_len = 0
        self._dma_addr = 0
