"""Snort-lite rulesets for the Pigasus case study (§7.1).

Pigasus offloads Snort's *fast-pattern* matching: each rule contributes
one content string (its fast pattern) plus a port constraint; a packet
that hits the fast pattern and the port group is flagged with the rule
ID and punted to full inspection (in the paper, the Snort process on
the host).

We parse a small but real subset of the Snort rule language — enough to
express the rules the case study exercises — and can generate synthetic
rulesets of any size for benchmarking.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

_RULE_RE = re.compile(
    r"^(alert|block|drop)\s+(tcp|udp|ip)\s+(\S+)\s+(\S+)\s*->\s*(\S+)\s+(\S+)\s*\((.*)\)\s*$"
)
_OPTION_RE = re.compile(r'(\w+)\s*:\s*("(?:[^"\\]|\\.)*"|[^;]*)\s*;')


class RulesetError(ValueError):
    """Raised on rules outside the supported subset."""


@dataclass(frozen=True)
class PortSpec:
    """A port constraint: any, single port, or an inclusive range."""

    low: int = 0
    high: int = 65535

    @classmethod
    def parse(cls, text: str) -> "PortSpec":
        text = text.strip().lower()
        if text == "any":
            return cls()
        if ":" in text:
            lo, hi = text.split(":", 1)
            return cls(int(lo) if lo else 0, int(hi) if hi else 65535)
        port = int(text)
        return cls(port, port)

    def matches(self, port: int) -> bool:
        return self.low <= port <= self.high

    @property
    def is_any(self) -> bool:
        return self.low == 0 and self.high == 65535


@dataclass(frozen=True)
class Rule:
    """One IDS rule: fast pattern + protocol + port groups.

    ``content`` is the *fast pattern* the hardware matches;
    ``extra_contents`` are the rule's remaining content options, which
    only the host-side full matcher evaluates (the Snort half of the
    Pigasus split, §7.1.1).
    """

    sid: int
    protocol: str  # "tcp", "udp", or "ip"
    src_ports: PortSpec
    dst_ports: PortSpec
    content: bytes
    msg: str = ""
    extra_contents: Tuple[bytes, ...] = ()

    def matches_ports(self, proto: str, src_port: int, dst_port: int) -> bool:
        if self.protocol != "ip" and self.protocol != proto:
            return False
        return self.src_ports.matches(src_port) and self.dst_ports.matches(dst_port)

    def full_match(self, payload: bytes) -> bool:
        """All contents present — the complete (host-side) check."""
        if self.content not in payload:
            return False
        return all(extra in payload for extra in self.extra_contents)


def _parse_content(raw: str) -> bytes:
    """Snort content syntax: text with ``|hex bytes|`` escapes."""
    raw = raw.strip()
    if raw.startswith('"') and raw.endswith('"'):
        raw = raw[1:-1]
    out = bytearray()
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "|":
            end = raw.index("|", i + 1)
            for token in raw[i + 1 : end].split():
                out.append(int(token, 16))
            i = end + 1
        elif ch == "\\" and i + 1 < len(raw):
            out.append(ord(raw[i + 1]))
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)


def parse_rules(text: str) -> List[Rule]:
    """Parse a Snort-lite ruleset."""
    rules: List[Rule] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _RULE_RE.match(line)
        if not match:
            raise RulesetError(f"line {lineno}: unsupported rule syntax")
        _action, proto, _src, src_ports, _dst, dst_ports, options = match.groups()
        sid: Optional[int] = None
        content: Optional[bytes] = None
        extra: List[bytes] = []
        msg = ""
        for opt_name, opt_value in _OPTION_RE.findall(options):
            if opt_name == "sid":
                sid = int(opt_value.strip())
            elif opt_name == "content":
                if content is None:
                    content = _parse_content(opt_value)
                else:
                    extra.append(_parse_content(opt_value))
            elif opt_name == "msg":
                msg = opt_value.strip().strip('"')
        if sid is None:
            raise RulesetError(f"line {lineno}: rule missing sid")
        if content is None:
            raise RulesetError(f"line {lineno}: rule missing content (fast pattern)")
        if len(content) < 2:
            raise RulesetError(f"line {lineno}: fast pattern shorter than 2 bytes")
        rules.append(
            Rule(
                sid=sid,
                protocol=proto,
                src_ports=PortSpec.parse(src_ports),
                dst_ports=PortSpec.parse(dst_ports),
                content=content,
                msg=msg,
                extra_contents=tuple(extra),
            )
        )
    return rules


_WORDS = (
    "exploit", "shellcode", "cmd.exe", "getroot", "xmrig", "trickbot",
    "metasploit", "beacon", "dropper", "ransom", "keylog", "botnet",
    "injector", "overflow", "payload", "backdoor", "rootkit", "stealer",
)


def generate_ruleset(n_rules: int = 200, seed: int = 11) -> str:
    """A deterministic synthetic ruleset in the supported syntax.

    Patterns are distinct, >= 4 bytes, and the port mix (mostly 80/443
    dst-port rules plus some any-any) resembles registered snort rules.
    """
    rng = random.Random(seed)
    lines = ["# synthetic snort-lite ruleset"]
    seen = set()
    sid = 1000
    while len(seen) < n_rules:
        word = rng.choice(_WORDS)
        pattern = f"{word}-{rng.randrange(10_000):04d}"
        if pattern in seen:
            continue
        seen.add(pattern)
        sid += 1
        proto = "tcp" if rng.random() < 0.85 else "udp"
        dst = rng.choice(["80", "443", "any", "25", "8080", "1024:"])
        # ~20% of rules carry a second content option the hardware does
        # not check — the host's full matcher must confirm it
        extra = ""
        if rng.random() < 0.2:
            extra = f' content:"confirm-{rng.randrange(1000):03d}";'
        lines.append(
            f'alert {proto} any any -> any {dst} '
            f'(msg:"SYNTH {word}"; content:"{pattern}";{extra} sid:{sid};)'
        )
    return "\n".join(lines) + "\n"
