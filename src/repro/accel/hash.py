"""The inline flow-hash accelerator (§7.1.2).

The hash-based LB contains a small accelerator that computes a 32-bit
hash of each packet's flow identity *inline*, uses 3 bits of it to pick
the RPU, and pads the full result onto the packet front so RPU software
can reuse it without recomputation ("know the exact hash that the LB
has used").

Functionally this is a CRC-32 over the 5-tuple fields; the hardware
model pipelines one header word per cycle, so the latency is the
header-word count plus a fixed pipeline depth — negligible next to
packet serialization, which is why it lives inline in the LB.
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional

from ..packet.headers import ip_to_int
from ..packet.packet import Packet
from .base import Accelerator

#: Pipeline depth of the inline hash unit.
PIPELINE_CYCLES = 4
#: Header bytes hashed: src/dst IP + proto + ports = 13 bytes -> 4 words.
HASHED_WORDS = 4


class FlowHashAccelerator(Accelerator):
    """CRC-32 flow hash with the LB's inline timing model.

    Register map (the LB uses it internally; exposed for funcsim use):

    ========  ========================================
    offset    register
    ========  ========================================
    0x00      word in (write 4 words of flow identity)
    0x04      hash out (read)
    ========  ========================================
    """

    name = "flow_hash"

    REG_WORD_IN = 0x00
    REG_HASH_OUT = 0x04

    def __init__(self) -> None:
        super().__init__()
        self._crc = 0
        self.hashes_computed = 0
        self.define_register(self.REG_WORD_IN, 4, write=self._feed_word)
        self.define_register(self.REG_HASH_OUT, 4, read=self._read_hash)

    # -- functional API (what HashLB calls) ----------------------------------------

    def hash_tuple(
        self, src_ip: str, dst_ip: str, protocol: int, src_port: int, dst_port: int
    ) -> int:
        key = struct.pack(
            "!IIBHH", ip_to_int(src_ip), ip_to_int(dst_ip), protocol,
            src_port, dst_port,
        )
        self.hashes_computed += 1
        return zlib.crc32(key) & 0xFFFFFFFF

    def hash_packet(self, packet: Packet) -> Optional[int]:
        tup = packet.five_tuple
        if tup is None:
            return None
        src, dst, proto, sport, dport = tup
        return self.hash_tuple(src, dst, proto, sport, dport)

    def latency_cycles(self) -> int:
        """Inline latency: one cycle per hashed word + pipeline."""
        return HASHED_WORDS + PIPELINE_CYCLES

    # -- MMIO behaviour --------------------------------------------------------------

    def _feed_word(self, value: int) -> None:
        self._crc = zlib.crc32(value.to_bytes(4, "little"), self._crc) & 0xFFFFFFFF

    def _read_hash(self) -> int:
        result = self._crc
        self._crc = 0
        self.hashes_computed += 1
        return result

    def reset(self) -> None:
        self._crc = 0
