"""RPU accelerators: framework, firewall IP matcher, Pigasus engines."""

from .base import Accelerator, AcceleratorError, AcceleratorWrapper
from .checksum_accel import ChecksumUpdateAccelerator, incremental_update, update_for_fields
from .hash import FlowHashAccelerator
from .firewall import (
    IpBlacklistMatcher,
    LOOKUP_CYCLES,
    Prefix,
    generate_blacklist,
    generate_verilog,
    parse_blacklist,
)

__all__ = [
    "Accelerator",
    "AcceleratorError",
    "AcceleratorWrapper",
    "IpBlacklistMatcher",
    "FlowHashAccelerator",
    "ChecksumUpdateAccelerator",
    "incremental_update",
    "update_for_fields",
    "LOOKUP_CYCLES",
    "Prefix",
    "generate_blacklist",
    "generate_verilog",
    "parse_blacklist",
]
