"""Accelerator framework (§3.3, Appendix A.2).

An accelerator inside an RPU exposes two interfaces:

* a *register file* reached over MMIO from the RISC-V core — the
  ``ACC_*`` defines in the paper's firmware listings;
* optionally a *streaming port* fed by the DMA engine from packet
  memory (the Pigasus matcher consumes payloads this way).

:class:`AcceleratorWrapper` is the "basic wrapper" Appendix A.2
describes: it assigns register addresses, provides blocking and
non-blocking access semantics, and adds the small hardware queue that
lets software treat the accelerator like an asynchronous worker.

Concrete accelerators implement :meth:`read_reg`/:meth:`write_reg`
against their register map and a cycle-cost model; the same object
serves both the behavioural system simulator (functional calls) and
the instruction-set simulator (mapped as an MMIO region).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple


class AcceleratorError(RuntimeError):
    """Raised on register protocol violations."""


class Accelerator:
    """Base class for RPU accelerators.

    Register offsets are byte addresses within the accelerator's MMIO
    window (``IO_EXT_BASE`` in firmware).  Subclasses register handlers
    via :meth:`define_register`.
    """

    name = "accelerator"

    def __init__(self) -> None:
        self._regs: Dict[int, Tuple[Optional[callable], Optional[callable], int]] = {}
        self._reg_meta: Dict[int, Dict[str, object]] = {}
        self._fault_active = False
        #: results that went through the poisoned response path
        self.results_poisoned = 0

    def define_register(
        self,
        offset: int,
        nbytes: int,
        read=None,
        write=None,
        *,
        value_range: Optional[Tuple[int, int]] = None,
        stream_depth: Optional[int] = None,
        stream_advance: bool = False,
    ) -> None:
        """Register a handler: ``read()`` -> int, ``write(value)``.

        The keyword metadata is the accelerator's *static contract*,
        consumed by the firmware verifier (``repro.verify.absint``):

        * ``value_range`` — every read provably lies in ``[lo, hi]``;
        * ``stream_depth`` — reads pop a hardware FIFO of at most this
          many words, ending with a zero marker (drain loops over the
          register are therefore bounded by the depth);
        * ``stream_advance`` — writes advance that FIFO's head.

        Declaring a contract the hardware does not keep would make the
        verifier unsound, so implementations must enforce it (see the
        Pigasus matcher's FIFO cap).
        """
        self._regs[offset] = (read, write, nbytes)
        meta: Dict[str, object] = {}
        if value_range is not None:
            meta["value_range"] = (int(value_range[0]), int(value_range[1]))
        if stream_depth is not None:
            meta["stream_depth"] = int(stream_depth)
        if stream_advance:
            meta["stream_advance"] = True
        if meta:
            self._reg_meta[offset] = meta

    def reg_meta(self, offset: int) -> Dict[str, object]:
        """Static-contract metadata for one register (may be empty)."""
        return dict(self._reg_meta.get(offset, ()))

    # -- MMIO entry points (offset within the accelerator window) --------------

    def read_reg(self, offset: int, nbytes: int = 4) -> int:
        entry = self._regs.get(offset)
        if entry is None or entry[0] is None:
            raise AcceleratorError(
                f"{self.name}: read of unmapped register {offset:#x}"
            )
        return entry[0]() & ((1 << (nbytes * 8)) - 1)

    def write_reg(self, offset: int, value: int, nbytes: int = 4) -> None:
        entry = self._regs.get(offset)
        if entry is None or entry[1] is None:
            raise AcceleratorError(
                f"{self.name}: write of unmapped register {offset:#x}"
            )
        entry[1](value)

    def mmio_handlers(self):
        """(read, write) pair suitable for ``MemoryBus.add_mmio``."""
        return (lambda off, n: self.read_reg(off, n), lambda off, v, n: self.write_reg(off, v, n))

    # -- fault injection (repro.faults) ------------------------------------------

    @property
    def fault_active(self) -> bool:
        return self._fault_active

    def inject_fault(self, active: bool = True) -> None:
        """Arm (or clear) the poisoned-result fault: while active, every
        result passed through :meth:`guard` comes back corrupted with
        its parity flag low, so firmware can detect the bad read and
        orchestrate a software re-run — recovery as just another thing
        the core schedules."""
        self._fault_active = active

    def guard(self, value: int) -> Tuple[int, bool]:
        """Pass a result through the (possibly faulty) response path.

        Returns ``(value_as_read, parity_ok)``: the value firmware saw
        over MMIO and whether the wrapper's parity check passed.  With
        no fault armed this is ``(value, True)``.
        """
        if self._fault_active:
            self.results_poisoned += 1
            return value ^ 0x1, False
        return value, True

    # -- replay cache (repro.replay) ---------------------------------------------

    def replay_token(self):
        """Digest of every piece of mutable state the accelerator's MMIO
        *reads* depend on, or ``None`` when no such digest exists.

        ``None`` (the default) makes any packet bracket that touches
        this accelerator unreplayable — the safe answer for stateful
        accelerators.  Subclasses whose responses are a pure function of
        a small state slice return that slice; the replay cache compares
        tokens before applying a record and re-issues the recorded MMIO
        operations on a hit, so counters (and faults armed mid-run)
        stay exact.
        """
        return None

    # -- lifecycle ---------------------------------------------------------------

    def reset(self) -> None:
        """Return to power-on state (PR load or RPU reboot)."""


class AcceleratorWrapper:
    """The per-accelerator request queue from Appendix A.2.

    Software pushes work descriptors; the accelerator drains them in
    order.  This keeps orchestration "similar to an asynchronous
    scheduling software that manages local resources".
    """

    def __init__(self, accelerator: Accelerator, queue_depth: int = 4) -> None:
        self.accelerator = accelerator
        self.queue_depth = queue_depth
        self._queue: Deque = deque()

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def can_enqueue(self) -> bool:
        return len(self._queue) < self.queue_depth

    def enqueue(self, work) -> bool:
        """Non-blocking submit; False when the hardware FIFO is full."""
        if not self.can_enqueue():
            return False
        self._queue.append(work)
        return True

    def pop(self):
        if not self._queue:
            return None
        return self._queue.popleft()
