"""Parallel experiment engine: :func:`run_experiment` + :class:`SweepRunner`.

The paper's evaluation is a grid of independent steady-state points
(size x load x RPU-count, Fig 7a-c / Fig 8 / the ablations); each point
builds its own :class:`~repro.core.system.RosebudSystem` and runs its
own event simulation, so a sweep is embarrassingly parallel.  The
:class:`SweepRunner` fans specs out across a spawn-based process pool:

* **deterministic** — a point's result depends only on its
  :class:`~repro.analysis.spec.ExperimentSpec` (seeds live in the
  spec), so serial and pooled runs agree bit-for-bit and results are
  collected back in submission order;
* **isolated** — a point that raises fails *that point* (status
  ``error`` with the worker traceback); a point that wedges past
  ``point_timeout`` seconds is marked ``timeout``; a worker that dies
  outright (segfault, ``os._exit``) breaks only its point and the pool
  is rebuilt for the remainder;
* **cached** — with a ``cache_dir``, finished points are stored as
  JSON keyed by :meth:`ExperimentSpec.cache_key` (a stable hash of
  config + firmware + traffic + window), so re-running a benchmark
  grid skips every already-measured point.

Specs that hold live objects (lambda factories, custom source
callables) cannot cross a spawn boundary; the runner detects them via
a pickle probe and runs those points inline in the parent, still with
per-point error isolation.
"""

from __future__ import annotations

import json
import pickle
import time
import traceback
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, TimeoutError
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .spec import ExperimentResult, ExperimentSpec


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Build the system described by ``spec`` and measure it, serially.

    This is the one construction path shared by the CLI, the pool
    workers, and interactive sessions: a thin wrapper that opens a
    :class:`~repro.serve.session.SimSession` (which performs the
    backend/verify/build/replay/fault setup in the canonical order)
    and steps it to measurement completion.  The stepper is
    differential-tested to produce byte-identical results to the
    retired in-line batch loop.
    """
    # imported lazily: repro.serve builds on the analysis spec, so the
    # dependency must point session -> spec, not engine -> session at
    # module import time
    if spec.cluster is not None:
        # N-board rack: the cluster engine drives one session per
        # board through bounded-lag horizons (inline here; `shards`
        # is a runtime choice, not part of the measured point)
        from ..cluster.engine import ClusterEngine

        return ClusterEngine(spec).run_to_completion()
    from ..serve.session import SimSession

    return SimSession(spec).run_to_completion()


#: Warm behavioural replay caches, keyed by firmware construction
#: fingerprint.  Kept per process: inline sweeps (``jobs=1`` or
#: unpicklable specs) reuse records across every point that runs the
#: same firmware build; spawn-pool workers start cold (fresh module
#: state per process) and simply warm their own copy.
_WARM_REPLAY_CACHES: Dict[str, Any] = {}
_WARM_REPLAY_LIMIT = 8


def _replay_cache_for(spec: ExperimentSpec) -> Any:
    """The warm cache for this spec's firmware build (or a fresh one).

    The behavioural record key does not cover firmware *construction*
    (a firewall built from a different blacklist carries the same
    replay token), so warm reuse is only sound between specs that build
    the firmware identically — hence the fingerprint.  Chaos points get
    a private cache: their injectors flush on arm/disarm and sharing
    would just cold-start the neighbours.
    """
    from ..replay import FirmwareReplayCache

    if spec.faults:
        return FirmwareReplayCache()
    d = spec.to_dict()
    fingerprint = json.dumps(
        {k: d[k] for k in ("firmware", "firmware_args", "firmware_kwargs")},
        sort_keys=True,
    )
    cache = _WARM_REPLAY_CACHES.get(fingerprint)
    if cache is None:
        if len(_WARM_REPLAY_CACHES) >= _WARM_REPLAY_LIMIT:
            _WARM_REPLAY_CACHES.clear()
        cache = FirmwareReplayCache()
        _WARM_REPLAY_CACHES[fingerprint] = cache
    return cache


def _firmware_totals(system: Any) -> Dict[str, int]:
    """Sum the public integer attributes of every RPU's firmware model
    (NAT's ``translated``, and friends) so results stay self-contained."""
    totals: Dict[str, int] = {}
    for rpu in getattr(system, "rpus", []):
        firmware = getattr(rpu, "firmware", None)
        if firmware is None:
            continue
        for name, value in vars(firmware).items():
            if name.startswith("_") or isinstance(value, bool):
                continue
            if isinstance(value, int):
                totals[name] = totals.get(name, 0) + value
    return totals


def _execute_point(spec: ExperimentSpec) -> Tuple[str, Any]:
    """Worker entry: never raises, so one bad point cannot kill a batch."""
    try:
        return ("ok", run_experiment(spec))
    except BaseException:
        return ("error", traceback.format_exc())


class ResultCache:
    """On-disk JSON store of finished points, keyed by spec hash."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[ExperimentResult]:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            return ExperimentResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None  # treat unreadable entries as misses

    def put(self, key: str, spec: ExperimentSpec, result: ExperimentResult) -> None:
        payload = {"spec": spec.to_dict(), "result": result.to_dict()}
        tmp = self._path(key).with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        tmp.replace(self._path(key))

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


@dataclass
class PointOutcome:
    """One grid point's fate: measured, cached, failed, or timed out."""

    index: int
    spec: ExperimentSpec
    key: str
    status: str  # "ok" | "cached" | "error" | "timeout"
    result: Optional[ExperimentResult] = None
    error: str = ""
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class SweepOutcome:
    """Ordered outcomes of one :meth:`SweepRunner.run` call."""

    points: List[PointOutcome] = field(default_factory=list)

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index: int) -> PointOutcome:
        return self.points[index]

    @property
    def results(self) -> List[Optional[ExperimentResult]]:
        return [p.result for p in self.points]

    @property
    def failed(self) -> List[PointOutcome]:
        return [p for p in self.points if not p.ok]

    def raise_on_failure(self) -> "SweepOutcome":
        bad = self.failed
        if bad:
            first = bad[0]
            raise RuntimeError(
                f"{len(bad)} sweep point(s) failed; first: "
                f"[{first.index}] {first.spec.describe()} -> {first.status}: "
                f"{first.error.strip().splitlines()[-1] if first.error else ''}"
            )
        return self


class SweepRunner:
    """Run a batch of :class:`ExperimentSpec` points, possibly in parallel.

    ``jobs=1`` runs inline (no processes); ``jobs=N`` uses a spawn-based
    :class:`ProcessPoolExecutor` so workers never inherit parent
    simulation state.  Results come back in submission order regardless
    of completion order.  ``stats`` after a run reports
    ``{"cached", "simulated", "errors", "timeouts"}``.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        point_timeout: Optional[float] = None,
        mp_context: str = "spawn",
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.point_timeout = point_timeout
        self.mp_context = mp_context
        self.stats: Dict[str, int] = {}

    # -- public ------------------------------------------------------------

    def run(self, specs: Sequence[ExperimentSpec]) -> SweepOutcome:
        if not specs:
            raise ValueError("empty sweep")
        self.stats = {"cached": 0, "simulated": 0, "errors": 0, "timeouts": 0}
        outcomes: List[Optional[PointOutcome]] = [None] * len(specs)

        pending: List[Tuple[int, ExperimentSpec, str]] = []
        for index, spec in enumerate(specs):
            key = spec.cache_key()
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                self.stats["cached"] += 1
                outcomes[index] = PointOutcome(
                    index=index, spec=spec, key=key, status="cached", result=cached
                )
            else:
                pending.append((index, spec, key))

        poolable, inline = self._partition(pending)
        if self.jobs == 1 or len(poolable) <= 1:
            inline = pending
            poolable = []

        for index, spec, key in inline:
            outcomes[index] = self._run_inline(index, spec, key)
        if poolable:
            for outcome in self._run_pool(poolable):
                outcomes[outcome.index] = outcome

        done = [o for o in outcomes if o is not None]
        assert len(done) == len(specs)
        return SweepOutcome(points=done)

    # -- internals ---------------------------------------------------------

    def _partition(self, pending):
        """Split points into pool-shippable and parent-only (unpicklable)."""
        poolable, inline = [], []
        for item in pending:
            try:
                pickle.dumps(item[1])
            except Exception:
                inline.append(item)
            else:
                poolable.append(item)
        return poolable, inline

    def _finish(
        self, index: int, spec: ExperimentSpec, key: str, status: str, payload: Any,
        elapsed: float,
    ) -> PointOutcome:
        if status == "ok":
            self.stats["simulated"] += 1
            if self.cache is not None:
                self.cache.put(key, spec, payload)
            return PointOutcome(
                index=index, spec=spec, key=key, status="ok", result=payload,
                elapsed_s=elapsed,
            )
        self.stats["errors" if status == "error" else "timeouts"] += 1
        return PointOutcome(
            index=index, spec=spec, key=key, status=status, error=str(payload),
            elapsed_s=elapsed,
        )

    def _run_inline(self, index: int, spec: ExperimentSpec, key: str) -> PointOutcome:
        t0 = time.perf_counter()
        status, payload = _execute_point(spec)
        return self._finish(index, spec, key, status, payload, time.perf_counter() - t0)

    def _run_pool(self, poolable) -> List[PointOutcome]:
        outcomes: List[PointOutcome] = []
        remaining = list(poolable)
        # The pool is rebuilt after a hard worker death (BrokenExecutor);
        # each rebuild resubmits only the still-unfinished points.
        while remaining:
            context = get_context(self.mp_context)
            executor = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(remaining)), mp_context=context
            )
            futures: List[Tuple[int, ExperimentSpec, str, Future]] = []
            try:
                for index, spec, key in remaining:
                    futures.append(
                        (index, spec, key, executor.submit(_execute_point, spec))
                    )
                remaining = []
                broken = False
                for position, (index, spec, key, future) in enumerate(futures):
                    if broken:
                        # A dead worker poisons every future submitted to
                        # this pool; resubmit the not-yet-collected tail.
                        if not future.done() or future.exception() is not None:
                            remaining.append((index, spec, key))
                            continue
                    t0 = time.perf_counter()
                    try:
                        status, payload = future.result(timeout=self.point_timeout)
                    except TimeoutError:
                        future.cancel()
                        outcomes.append(
                            self._finish(
                                index, spec, key, "timeout",
                                f"point exceeded {self.point_timeout}s wall clock",
                                time.perf_counter() - t0,
                            )
                        )
                        continue
                    except BrokenExecutor:
                        outcomes.append(
                            self._finish(
                                index, spec, key, "error",
                                "worker process died (crash or OOM)",
                                time.perf_counter() - t0,
                            )
                        )
                        broken = True
                        continue
                    outcomes.append(
                        self._finish(
                            index, spec, key, status, payload,
                            time.perf_counter() - t0,
                        )
                    )
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
        return outcomes
