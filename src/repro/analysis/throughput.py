"""Closed-form throughput bounds.

The event simulator *measures* throughput; these formulas *predict* it
from the same constants, following the bottleneck analysis of §6.1 and
§7.1.4.  Agreement between the two (checked by tests) is the internal
consistency argument for the model; the formulas are also what the
benchmark reports print next to measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.config import RosebudConfig
from ..sim.clock import line_rate_pps


def rpu_cycle_budget_pps(
    clock_hz: float,
    n_rpus: int,
    sw_cycles_per_packet: float,
    accel_cycles_per_packet: float = 0.0,
) -> float:
    """Aggregate RPU packet service rate, in packets/second.

    The paper's cycle-budget formula (docs/FIRMWARE_API.md): software
    orchestration and accelerator occupancy overlap, so the RPU
    sustains ``clock / max(sw_cycles, accel_cycles)`` packets per
    second, times the number of RPUs.  This is the single source of
    truth shared by :func:`forwarding_bounds`, ``repro verify``
    (``repro.verify.budget``), and the engine pre-flight hook — any
    duplicated arithmetic would let the analyzer and the simulator
    disagree on feasibility.
    """
    return n_rpus * clock_hz / max(1.0, sw_cycles_per_packet, accel_cycles_per_packet)


def cycle_budget_per_packet(
    clock_hz: float,
    n_rpus: int,
    packet_size: int,
    target_gbps: float,
) -> float:
    """Cycles each packet may spend on an RPU while holding ``target_gbps``.

    The inverse view of :func:`rpu_cycle_budget_pps`: at the target
    line rate the cluster must retire ``line_rate_pps`` packets/s, so
    each of the ``n_rpus`` cores has ``n_rpus * clock / pps`` cycles
    per packet.  A firmware whose worst-case cycles/packet exceeds
    this budget cannot hold the target rate.
    """
    return n_rpus * clock_hz / line_rate_pps(target_gbps, packet_size)


def fluid_reference_pps(
    clock_hz: float,
    n_rpus: int,
    wcet_cycles: float,
    accel_cycles: float = 0.0,
) -> float:
    """The analytic RPU-bound service rate at a verified WCET.

    The fluid fast-forward tier uses this as its cross-check: a
    detected steady-state period whose measured packet rate exceeds the
    WCET-derived budget would contradict the static bound, so the
    engine records both and refuses to engage when the measurement is
    infeasible under the verdict.  Same arithmetic as
    :func:`rpu_cycle_budget_pps` — the WCET simply pins the worst-case
    software cycles.
    """
    return rpu_cycle_budget_pps(clock_hz, n_rpus, wcet_cycles, accel_cycles)


@dataclass
class BottleneckReport:
    """Predicted packet rate and which resource binds it."""

    packet_size: int
    offered_pps: float
    predicted_pps: float
    bottleneck: str
    per_bound_pps: Dict[str, float]

    @property
    def predicted_gbps(self) -> float:
        return self.predicted_pps * self.packet_size * 8 / 1e9


def forwarding_bounds(
    config: RosebudConfig,
    packet_size: int,
    n_ports: int,
    port_gbps: float,
    sw_cycles_per_packet: float,
    accel_cycles_per_packet: float = 0.0,
    generator_pps_per_port: float = 125e6,
) -> BottleneckReport:
    """Predict forwarding rate for a packet size and firmware cost.

    Bounds considered (all in packets/second):

    * line rate of the offered ports,
    * the tester's generation cap,
    * the 125 MPPS-per-port ingress (LB labelling) limit,
    * aggregate cluster-switch service,
    * aggregate per-RPU link service,
    * aggregate RPU core (software) service,
    * aggregate RPU accelerator service.
    """
    clock = config.clock.freq_hz
    line = n_ports * line_rate_pps(port_gbps, packet_size)
    bounds: Dict[str, float] = {
        "line_rate": line,
        "generator": n_ports * generator_pps_per_port,
        "port_ingress": n_ports * clock / config.port_ingress_cycles,
        "cluster_switch": config.n_clusters
        * clock
        / config.cluster_service_cycles(packet_size),
        "rpu_link": config.n_rpus
        * clock
        / config.rpu_link_service_cycles(packet_size),
        "rpu_software": rpu_cycle_budget_pps(clock, config.n_rpus, sw_cycles_per_packet),
    }
    if accel_cycles_per_packet > 0:
        bounds["rpu_accel"] = rpu_cycle_budget_pps(
            clock, config.n_rpus, 1.0, accel_cycles_per_packet
        )
    bottleneck = min(bounds, key=bounds.get)
    return BottleneckReport(
        packet_size=packet_size,
        offered_pps=line,
        predicted_pps=bounds[bottleneck],
        bottleneck=bottleneck,
        per_bound_pps=bounds,
    )


def loopback_bounds(
    config: RosebudConfig,
    packet_size: int,
    port_gbps: float = 100.0,
) -> Dict[str, float]:
    """Loopback-path (two-step forwarding) bounds in pps: the single
    100 G loopback port with its per-packet header-attach cost (§6.3)."""
    clock = config.clock.freq_hz
    return {
        "line_rate": line_rate_pps(port_gbps, packet_size),
        "loopback_header": clock / config.loopback_cycles,
        "loopback_serialization": line_rate_pps(config.loopback_gbps, packet_size),
    }
