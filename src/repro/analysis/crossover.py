"""Crossover analysis: where curves meet.

Two questions the paper's figures answer visually:

* the *line-rate knee*: the smallest packet size at which a
  configuration sustains full line rate (e.g. 1024 B for the 8-RPU
  forwarder at 200 G, 256 B for the firewall, 800 B for the HW-reorder
  IPS);
* the *win factor* between two systems at a size (e.g. Rosebud vs
  Snort).

These helpers compute both from the analytic bottleneck model so tests
and benchmark reports can state them precisely.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from ..core.config import RosebudConfig
from .throughput import cycle_budget_per_packet, forwarding_bounds

#: A dense ladder of candidate sizes for knee searches.
DEFAULT_SIZES = tuple(range(64, 2049, 16)) + (4096, 8192, 9000)


def line_rate_knee(
    config: RosebudConfig,
    sw_cycles_per_packet: float,
    n_ports: int = 2,
    port_gbps: float = 100.0,
    accel_cycles_fn: Optional[Callable[[int], float]] = None,
    sizes: Iterable[int] = DEFAULT_SIZES,
    tolerance: float = 0.995,
) -> Optional[int]:
    """Smallest packet size predicted to reach line rate, or None.

    ``accel_cycles_fn(size)`` supplies the accelerator occupancy for
    payload-proportional accelerators (e.g. the Pigasus matcher).
    """
    for size in sorted(sizes):
        accel = accel_cycles_fn(size) if accel_cycles_fn else 0.0
        report = forwarding_bounds(
            config, size, n_ports, port_gbps, sw_cycles_per_packet, accel
        )
        line = report.per_bound_pps["line_rate"]
        if report.predicted_pps >= tolerance * line:
            return size
    return None


def win_factor(
    a_gbps_fn: Callable[[int], float],
    b_gbps_fn: Callable[[int], float],
    sizes: Iterable[int],
) -> List[Tuple[int, float]]:
    """Per-size throughput ratio of system A over system B."""
    out: List[Tuple[int, float]] = []
    for size in sizes:
        b = b_gbps_fn(size)
        out.append((size, a_gbps_fn(size) / b if b else float("inf")))
    return out


def software_limit_mpps(config: RosebudConfig, cycles_per_packet: float) -> float:
    """Aggregate core-bound packet rate: n_rpus x clock / cycles."""
    return config.n_rpus * config.clock.freq_hz / cycles_per_packet / 1e6


def required_cycles_for_line_rate(
    config: RosebudConfig, size: int, n_ports: int = 2, port_gbps: float = 100.0
) -> float:
    """Cycles-per-packet budget to sustain line rate at ``size`` —
    the inverse question firmware authors ask (e.g. the firewall's
    ~44-cycle budget at 256 B/200 G)."""
    return cycle_budget_per_packet(
        config.clock.freq_hz, config.n_rpus, size, n_ports * port_gbps
    )
