"""Measurement result types for the benchmark suite.

The artifact measures throughput by letting traffic flow "for a minute
to get a good average" and reading averaged byte counters; the
simulation equivalent — warmup to steady state, snapshot counters,
measure over a window — lives in the resumable drivers of
:mod:`repro.serve.session`, shared by batch
:func:`~repro.analysis.engine.run_experiment` and interactive
:class:`~repro.serve.session.SimSession` stepping alike.

The PR-1 deprecated kwarg-bundle entry points (``measure_throughput``,
``measure_latency``, ``forwarding_experiment``) have been removed; see
``docs/API.md`` for the migration table.  Build an
:class:`~repro.analysis.spec.ExperimentSpec` and run it, or wrap a
hand-built system with :meth:`SimSession.for_system`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List


@dataclass
class ThroughputResult:
    """One steady-state measurement point."""

    packet_size: int
    offered_gbps: float
    achieved_gbps: float
    achieved_mpps: float
    line_rate_gbps: float
    rx_drops: int
    rpu_packet_counts: List[int] = field(default_factory=list)
    cycles_per_packet: float = 0.0

    @property
    def fraction_of_line(self) -> float:
        if self.line_rate_gbps == 0:
            return 0.0
        return min(1.0, self.achieved_gbps / self.line_rate_gbps)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ThroughputResult":
        return cls(**data)
