"""Measurement harness for the benchmark suite.

The artifact measures throughput by letting traffic flow "for a minute
to get a good average" and reading averaged byte counters.  In
simulation we do the same with a warmup: run until the pipeline is in
steady state, snapshot counters, run a measurement window, and report
rates over that window only.

The measurement loops live here as private primitives shared by every
entry point; the public functions (:func:`measure_throughput`,
:func:`measure_latency`, :func:`forwarding_experiment`) are kept for
compatibility as thin wrappers over the :class:`ExperimentSpec` API
and emit :class:`DeprecationWarning` — new code should build an
:class:`~repro.analysis.spec.ExperimentSpec` and call
:func:`~repro.analysis.engine.run_experiment` (or use the parallel
:class:`~repro.analysis.engine.SweepRunner`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.config import RosebudConfig
from ..core.firmware_api import FirmwareModel
from ..core.lb import LBPolicy
from ..core.system import RosebudSystem
from ..sim.clock import max_effective_gbps
from ..sim.stats import Histogram
from .spec import ExperimentSpec, MeasurementWindow, TrafficProfile, _deprecated


@dataclass
class ThroughputResult:
    """One steady-state measurement point."""

    packet_size: int
    offered_gbps: float
    achieved_gbps: float
    achieved_mpps: float
    line_rate_gbps: float
    rx_drops: int
    rpu_packet_counts: List[int] = field(default_factory=list)
    cycles_per_packet: float = 0.0

    @property
    def fraction_of_line(self) -> float:
        if self.line_rate_gbps == 0:
            return 0.0
        return min(1.0, self.achieved_gbps / self.line_rate_gbps)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ThroughputResult":
        return cls(**data)


def _measure_throughput(
    system: RosebudSystem,
    sources: Sequence,
    packet_size: int,
    offered_gbps_total: float,
    window: MeasurementWindow,
    include_host: bool = True,
    include_absorbed: bool = False,
) -> ThroughputResult:
    """Run sources against a system and measure steady-state rates.

    Completion is counted at MAC TX (plus the host link and firmware
    drops, so drop/punt middleboxes measure their full served rate).
    """
    for source in sources:
        source.start()

    def completions() -> int:
        done = system.counters.value("delivered")
        if include_host:
            done += system.counters.value("to_host")
            done += system.counters.value("dropped_by_firmware")
        return done

    sim = system.sim
    deadline = sim.now + window.max_cycles

    def run_until_completions(target: int) -> None:
        while completions() < target:
            if sim.peek() is None or sim.now > deadline:
                raise RuntimeError(
                    f"stalled at {completions()} completions (target {target})"
                )
            sim.step()

    run_until_completions(window.warmup_packets)
    t0 = sim.now
    base_tx = [
        (meter.bytes_total, meter.packets_total) for meter in system.tx_meters
    ]
    base_host = (system.host_meter.bytes_total, system.host_meter.packets_total)
    base_absorbed = sum(mac.counters.value("rx_bytes") for mac in system.macs)
    base_drops = system.total_rx_drops()
    base_rpu = list(system.rpu_packet_counts())

    run_until_completions(window.warmup_packets + window.measure_packets)
    elapsed_cycles = sim.now - t0
    seconds = system.config.clock.cycles_to_seconds(elapsed_cycles)

    tx_bytes = sum(
        meter.bytes_total - b0 for meter, (b0, _p0) in zip(system.tx_meters, base_tx)
    )
    tx_packets = sum(
        meter.packets_total - p0 for meter, (_b0, p0) in zip(system.tx_meters, base_tx)
    )
    if include_host:
        tx_bytes += system.host_meter.bytes_total - base_host[0]
        tx_packets += system.host_meter.packets_total - base_host[1]
    if include_absorbed:
        tx_bytes = sum(mac.counters.value("rx_bytes") for mac in system.macs) - base_absorbed
        tx_packets = window.measure_packets

    achieved_gbps = tx_bytes * 8 / seconds / 1e9
    achieved_mpps = tx_packets / seconds / 1e6
    rpu_counts = [
        now - before for now, before in zip(system.rpu_packet_counts(), base_rpu)
    ]
    cpp = 0.0
    if achieved_mpps > 0:
        cpp = system.config.n_rpus * system.config.clock.freq_hz / (achieved_mpps * 1e6)

    return ThroughputResult(
        packet_size=packet_size,
        offered_gbps=offered_gbps_total,
        achieved_gbps=achieved_gbps,
        achieved_mpps=achieved_mpps,
        line_rate_gbps=max_effective_gbps(offered_gbps_total, packet_size),
        rx_drops=system.total_rx_drops() - base_drops,
        rpu_packet_counts=rpu_counts,
        cycles_per_packet=cpp,
    )


def _measure_latency(
    system: RosebudSystem,
    sources: Sequence,
    window: MeasurementWindow,
) -> Histogram:
    """Collect the forwarding-latency histogram over a steady window."""
    for source in sources:
        source.start()
    sim = system.sim
    deadline = sim.now + window.max_cycles

    def run_until(target: int) -> None:
        while system.counters.value("delivered") < target:
            if sim.peek() is None or sim.now > deadline:
                raise RuntimeError("latency run stalled")
            sim.step()

    run_until(window.warmup_packets)
    histogram = Histogram("latency_us")
    original = system.latency_us
    system.latency_us = histogram
    run_until(window.warmup_packets + window.measure_packets)
    system.latency_us = original
    return histogram


# -- deprecated kwarg-bundle entry points ----------------------------------


def measure_throughput(
    system: RosebudSystem,
    sources: Sequence,
    packet_size: int,
    offered_gbps_total: float,
    warmup_packets: int = 2000,
    measure_packets: int = 8000,
    max_cycles: float = 500_000_000,
    include_host: bool = True,
    include_absorbed: bool = False,
) -> ThroughputResult:
    """Deprecated: measure a live system (use ExperimentSpec instead)."""
    _deprecated(
        "measure_throughput(system, sources, ...)",
        "build an ExperimentSpec and call run_experiment(spec)",
    )
    window = MeasurementWindow(
        warmup_packets=warmup_packets,
        measure_packets=measure_packets,
        max_cycles=max_cycles,
    )
    return _measure_throughput(
        system,
        sources,
        packet_size,
        offered_gbps_total,
        window,
        include_host=include_host,
        include_absorbed=include_absorbed,
    )


def measure_latency(
    system: RosebudSystem,
    sources: Sequence,
    warmup_packets: int = 500,
    measure_packets: int = 2000,
    max_cycles: float = 500_000_000,
) -> Histogram:
    """Deprecated: latency histogram on a live system (use ExperimentSpec)."""
    _deprecated(
        "measure_latency(system, sources, ...)",
        "build an ExperimentSpec with measure='latency' and run it",
    )
    window = MeasurementWindow(
        warmup_packets=warmup_packets,
        measure_packets=measure_packets,
        max_cycles=max_cycles,
    )
    return _measure_latency(system, sources, window)


def forwarding_experiment(
    n_rpus: int,
    packet_size: int,
    total_gbps: float,
    firmware_factory: Callable[[], FirmwareModel],
    lb_policy: Optional[LBPolicy] = None,
    n_ports_used: int = 2,
    warmup_packets: int = 2000,
    measure_packets: int = 8000,
    config: Optional[RosebudConfig] = None,
    include_host: bool = True,
    source_factory: Optional[Callable[[RosebudSystem, int, float], object]] = None,
) -> ThroughputResult:
    """Deprecated: build a system + sources and measure one point.

    Thin wrapper over :class:`ExperimentSpec`; prefer constructing the
    spec directly (it is cacheable and pool-dispatchable).
    """
    _deprecated(
        "forwarding_experiment(...)",
        "build an ExperimentSpec and call run_experiment(spec)",
    )
    spec = ExperimentSpec(
        config=config or RosebudConfig(n_rpus=n_rpus),
        firmware=firmware_factory,
        traffic=TrafficProfile(
            packet_size=packet_size,
            offered_gbps=total_gbps,
            n_ports=n_ports_used,
        ),
        window=MeasurementWindow(
            warmup_packets=warmup_packets, measure_packets=measure_packets
        ),
        lb=lb_policy,
        include_host=include_host,
        source_factory=source_factory,
    )
    from .engine import run_experiment

    result = run_experiment(spec)
    assert result.throughput is not None
    return result.throughput
