"""Measurement harness, analytic models, and report formatting."""

from .harness import ThroughputResult
from .spec import (
    ExperimentResult,
    ExperimentSpec,
    MeasurementWindow,
    SpecError,
    TrafficProfile,
)
from .engine import (
    PointOutcome,
    ResultCache,
    SweepOutcome,
    SweepRunner,
    run_experiment,
)
from .latency import (
    FIXED_LATENCY_US,
    MAC_GBPS,
    RPU_LINK_GBPS,
    SATURATED_64B_EXTRA_US,
    estimated_latency_curve,
    estimated_latency_us,
)
from .crossover import (
    DEFAULT_SIZES,
    line_rate_knee,
    required_cycles_for_line_rate,
    software_limit_mpps,
    win_factor,
)
from .sweep import Sweep, SweepResult
from .report import format_table, format_utilization_row, shape_check
from .throughput import (
    BottleneckReport,
    cycle_budget_per_packet,
    forwarding_bounds,
    loopback_bounds,
    rpu_cycle_budget_pps,
)

__all__ = [
    "DEFAULT_SIZES",
    "line_rate_knee",
    "required_cycles_for_line_rate",
    "software_limit_mpps",
    "win_factor",
    "ThroughputResult",
    "ExperimentResult",
    "ExperimentSpec",
    "MeasurementWindow",
    "SpecError",
    "TrafficProfile",
    "PointOutcome",
    "ResultCache",
    "SweepOutcome",
    "SweepRunner",
    "run_experiment",
    "FIXED_LATENCY_US",
    "MAC_GBPS",
    "RPU_LINK_GBPS",
    "SATURATED_64B_EXTRA_US",
    "estimated_latency_curve",
    "estimated_latency_us",
    "format_table",
    "Sweep",
    "SweepResult",
    "format_utilization_row",
    "shape_check",
    "BottleneckReport",
    "cycle_budget_per_packet",
    "forwarding_bounds",
    "loopback_bounds",
    "rpu_cycle_budget_pps",
]
