"""The unified experiment description: :class:`ExperimentSpec`.

Before this module the harness grew three divergent kwarg bundles —
``measure_throughput(system, sources, size, gbps, warmup..., ...)``,
``forwarding_experiment(n_rpus, size, gbps, factory, lb_policy, ...)``
and the CLI's per-subcommand argument soup.  An :class:`ExperimentSpec`
captures *one steady-state measurement point* declaratively:

* ``config`` — the :class:`~repro.core.config.RosebudConfig` to build,
* ``firmware`` + ``firmware_args`` — how to construct the firmware,
* ``traffic`` — a :class:`TrafficProfile` (size, offered rate, ports,
  source kind, seeds),
* ``window`` — a :class:`MeasurementWindow` (warmup, measure, deadline).

The same spec is used by the serial helpers, the parallel
:class:`~repro.analysis.engine.SweepRunner`, and the CLI, so every
entry point constructs systems one way.  Specs are plain picklable
data (factories are referenced by import path), which is what lets the
engine ship them to spawn-based worker processes, and they have a
*stable content hash* (:meth:`ExperimentSpec.cache_key`) so measured
points can be cached on disk and skipped on re-runs.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.config import RosebudConfig
from ..core.lb import HashLB, LBPolicy, LeastLoadedLB, PowerOfTwoChoicesLB, RoundRobinLB
from ..core.system import RosebudSystem
from ..cluster.spec import ClusterSpec
from ..faults.spec import FaultSpec

#: Bump when the measurement semantics change incompatibly, so stale
#: cache entries from older code never satisfy a new run.
#: v2: cpu_backend field (closure-translated ISS fast path).
#: v3: faults field (repro.faults chaos campaigns + resilience report).
#: v4: replay_cache field (packet-class firmware memoization).
#: v5: verify field (static pre-flight: WCET budget + replay lint).
#: v6: fidelity field (fluid fast-forward tier, repro.fluid).
#: v7: cluster field (N-board racks with flow affinity, repro.cluster).
#: v8: cluster x fluid composition (per-board fluid engines with warps
#:     clipped to the sync horizon; the v7 exclusion is lifted).
SPEC_VERSION = 8

#: Named load-balancer policies (constructed per-spec so state is fresh).
LB_REGISTRY: Dict[str, Callable[[int], LBPolicy]] = {
    "hash": lambda n_rpus: HashLB(n_rpus),
    "rr": lambda n_rpus: RoundRobinLB(),
    "p2c": lambda n_rpus: PowerOfTwoChoicesLB(n_rpus),
    "least": lambda n_rpus: LeastLoadedLB(),
}


class SpecError(ValueError):
    """Raised for inconsistent experiment specifications."""


@dataclass(frozen=True)
class MeasurementWindow:
    """Warmup + measurement interval, in packets (the §6 methodology:
    reach steady state, then average over a window)."""

    warmup_packets: int = 2000
    measure_packets: int = 8000
    max_cycles: float = 500_000_000.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "warmup_packets": self.warmup_packets,
            "measure_packets": self.measure_packets,
            "max_cycles": self.max_cycles,
        }


@dataclass(frozen=True)
class TrafficProfile:
    """What the tester offers: size, aggregate rate, ports, source kind.

    ``offered_gbps`` is the *total* across ``n_ports``; each port gets
    an equal share.  Port ``p`` seeds its generator with
    ``seed_base + p`` so multi-port runs stay decorrelated but
    deterministic.  ``source`` names a registered builder (``fixed``,
    ``flows``, ``imix``); extra constructor keywords ride in
    ``source_kwargs``.
    """

    packet_size: int = 512
    offered_gbps: float = 200.0
    n_ports: int = 2
    source: str = "fixed"
    seed_base: int = 1
    respect_generator_cap: bool = True
    source_kwargs: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.n_ports < 1:
            raise SpecError("need at least one traffic port")
        if self.packet_size < 1:
            raise SpecError(f"packet size {self.packet_size} must be positive")
        if self.offered_gbps <= 0:
            raise SpecError("offered rate must be positive")
        # Accept a plain dict for convenience; store sorted items so the
        # profile hashes and pickles stably.
        if isinstance(self.source_kwargs, dict):
            object.__setattr__(
                self, "source_kwargs", tuple(sorted(self.source_kwargs.items()))
            )

    @property
    def per_port_gbps(self) -> float:
        return self.offered_gbps / self.n_ports

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.source_kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "packet_size": self.packet_size,
            "offered_gbps": self.offered_gbps,
            "n_ports": self.n_ports,
            "source": self.source,
            "seed_base": self.seed_base,
            "respect_generator_cap": self.respect_generator_cap,
            "source_kwargs": {k: _jsonable(v) for k, v in self.source_kwargs},
        }


def _build_fixed(system: RosebudSystem, port: int, profile: TrafficProfile):
    from ..traffic.generator import FixedSizeSource

    return FixedSizeSource(
        system,
        port,
        profile.per_port_gbps,
        profile.packet_size,
        seed=profile.seed_base + port,
        respect_generator_cap=profile.respect_generator_cap,
        **profile.kwargs,
    )


def _build_flows(system: RosebudSystem, port: int, profile: TrafficProfile):
    from ..traffic.flows import FlowTrafficSource

    return FlowTrafficSource(
        system,
        port,
        profile.per_port_gbps,
        profile.packet_size,
        seed=profile.seed_base + port,
        respect_generator_cap=profile.respect_generator_cap,
        **profile.kwargs,
    )


def _build_imix(system: RosebudSystem, port: int, profile: TrafficProfile):
    from ..traffic.generator import ImixSource

    return ImixSource(
        system,
        port,
        profile.per_port_gbps,
        seed=profile.seed_base + port,
        respect_generator_cap=profile.respect_generator_cap,
        **profile.kwargs,
    )


SOURCE_REGISTRY: Dict[str, Callable[[RosebudSystem, int, TrafficProfile], Any]] = {
    "fixed": _build_fixed,
    "flows": _build_flows,
    "imix": _build_imix,
}


def _qualname(obj: Any) -> str:
    """A stable import-path fingerprint for a factory callable."""
    if isinstance(obj, functools.partial):
        inner = _qualname(obj.func)
        return f"partial({inner}, args={obj.args!r}, kwargs={sorted(obj.keywords.items())!r})"
    module = getattr(obj, "__module__", type(obj).__module__)
    name = getattr(obj, "__qualname__", None)
    if name is None:  # instance: fingerprint the class
        name = type(obj).__qualname__
    return f"{module}.{name}"


def _jsonable(value: Any) -> Any:
    """Best-effort canonical form for hashing (bytes/callables included)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return "bytes:" + hashlib.sha256(value).hexdigest()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if callable(value):
        return "callable:" + _qualname(value)
    return repr(value)


@dataclass
class ExperimentSpec:
    """One steady-state experiment, fully described.

    ``firmware`` is a zero-or-more-arg callable (usually the firmware
    class itself); the spec calls ``firmware(*firmware_args,
    **firmware_kwargs)`` when building, so a fresh model is constructed
    for every run — never share live firmware between points.

    ``lb`` is a registered policy name (``hash``/``rr``/``p2c``/
    ``least``), an :class:`LBPolicy` instance, or None for the default.
    ``setup`` is an optional post-build hook ``setup(system)`` for
    register pokes (e.g. the loopback enable mask).  ``source_factory``
    overrides the traffic registry with a custom callable
    ``(system, port, per_port_gbps) -> source``; specs using live
    objects for these escape hatches still run, but lose spawn-pool
    eligibility and cache stability is only as good as the callable's
    import path.
    """

    config: RosebudConfig = field(default_factory=RosebudConfig)
    firmware: Callable[..., Any] = None  # type: ignore[assignment]
    firmware_args: Tuple[Any, ...] = ()
    firmware_kwargs: Tuple[Tuple[str, Any], ...] = ()
    traffic: TrafficProfile = field(default_factory=TrafficProfile)
    window: MeasurementWindow = field(default_factory=MeasurementWindow)
    lb: Any = None
    measure: str = "throughput"
    include_host: bool = True
    include_absorbed: bool = False
    setup: Optional[Callable[[RosebudSystem], None]] = None
    source_factory: Optional[Callable[[RosebudSystem, int, float], Any]] = None
    cpu_backend: Optional[str] = None
    faults: Tuple[FaultSpec, ...] = ()
    #: memoize per-packet firmware execution by packet class (the
    #: replay cache, repro.replay).  Statistics are guaranteed
    #: byte-identical with the cache on or off; only wall-clock and the
    #: ``replay`` counter block of the result change.
    replay_cache: bool = False
    #: static pre-flight verification (repro.verify) before building
    #: the system: False (off), "warn" (run + warn on FAIL), or "fail"
    #: (run + raise VerificationError on FAIL).  ``True`` is accepted
    #: as a synonym for "fail".  Sweeps with verify="fail" surface an
    #: infeasible point as a per-point error before burning pool time.
    verify: Any = False
    #: simulation fidelity tier: "event" (pure discrete-event) or
    #: "fluid" (repro.fluid fast-forward — provably repetitive periods
    #: are skipped arithmetically; integer counters stay byte-identical,
    #: float-derived readings agree to declared tolerance).  Ineligible
    #: specs under "fluid" silently run event-accurate, with the
    #: reasons recorded in the result's ``fluid`` block.
    fidelity: str = "event"
    #: N-board rack topology (repro.cluster), or None for one board.
    #: Cluster points measure throughput only and are mutually
    #: exclusive with in-board fault campaigns (the cluster has its own
    #: liveness events) and the fluid tier (which tracks live packets
    #: per board and cannot see cross-board state).
    cluster: Optional[ClusterSpec] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.verify is True:
            self.verify = "fail"
        if self.verify not in (False, "warn", "fail"):
            raise SpecError(
                f"verify must be False, True, 'warn' or 'fail', "
                f"not {self.verify!r}"
            )
        if self.cpu_backend is not None:
            from ..riscv.cpu import BACKENDS

            if self.cpu_backend not in BACKENDS:
                raise SpecError(
                    f"unknown cpu backend {self.cpu_backend!r}; "
                    f"choices: {BACKENDS}"
                )
        if self.firmware is None:
            from ..firmware import ForwarderFirmware

            self.firmware = ForwarderFirmware
        if isinstance(self.firmware_kwargs, dict):
            self.firmware_kwargs = tuple(sorted(self.firmware_kwargs.items()))
        if self.measure not in ("throughput", "latency"):
            raise SpecError(f"unknown measurement kind {self.measure!r}")
        if self.fidelity not in ("event", "fluid"):
            raise SpecError(
                f"fidelity must be 'event' or 'fluid', not {self.fidelity!r}"
            )
        if isinstance(self.lb, str) and self.lb not in LB_REGISTRY:
            raise SpecError(
                f"unknown lb policy {self.lb!r}; choices: {sorted(LB_REGISTRY)}"
            )
        if (
            self.source_factory is None
            and self.traffic.source not in SOURCE_REGISTRY
        ):
            raise SpecError(
                f"unknown traffic source {self.traffic.source!r}; "
                f"choices: {sorted(SOURCE_REGISTRY)}"
            )
        # normalise cluster: accept a ClusterSpec or a plain dict
        if self.cluster is not None and not isinstance(self.cluster, ClusterSpec):
            self.cluster = ClusterSpec.from_dict(dict(self.cluster))
        if self.cluster is not None:
            if self.faults:
                raise SpecError(
                    "cluster specs cannot carry in-board fault campaigns; "
                    "use cluster events (drain/restore/wedge_board) instead"
                )
            if self.measure != "throughput":
                raise SpecError(
                    f"cluster specs measure throughput only, not {self.measure!r}"
                )
        # normalise faults: accept a list of FaultSpec or plain dicts
        if not isinstance(self.faults, tuple):
            self.faults = tuple(self.faults)
        self.faults = tuple(
            f if isinstance(f, FaultSpec) else FaultSpec.from_dict(dict(f))
            for f in self.faults
        )
        for fault in self.faults:
            if fault.kind in ("rpu_wedge", "accel_fault", "reconfig"):
                if fault.target >= self.config.n_rpus:
                    raise SpecError(
                        f"fault {fault.kind!r} targets rpu {fault.target} "
                        f"but the config has {self.config.n_rpus}"
                    )
            elif fault.kind in ("mac_corrupt", "link_flap"):
                if not 0 <= fault.target < self.config.n_ports:
                    raise SpecError(
                        f"fault {fault.kind!r} targets port {fault.target} "
                        f"but the config has {self.config.n_ports}"
                    )

    # -- construction -----------------------------------------------------

    def build_firmware(self) -> Any:
        return self.firmware(*self.firmware_args, **dict(self.firmware_kwargs))

    def build_lb(self) -> Optional[LBPolicy]:
        if self.lb is None:
            return None
        if isinstance(self.lb, str):
            return LB_REGISTRY[self.lb](self.config.n_rpus)
        return self.lb

    def build_system(self) -> RosebudSystem:
        system = RosebudSystem(self.config, self.build_firmware(), lb_policy=self.build_lb())
        if self.setup is not None:
            self.setup(system)
        return system

    def build_sources(self, system: RosebudSystem) -> List[Any]:
        sources = []
        for port in range(self.traffic.n_ports):
            if self.source_factory is not None:
                sources.append(
                    self.source_factory(system, port, self.traffic.per_port_gbps)
                )
            else:
                builder = SOURCE_REGISTRY[self.traffic.source]
                sources.append(builder(system, port, self.traffic))
        return sources

    def run(self) -> "ExperimentResult":
        """Build and measure this point serially (see ``run_experiment``)."""
        from .engine import run_experiment

        return run_experiment(self)

    def with_(self, **changes: Any) -> "ExperimentSpec":
        """A copy with fields replaced (sweeps build grids this way)."""
        return replace(self, **changes)

    # -- identity ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-safe description (also the cache-key input)."""
        return {
            "spec_version": SPEC_VERSION,
            "config": self.config.to_dict(),
            "firmware": _qualname(self.firmware),
            "firmware_args": _jsonable(list(self.firmware_args)),
            "firmware_kwargs": {k: _jsonable(v) for k, v in self.firmware_kwargs},
            "traffic": self.traffic.to_dict(),
            "window": self.window.to_dict(),
            "lb": self.lb if isinstance(self.lb, str) or self.lb is None
            else _qualname(self.lb),
            "measure": self.measure,
            "include_host": self.include_host,
            "include_absorbed": self.include_absorbed,
            "setup": None if self.setup is None else _qualname(self.setup),
            "source_factory": None
            if self.source_factory is None
            else _qualname(self.source_factory),
            "cpu_backend": self.cpu_backend,
            "faults": [f.to_dict() for f in self.faults],
            "replay_cache": self.replay_cache,
            "verify": self.verify,
            "fidelity": self.fidelity,
            "cluster": None if self.cluster is None else self.cluster.to_dict(),
        }

    def cache_key(self) -> str:
        """Stable sha256 over (config, firmware, traffic, window, ...)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> str:
        t = self.traffic
        fw = _qualname(self.firmware).rsplit(".", 1)[-1]
        return (
            self.name
            or f"{fw} rpus={self.config.n_rpus} size={t.packet_size} "
            f"gbps={t.offered_gbps:g} {self.measure}"
        )


@dataclass
class ExperimentResult:
    """What one spec measured.

    ``counters`` snapshots the system-level counter block after the
    run (``delivered``, ``to_host``, ``dropped_by_firmware``, ...);
    ``firmware_totals`` sums the public integer attributes of every
    RPU's firmware model (best-effort — e.g. NAT's ``translated``), so
    consumers never need the live system back from a worker process.
    """

    spec_key: str
    throughput: Optional[Any] = None  # ThroughputResult
    latency: Optional[Dict[str, float]] = None  # Histogram.summary()
    counters: Dict[str, int] = field(default_factory=dict)
    firmware_totals: Dict[str, int] = field(default_factory=dict)
    resilience: Optional[Dict[str, Any]] = None  # resilience_report()
    #: replay-cache accounting for this point (hits/misses/...), or
    #: None when the spec ran without a cache.  Deliberately excluded
    #: from statistical comparisons: it describes simulator work saved,
    #: not network behaviour.
    replay: Optional[Dict[str, int]] = None
    #: fluid-tier accounting (eligibility, warps, occupancy, de-opts),
    #: or None for pure event runs.  Like ``replay``, excluded from
    #: statistical comparisons: it describes simulator work saved, not
    #: network behaviour.
    fluid: Optional[Dict[str, Any]] = None
    #: cluster accounting (per-board totals, cross-board traffic,
    #: events, watchdog outages, dip/MTTR), or None for single-board
    #: points.  The replay block is always None for cluster points:
    #: per-board caches are private and cold, so layout-dependent
    #: hit/miss counts never leak into a comparable result.
    cluster: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        from ..schema import stamp

        out: Dict[str, Any] = {
            "spec_key": self.spec_key,
            "counters": dict(self.counters),
            "firmware_totals": dict(self.firmware_totals),
        }
        if self.throughput is not None:
            out["throughput"] = self.throughput.to_dict()
        if self.latency is not None:
            out["latency"] = dict(self.latency)
        if self.resilience is not None:
            out["resilience"] = dict(self.resilience)
        if self.replay is not None:
            out["replay"] = dict(self.replay)
        if self.fluid is not None:
            out["fluid"] = dict(self.fluid)
        if self.cluster is not None:
            out["cluster"] = dict(self.cluster)
        return stamp(out, "repro-result")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentResult":
        from ..schema import check
        from .harness import ThroughputResult

        if "schema" in data:
            # cache entries written before the envelope was versioned
            # carry no schema field and stay readable; anything stamped
            # must be a repro-result document this code understands
            check(data, "repro-result")
        throughput = None
        if "throughput" in data:
            throughput = ThroughputResult.from_dict(data["throughput"])
        return cls(
            spec_key=data.get("spec_key", ""),
            throughput=throughput,
            latency=data.get("latency"),
            counters=data.get("counters", {}),
            firmware_totals=data.get("firmware_totals", {}),
            resilience=data.get("resilience"),
            replay=data.get("replay"),
            fluid=data.get("fluid"),
            cluster=data.get("cluster"),
        )
