"""Plain-text table/series formatting for the benchmark harness.

Each benchmark prints the same rows/series its paper artifact reports;
these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A fixed-width table; floats are rendered with sensible precision."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 100:
                return f"{cell:.0f}"
            if abs(cell) >= 1:
                return f"{cell:.1f}"
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_utilization_row(name: str, vector, capacity) -> List[object]:
    """One Tables-1..4 style row: value (percent) per resource kind."""
    cells: List[object] = [name]
    for kind in ("luts", "registers", "bram", "uram", "dsp"):
        value = getattr(vector, kind)
        cap = getattr(capacity, kind)
        pct = 100.0 * value / cap if cap else 0.0
        cells.append(f"{value} ({pct:.1f}%)" if value else "0")
    return cells


def shape_check(
    measured: Mapping[int, float],
    expected_at_or_above: Mapping[int, float],
    label: str = "",
) -> List[str]:
    """Compare a measured size->value curve against minimum expectations;
    returns a list of violation strings (empty = shape holds)."""
    problems: List[str] = []
    for size, minimum in expected_at_or_above.items():
        got = measured.get(size)
        if got is None:
            problems.append(f"{label}: no measurement at {size}B")
        elif got < minimum:
            problems.append(
                f"{label}: {got:.1f} at {size}B below expected {minimum:.1f}"
            )
    return problems
