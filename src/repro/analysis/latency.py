"""The paper's latency model (Equation 1, §6.2).

    Est. latency (us) = size * 8 * (2/100 + 2/32) / 1000 + 0.765

The size-dependent term is serialization: twice through a 100 Gbps MAC
(in and out) and twice through the 32 Gbps RPU link (the packet fully
lands in RPU memory before the core is notified, and fully serializes
out after the descriptor is released).  The 0.765 us intercept is the
fixed pipeline latency measured at the smallest packet size.
"""

from __future__ import annotations

from typing import Iterable, List

#: Fixed forwarding latency measured for the smallest packet (us).
FIXED_LATENCY_US = 0.765

#: Line rates of the two serialization stages (Gbps).
MAC_GBPS = 100.0
RPU_LINK_GBPS = 32.0


def estimated_latency_us(size: int, mac_gbps: float = MAC_GBPS, rpu_gbps: float = RPU_LINK_GBPS) -> float:
    """Equation 1: expected forwarding latency for a packet size."""
    serialization = size * 8 * (2.0 / mac_gbps + 2.0 / rpu_gbps) / 1000.0
    return serialization + FIXED_LATENCY_US


def estimated_latency_curve(sizes: Iterable[int]) -> List[float]:
    return [estimated_latency_us(size) for size in sizes]


#: Additional latency at saturated 64 B load: the RX FIFO fills and
#: drains at the forwarder rate (§6.2 measures 32.8 us).
SATURATED_64B_EXTRA_US = 32.8
