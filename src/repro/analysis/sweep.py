"""Parameter-sweep runner with CSV artifacts.

Benchmarks and examples repeatedly run "one experiment per (size,
config)" loops; :class:`Sweep` packages that pattern and persists the
results as CSV so figures can be regenerated outside the test harness
(the artifact's experiments likewise leave data files behind).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union


@dataclass
class SweepResult:
    """All rows of one sweep."""

    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def column(self, name: str) -> List[Any]:
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def filtered(self, **criteria: Any) -> List[Dict[str, Any]]:
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]

    def to_csv(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=self.columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)
        return path

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "SweepResult":
        with open(path, newline="") as fh:
            reader = csv.DictReader(fh)
            rows = [dict(row) for row in reader]
            columns = list(reader.fieldnames or [])
        # best-effort numeric conversion
        for row in rows:
            for key, value in row.items():
                try:
                    row[key] = int(value)
                except (TypeError, ValueError):
                    try:
                        row[key] = float(value)
                    except (TypeError, ValueError):
                        pass
        return cls(columns=columns, rows=rows)


class Sweep:
    """Run ``experiment(**point)`` over a grid of parameter points.

    ``experiment`` returns a dict of measured values; the sweep merges
    it with the point's parameters into one row.
    """

    def __init__(
        self,
        experiment: Callable[..., Dict[str, Any]],
        on_point: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.experiment = experiment
        self.on_point = on_point

    def run(self, points: Sequence[Dict[str, Any]]) -> SweepResult:
        if not points:
            raise ValueError("empty sweep")
        rows: List[Dict[str, Any]] = []
        columns: List[str] = []
        for point in points:
            measured = self.experiment(**point)
            row = {**point, **measured}
            for key in row:
                if key not in columns:
                    columns.append(key)
            rows.append(row)
            if self.on_point is not None:
                self.on_point(row)
        return SweepResult(columns=columns, rows=rows)

    @staticmethod
    def grid(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
        """Cartesian product of named axes, in stable order."""
        points: List[Dict[str, Any]] = [{}]
        for name, values in axes.items():
            points = [
                {**point, name: value} for point in points for value in values
            ]
        return points
