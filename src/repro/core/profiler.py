"""Periodic rate sampling — the artifact's status-table view.

The host utility prints a status table while traffic flows ("wait for
the packets to flow for a minute... the last print of the status table
is the average values").  :class:`StatsSampler` records the same rates
on a fixed simulated interval so tests can assert *time-series*
properties, e.g. that throughput does not dip while an RPU is being
reconfigured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .system import RosebudSystem


@dataclass
class Sample:
    """One interval's rates."""

    t_start_cycles: float
    t_end_cycles: float
    gbps: float
    mpps: float
    rx_drops: int
    host_gbps: float
    #: replay-cache activity this interval (both zero when no cache is
    #: attached): lookups = hits + misses + fallbacks + bypasses
    replay_hits: int = 0
    replay_lookups: int = 0


class StatsSampler:
    """Samples delivered throughput every ``interval_cycles``."""

    def __init__(self, system: RosebudSystem, interval_cycles: float = 25_000) -> None:
        self.system = system
        self.interval_cycles = interval_cycles
        self.samples: List[Sample] = []
        self._running = False
        self._last_bytes = 0
        self._last_packets = 0
        self._last_drops = 0
        self._last_host_bytes = 0
        self._last_time = 0.0
        self._last_replay_hits = 0
        self._last_replay_lookups = 0

    def start(self) -> None:
        if self._running:
            raise RuntimeError("sampler already started")
        self._running = True
        self._snapshot()
        self.system.sim.schedule(self.interval_cycles, self._tick, name="sampler")

    def _totals(self):
        tx_bytes = sum(m.bytes_total for m in self.system.tx_meters)
        tx_packets = sum(m.packets_total for m in self.system.tx_meters)
        return tx_bytes, tx_packets

    def _replay_totals(self):
        stats = self.system.replay_stats()
        if stats is None:
            return 0, 0
        return stats.hits, stats.lookups

    def _snapshot(self) -> None:
        self._last_bytes, self._last_packets = self._totals()
        self._last_drops = self.system.total_rx_drops()
        self._last_host_bytes = self.system.host_meter.bytes_total
        self._last_time = self.system.sim.now
        self._last_replay_hits, self._last_replay_lookups = self._replay_totals()

    def _tick(self) -> None:
        now = self.system.sim.now
        tx_bytes, tx_packets = self._totals()
        seconds = self.system.config.clock.cycles_to_seconds(now - self._last_time)
        host_bytes = self.system.host_meter.bytes_total
        replay_hits, replay_lookups = self._replay_totals()
        if seconds > 0:
            self.samples.append(
                Sample(
                    t_start_cycles=self._last_time,
                    t_end_cycles=now,
                    gbps=(tx_bytes - self._last_bytes) * 8 / seconds / 1e9,
                    mpps=(tx_packets - self._last_packets) / seconds / 1e6,
                    rx_drops=self.system.total_rx_drops() - self._last_drops,
                    host_gbps=(host_bytes - self._last_host_bytes) * 8 / seconds / 1e9,
                    replay_hits=replay_hits - self._last_replay_hits,
                    replay_lookups=replay_lookups - self._last_replay_lookups,
                )
            )
        self._snapshot()
        if self._running:
            self.system.sim.schedule(self.interval_cycles, self._tick, name="sampler")

    def stop(self) -> None:
        self._running = False

    # -- analysis helpers ------------------------------------------------------------

    def steady_samples(self, skip: int = 1) -> List[Sample]:
        """Samples after a warmup prefix (and before the cooldown tail
        if traffic has a fixed packet count)."""
        return self.samples[skip:]

    def min_gbps(self, skip: int = 1) -> float:
        steady = self.steady_samples(skip)
        return min(s.gbps for s in steady) if steady else 0.0

    def mean_gbps(self, skip: int = 1) -> float:
        steady = self.steady_samples(skip)
        if not steady:
            return 0.0
        return sum(s.gbps for s in steady) / len(steady)

    def dip_fraction(self, skip: int = 1) -> float:
        """Worst-interval throughput relative to the mean — 1.0 means
        perfectly flat; the no-pause reconfiguration claim is that this
        stays near 1 during an RPU reload."""
        mean = self.mean_gbps(skip)
        if mean == 0:
            return 0.0
        return self.min_gbps(skip) / mean
