"""Event-level RPU model (§4.1).

Inside an RPU the RISC-V core orchestrates (parses headers, feeds the
accelerator, releases descriptors) while the accelerator pipeline does
the heavy per-byte work.  The two overlap across packets: the core can
start orchestrating the next packet while the accelerator is still
streaming the previous payload.  The model is therefore a two-stage
tandem queue — a serial *core* stage and a serial *accelerator* stage —
whose steady-state throughput is ``1/max(sw_cycles, accel_cycles)``,
exactly the analysis of §7.1.4.

The functional counterpart — a full RV32 ISS wired to real memories and
MMIO accelerators — lives in :mod:`repro.core.funcsim`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..packet.packet import Packet
from ..sim.kernel import Simulator
from ..sim.stats import CounterSet
from .config import RosebudConfig
from .firmware_api import FirmwareModel, FirmwareResult


class RpuModel:
    """One RPU: input descriptor queue -> core stage -> accel stage."""

    def __init__(
        self,
        sim: Simulator,
        config: RosebudConfig,
        index: int,
        firmware: FirmwareModel,
        on_action: Callable[[Packet, FirmwareResult, int], None],
    ) -> None:
        self.sim = sim
        self.config = config
        self.index = index
        self.firmware = firmware
        self.on_action = on_action
        self.counters = CounterSet(["packets", "sw_cycles", "accel_cycles"])
        self.paused = False

        self._in_queue: Deque[Packet] = deque()
        self._accel_queue: Deque[Packet] = deque()
        self._results: Dict[int, FirmwareResult] = {}
        self._sw_busy = False
        self._accel_busy = False
        #: firmware hang (infinite loop / WFI-stuck core): descriptors
        #: queue up but nothing retires until eviction or :meth:`unwedge`
        self._wedged = False
        #: set by evict() until the next reboot/resume: frames already
        #: in the fabric when the host evicted are lost on arrival
        self._evicted = False
        #: completions swallowed while wedged, replayed on unwedge
        self._stuck: list = []
        #: host-readable status word the firmware can set (§3.4: the
        #: breakpoint-like mechanism — the host watches it change)
        self.status_register = 0
        #: last cycle this RPU made forward progress (completed a packet
        #: or was idle with an empty queue); feeds the hang watchdog
        self.last_progress = 0.0
        #: bumped by evict(): stale in-flight completions are ignored
        self._generation = 0
        #: behavioural replay cache (repro.replay.FirmwareReplayCache);
        #: attached by the system/engine when the spec enables it
        self.replay_cache = None
        firmware.on_boot(index, config)

    # -- occupancy (for drain detection during reconfiguration) ---------------

    @property
    def in_flight(self) -> int:
        return (
            len(self._in_queue)
            + len(self._accel_queue)
            + int(self._sw_busy)
            + int(self._accel_busy)
        )

    # -- packet entry -----------------------------------------------------------

    def deliver(self, packet: Packet) -> None:
        """A packet has fully landed in this RPU's packet memory and
        the interconnect posts its descriptor to the core."""
        if self._evicted:
            # the PR region is mid-reload; the host already flushed this
            # packet's slot, so the frame is simply lost on arrival
            packet.drop("rpu evicted")
            return
        packet.stamp("rpu_deliver", self.sim.now)
        self._in_queue.append(packet)
        self._kick_sw()

    # -- core (software) stage -----------------------------------------------------

    def _kick_sw(self) -> None:
        if self._sw_busy or self.paused or self._wedged or not self._in_queue:
            return
        packet = self._in_queue.popleft()
        cache = self.replay_cache
        if cache is not None:
            result = cache.execute(self.firmware, packet, self.index)
        else:
            result = self.firmware.process(packet, self.index)
        self._results[packet.packet_id] = result
        self._sw_busy = True
        self.counters.add("packets")
        self.counters.add("sw_cycles", int(result.sw_cycles))
        generation = self._generation
        self.sim.schedule(
            result.sw_cycles,
            lambda: self._sw_done(packet, generation),
            name=f"rpu{self.index}.sw",
        )

    def _sw_done(self, packet: Packet, generation: int) -> None:
        if generation != self._generation:
            return  # evicted while in flight
        if self._wedged:
            self._stuck.append(("sw", packet))
            return  # completion swallowed by the hung core
        self._sw_busy = False
        result = self._results[packet.packet_id]
        if result.accel_cycles > 0:
            self._accel_queue.append(packet)
            self._kick_accel()
        else:
            self._finish(packet)
        self._kick_sw()

    # -- accelerator stage --------------------------------------------------------

    def _kick_accel(self) -> None:
        if self._accel_busy or not self._accel_queue:
            return
        packet = self._accel_queue.popleft()
        result = self._results[packet.packet_id]
        self._accel_busy = True
        self.counters.add("accel_cycles", int(result.accel_cycles))
        generation = self._generation
        self.sim.schedule(
            result.accel_cycles,
            lambda: self._accel_done(packet, generation),
            name=f"rpu{self.index}.accel",
        )

    def _accel_done(self, packet: Packet, generation: int) -> None:
        if generation != self._generation:
            return  # evicted while in flight
        if self._wedged:
            self._stuck.append(("accel", packet))
            return  # completion swallowed by the hung core
        self._accel_busy = False
        self._finish(packet)
        self._kick_accel()

    # -- completion ------------------------------------------------------------------

    def _finish(self, packet: Packet) -> None:
        result = self._results.pop(packet.packet_id)
        if result.appended_bytes:
            packet.data = packet.data + b"\x00" * result.appended_bytes
            packet.mark_mutated()
        packet.stamp("rpu_done", self.sim.now)
        self.last_progress = self.sim.now
        self.on_action(packet, result, self.index)

    def stalled(self, threshold_cycles: float) -> bool:
        """Hang detection (§3.4): work is pending but nothing has
        completed for ``threshold_cycles`` — the condition the RISC-V
        timer-interrupt watchdog reports to the host."""
        if self.in_flight == 0:
            return False
        return self.sim.now - self.last_progress > threshold_cycles

    # -- fault injection (firmware hang, repro.faults) ---------------------------------

    @property
    def wedged(self) -> bool:
        return self._wedged

    def wedge(self) -> None:
        """Firmware hang: the core stops picking up descriptors and
        in-flight completions never retire, so ``in_flight`` stays
        pinned and :meth:`stalled` eventually reports the hang — the
        condition the host watchdog exists to recover from."""
        self._wedged = True

    def unwedge(self) -> None:
        """The hang resolves on its own (transient livelock): swallowed
        completions retire now and queued descriptors resume."""
        if not self._wedged:
            return
        self._wedged = False
        stuck, self._stuck = self._stuck, []
        for stage, packet in stuck:
            if stage == "sw":
                self._sw_done(packet, self._generation)
            else:
                self._accel_done(packet, self._generation)
        self._kick_sw()
        self._kick_accel()

    # -- host control (pause / reboot, §3.4 & §4.1) -------------------------------------

    def pause(self) -> None:
        """Stop starting new packets (in-flight work completes)."""
        self.paused = True

    def evict(self) -> list:
        """The evict interrupt (Appendix A.8): abandon queued and
        in-flight packets so the RPU can be reloaded even when hung.
        Returns the abandoned packets (the host frees their slots)."""
        abandoned = (
            list(self._in_queue)
            + list(self._accel_queue)
            + [packet for _stage, packet in self._stuck]
        )
        self._in_queue.clear()
        self._accel_queue.clear()
        self._stuck.clear()
        self._results.clear()
        self._sw_busy = False
        self._accel_busy = False
        self._generation += 1
        self.paused = True
        self._evicted = True
        return abandoned

    def resume(self) -> None:
        self.paused = False
        self._evicted = False
        self._kick_sw()

    def reboot(self, firmware: Optional[FirmwareModel] = None) -> None:
        """Load new firmware and boot; caller must have drained first."""
        if self.in_flight:
            raise RuntimeError(f"RPU {self.index} rebooted with packets in flight")
        if firmware is not None:
            self.firmware = firmware
        self.firmware.on_boot(self.index, self.config)
        # a fresh bitfile + boot clears any firmware hang
        self._wedged = False
        self._stuck.clear()
        self.paused = False
        self._evicted = False
        self.last_progress = self.sim.now
