"""Event-level RPU model (§4.1).

Inside an RPU the RISC-V core orchestrates (parses headers, feeds the
accelerator, releases descriptors) while the accelerator pipeline does
the heavy per-byte work.  The two overlap across packets: the core can
start orchestrating the next packet while the accelerator is still
streaming the previous payload.  The model is therefore a two-stage
tandem queue — a serial *core* stage and a serial *accelerator* stage —
whose steady-state throughput is ``1/max(sw_cycles, accel_cycles)``,
exactly the analysis of §7.1.4.

The functional counterpart — a full RV32 ISS wired to real memories and
MMIO accelerators — lives in :mod:`repro.core.funcsim`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..packet.packet import Packet
from ..sim.kernel import Simulator
from ..sim.stats import CounterSet
from .config import RosebudConfig
from .firmware_api import FirmwareModel, FirmwareResult


class RpuModel:
    """One RPU: input descriptor queue -> core stage -> accel stage."""

    def __init__(
        self,
        sim: Simulator,
        config: RosebudConfig,
        index: int,
        firmware: FirmwareModel,
        on_action: Callable[[Packet, FirmwareResult, int], None],
    ) -> None:
        self.sim = sim
        self.config = config
        self.index = index
        self.firmware = firmware
        self.on_action = on_action
        self.counters = CounterSet(["packets", "sw_cycles", "accel_cycles"])
        self.paused = False

        self._in_queue: Deque[Packet] = deque()
        self._accel_queue: Deque[Packet] = deque()
        self._results: Dict[int, FirmwareResult] = {}
        self._sw_busy = False
        self._accel_busy = False
        #: host-readable status word the firmware can set (§3.4: the
        #: breakpoint-like mechanism — the host watches it change)
        self.status_register = 0
        #: last cycle this RPU made forward progress (completed a packet
        #: or was idle with an empty queue); feeds the hang watchdog
        self.last_progress = 0.0
        #: bumped by evict(): stale in-flight completions are ignored
        self._generation = 0
        firmware.on_boot(index, config)

    # -- occupancy (for drain detection during reconfiguration) ---------------

    @property
    def in_flight(self) -> int:
        return (
            len(self._in_queue)
            + len(self._accel_queue)
            + int(self._sw_busy)
            + int(self._accel_busy)
        )

    # -- packet entry -----------------------------------------------------------

    def deliver(self, packet: Packet) -> None:
        """A packet has fully landed in this RPU's packet memory and
        the interconnect posts its descriptor to the core."""
        packet.stamp("rpu_deliver", self.sim.now)
        self._in_queue.append(packet)
        self._kick_sw()

    # -- core (software) stage -----------------------------------------------------

    def _kick_sw(self) -> None:
        if self._sw_busy or self.paused or not self._in_queue:
            return
        packet = self._in_queue.popleft()
        result = self.firmware.process(packet, self.index)
        self._results[packet.packet_id] = result
        self._sw_busy = True
        self.counters.add("packets")
        self.counters.add("sw_cycles", int(result.sw_cycles))
        generation = self._generation
        self.sim.schedule(
            result.sw_cycles,
            lambda: self._sw_done(packet, generation),
            name=f"rpu{self.index}.sw",
        )

    def _sw_done(self, packet: Packet, generation: int) -> None:
        if generation != self._generation:
            return  # evicted while in flight
        self._sw_busy = False
        result = self._results[packet.packet_id]
        if result.accel_cycles > 0:
            self._accel_queue.append(packet)
            self._kick_accel()
        else:
            self._finish(packet)
        self._kick_sw()

    # -- accelerator stage --------------------------------------------------------

    def _kick_accel(self) -> None:
        if self._accel_busy or not self._accel_queue:
            return
        packet = self._accel_queue.popleft()
        result = self._results[packet.packet_id]
        self._accel_busy = True
        self.counters.add("accel_cycles", int(result.accel_cycles))
        generation = self._generation
        self.sim.schedule(
            result.accel_cycles,
            lambda: self._accel_done(packet, generation),
            name=f"rpu{self.index}.accel",
        )

    def _accel_done(self, packet: Packet, generation: int) -> None:
        if generation != self._generation:
            return  # evicted while in flight
        self._accel_busy = False
        self._finish(packet)
        self._kick_accel()

    # -- completion ------------------------------------------------------------------

    def _finish(self, packet: Packet) -> None:
        result = self._results.pop(packet.packet_id)
        if result.appended_bytes:
            packet.data = packet.data + b"\x00" * result.appended_bytes
            packet.invalidate_parse_cache()
        packet.stamp("rpu_done", self.sim.now)
        self.last_progress = self.sim.now
        self.on_action(packet, result, self.index)

    def stalled(self, threshold_cycles: float) -> bool:
        """Hang detection (§3.4): work is pending but nothing has
        completed for ``threshold_cycles`` — the condition the RISC-V
        timer-interrupt watchdog reports to the host."""
        if self.in_flight == 0:
            return False
        return self.sim.now - self.last_progress > threshold_cycles

    # -- host control (pause / reboot, §3.4 & §4.1) -------------------------------------

    def pause(self) -> None:
        """Stop starting new packets (in-flight work completes)."""
        self.paused = True

    def evict(self) -> list:
        """The evict interrupt (Appendix A.8): abandon queued and
        in-flight packets so the RPU can be reloaded even when hung.
        Returns the abandoned packets (the host frees their slots)."""
        abandoned = list(self._in_queue) + list(self._accel_queue)
        self._in_queue.clear()
        self._accel_queue.clear()
        self._results.clear()
        self._sw_busy = False
        self._accel_busy = False
        self._generation += 1
        self.paused = True
        return abandoned

    def resume(self) -> None:
        self.paused = False
        self._kick_sw()

    def reboot(self, firmware: Optional[FirmwareModel] = None) -> None:
        """Load new firmware and boot; caller must have drained first."""
        if self.in_flight:
            raise RuntimeError(f"RPU {self.index} rebooted with packets in flight")
        if firmware is not None:
            self.firmware = firmware
        self.firmware.on_boot(self.index, self.config)
        self.paused = False
