"""Packet slots and descriptors (§4.2).

The LB refers to packet memory in RPUs by *slot number*: software on
each RISC-V allocates slots at boot and tells the LB how many it has;
the LB then labels each incoming packet with a target RPU and slot.
Freed slots flow back to the LB when the interconnect finishes sending
a packet out.  :class:`SlotTable` is the LB-side credit accounting and
:class:`Descriptor` is what firmware sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class SlotError(RuntimeError):
    """Raised on slot protocol violations (double free, bad index)."""


@dataclass
class Descriptor:
    """The firmware-visible packet descriptor.

    Mirrors the artifact's ``struct Desc``: a tag (slot index), data
    pointer, length and port.  ``port`` selects the egress: physical
    Ethernet ports are 0..n-1, ``PORT_HOST`` punts to host DRAM, and
    ``PORT_LOOPBACK`` sends to another RPU.
    """

    tag: int
    data: int
    len: int
    port: int

    PORT_HOST = 2
    PORT_LOOPBACK = 3


class SlotTable:
    """Per-RPU slot credits as tracked inside the LB.

    The LB may only dispatch a packet to an RPU holding a free slot;
    the interconnect returns the credit when the slot's packet leaves
    the RPU.
    """

    def __init__(self, n_rpus: int, slots_per_rpu: int) -> None:
        if n_rpus < 1 or slots_per_rpu < 1:
            raise SlotError("need at least one RPU and one slot")
        self.n_rpus = n_rpus
        self.slots_per_rpu = slots_per_rpu
        self._free: List[List[int]] = [
            list(range(slots_per_rpu)) for _ in range(n_rpus)
        ]
        self._busy: List[set] = [set() for _ in range(n_rpus)]

    def free_count(self, rpu: int) -> int:
        return len(self._free[rpu])

    def has_free(self, rpu: int) -> bool:
        return bool(self._free[rpu])

    def occupancy(self, rpu: int) -> int:
        """Slots currently holding packets (the load signal a
        least-loaded LB policy reads)."""
        return len(self._busy[rpu])

    def allocate(self, rpu: int) -> int:
        if not self._free[rpu]:
            raise SlotError(f"RPU {rpu} has no free slots")
        slot = self._free[rpu].pop()
        self._busy[rpu].add(slot)
        return slot

    def release(self, rpu: int, slot: int) -> None:
        if slot not in self._busy[rpu]:
            raise SlotError(f"slot {slot} of RPU {rpu} is not busy")
        self._busy[rpu].remove(slot)
        self._free[rpu].append(slot)

    def flush(self, rpu: int) -> int:
        """Forget all outstanding slots of an RPU (host prepares the LB
        for a reconfiguration this way, §4.2).  Returns the number of
        slots reclaimed."""
        reclaimed = len(self._busy[rpu])
        self._free[rpu] = list(range(self.slots_per_rpu))
        self._busy[rpu] = set()
        return reclaimed
