"""100 G Ethernet MAC + FIFO model (§5, §6.2).

Each physical port has an RX side — serialization at line rate followed
by a bounded receive FIFO — and a TX side that serializes outgoing
frames at line rate.  The RX FIFO is where backlog forms when the
distribution subsystem (125 MPPS per port) can't keep up with small
packets; its calibrated size reproduces the paper's +32.8 µs under
saturated 64 B traffic.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..packet.checksum import ipv4_header_checksum_ok
from ..packet.packet import Packet
from ..sim.clock import wire_bytes
from ..sim.kernel import Simulator
from ..sim.resources import BoundedFifo, SerialLink
from ..sim.stats import CounterSet
from .config import RosebudConfig

#: Bytes a frame occupies in the RX FIFO: frame + FCS.
_FIFO_BYTES_PER_FRAME = 4

#: Ethernet frame-size policing: runts (below the 64 B minimum, i.e.
#: 60 B without FCS) and giants (above the 9.6 KB jumbo ceiling) are
#: dropped by the MAC with dedicated counters, like a real CMAC.
MIN_FRAME_BYTES = 60
MAX_FRAME_BYTES = 9600


class MacPort:
    """One 100 G port: RX serializer + RX FIFO + TX serializer.

    ``on_rx`` fires when a frame has fully landed in the RX FIFO and a
    downstream consumer should be kicked; consumers pull via
    :meth:`rx_pop`.  ``on_tx_done`` fires when a frame has fully left
    the TX serializer (this is where forwarding latency is measured).
    """

    def __init__(
        self,
        sim: Simulator,
        config: RosebudConfig,
        index: int,
        on_rx: Callable[[], None],
        on_tx_done: Callable[[Packet], None],
    ) -> None:
        self.sim = sim
        self.config = config
        self.index = index
        self.counters = CounterSet(
            ["rx_frames", "rx_bytes", "rx_drops", "rx_runts", "rx_giants",
             "rx_csum_drops", "rx_link_drops", "tx_frames", "tx_bytes"]
        )
        self._on_rx = on_rx
        #: fault-injection hook applied to every frame on the wire
        #: before policing: return a (possibly mutated) packet, or None
        #: to lose the frame entirely (repro.faults installs these)
        self.rx_fault_hook: Optional[Callable[[Packet], Optional[Packet]]] = None
        #: when True, frames whose IPv4 header checksum fails are
        #: dropped with ``rx_csum_drops`` accounting (a real CMAC's FCS
        #: policing stands in for it; corruption injectors enable this)
        self.verify_checksums = False
        #: link state: while down, RX frames are lost on the wire and
        #: the TX serializer pauses (frames back up in its FIFO)
        self.link_up = True

        period = config.clock.period_ns
        gbps = config.port_gbps
        # a 64B reference frame occupies 68B in the FIFO
        fifo_bytes = config.mac_rx_fifo_packets * (64 + _FIFO_BYTES_PER_FRAME)
        self.rx_fifo = BoundedFifo(f"mac{index}.rxfifo", capacity_bytes=fifo_bytes)

        def rx_service(packet: Packet, nbytes: int) -> float:
            return wire_bytes(packet.size) * 8 / gbps / period  # ns -> cycles

        self._rx_link = SerialLink(
            sim, f"mac{index}.rx", rx_service, self._rx_serialized
        )

        def tx_service(packet: Packet, nbytes: int) -> float:
            return wire_bytes(packet.size) * 8 / gbps / period

        def tx_done(packet: Packet) -> None:
            self.counters.add("tx_frames")
            self.counters.add("tx_bytes", packet.size)
            on_tx_done(packet)

        self._tx_link = SerialLink(sim, f"mac{index}.tx", tx_service, tx_done)

    # -- RX --------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """A frame starts arriving on the wire."""
        if not self.link_up:
            self.counters.add("rx_link_drops")
            self.counters.add("rx_drops")
            packet.drop("link down")
            return
        if self.rx_fault_hook is not None:
            mutated = self.rx_fault_hook(packet)
            if mutated is None:
                self.counters.add("rx_drops")
                packet.drop("lost on the wire")
                return
            packet = mutated
        if packet.size < MIN_FRAME_BYTES:
            self.counters.add("rx_runts")
            self.counters.add("rx_drops")
            packet.drop("runt frame")
            return
        if packet.size > MAX_FRAME_BYTES:
            self.counters.add("rx_giants")
            self.counters.add("rx_drops")
            packet.drop("giant frame")
            return
        self._rx_link.offer(packet, packet.size)

    def _rx_serialized(self, packet: Packet) -> None:
        # CMAC pipeline delay between the wire and the FIFO
        self.sim.schedule(
            self.config.mac_rx_fixed_cycles,
            lambda: self._rx_enqueue(packet),
            name=f"mac{self.index}.rx_fixed",
        )

    def _rx_enqueue(self, packet: Packet) -> None:
        if self.verify_checksums and ipv4_header_checksum_ok(packet.data) is False:
            self.counters.add("rx_csum_drops")
            self.counters.add("rx_drops")
            packet.drop("ipv4 header checksum mismatch")
            return
        if not self.rx_fifo.push(packet, packet.size + _FIFO_BYTES_PER_FRAME):
            self.counters.add("rx_drops")
            packet.drop("mac rx fifo full")
            return
        self.counters.add("rx_frames")
        self.counters.add("rx_bytes", packet.size)
        packet.stamp("mac_rx_done", self.sim.now)
        self._on_rx()

    def rx_pop(self) -> Optional[Packet]:
        entry = self.rx_fifo.pop()
        return entry[0] if entry else None

    def rx_backlog(self) -> int:
        return len(self.rx_fifo)

    # -- link state (fault injection) --------------------------------------------

    def set_link(self, up: bool) -> None:
        """Flap the link: while down, wire arrivals are lost and the TX
        serializer pauses so outgoing frames back up in its FIFO — the
        backpressure a transient flap propagates into the switch."""
        if up == self.link_up:
            return
        self.link_up = up
        if up:
            self._tx_link.resume()
        else:
            self._tx_link.pause()

    def tx_backlog(self) -> int:
        """Frames waiting in (or blocked behind) the TX serializer."""
        return len(self._tx_link.queue) + int(self._tx_link.busy)

    # -- TX --------------------------------------------------------------------

    def transmit(self, packet: Packet) -> None:
        """Queue a frame for transmission (TX FIFO is effectively
        unbounded here; upstream slot credits bound it in practice)."""
        self.sim.schedule(
            self.config.mac_tx_fixed_cycles,
            lambda: self._tx_link.offer(packet, packet.size),
            name=f"mac{self.index}.tx_fixed",
        )
