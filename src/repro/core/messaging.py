"""Inter-RPU messaging (§4.4): full-packet loopback + broadcast words.

*Loopback*: a single 100 Gbps port that routes a full packet from one
RPU to another through the same distribution subsystem.  Each packet
pays a destination-header attach cost (calibrated 3 cycles — this is
the bottleneck the paper identifies at small packet sizes) on top of
line-rate serialization.

*Broadcast*: a semi-coherent memory region.  A word written to it is
eventually propagated to *all* RPUs, which observe it at the same
instant.  Each RPU has an 18-deep outbound FIFO (16 FIFO entries plus
2 PR-border registers); a round-robin arbiter grants one RPU per cycle,
so a fully contended RPU drains one message every ``n_rpus`` cycles —
the 16x18-cycle product behind the paper's saturated-latency analysis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from ..packet.packet import Packet
from ..sim.clock import wire_bytes
from ..sim.kernel import Simulator
from ..sim.resources import SerialLink
from ..sim.stats import CounterSet, Histogram
from .config import RosebudConfig


class LoopbackPort:
    """The RPU-to-RPU full-packet path."""

    def __init__(
        self,
        sim: Simulator,
        config: RosebudConfig,
        on_done: Callable[[Packet], None],
    ) -> None:
        self.config = config
        self.counters = CounterSet(["frames", "bytes"])
        period = config.clock.period_ns

        def service(packet: Packet, nbytes: int) -> float:
            serialize = wire_bytes(packet.size) * 8 / config.loopback_gbps / period
            return max(serialize, float(config.loopback_cycles))

        def done(packet: Packet) -> None:
            self.counters.add("frames")
            self.counters.add("bytes", packet.size)
            on_done(packet)

        self.link = SerialLink(sim, "loopback", service, done)

    def send(self, packet: Packet) -> None:
        self.link.offer(packet, packet.size)


@dataclass
class BroadcastMessage:
    """One word written to the broadcast region."""

    sender: int
    address: int
    value: int
    sent_at: float = 0.0
    delivered_at: float = 0.0


class BroadcastSystem:
    """The short-message broadcast fabric.

    ``send`` models the core's store to the broadcast region: if the
    sender's FIFO is full the store blocks and is retried each cycle
    (like a stalled bus write).  A round-robin arbiter drains one
    message per cycle across RPUs; drained messages pass a final
    one-per-cycle serializer (the control-channel registers/FIFOs of
    the distribution subsystem) and after a fixed propagation delay are
    delivered to every RPU simultaneously.

    Per-RPU interrupt masks filter which addresses raise an interrupt at
    the receiver (so multi-word messages can interrupt only on the last
    word, §4.4); a receive FIFO preserves notification order.
    """

    #: propagation through the control channel (calibrated: sparse
    #: latency 72-92 ns ~= 18-23 cycles, Section 6.3)
    PROPAGATION_CYCLES = 18

    def __init__(
        self,
        sim: Simulator,
        config: RosebudConfig,
        on_deliver: Optional[Callable[[int, BroadcastMessage], None]] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.on_deliver = on_deliver
        self.latency_ns = Histogram("broadcast_latency_ns")
        self.counters = CounterSet(["sent", "delivered", "blocked_retries"])
        self._fifos: List[Deque[BroadcastMessage]] = [
            deque() for _ in range(config.n_rpus)
        ]
        self._rx_fifos: List[Deque[BroadcastMessage]] = [
            deque() for _ in range(config.n_rpus)
        ]
        #: per-RPU address mask: callable(address) -> bool, interrupt or not
        self.interrupt_masks: List[Callable[[int], bool]] = [
            (lambda addr: True) for _ in range(config.n_rpus)
        ]
        self._arbiter_ptr = 0
        self._arbiter_running = False

        def serial_service(msg: BroadcastMessage, nbytes: int) -> float:
            return 1.0

        self._out_serializer = SerialLink(
            sim, "bcast.serial", serial_service, self._serialized
        )

    # -- sending ----------------------------------------------------------------

    def send(
        self,
        sender: int,
        address: int,
        value: int,
        on_enqueued: Optional[Callable[[], None]] = None,
    ) -> None:
        """Core ``sender`` stores ``value`` to the broadcast region.

        The store blocks the core while the outbound FIFO is full;
        ``on_enqueued`` fires once the store retires, which is when a
        firmware send-loop would compute its *next* timestamp.
        """
        msg = BroadcastMessage(sender, address, value, sent_at=self.sim.now)
        self._attempt_enqueue(msg, on_enqueued)

    def _attempt_enqueue(
        self, msg: BroadcastMessage, on_enqueued: Optional[Callable[[], None]]
    ) -> None:
        fifo = self._fifos[msg.sender]
        if len(fifo) >= self.config.bcast_fifo_depth:
            # blocked store: retry next cycle
            self.counters.add("blocked_retries")
            self.sim.schedule(
                1, lambda: self._attempt_enqueue(msg, on_enqueued), name="bcast_block"
            )
            return
        fifo.append(msg)
        self.counters.add("sent")
        self._start_arbiter()
        if on_enqueued is not None:
            self.sim.schedule(1, on_enqueued, name="bcast_retired")

    # -- arbitration (one grant per cycle, RR across RPUs) ------------------------

    def _start_arbiter(self) -> None:
        if self._arbiter_running:
            return
        self._arbiter_running = True
        self.sim.schedule(1, self._arbiter_tick, name="bcast_arbiter")

    def _arbiter_tick(self) -> None:
        n = self.config.n_rpus
        granted = None
        for offset in range(n):
            idx = (self._arbiter_ptr + offset) % n
            if self._fifos[idx]:
                granted = idx
                break
        if granted is None:
            self._arbiter_running = False
            return
        self._arbiter_ptr = (granted + 1) % n
        msg = self._fifos[granted].popleft()
        self._out_serializer.offer(msg, 4)
        self.sim.schedule(1, self._arbiter_tick, name="bcast_arbiter")

    # -- delivery -------------------------------------------------------------------

    def _serialized(self, msg: BroadcastMessage) -> None:
        self.sim.schedule(
            self.PROPAGATION_CYCLES, lambda: self._deliver(msg), name="bcast_prop"
        )

    def _deliver(self, msg: BroadcastMessage) -> None:
        msg.delivered_at = self.sim.now
        latency_cycles = msg.delivered_at - msg.sent_at
        self.latency_ns.record(latency_cycles * self.config.clock.period_ns)
        self.counters.add("delivered")
        for rpu in range(self.config.n_rpus):
            if rpu == msg.sender:
                continue
            if self.interrupt_masks[rpu](msg.address):
                self._rx_fifos[rpu].append(msg)
                if self.on_deliver is not None:
                    self.on_deliver(rpu, msg)

    # -- receiver side --------------------------------------------------------------

    def set_interrupt_mask(self, rpu: int, mask: Callable[[int], bool]) -> None:
        self.interrupt_masks[rpu] = mask

    def drain(self, rpu: int) -> List[BroadcastMessage]:
        """Pop everything pending at a receiver, in order."""
        out: List[BroadcastMessage] = []
        while True:
            msg = self.poll(rpu)
            if msg is None:
                return out
            out.append(msg)

    def poll(self, rpu: int) -> Optional[BroadcastMessage]:
        """Receiver pops the next notification, in order."""
        fifo = self._rx_fifos[rpu]
        return fifo.popleft() if fifo else None

    def pending(self, rpu: int) -> int:
        return len(self._rx_fifos[rpu])


class MessageChannel:
    """Multi-word messages over the broadcast region (§4.4).

    The paper's interrupt masking exists precisely for this pattern:
    data words go to a non-interrupting address range, and only the
    final word (written to the interrupting *doorbell* address) wakes
    the receivers, which then reassemble the payload in order.

    The address map per logical channel: words stream to
    ``data_base + i*4`` and the doorbell is ``data_base + DOORBELL``.
    """

    DOORBELL_OFFSET = 0x7C
    _WORDS_PER_MESSAGE = DOORBELL_OFFSET // 4  # payload words before doorbell

    def __init__(self, bcast: BroadcastSystem, data_base: int = 0x1000) -> None:
        self.bcast = bcast
        self.data_base = data_base
        self._rx_partial: dict = {}

    def doorbell_address(self) -> int:
        return self.data_base + self.DOORBELL_OFFSET

    def configure_receiver(self, rpu: int) -> None:
        """Mask everything but the doorbell for interrupt purposes —
        but still record data words (they carry the payload)."""
        # all channel words are recorded; interrupts conceptually fire
        # only on the doorbell.  The simulation stores all words in the
        # rx FIFO; receive() reassembles on the doorbell.
        self.bcast.set_interrupt_mask(
            rpu, lambda addr: self.data_base <= addr <= self.doorbell_address()
        )

    def send(self, sender: int, payload: bytes) -> None:
        """Send up to 31 words (124 B) of payload + a doorbell word."""
        if len(payload) > self._WORDS_PER_MESSAGE * 4:
            raise ValueError(
                f"payload exceeds one message ({self._WORDS_PER_MESSAGE * 4} bytes)"
            )
        padded = payload + b"\x00" * (-len(payload) % 4)
        for index in range(0, len(padded), 4):
            word = int.from_bytes(padded[index : index + 4], "little")
            self.bcast.send(sender, self.data_base + index, word)
        # doorbell carries the true payload length
        self.bcast.send(sender, self.doorbell_address(), len(payload))

    def receive(self, rpu: int) -> Optional[bytes]:
        """Reassemble the next complete message at a receiver."""
        words = self._rx_partial.setdefault(rpu, {})
        while True:
            msg = self.bcast.poll(rpu)
            if msg is None:
                return None
            if msg.address == self.doorbell_address():
                length = msg.value
                data = bytearray()
                for index in range(0, length + (-length % 4), 4):
                    data += words.get(self.data_base + index, 0).to_bytes(4, "little")
                words.clear()
                return bytes(data[:length])
            words[msg.address] = msg.value
