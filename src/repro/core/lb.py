"""The customizable packet load balancer (§4.2).

The LB sits between the ingress ports and the distribution switches: it
labels every packet with a destination RPU and slot, subject to the
slot credits it tracks.  Policies are pluggable — the paper ships round
robin and the Pigasus case study's hash-based LB (which also prepends
the computed flow hash to the packet so firmware can reuse it), and
suggests a least-loaded policy as another example.

The host talks to the LB over a 30-bit register channel: enabling and
disabling RPUs (used while reconfiguring one at runtime), reading slot
availability, and flushing slots.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence

from ..packet.packet import Packet
from .config import RosebudConfig
from .descriptors import SlotTable


class LBPolicy:
    """Base class for load-balancing policies.

    ``choose`` returns the destination RPU index among ``candidates``
    (RPUs that are enabled *and* hold a free slot), or None to defer
    the packet (leave it queued upstream).
    """

    name = "base"

    def choose(self, packet: Packet, candidates: Sequence[int], slots: SlotTable) -> Optional[int]:
        raise NotImplementedError

    def on_dispatch(self, packet: Packet, rpu: int) -> None:
        """Hook after a packet is labelled (hash LB prepends data here)."""


class RoundRobinLB(LBPolicy):
    """Cycle through RPUs in order, skipping busy/disabled ones."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, packet: Packet, candidates: Sequence[int], slots: SlotTable) -> Optional[int]:
        if not candidates:
            return None
        # pick the first candidate at or after the RR pointer
        n = slots.n_rpus
        best = min(candidates, key=lambda r: (r - self._next) % n)
        self._next = (best + 1) % n
        return best


def flow_hash(packet: Packet, bits: int = 32) -> int:
    """The inline flow-hash accelerator in the hash LB (§7.1.2).

    Hashes the 5-tuple so both directions of a flow can be steered
    consistently; CRC32 stands in for the hardware hash.
    """
    tup = packet.five_tuple
    if tup is None:
        return zlib.crc32(packet.data[:14]) & ((1 << bits) - 1)
    src, dst, proto, sport, dport = tup
    key = f"{src}|{dst}|{proto}|{sport}|{dport}".encode()
    return zlib.crc32(key) & ((1 << bits) - 1)


class HashLB(LBPolicy):
    """Flow-affinity LB: same flow always lands on the same RPU.

    Uses ``hash_bits`` bits of the 32-bit flow hash to index RPUs and
    prepends the 4-byte hash to the packet (``packet.flow_hash``) so
    the RPU software reuses it for its flow-state table without
    recomputation.  Packets for a disabled or slot-exhausted RPU are
    deferred rather than diverted, preserving flow affinity.
    """

    name = "hash"

    def __init__(self, n_rpus: int) -> None:
        if n_rpus & (n_rpus - 1):
            raise ValueError("hash LB wants a power-of-two RPU count")
        self.n_rpus = n_rpus
        self.hash_bits = n_rpus.bit_length() - 1

    def choose(self, packet: Packet, candidates: Sequence[int], slots: SlotTable) -> Optional[int]:
        h = flow_hash(packet)
        packet.flow_hash = h
        target = h & (self.n_rpus - 1)
        return target if target in candidates else None

    def on_dispatch(self, packet: Packet, rpu: int) -> None:
        # the hardware pads the 4-byte hash result onto the packet front
        if packet.flow_hash is None:
            packet.flow_hash = flow_hash(packet)


class PowerOfTwoChoicesLB(LBPolicy):
    """An example *custom* LB policy (§4.2 invites exactly this).

    Classic power-of-two-choices: hash the flow to two candidate RPUs
    and pick the less loaded one.  Keeps most of hash affinity's cache
    benefits while bounding imbalance — a policy a Rosebud user could
    drop into the LB's PR block.
    """

    name = "power_of_two"

    def __init__(self, n_rpus: int) -> None:
        if n_rpus < 2:
            raise ValueError("power-of-two choices needs at least 2 RPUs")
        self.n_rpus = n_rpus

    def choose(self, packet: Packet, candidates: Sequence[int], slots: SlotTable) -> Optional[int]:
        if not candidates:
            return None
        h = flow_hash(packet)
        packet.flow_hash = h
        first = h % self.n_rpus
        second = (h >> 16) % self.n_rpus
        options = [rpu for rpu in (first, second) if rpu in candidates]
        if not options:
            return None
        return max(options, key=slots.free_count)


class LeastLoadedLB(LBPolicy):
    """Assign to the RPU with the most free slots (ties round robin)."""

    name = "least_loaded"

    def __init__(self) -> None:
        self._tiebreak = 0

    def choose(self, packet: Packet, candidates: Sequence[int], slots: SlotTable) -> Optional[int]:
        if not candidates:
            return None
        best = max(
            candidates,
            key=lambda r: (slots.free_count(r), -((r - self._tiebreak) % 1024)),
        )
        self._tiebreak = best + 1
        return best


class LoadBalancer:
    """The LB block: policy + slot credits + host register channel."""

    def __init__(self, config: RosebudConfig, policy: Optional[LBPolicy] = None) -> None:
        self.config = config
        self.policy = policy or RoundRobinLB()
        self.slots = SlotTable(config.n_rpus, config.slots_per_rpu)
        self.enabled: List[bool] = [True] * config.n_rpus
        self.dispatched = 0
        self.deferred = 0

    def candidates(self) -> List[int]:
        return [
            rpu
            for rpu in range(self.config.n_rpus)
            if self.enabled[rpu] and self.slots.has_free(rpu)
        ]

    def assign(self, packet: Packet) -> Optional[int]:
        """Label ``packet`` with a destination RPU and slot, or None if
        the policy defers (no candidate)."""
        rpu = self.policy.choose(packet, self.candidates(), self.slots)
        if rpu is None:
            self.deferred += 1
            return None
        packet.dest_rpu = rpu
        packet.slot = self.slots.allocate(rpu)
        self.policy.on_dispatch(packet, rpu)
        self.dispatched += 1
        return rpu

    def slot_freed(self, rpu: int, slot: int) -> None:
        """Interconnect tells the LB a slot was sent out (§4.2)."""
        self.slots.release(rpu, slot)

    # -- host register channel (30-bit address space, §4.2) ------------------

    REG_ENABLE_MASK = 0x0000_0000
    REG_FREE_SLOTS_BASE = 0x0000_0100
    REG_FLUSH_BASE = 0x0000_0200

    def host_read(self, addr: int) -> int:
        if addr == self.REG_ENABLE_MASK:
            mask = 0
            for idx, on in enumerate(self.enabled):
                mask |= int(on) << idx
            return mask
        if self.REG_FREE_SLOTS_BASE <= addr < self.REG_FREE_SLOTS_BASE + self.config.n_rpus:
            return self.slots.free_count(addr - self.REG_FREE_SLOTS_BASE)
        raise ValueError(f"unknown LB register {addr:#x}")

    def host_write(self, addr: int, value: int) -> None:
        if addr == self.REG_ENABLE_MASK:
            self.enabled = [
                bool(value >> idx & 1) for idx in range(self.config.n_rpus)
            ]
            return
        if self.REG_FLUSH_BASE <= addr < self.REG_FLUSH_BASE + self.config.n_rpus:
            self.slots.flush(addr - self.REG_FLUSH_BASE)
            return
        raise ValueError(f"unknown LB register {addr:#x}")

    def disable_rpu(self, rpu: int) -> None:
        self.enabled[rpu] = False

    def enable_rpu(self, rpu: int) -> None:
        self.enabled[rpu] = True
