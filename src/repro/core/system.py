"""The assembled Rosebud system (Figure 2).

:class:`RosebudSystem` wires MAC ports, the load balancer, the two
unidirectional distribution fabrics, the RPUs, the loopback port, the
broadcast system, and the host/PCIe sink into one event simulation.

The packet life cycle::

    wire -> MAC RX -> RX FIFO -> port ingress (125 MPPS) -> LB assign
         -> cluster switch -> 32G RPU link -> RPU (core -> accel)
         -> firmware action:
              forward  -> RPU out link -> cluster switch -> MAC TX -> wire
              host     -> ... -> PCIe link -> host sink
              loopback -> ... -> loopback port -> dest RPU
              drop     -> slot freed

Slots are the flow-control currency: the LB only dispatches to RPUs
holding free slots, slots return when packets leave their RPU, and a
blocked head-of-line packet at a port waits in the MAC FIFO — which is
exactly the overload behaviour §6.2 measures.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from ..packet.packet import Packet
from ..sim.kernel import Simulator
from ..sim.resources import SerialLink
from ..sim.stats import CounterSet, Histogram, RateMeter
from .config import RosebudConfig
from .descriptors import SlotError
from .firmware_api import ACTION_DROP, ACTION_HOST, ACTION_LOOPBACK, FirmwareModel, FirmwareResult
from .lb import LBPolicy, LoadBalancer
from .mac import MacPort
from .messaging import BroadcastSystem, LoopbackPort
from .pcie import HostDmaEngine, PCIE_GBPS, VirtualEthernet
from .rpu import RpuModel
from .switch import DistributionFabric, PortIngress


class RosebudSystem:
    """A full Rosebud instance under simulation."""

    def __init__(
        self,
        config: RosebudConfig,
        firmware: Union[FirmwareModel, Sequence[FirmwareModel]],
        lb_policy: Optional[LBPolicy] = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        """``firmware`` is either one model (cloned per RPU) or a
        sequence of ``n_rpus`` models — heterogeneous RPUs with
        different accelerators, as §4.4's processing chains use."""
        self.config = config
        self.sim = sim or Simulator()
        self.lb = LoadBalancer(config, lb_policy)

        self.macs: List[MacPort] = []
        self.port_ingress: List[PortIngress] = []
        for port in range(config.n_ports):
            mac = MacPort(
                self.sim,
                config,
                port,
                on_rx=self._make_rx_kicker(port),
                on_tx_done=self._make_tx_done(port),
            )
            self.macs.append(mac)
        for port, mac in enumerate(self.macs):
            self.port_ingress.append(
                PortIngress(self.sim, config, mac, self.lb, self._dispatch)
            )

        self.fabric_in = DistributionFabric(
            self.sim, config, "in", self._deliver_to_rpu
        )
        self.fabric_out = DistributionFabric(
            self.sim, config, "out", self._egress_done, on_rpu_out=self._left_rpu
        )

        if isinstance(firmware, FirmwareModel):
            firmwares: List[FirmwareModel] = [
                firmware.clone() for _ in range(config.n_rpus)
            ]
        else:
            firmwares = list(firmware)
            if len(firmwares) != config.n_rpus:
                raise ValueError(
                    f"need {config.n_rpus} firmware models, got {len(firmwares)}"
                )
        self.rpus: List[RpuModel] = [
            RpuModel(self.sim, config, idx, firmwares[idx], self._rpu_action)
            for idx in range(config.n_rpus)
        ]
        self.loopback = LoopbackPort(self.sim, config, self._loopback_done)
        self.broadcast = BroadcastSystem(self.sim, config)

        period = config.clock.period_ns

        def pcie_service(packet: Packet, nbytes: int) -> float:
            return packet.size * 8 / PCIE_GBPS / period

        self.host_link = SerialLink(
            self.sim, "pcie", pcie_service, self._host_received
        )
        self.host_rx: List[Packet] = []
        self.host_dma = HostDmaEngine(self.sim, config)
        self.virtual_ethernet = VirtualEthernet(
            self.sim, config, self._assign_from_host
        )

        # measurement state
        self.counters = CounterSet(
            ["delivered", "dropped_by_firmware", "to_host", "loopbacked"]
        )
        self.tx_meters: List[RateMeter] = [RateMeter() for _ in range(config.n_ports)]
        self.host_meter = RateMeter()
        self.latency_us = Histogram("forwarding_latency_us")
        self.delivered_packets: List[Packet] = []
        self.keep_delivered = False
        #: optional hook on every MAC TX completion
        self.on_delivery: Optional[Callable[[Packet], None]] = None

        #: fluid fast-forward support: when enabled, every in-flight
        #: packet is registered so a clock warp can translate its
        #: absolute timestamps (born_at feeds the latency histogram).
        #: Off by default — the hot path pays nothing.
        self.track_live_packets = False
        self._live_packets: dict = {}

    # -- traffic entry -------------------------------------------------------------

    def offer_packet(self, port: int, packet: Packet) -> None:
        """A frame starts arriving at physical port ``port``."""
        packet.born_at = self.sim.now
        packet.ingress_port = port
        if self.track_live_packets:
            self._live_packets[packet.packet_id] = packet
        self.macs[port].receive(packet)

    # -- wiring callbacks ------------------------------------------------------------

    def _make_rx_kicker(self, port: int) -> Callable[[], None]:
        def kick() -> None:
            self.port_ingress[port].kick()

        return kick

    def _make_tx_done(self, port: int) -> Callable[[Packet], None]:
        def tx_done(packet: Packet) -> None:
            if self.track_live_packets:
                self._live_packets.pop(packet.packet_id, None)
            self.counters.add("delivered")
            self.tx_meters[port].record_packet(packet.size)
            latency_cycles = self.sim.now - packet.born_at
            self.latency_us.record(self.config.clock.cycles_to_us(latency_cycles))
            if self.keep_delivered:
                self.delivered_packets.append(packet)
            if self.on_delivery is not None:
                self.on_delivery(packet)

        return tx_done

    def _dispatch(self, packet: Packet) -> None:
        self.fabric_in.send_to_rpu(packet)

    def _assign_from_host(self, packet: Packet) -> bool:
        """Virtual-Ethernet ingress: LB labels host-sourced frames like
        any other ingress; False defers (no free slot)."""
        rpu = self.lb.assign(packet)
        if rpu is None:
            return False
        packet.stamp("lb_assigned", self.sim.now)
        self.fabric_in.send_to_rpu(packet, input_class="host")
        return True

    def _deliver_to_rpu(self, packet: Packet) -> None:
        assert packet.dest_rpu is not None
        self.rpus[packet.dest_rpu].deliver(packet)

    # -- firmware actions ---------------------------------------------------------------

    def _rpu_action(self, packet: Packet, result: FirmwareResult, rpu_index: int) -> None:
        packet.route = result
        if result.action == ACTION_DROP:
            if self.track_live_packets:
                self._live_packets.pop(packet.packet_id, None)
            self.counters.add("dropped_by_firmware")
            self._free_slot(rpu_index, packet.slot)
            return
        packet.src_slot = (rpu_index, packet.slot)
        if result.action == ACTION_LOOPBACK:
            self._start_loopback(packet, rpu_index)
            return
        self.fabric_out.send_from_rpu(packet, rpu_index)

    def _start_loopback(self, packet: Packet, rpu_index: int) -> None:
        """Core asks the LB for a slot at the destination RPU; polls
        until one is free, then ships the packet out."""
        dest = packet.route.loopback_dest
        assert dest is not None
        if self.lb.slots.has_free(dest):
            new_slot = self.lb.slots.allocate(dest)
            packet.dest_rpu = dest
            packet.slot = new_slot
            self.counters.add("loopbacked")
            self.fabric_out.send_from_rpu(packet, rpu_index)
        else:
            self.sim.schedule(
                4, lambda: self._start_loopback(packet, rpu_index), name="lb_slot_poll"
            )

    def _left_rpu(self, packet: Packet, rpu_index: int) -> None:
        """Packet fully left its source RPU: return the slot credit."""
        if packet.src_slot is not None:
            src_rpu, src_slot = packet.src_slot
            packet.src_slot = None
            self._free_slot(src_rpu, src_slot)

    def _free_slot(self, rpu: int, slot: int) -> None:
        try:
            self.lb.slot_freed(rpu, slot)
        except SlotError:
            return  # slot was flushed by the host during reconfiguration
        for ingress in self.port_ingress:
            ingress.slot_freed()

    def _egress_done(self, packet: Packet) -> None:
        result = packet.route
        assert result is not None
        if result.action == ACTION_HOST:
            self.host_link.offer(packet, packet.size)
        elif result.action == ACTION_LOOPBACK:
            self.loopback.send(packet)
        else:
            self.macs[result.egress_port].transmit(packet)

    def _loopback_done(self, packet: Packet) -> None:
        """Loopback port delivered the packet to the ingress fabric of
        the destination RPU."""
        self.fabric_in.send_to_rpu(packet, input_class="loopback")

    def _host_received(self, packet: Packet) -> None:
        if self.track_live_packets:
            self._live_packets.pop(packet.packet_id, None)
        self.counters.add("to_host")
        self.host_meter.record_packet(packet.size)
        self._record_host(packet)

    def _record_host(self, packet: Packet) -> None:
        self.host_rx.append(packet)

    # -- replay cache (repro.replay) ----------------------------------------------------

    def attach_replay_cache(self, cache) -> None:
        """Give every RPU the same behavioural replay cache (records are
        keyed by rpu index, so sharing one cache is safe and lets warm
        state persist when the engine reuses it across runs)."""
        for rpu in self.rpus:
            rpu.replay_cache = cache

    def invalidate_replay_caches(self, reason: str = "invalidate") -> None:
        """Flush all attached replay caches (fault injectors call this
        when they mutate state the cache keys cannot see)."""
        seen = set()
        for rpu in self.rpus:
            cache = rpu.replay_cache
            if cache is not None and id(cache) not in seen:
                seen.add(id(cache))
                cache.invalidate(reason)

    def replay_stats(self):
        """The :class:`~repro.replay.ReplayStats` of the attached cache,
        or None when no RPU has one."""
        for rpu in self.rpus:
            if rpu.replay_cache is not None:
                return rpu.replay_cache.stats
        return None

    # -- fluid fast-forward (repro.fluid) -----------------------------------------------

    def shift_live_packets(self, delta: float) -> int:
        """Translate every in-flight packet's absolute timestamps by
        ``delta`` (a clock warp moved the simulation's epoch).  Packets
        that were dropped at the MAC level (their drop path does not
        come back through the system callbacks) are pruned lazily here.
        Returns the number of live packets shifted."""
        dead = [
            pid for pid, packet in self._live_packets.items() if packet.dropped
        ]
        for pid in dead:
            del self._live_packets[pid]
        for packet in self._live_packets.values():
            packet.born_at += delta
            if packet.timestamps:
                for key in packet.timestamps:
                    if key != "egress_rpu":  # an RPU index, not a time
                        packet.timestamps[key] += delta
        return len(self._live_packets)

    # -- running ----------------------------------------------------------------------

    def run_cycles(self, cycles: float) -> None:
        self.sim.run(until=self.sim.now + cycles)

    def run_us(self, microseconds: float) -> None:
        self.run_cycles(self.config.clock.ns_to_cycles(microseconds * 1e3))

    def drain(self, max_cycles: float = 10_000_000) -> None:
        """Run until no events remain (all offered packets settled)."""
        self.sim.run(until=self.sim.now + max_cycles)

    # -- results -----------------------------------------------------------------------

    def total_rx_drops(self) -> int:
        return sum(mac.counters.value("rx_drops") for mac in self.macs)

    def achieved_gbps(self, elapsed_cycles: float) -> float:
        seconds = self.config.clock.cycles_to_seconds(elapsed_cycles)
        return sum(meter.gbps(seconds) for meter in self.tx_meters)

    def achieved_mpps(self, elapsed_cycles: float) -> float:
        seconds = self.config.clock.cycles_to_seconds(elapsed_cycles)
        return sum(meter.mpps(seconds) for meter in self.tx_meters)

    def processed_gbps(self, elapsed_cycles: float) -> float:
        """Throughput including host-punted traffic (the IPS "RX bytes"
        view of §7.1.3: matched packets go to the host, safe out a port)."""
        seconds = self.config.clock.cycles_to_seconds(elapsed_cycles)
        return self.achieved_gbps(elapsed_cycles) + self.host_meter.gbps(seconds)

    def processed_mpps(self, elapsed_cycles: float) -> float:
        seconds = self.config.clock.cycles_to_seconds(elapsed_cycles)
        return self.achieved_mpps(elapsed_cycles) + self.host_meter.mpps(seconds)

    def absorbed_gbps(self, elapsed_cycles: float) -> float:
        """Rate of traffic accepted into the MAC RX FIFOs — the host
        utility's "RX bytes" reading for drop-type middleboxes like the
        firewall, where dropped attack packets still count as served."""
        seconds = self.config.clock.cycles_to_seconds(elapsed_cycles)
        if seconds <= 0:
            return 0.0
        total_bytes = sum(mac.counters.value("rx_bytes") for mac in self.macs)
        return total_bytes * 8 / seconds / 1e9

    def rpu_packet_counts(self) -> List[int]:
        """Per-RPU processed-packet counters (host-visible, §4.3)."""
        return [rpu.counters.value("packets") for rpu in self.rpus]
