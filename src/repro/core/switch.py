"""Packet distribution subsystem (§4.3).

Two stages of unidirectional switches carry packets between ports and
RPUs: full-rate 512-bit cluster switches, then 128-bit (32 Gbps) links
into each RPU.  Separate instances exist for the incoming and outgoing
directions, so they never block each other.

:class:`PortIngress` models the per-port front end: it pulls frames
from the MAC RX FIFO, spends the (calibrated) per-packet cycles that
cap each port at 125 MPPS, asks the LB for a destination, and launches
the frame into the destination cluster's ingress switch.  When no slot
is available the head frame waits — head-of-line blocking at the port,
which is what fills the MAC FIFO under overload.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..packet.packet import Packet
from ..sim.kernel import Simulator
from ..sim.resources import PriorityArbiter, RoundRobinArbiter, SerialLink
from ..sim.stats import CounterSet
from .config import RosebudConfig
from .lb import LoadBalancer
from .mac import MacPort


class PortIngress:
    """Per-port ingress processing + LB assignment."""

    def __init__(
        self,
        sim: Simulator,
        config: RosebudConfig,
        port: MacPort,
        lb: LoadBalancer,
        dispatch: Callable[[Packet], None],
    ) -> None:
        self.sim = sim
        self.config = config
        self.port = port
        self.lb = lb
        self.dispatch = dispatch
        self.counters = CounterSet(["assigned", "wait_for_slot", "oversize_drops"])
        self._current: Optional[Packet] = None
        self._busy = False
        self._waiting_for_slot = False

    def kick(self) -> None:
        """MAC signalled a frame is ready (or a slot freed)."""
        if self._busy:
            return
        if self._current is None:
            self._current = self.port.rx_pop()
            if self._current is None:
                return
        self._busy = True
        delay = self.config.port_ingress_cycles
        self.sim.schedule(delay, self._try_assign, name="port_ingress")

    def _try_assign(self) -> None:
        packet = self._current
        assert packet is not None
        # a frame must fit in one packet slot (minus the DMA offset);
        # anything bigger cannot be stored and is dropped here
        if packet.size > self.config.slot_bytes - 16:
            self.counters.add("oversize_drops")
            packet.drop("frame exceeds packet slot")
            self._current = None
            self._busy = False
            self.kick()
            return
        rpu = self.lb.assign(packet)
        if rpu is None:
            # head-of-line block until a slot frees
            self._busy = False
            self._waiting_for_slot = True
            self.counters.add("wait_for_slot")
            return
        self._waiting_for_slot = False
        self.counters.add("assigned")
        packet.stamp("lb_assigned", self.sim.now)
        self._current = None
        self._busy = False
        self.dispatch(packet)
        self.kick()

    def slot_freed(self) -> None:
        """Retry a head-of-line blocked frame."""
        if self._waiting_for_slot and not self._busy:
            self._busy = True
            # retry costs a cycle of re-arbitration
            self.sim.schedule(1, self._try_assign, name="port_ingress_retry")


class ClusterSwitch:
    """One direction of one cluster's 512-bit switch.

    The real switch keeps a FIFO per input interface ("non-blocking
    forwarding: each FIFO provides bit-width conversion without
    blocking the other incoming interfaces", §4.3) and arbitrates only
    when two inputs target the same output.  This model keeps per-
    input-class queues and a pluggable arbiter — round robin by
    default, replaceable with fixed priority "if desired" (§4.3), which
    ``config.cluster_arbitration`` selects.

    Service time is the beat count of the frame (plus internal header)
    over the 512-bit bus plus the arbitration overhead; delivery is
    cut-through while the link stays occupied for the full beat count.
    """

    #: input classes, in priority order for the priority arbiter
    INPUT_CLASSES = ("port", "host", "loopback")

    def __init__(
        self,
        sim: Simulator,
        config: RosebudConfig,
        name: str,
        on_done: Callable[[Packet], None],
    ) -> None:
        self.sim = sim
        self.config = config
        self.name = name
        self.counters = CounterSet(["frames", "bytes"])
        self._on_done = on_done
        self._queues = {cls: [] for cls in self.INPUT_CLASSES}
        self._busy = False
        if config.cluster_arbitration == "rr":
            self._arbiter = RoundRobinArbiter(len(self.INPUT_CLASSES))
        elif config.cluster_arbitration == "priority":
            self._arbiter = PriorityArbiter(len(self.INPUT_CLASSES))
        else:
            raise ValueError(
                f"unknown cluster arbitration {config.cluster_arbitration!r}"
            )

    def send(self, packet: Packet, input_class: str = "port") -> None:
        if input_class not in self._queues:
            raise ValueError(f"unknown input class {input_class!r}")
        self._queues[input_class].append(packet)
        if not self._busy:
            self._grant()

    def _grant(self) -> None:
        ready = [bool(self._queues[cls]) for cls in self.INPUT_CLASSES]
        winner = self._arbiter.select(ready)
        if winner is None:
            self._busy = False
            return
        packet = self._queues[self.INPUT_CLASSES[winner]].pop(0)
        self._busy = True
        service = float(self.config.cluster_service_cycles(packet.size))
        cut_through = min(service, float(self.config.cluster_cut_through_cycles))
        self.sim.schedule(
            cut_through, lambda: self._deliver(packet), name=self.name
        )
        self.sim.schedule(service, self._grant, name=self.name)

    def _deliver(self, packet: Packet) -> None:
        self.counters.add("frames")
        self.counters.add("bytes", packet.size)
        self._on_done(packet)


class RpuLink:
    """One direction of one RPU's 128-bit (32 Gbps) link."""

    def __init__(
        self,
        sim: Simulator,
        config: RosebudConfig,
        name: str,
        on_done: Callable[[Packet], None],
    ) -> None:
        self.config = config

        def service(packet: Packet, nbytes: int) -> float:
            return float(config.rpu_link_service_cycles(packet.size))

        self.link = SerialLink(sim, name, service, on_done)

    def send(self, packet: Packet) -> None:
        self.link.offer(packet, packet.size)


class DistributionFabric:
    """All switches for one direction (ingress or egress).

    Ingress: cluster switch -> RPU link -> deliver(packet, rpu).
    Egress: RPU link -> cluster switch -> deliver(packet).
    The two directions instantiate this class separately with the
    stage order expressed by the wiring below.
    """

    def __init__(
        self,
        sim: Simulator,
        config: RosebudConfig,
        direction: str,
        deliver: Callable[[Packet], None],
        on_rpu_out: Optional[Callable[[Packet, int], None]] = None,
    ) -> None:
        if direction not in ("in", "out"):
            raise ValueError("direction must be 'in' or 'out'")
        self.sim = sim
        self.config = config
        self.direction = direction
        self.deliver = deliver
        self.on_rpu_out = on_rpu_out

        if direction == "in":
            # cluster switch feeds per-RPU links
            self.rpu_links = [
                RpuLink(sim, config, f"rpu{i}.in", self._rpu_in_done)
                for i in range(config.n_rpus)
            ]
            self.cluster_switches = [
                ClusterSwitch(sim, config, f"cluster{c}.in", self._cluster_in_done)
                for c in range(config.n_clusters)
            ]
        else:
            # per-RPU links feed cluster switches
            self.cluster_switches = [
                ClusterSwitch(sim, config, f"cluster{c}.out", self._cluster_out_done)
                for c in range(config.n_clusters)
            ]
            self.rpu_links = [
                RpuLink(sim, config, f"rpu{i}.out", self._rpu_out_done)
                for i in range(config.n_rpus)
            ]

    # -- ingress direction -------------------------------------------------

    def send_to_rpu(self, packet: Packet, input_class: str = "port") -> None:
        assert self.direction == "in" and packet.dest_rpu is not None
        cluster = self.config.rpu_cluster(packet.dest_rpu)
        self.cluster_switches[cluster].send(packet, input_class)

    def _cluster_in_done(self, packet: Packet) -> None:
        assert packet.dest_rpu is not None
        self.sim.schedule(
            self.config.dist_in_fixed_cycles,
            lambda: self.rpu_links[packet.dest_rpu].send(packet),
            name="dist_in_fixed",
        )

    def _rpu_in_done(self, packet: Packet) -> None:
        self.sim.schedule(
            self.config.rpu_in_fixed_cycles,
            lambda: self.deliver(packet),
            name="rpu_in_fixed",
        )

    # -- egress direction ----------------------------------------------------

    def send_from_rpu(self, packet: Packet, rpu_index: int) -> None:
        assert self.direction == "out"
        packet.timestamps["egress_rpu"] = rpu_index
        self.rpu_links[rpu_index].send(packet)

    def _rpu_out_done(self, packet: Packet) -> None:
        rpu_index = packet.timestamps["egress_rpu"]
        if self.on_rpu_out is not None:
            self.on_rpu_out(packet, rpu_index)
        cluster = self.config.rpu_cluster(rpu_index)
        self.sim.schedule(
            self.config.rpu_out_fixed_cycles,
            lambda: self.cluster_switches[cluster].send(packet),
            name="rpu_out_fixed",
        )

    def _cluster_out_done(self, packet: Packet) -> None:
        self.sim.schedule(
            self.config.dist_out_fixed_cycles,
            lambda: self.deliver(packet),
            name="dist_out_fixed",
        )
