"""The Rosebud framework core: config, LB, switches, RPUs, host API."""

from .config import CONFIG_16_RPU, CONFIG_8_RPU, ConfigError, RosebudConfig
from .descriptors import Descriptor, SlotError, SlotTable
from .firmware_api import (
    ACTION_DROP,
    ACTION_FORWARD,
    ACTION_HOST,
    ACTION_LOOPBACK,
    FirmwareModel,
    FirmwareResult,
)
from .funcsim import FunctionalRpu, SentPacket
from .host import HostInterface, ReconfigRecord, WatchdogEvent
from .lb import (
    HashLB,
    LBPolicy,
    LeastLoadedLB,
    LoadBalancer,
    PowerOfTwoChoicesLB,
    RoundRobinLB,
    flow_hash,
)
from .mac import MacPort
from .memory import (
    DualPortRam,
    MemoryAccessError,
    RpuMemorySubsystem,
)
from .messaging import BroadcastMessage, BroadcastSystem, LoopbackPort, MessageChannel
from .pcie import DmaError, HostDmaEngine, PCIE_GBPS, VirtualEthernet
from .profiler import Sample, StatsSampler
from .rpu import RpuModel
from .switch import ClusterSwitch, DistributionFabric, PortIngress, RpuLink
from .system import RosebudSystem
from .tracing import PacketTrace, PacketTracer, TraceEvent

__all__ = [
    "CONFIG_16_RPU",
    "CONFIG_8_RPU",
    "ConfigError",
    "RosebudConfig",
    "Descriptor",
    "SlotError",
    "SlotTable",
    "ACTION_DROP",
    "ACTION_FORWARD",
    "ACTION_HOST",
    "ACTION_LOOPBACK",
    "FirmwareModel",
    "FirmwareResult",
    "FunctionalRpu",
    "SentPacket",
    "HostInterface",
    "ReconfigRecord",
    "WatchdogEvent",
    "HashLB",
    "LBPolicy",
    "LeastLoadedLB",
    "PowerOfTwoChoicesLB",
    "LoadBalancer",
    "RoundRobinLB",
    "flow_hash",
    "MacPort",
    "DualPortRam",
    "MemoryAccessError",
    "RpuMemorySubsystem",
    "DmaError",
    "HostDmaEngine",
    "PCIE_GBPS",
    "VirtualEthernet",
    "BroadcastMessage",
    "MessageChannel",
    "Sample",
    "StatsSampler",
    "BroadcastSystem",
    "LoopbackPort",
    "RpuModel",
    "ClusterSwitch",
    "DistributionFabric",
    "PortIngress",
    "RpuLink",
    "RosebudSystem",
    "PacketTrace",
    "PacketTracer",
    "TraceEvent",
]
