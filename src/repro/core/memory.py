"""The RPU memory subsystem (§4.1, Figure 3).

Each RPU splits its memory space three ways:

* small, single-cycle **core-local** BRAMs for instructions and data
  (packet headers are DMA-copied here for low-latency parsing);
* a large, higher-latency **packet memory** in URAM, shared between the
  core and the accelerators, also usable as scratch pad;
* **accelerator-local** memory for lookup tables, loaded by the
  distribution subsystem at boot (the runtime URAM-initialization path).

FPGA block RAMs are dual-ported, and the paper's port assignment is the
interesting design decision this module models:

==============  =====================  =================================
memory          port A                 port B
==============  =====================  =================================
core-local      core (dedicated)       DMA (header copy, messaging)
packet memory   core+DMA (shared,      accelerators (exclusive)
                core has priority)
accel-local     accelerator            accelerator (DMA only at boot /
                                       readback, when accel is idle)
==============  =====================  =================================

:class:`RpuMemorySubsystem` provides functional storage plus cycle
accounting for port contention, so tests can verify both the data paths
and the arbitration policy (e.g. the core stalls the DMA on the shared
packet-memory port, never the other way around).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .config import RosebudConfig

#: Access latencies in cycles (§4.1: BRAM single-cycle; URAM pipelined,
#: higher latency hidden for streaming but paid on random access).
BRAM_LATENCY = 1
URAM_LATENCY = 3


class MemoryAccessError(RuntimeError):
    """Raised on out-of-range accesses or port-policy violations."""


@dataclass
class PortStats:
    """Per-port access/stall accounting."""

    accesses: int = 0
    stall_cycles: int = 0
    bytes_moved: int = 0


class DualPortRam:
    """A dual-ported RAM block with per-cycle port arbitration.

    ``access(port, cycle, nbytes)`` registers an access at a fabric
    cycle; two masters colliding on the same port in the same cycle
    stall the lower-priority one.  Data is byte-addressable storage.
    """

    def __init__(self, size: int, latency: int, name: str) -> None:
        self.size = size
        self.latency = latency
        self.name = name
        self.data = bytearray(size)
        self._port_busy_until: Dict[str, int] = {}
        self.port_stats: Dict[str, PortStats] = {}

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise MemoryAccessError(
                f"{self.name}: access [{addr:#x}, +{nbytes}) out of range"
            )

    def read(self, addr: int, nbytes: int) -> bytes:
        self._check(addr, nbytes)
        return bytes(self.data[addr : addr + nbytes])

    def write(self, addr: int, payload: bytes) -> None:
        self._check(addr, len(payload))
        self.data[addr : addr + len(payload)] = payload

    def access(self, port: str, cycle: int, nbytes: int = 4) -> int:
        """Register a port access starting at ``cycle``; returns the
        cycle at which data is available (including any stall waiting
        for the port and the RAM latency)."""
        stats = self.port_stats.setdefault(port, PortStats())
        busy_until = self._port_busy_until.get(port, 0)
        start = max(cycle, busy_until)
        stats.stall_cycles += start - cycle
        stats.accesses += 1
        stats.bytes_moved += nbytes
        # one beat per cycle on the port
        beats = max(1, -(-nbytes // 8))
        self._port_busy_until[port] = start + beats
        return start + self.latency


class RpuMemorySubsystem:
    """All three memories of one RPU with the paper's port policy."""

    def __init__(self, config: Optional[RosebudConfig] = None) -> None:
        self.config = config or RosebudConfig()
        cfg = self.config
        self.imem = DualPortRam(cfg.imem_bytes, BRAM_LATENCY, "imem")
        self.dmem = DualPortRam(cfg.dmem_bytes, BRAM_LATENCY, "dmem")
        self.pmem = DualPortRam(cfg.packet_mem_bytes, URAM_LATENCY, "pmem")
        self.accmem = DualPortRam(cfg.accel_mem_bytes, URAM_LATENCY, "accmem")
        self.accelerators_active = False

    # -- packet arrival path (DMA engine, §4.1) ------------------------------------

    def dma_packet_in(self, slot: int, payload: bytes, cycle: int = 0) -> int:
        """DMA a packet into its slot and copy the header to core-local
        memory; returns the completion cycle."""
        cfg = self.config
        if not 0 <= slot < cfg.slots_per_rpu:
            raise MemoryAccessError(f"slot {slot} out of range")
        if len(payload) > cfg.slot_bytes:
            raise MemoryAccessError("packet exceeds slot size")
        slot_addr = slot * cfg.slot_bytes
        self.pmem.write(slot_addr, payload)
        done = self.pmem.access("dma_shared", cycle, len(payload))
        # header copy to the dedicated DMA port of core-local memory
        header = payload[: cfg.header_slot_bytes]
        hdr_addr = cfg.dmem_bytes // 2 + slot * cfg.header_slot_bytes
        if hdr_addr + len(header) <= cfg.dmem_bytes:
            self.dmem.write(hdr_addr, header)
            done = max(done, self.dmem.access("dma", cycle, len(header)))
        return done

    def header_slot(self, slot: int) -> bytes:
        cfg = self.config
        hdr_addr = cfg.dmem_bytes // 2 + slot * cfg.header_slot_bytes
        return self.dmem.read(hdr_addr, cfg.header_slot_bytes)

    def packet_slot(self, slot: int, length: int) -> bytes:
        return self.pmem.read(slot * self.config.slot_bytes, length)

    # -- core accesses -----------------------------------------------------------------

    def core_read_dmem(self, addr: int, cycle: int = 0, nbytes: int = 4) -> int:
        """Core-local data access: dedicated port, single cycle."""
        self.dmem.read(addr, nbytes)
        return self.dmem.access("core", cycle, nbytes)

    def core_access_pmem(self, addr: int, cycle: int = 0, nbytes: int = 4) -> int:
        """Core access to packet memory: shared port, core priority —
        the core never stalls behind the DMA (§4.1)."""
        self.pmem.read(addr, nbytes)
        # core preempts: we account it on a virtual priority lane
        stats = self.pmem.port_stats.setdefault("core_shared", PortStats())
        stats.accesses += 1
        stats.bytes_moved += nbytes
        return cycle + self.pmem.latency

    # -- accelerator accesses ------------------------------------------------------------

    def accel_stream_pmem(self, addr: int, length: int, cycle: int = 0) -> int:
        """Accelerator streaming read: exclusive port, pipelined — the
        URAM latency is hidden after the first word, 16 B per cycle."""
        self.pmem.read(addr, length)
        stats = self.pmem.port_stats.setdefault("accel", PortStats())
        stats.accesses += 1
        stats.bytes_moved += length
        beats = max(1, -(-length // 16))
        return cycle + self.pmem.latency + beats

    def accel_read_table(self, addr: int, cycle: int = 0, nbytes: int = 4) -> int:
        self.accmem.read(addr, nbytes)
        return self.accmem.access("accel", cycle, nbytes)

    # -- boot-time table loading (the URAM trick, §7.1.2) --------------------------------

    def load_accel_table(self, addr: int, table: bytes, cycle: int = 0) -> int:
        """DMA into accelerator memory; only legal while the
        accelerators are idle (boot or readback)."""
        if self.accelerators_active:
            raise MemoryAccessError(
                "accelerator memory ports are accel-exclusive at runtime; "
                "pause the accelerators before loading tables"
            )
        self.accmem.write(addr, table)
        return self.accmem.access("dma_boot", cycle, len(table))

    def readback_accel_table(self, addr: int, length: int) -> bytes:
        if self.accelerators_active:
            raise MemoryAccessError("readback requires idle accelerators")
        return self.accmem.read(addr, length)

    def set_accelerators_active(self, active: bool) -> None:
        self.accelerators_active = active

    # -- reporting ------------------------------------------------------------------------

    def contention_report(self) -> Dict[str, Dict[str, int]]:
        """Stall/access accounting per memory and port."""
        out: Dict[str, Dict[str, int]] = {}
        for ram in (self.imem, self.dmem, self.pmem, self.accmem):
            for port, stats in ram.port_stats.items():
                out[f"{ram.name}.{port}"] = {
                    "accesses": stats.accesses,
                    "stall_cycles": stats.stall_cycles,
                    "bytes": stats.bytes_moved,
                }
        return out
