"""Host-side control (§3.2, §4.1, Appendix A.6-A.8).

The host library talks to Rosebud over PCIe: it reads status counters,
pauses and pokes RPUs, dumps RPU memory, drives the LB's register
channel, and performs runtime partial reconfiguration of an RPU with
the drain protocol:

1. tell the LB to stop sending packets to the RPU,
2. wait for the packets inside the RPU to drain,
3. load the new bitfile and boot the RISC-V (756 ms measured average),
4. tell the LB to resume.

Because other RPUs keep absorbing traffic throughout, the update is
"no-pause" from the network's point of view — the reconfiguration
benchmark asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.firmware_api import FirmwareModel
from .system import RosebudSystem


@dataclass
class ReconfigRecord:
    """Timing of one partial-reconfiguration operation."""

    rpu: int
    requested_at: float
    drained_at: float = 0.0
    booted_at: float = 0.0

    def drain_cycles(self) -> float:
        return self.drained_at - self.requested_at

    def total_cycles(self) -> float:
        return self.booted_at - self.requested_at


@dataclass
class WatchdogEvent:
    """One automatic hang recovery: detect -> evict -> reconfigure."""

    rpu: int
    detected_at: float
    packets_lost: int
    recovered_at: float = 0.0

    @property
    def recovered(self) -> bool:
        return self.recovered_at > 0.0

    def recovery_cycles(self) -> float:
        """MTTR in cycles, from detection to the RPU serving again."""
        return self.recovered_at - self.detected_at


class HostInterface:
    """The host's view of a running Rosebud system."""

    def __init__(self, system: RosebudSystem, pr_load_ms: Optional[float] = None) -> None:
        self.system = system
        self.config = system.config
        #: PR bitfile load + boot time; defaults to the paper's 756 ms
        #: but benchmarks can scale it to keep simulations short.
        self.pr_load_ms = pr_load_ms if pr_load_ms is not None else self.config.pr_load_ms
        self.reconfig_log: List[ReconfigRecord] = []
        self.watchdog_log: List[WatchdogEvent] = []
        self._watchdog_event = None
        self._recovering: set = set()

    # -- status counters (§4.3) ----------------------------------------------------

    def read_interface_counters(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for idx, mac in enumerate(self.system.macs):
            out[f"port{idx}"] = mac.counters.snapshot()
        return out

    def read_rpu_counters(self) -> List[Dict[str, int]]:
        return [rpu.counters.snapshot() for rpu in self.system.rpus]

    # -- LB register channel -----------------------------------------------------------

    def lb_read(self, addr: int) -> int:
        return self.system.lb.host_read(addr)

    def lb_write(self, addr: int, value: int) -> None:
        self.system.lb.host_write(addr, value)

    def set_receive_mask(self, mask: int) -> None:
        """The artifact's RECV= mask: which RPUs take incoming traffic."""
        self.lb_write(self.system.lb.REG_ENABLE_MASK, mask)

    # -- RPU debugging (§3.4) -------------------------------------------------------------

    def poke_rpu(self, rpu: int) -> Dict[str, int]:
        """Send a poke interrupt and read the RPU's state: it stops
        taking new packets and reports its queues."""
        model = self.system.rpus[rpu]
        model.pause()
        state = {
            "in_flight": model.in_flight,
            "packets_processed": model.counters.value("packets"),
            "paused": int(model.paused),
        }
        model.resume()
        return state

    def read_status_registers(self) -> List[int]:
        """The breakpoint-like mechanism of §3.4: firmware sets status
        words, the host watches them change."""
        return [rpu.status_register for rpu in self.system.rpus]

    def check_watchdogs(self, threshold_cycles: float = 100_000) -> List[int]:
        """RPUs holding packets without forward progress — the hang
        condition a RISC-V timer interrupt reports (§3.4)."""
        return [
            rpu.index
            for rpu in self.system.rpus
            if rpu.stalled(threshold_cycles)
        ]

    def evict_rpu(self, rpu: int) -> int:
        """Force-evict a wedged RPU (Appendix A.8): stop LB traffic to
        it, abandon its packets, and reclaim the slot credits.  Returns
        how many packets were abandoned.  Follow with
        :meth:`reconfigure_rpu` to bring it back.

        Evicting the *last* active RPU is allowed but leaves the LB with
        no candidates: ingress traffic queues at the ports (head-of-line
        in the MAC FIFOs) until an RPU is reconfigured back in.
        """
        self.system.lb.disable_rpu(rpu)
        abandoned = self.system.rpus[rpu].evict()
        self.system.lb.slots.flush(rpu)
        # abandoned slots will never come back through the fabric; let
        # head-of-line blocked ports retry against the flushed table
        for ingress in self.system.port_ingress:
            ingress.slot_freed()
        return len(abandoned)

    # -- hang watchdog (Appendix A.8 automated) ----------------------------------------

    def start_watchdog(
        self,
        firmware_factory: Callable[[], FirmwareModel],
        threshold_cycles: float = 50_000.0,
        poll_cycles: float = 5_000.0,
    ) -> None:
        """Poll :meth:`check_watchdogs` on the simulation clock and
        auto-recover stalled RPUs: evict, then reconfigure with a fresh
        ``firmware_factory()`` image.  Every recovery is logged as a
        :class:`WatchdogEvent` (detection time, packets abandoned,
        recovery completion)."""
        if self._watchdog_event is not None:
            raise RuntimeError("watchdog already running")
        sim = self.system.sim

        def poll() -> None:
            for rpu in self.check_watchdogs(threshold_cycles):
                if rpu in self._recovering:
                    continue
                self._recovering.add(rpu)
                lost = self.evict_rpu(rpu)
                event = WatchdogEvent(
                    rpu=rpu, detected_at=sim.now, packets_lost=lost
                )
                self.watchdog_log.append(event)

                def booted(record: ReconfigRecord, event: WatchdogEvent = event) -> None:
                    event.recovered_at = record.booted_at
                    self._recovering.discard(record.rpu)

                self.reconfigure_rpu(rpu, firmware_factory(), on_complete=booted)
            self._watchdog_event = sim.schedule(poll_cycles, poll, name="watchdog")

        self._watchdog_event = sim.schedule(poll_cycles, poll, name="watchdog")

    def stop_watchdog(self) -> None:
        if self._watchdog_event is not None:
            self._watchdog_event.cancel()
            self._watchdog_event = None

    # -- host DMA (firmware / table load & readback, Appendix A.6-A.7) -----------------

    def dma_write(self, target, payload: bytes, on_done=None) -> None:
        self.system.host_dma.write(target, payload, on_done)

    def dma_read(self, source, on_done) -> None:
        self.system.host_dma.read(source, on_done)

    def inject_packet(self, packet) -> None:
        """Send a frame through the virtual Ethernet interface (the
        artifact's trace-injection path)."""
        self.system.virtual_ethernet.send(packet)

    # -- partial reconfiguration ------------------------------------------------------------

    def reconfigure_rpu(
        self,
        rpu: int,
        new_firmware: FirmwareModel,
        on_complete: Optional[Callable[[ReconfigRecord], None]] = None,
    ) -> ReconfigRecord:
        """Run the drain -> load -> boot -> resume protocol.

        Returns the (eventually filled) timing record; completion is
        asynchronous in simulation time.
        """
        sim = self.system.sim
        record = ReconfigRecord(rpu=rpu, requested_at=sim.now)
        self.reconfig_log.append(record)
        self.system.lb.disable_rpu(rpu)

        def poll_drained() -> None:
            model = self.system.rpus[rpu]
            if model.in_flight > 0 or self.system.lb.slots.occupancy(rpu) > 0:
                sim.schedule(32, poll_drained, name="pr_drain_poll")
                return
            record.drained_at = sim.now
            # flush any stale slot credits, then load + boot
            self.system.lb.slots.flush(rpu)
            load_cycles = self.config.clock.ns_to_cycles(self.pr_load_ms * 1e6)
            sim.schedule(load_cycles, finish_load, name="pr_load")

        def finish_load() -> None:
            model = self.system.rpus[rpu]
            model.pause()
            model.reboot(new_firmware)
            self.system.lb.enable_rpu(rpu)
            for ingress in self.system.port_ingress:
                ingress.slot_freed()
            record.booted_at = sim.now
            if on_complete is not None:
                on_complete(record)

        sim.schedule(0, poll_drained, name="pr_start")
        return record
