"""Rosebud system configuration.

Defaults come from the paper's implementation on the VCU1525 (§5): a
250 MHz fabric, two 100 G ports, 16 (or 8) RPUs grouped in clusters of
four, 512-bit cluster switches (128 Gbps), 128-bit per-RPU links
(32 Gbps), and 16 KB packet slots.

A handful of constants are *calibrated* rather than published; each one
says which measured number in the paper pins it down:

* ``port_ingress_cycles = 2`` — the "125 MPPS per incoming port" limit
  of the distribution subsystem (§6.1) at 250 MHz.
* ``cluster_arb_cycles = 2`` — per-packet arbitration overhead on the
  512-bit switches; reproduces both the 16-RPU 250 MPPS @64 B point and
  the 8-RPU "line rate only ≥1024 B at 200 G" knee (§6.1).
* ``loopback_cycles = 3`` — the destination-RPU header attach cost on
  the loopback port; gives 83 MPPS ≈ the 60 %/61 % @64/65 B loopback
  results (§6.3).
* ``mac_rx_fifo_packets = 4100`` — drained at 125 MPPS this adds the
  32.8 µs the paper measures for saturated 64 B traffic (§6.2).
* fixed pipeline latencies summing (with the 16-cycle forwarder) to
  ~191 cycles = the 0.765 µs intercept of Eq. 1 (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..sim.clock import Clock, ROSEBUD_CLOCK


class ConfigError(ValueError):
    """Raised for inconsistent configurations."""


@dataclass(frozen=True)
class RosebudConfig:
    """Static parameters of one Rosebud instance."""

    n_rpus: int = 16
    clock: Clock = ROSEBUD_CLOCK
    n_ports: int = 2
    port_gbps: float = 100.0

    # switching fabric (§4.3, §5)
    rpus_per_cluster: int = 4
    cluster_bus_bits: int = 512
    rpu_bus_bits: int = 128
    switch_header_bytes: int = 8
    cluster_arb_cycles: int = 2
    rpu_ingress_overhead_cycles: int = 4
    port_ingress_cycles: int = 2
    loopback_cycles: int = 3
    loopback_gbps: float = 100.0
    #: arbitration among switch inputs: "rr" (default) or "priority"
    #: (ports over host over loopback), the §4.3 alternative
    cluster_arbitration: str = "rr"

    # memories and slots (§4.1, §7.1.2)
    slots_per_rpu: int = 16
    slot_bytes: int = 16 * 1024
    packet_mem_bytes: int = 1024 * 1024
    imem_bytes: int = 32 * 1024
    dmem_bytes: int = 32 * 1024
    accel_mem_bytes: int = 128 * 1024
    header_slot_bytes: int = 128
    #: per-RPU stack allocation at the top of dmem; the static verifier
    #: bounds worst-case stack depth against this
    stack_bytes: int = 4096

    # Ethernet frame envelope the verifier may assume for packet-DMA
    # accesses (64 B minimum frame less the 4 B FCS, 1522 B 802.1Q max)
    min_frame_bytes: int = 60
    max_frame_bytes: int = 1522

    # MAC FIFOs (calibrated: +32.8 us at saturated 64 B, §6.2)
    mac_rx_fifo_packets: int = 4100

    # broadcast messaging (§6.3)
    bcast_fifo_depth: int = 18

    # fixed pipeline latencies, in cycles; together with the serialization
    # terms, cut-through delays, and the 16-cycle forwarder these hit the
    # 0.765 us intercept of Eq. 1 at the smallest packet size
    mac_rx_fixed_cycles: int = 25
    dist_in_fixed_cycles: int = 34
    rpu_in_fixed_cycles: int = 20
    rpu_out_fixed_cycles: int = 20
    dist_out_fixed_cycles: int = 27
    mac_tx_fixed_cycles: int = 20
    cluster_cut_through_cycles: int = 8

    # partial reconfiguration (§4.1: 756 ms measured over 320 loads)
    pr_load_ms: float = 756.0

    def __post_init__(self) -> None:
        if self.n_rpus < 1:
            raise ConfigError("need at least one RPU")
        if self.n_ports < 1:
            raise ConfigError("need at least one port")
        if self.slots_per_rpu < 1:
            raise ConfigError("need at least one slot per RPU")
        if self.slot_bytes * self.slots_per_rpu > self.packet_mem_bytes * 2:
            raise ConfigError("slots exceed packet memory (even with header region)")
        if self.cluster_bus_bits % 8 or self.rpu_bus_bits % 8:
            raise ConfigError("bus widths must be byte multiples")
        if not 0 < self.min_frame_bytes <= self.max_frame_bytes:
            raise ConfigError("need 0 < min_frame_bytes <= max_frame_bytes")
        if self.max_frame_bytes + 2 > self.slot_bytes:
            raise ConfigError("max frame (plus DMA offset) exceeds a packet slot")
        if not 0 < self.stack_bytes <= self.dmem_bytes:
            raise ConfigError("stack allocation must fit in dmem")

    @property
    def n_clusters(self) -> int:
        return max(1, self.n_rpus // self.rpus_per_cluster)

    @property
    def cluster_gbps(self) -> float:
        """Raw cluster-switch bandwidth (512 bit x 250 MHz = 128 Gbps)."""
        return self.cluster_bus_bits * self.clock.freq_hz / 1e9

    @property
    def rpu_link_gbps(self) -> float:
        """Raw per-RPU link bandwidth (128 bit x 250 MHz = 32 Gbps)."""
        return self.rpu_bus_bits * self.clock.freq_hz / 1e9

    @property
    def fixed_path_cycles(self) -> int:
        """Fixed (size-independent) datapath latency excluding firmware."""
        return (
            self.mac_rx_fixed_cycles
            + self.dist_in_fixed_cycles
            + self.rpu_in_fixed_cycles
            + self.rpu_out_fixed_cycles
            + self.dist_out_fixed_cycles
            + self.mac_tx_fixed_cycles
            + 2 * self.cluster_cut_through_cycles
        )

    def rpu_cluster(self, rpu_index: int) -> int:
        """Which cluster switch serves this RPU."""
        if not 0 <= rpu_index < self.n_rpus:
            raise ConfigError(f"RPU index {rpu_index} out of range")
        return rpu_index * self.n_clusters // self.n_rpus

    # -- serialization (experiment configs as artifacts) -----------------------

    def to_dict(self) -> dict:
        """JSON-safe dict of every parameter (clock as Hz)."""
        from dataclasses import fields

        out = {}
        for field_info in fields(self):
            value = getattr(self, field_info.name)
            if field_info.name == "clock":
                out["clock_hz"] = value.freq_hz
            else:
                out[field_info.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RosebudConfig":
        data = dict(data)
        clock_hz = data.pop("clock_hz", None)
        if clock_hz is not None:
            data["clock"] = Clock(clock_hz)
        return cls(**data)

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RosebudConfig":
        import json

        return cls.from_dict(json.loads(text))

    def cluster_members(self, cluster: int) -> Tuple[int, ...]:
        return tuple(
            i for i in range(self.n_rpus) if self.rpu_cluster(i) == cluster
        )

    def cluster_service_cycles(self, frame_bytes: int) -> int:
        """Cycles one packet occupies a cluster-switch link."""
        payload = frame_bytes + 4 + self.switch_header_bytes  # +FCS +internal hdr
        beats = -(-payload // (self.cluster_bus_bits // 8))
        return beats + self.cluster_arb_cycles

    def rpu_link_service_cycles(self, frame_bytes: int) -> int:
        """Cycles one packet occupies a per-RPU 128-bit link."""
        payload = frame_bytes + 4 + self.switch_header_bytes
        beats = -(-payload // (self.rpu_bus_bits // 8))
        return beats + self.rpu_ingress_overhead_cycles


#: The two configurations the paper implements (Figures 5 and 6).
CONFIG_16_RPU = RosebudConfig(n_rpus=16)
CONFIG_8_RPU = RosebudConfig(n_rpus=8, slots_per_rpu=32)
