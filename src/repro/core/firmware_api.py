"""The firmware-side interface of the RPU.

Two layers live here:

* :class:`FirmwareModel` — the behavioural interface the event-driven
  system simulator drives: for each packet the firmware returns what to
  do with it and how many core/accelerator cycles it consumed.  The
  concrete middlebox firmwares (forwarder, firewall, Pigasus variants)
  live in :mod:`repro.firmware`.
* :class:`FirmwareAction` constants — what a descriptor release means.

Cycle numbers for the shipped firmwares are calibrated against the
RV32 instruction-set simulator running the corresponding assembly
firmware (see ``repro/firmware/asm_sources.py`` and the funcsim tests),
the same way the paper cross-checks its measurements against cocotb
simulations (§7.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..packet.packet import Packet

ACTION_FORWARD = "forward"
ACTION_DROP = "drop"
ACTION_HOST = "host"
ACTION_LOOPBACK = "loopback"


@dataclass
class FirmwareResult:
    """Outcome of firmware processing one packet.

    ``sw_cycles`` is time the RISC-V core is busy with this packet
    (orchestration); ``accel_cycles`` is time the RPU's accelerator
    pipeline is busy.  The two stages overlap across packets — the core
    can orchestrate packet N+1 while the accelerator chews packet N —
    so steady-state RPU throughput is ``1/max(sw, accel)``.
    """

    action: str
    sw_cycles: float
    accel_cycles: float = 0.0
    egress_port: int = 0
    loopback_dest: Optional[int] = None
    appended_bytes: int = 0

    def __post_init__(self) -> None:
        if self.action not in (ACTION_FORWARD, ACTION_DROP, ACTION_HOST, ACTION_LOOPBACK):
            raise ValueError(f"unknown firmware action {self.action!r}")
        if self.action == ACTION_LOOPBACK and self.loopback_dest is None:
            raise ValueError("loopback action needs a destination RPU")


class FirmwareModel:
    """Behavioural firmware loaded into an RPU.

    Subclasses override :meth:`process`; ``on_boot`` runs when the RPU
    (re)boots, e.g. after a partial reconfiguration, and is where flow
    tables are cleared.
    """

    name = "firmware"

    def on_boot(self, rpu_index: int, config) -> None:
        """Called when the RPU boots; default is stateless."""

    def process(self, packet: Packet, rpu_index: int) -> FirmwareResult:
        raise NotImplementedError

    def clone(self) -> "FirmwareModel":
        """A fresh instance for another RPU (firmware state is per-RPU)."""
        return type(self)()

    # -- replay cache (repro.replay) --------------------------------------

    def replay_token(self) -> object:
        """Digest of the mutable state :meth:`process` decisions depend
        on, or ``None`` to opt out of replay caching.

        Returning a token is a promise: for a fixed ``(packet class,
        ingress port, rpu index, token)``, :meth:`process` returns an
        equivalent :class:`FirmwareResult` and mutates nothing beyond
        public integer counters on :meth:`replay_owners`.  Firmware with
        per-flow state (NAT, flow tables) must keep the default
        ``None`` — the cache then bypasses it entirely.
        """
        return None

    def replay_owners(self) -> list:
        """Objects whose public integer counters :meth:`process` may
        bump (diffed on a cache miss, re-applied on a hit)."""
        return [self]
