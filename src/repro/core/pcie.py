"""PCIe host connectivity (§4.3, §5).

The Corundum-based PCIe subsystem gives the host three capabilities:

* **host DMA** — read/write RPU memories (firmware load, table init,
  debugging readback) with Gen3 x16 bandwidth and microsecond-scale
  round-trip latency;
* a **virtual Ethernet interface** — the host can source and sink
  packets through the same distribution infrastructure as the physical
  ports (this is how the artifact's scripts inject attack traces);
* the control path used by :class:`repro.core.host.HostInterface`.

Host DRAM transfers are packetized with *DRAM tags* in place of the
LB's packet slots (§4.2).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..packet.packet import Packet
from ..sim.kernel import Simulator
from ..sim.resources import SerialLink
from ..sim.stats import CounterSet
from .config import RosebudConfig

#: Effective PCIe Gen3 x16 payload bandwidth (Gbps).
PCIE_GBPS = 100.0
#: One-way DMA latency over the PCIe bus (§4.3 argues this is the
#: microsecond-scale budget middleboxes already tolerate).
PCIE_LATENCY_US = 1.0
#: Number of outstanding DRAM tags.
DRAM_TAGS = 64


class DmaError(RuntimeError):
    """Raised on invalid DMA requests (no tags, bad target)."""


class HostDmaEngine:
    """Host-initiated reads/writes of RPU memory over PCIe.

    Completion is asynchronous: callbacks fire after the serialization
    and bus-latency delays.  Tags bound the outstanding operations the
    way the hardware's DRAM tags do.
    """

    def __init__(self, sim: Simulator, config: RosebudConfig) -> None:
        self.sim = sim
        self.config = config
        self.counters = CounterSet(["reads", "writes", "bytes", "tag_waits"])
        self._free_tags: Deque[int] = deque(range(DRAM_TAGS))
        period = config.clock.period_ns

        def service(item, nbytes: int) -> float:
            return nbytes * 8 / PCIE_GBPS / period

        self._link = SerialLink(sim, "pcie.dma", service, self._transfer_done)
        self._latency_cycles = config.clock.ns_to_cycles(PCIE_LATENCY_US * 1e3)

    @property
    def free_tags(self) -> int:
        return len(self._free_tags)

    def write(
        self,
        target: Callable[[bytes], None],
        payload: bytes,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """DMA ``payload`` toward an RPU memory (``target`` applies it)."""
        self._submit(("write", target, payload, on_done))

    def read(
        self,
        source: Callable[[], bytes],
        on_done: Callable[[bytes], None],
    ) -> None:
        """DMA a region of RPU memory back to the host."""
        self._submit(("read", source, None, on_done))

    def _submit(self, op) -> None:
        if not self._free_tags:
            # all tags outstanding: retry shortly (host driver behaviour)
            self.counters.add("tag_waits")
            self.sim.schedule(8, lambda: self._submit(op), name="dma_tag_wait")
            return
        tag = self._free_tags.popleft()
        kind, endpoint, payload, on_done = op
        nbytes = len(payload) if payload is not None else 4096
        self._link.offer((tag, kind, endpoint, payload, on_done), nbytes)

    def _transfer_done(self, op) -> None:
        tag, kind, endpoint, payload, on_done = op

        def complete() -> None:
            self._free_tags.append(tag)
            if kind == "write":
                endpoint(payload)
                self.counters.add("writes")
                self.counters.add("bytes", len(payload))
                if on_done is not None:
                    on_done()
            else:
                data = endpoint()
                self.counters.add("reads")
                self.counters.add("bytes", len(data))
                on_done(data)

        self.sim.schedule(self._latency_cycles, complete, name="pcie_latency")


class VirtualEthernet:
    """The Corundum vNIC: host-sourced packets entering the LB.

    Host traffic shares the PCIe link's bandwidth and then flows through
    the normal assignment path.  The paper notes host and loopback
    interfaces "typically carry much less traffic than network-facing
    interfaces, so they can share the same infrastructure" (§4.3).
    """

    def __init__(
        self,
        sim: Simulator,
        config: RosebudConfig,
        assign_and_dispatch: Callable[[Packet], bool],
    ) -> None:
        self.sim = sim
        self.config = config
        self.counters = CounterSet(["tx_frames", "tx_bytes", "deferred"])
        self._assign = assign_and_dispatch
        period = config.clock.period_ns

        def service(packet: Packet, nbytes: int) -> float:
            return nbytes * 8 / PCIE_GBPS / period

        self._link = SerialLink(sim, "pcie.veth", service, self._arrived)
        self._waiting: Deque[Packet] = deque()

    def send(self, packet: Packet) -> None:
        """Host hands a frame to the vNIC driver."""
        packet.born_at = self.sim.now
        self._link.offer(packet, packet.size)

    def _arrived(self, packet: Packet) -> None:
        self._waiting.append(packet)
        self._drain()

    def _drain(self) -> None:
        while self._waiting:
            packet = self._waiting[0]
            if not self._assign(packet):
                self.counters.add("deferred")
                self.sim.schedule(4, self._drain, name="veth_retry")
                return
            self._waiting.popleft()
            self.counters.add("tx_frames")
            self.counters.add("tx_bytes", packet.size)
