"""Per-packet pipeline tracing — the waveform replacement.

§2.3's complaint: hardware debugging means staring at simulation
waveforms.  The system simulator can do better: every packet already
carries stage timestamps, and :class:`PacketTracer` turns them into a
readable per-packet timeline (when it hit the MAC, when the LB labelled
it, when it landed in which RPU, when it left), plus where time was
spent.  The debugging example prints these timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..packet.packet import Packet
from .system import RosebudSystem

#: Stage label -> packet timestamp key, in pipeline order.
_STAGES: Tuple[Tuple[str, str], ...] = (
    ("mac_rx", "mac_rx_done"),
    ("lb_assign", "lb_assigned"),
    ("rpu_in", "rpu_deliver"),
    ("rpu_done", "rpu_done"),
)


@dataclass
class TraceEvent:
    """One stage crossing of one packet."""

    stage: str
    at_cycles: float
    delta_cycles: float


@dataclass
class PacketTrace:
    """The reconstructed timeline of one packet."""

    packet_id: int
    size: int
    dest_rpu: Optional[int]
    action: Optional[str]
    born_at: float
    completed_at: Optional[float]
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def total_cycles(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.born_at

    def format(self, clock_period_ns: float = 4.0) -> str:
        lines = [
            f"packet #{self.packet_id} ({self.size}B) -> "
            f"RPU {self.dest_rpu} -> {self.action or '?'}"
        ]
        for event in self.events:
            lines.append(
                f"  {event.stage:<10} @ {event.at_cycles * clock_period_ns:8.1f} ns"
                f"  (+{event.delta_cycles * clock_period_ns:6.1f} ns)"
            )
        if self.total_cycles is not None:
            lines.append(
                f"  {'total':<10}   {self.total_cycles * clock_period_ns:8.1f} ns"
            )
        return "\n".join(lines)


class PacketTracer:
    """Captures per-packet timelines from a running system.

    Attach before offering traffic; it hooks delivery and host arrival
    so completed packets are snapshotted with their stage stamps.
    """

    def __init__(self, system: RosebudSystem, max_traces: int = 1000) -> None:
        self.system = system
        self.max_traces = max_traces
        self.traces: Dict[int, PacketTrace] = {}
        self._prev_on_delivery = system.on_delivery
        system.on_delivery = self._on_complete
        self._orig_record_host = system._record_host
        system._record_host = self._on_host

    def _on_complete(self, packet: Packet) -> None:
        self._capture(packet, completed=True)
        if self._prev_on_delivery is not None:
            self._prev_on_delivery(packet)

    def _on_host(self, packet: Packet) -> None:
        self._capture(packet, completed=True)
        self._orig_record_host(packet)

    def _capture(self, packet: Packet, completed: bool) -> None:
        if len(self.traces) >= self.max_traces and packet.packet_id not in self.traces:
            return
        trace = PacketTrace(
            packet_id=packet.packet_id,
            size=packet.size,
            dest_rpu=packet.dest_rpu,
            action=packet.route.action if packet.route else None,
            born_at=packet.born_at,
            completed_at=self.system.sim.now if completed else None,
        )
        previous = packet.born_at
        for stage, key in _STAGES:
            at = packet.timestamps.get(key)
            if at is None:
                continue
            trace.events.append(TraceEvent(stage, at, at - previous))
            previous = at
        if completed:
            trace.events.append(
                TraceEvent("egress", self.system.sim.now, self.system.sim.now - previous)
            )
        self.traces[packet.packet_id] = trace

    # -- queries -------------------------------------------------------------------

    def trace_of(self, packet_id: int) -> Optional[PacketTrace]:
        return self.traces.get(packet_id)

    def slowest(self, n: int = 5) -> List[PacketTrace]:
        done = [t for t in self.traces.values() if t.total_cycles is not None]
        return sorted(done, key=lambda t: t.total_cycles, reverse=True)[:n]

    def stage_breakdown(self) -> Dict[str, float]:
        """Mean cycles spent reaching each stage — where latency lives."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for trace in self.traces.values():
            for event in trace.events:
                sums[event.stage] = sums.get(event.stage, 0.0) + event.delta_cycles
                counts[event.stage] = counts.get(event.stage, 0) + 1
        return {stage: sums[stage] / counts[stage] for stage in sums}

    def detach(self) -> None:
        self.system.on_delivery = self._prev_on_delivery
        self.system._record_host = self._orig_record_host
