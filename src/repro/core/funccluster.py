"""Full-Rosebud functional simulation (Appendix A.4).

The paper's testbench offers "both options of single RPU or full
Rosebud simulation, the latter being more complete but also more
time-consuming".  :class:`FunctionalCluster` is the full option over our
substrates: N instruction-set-simulated RPUs behind a load-balancing
policy, with egress collection per destination — useful for validating
LB behaviour and multi-RPU firmware interactions functionally, with
every core really executing its instructions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..accel.base import Accelerator
from ..replay import ReplayCache, ReplayStats
from .config import RosebudConfig
from .descriptors import SlotTable
from .funcsim import FunctionalRpu, SentPacket


class ClusterError(RuntimeError):
    """Raised on cluster-level protocol problems (starvation etc.)."""


class FunctionalCluster:
    """N functional RPUs + a slot-aware round-robin/hash distribution.

    ``replay_cache=True`` attaches a per-core
    :class:`~repro.replay.ReplayCache` (one shared
    :class:`~repro.replay.ReplayStats`, available as
    ``cluster.replay_stats``) and drains packets through the
    record/replay fast path in :meth:`run_until_all_sent`.
    """

    def __init__(
        self,
        n_rpus: int,
        firmware_asm: str,
        accelerator_factory: Optional[Callable[[], Accelerator]] = None,
        config: Optional[RosebudConfig] = None,
        policy: str = "round_robin",
        cpu_backend: Optional[str] = None,
        replay_cache: bool = False,
    ) -> None:
        if policy not in ("round_robin", "hash"):
            raise ValueError(f"unknown policy {policy!r}")
        self.config = config or RosebudConfig(n_rpus=n_rpus)
        self.policy = policy
        self.replay_stats: Optional[ReplayStats] = ReplayStats() if replay_cache else None
        self.rpus: List[FunctionalRpu] = []
        for index in range(n_rpus):
            accel = accelerator_factory() if accelerator_factory else None
            rpu = FunctionalRpu(
                firmware_asm,
                accelerator=accel,
                config=self.config,
                cpu_backend=cpu_backend,
            )
            rpu.cpu.hartid = index
            if replay_cache:
                rpu.attach_replay_cache(ReplayCache(stats=self.replay_stats))
            self.rpus.append(rpu)
        self.slots = SlotTable(n_rpus, self.config.slots_per_rpu)
        self._rr_next = 0
        self._pending: Dict[int, int] = {i: 0 for i in range(n_rpus)}
        self.pushed = 0

    # -- distribution -------------------------------------------------------------

    def _choose(self, data: bytes) -> int:
        n = len(self.rpus)
        if self.policy == "hash":
            import zlib

            # hash the IP/port fields like the hash LB (bytes 26..38
            # cover src/dst IP + ports for an IPv4/TCP frame)
            return zlib.crc32(data[26:38]) % n
        for offset in range(n):
            candidate = (self._rr_next + offset) % n
            if self.slots.has_free(candidate):
                self._rr_next = (candidate + 1) % n
                return candidate
        raise ClusterError("all RPUs out of slots")

    def push_packet(self, data: bytes, port: int = 0, class_key=None) -> int:
        """Distribute one packet; returns the chosen RPU index."""
        rpu_index = self._choose(data)
        self.slots.allocate(rpu_index)
        self.rpus[rpu_index].push_packet(data, port, class_key=class_key)
        self._pending[rpu_index] += 1
        self.pushed += 1
        return rpu_index

    # -- execution ------------------------------------------------------------------

    def total_sent(self) -> int:
        return sum(len(rpu.sent) for rpu in self.rpus)

    def run_until_all_sent(self, max_instructions_per_rpu: int = 2_000_000) -> None:
        """Interleave the cores until every pushed packet was sent."""
        if self.replay_stats is not None:
            self._drain_with_replay(max_instructions_per_rpu)
            return
        target = self.pushed
        budget = {i: max_instructions_per_rpu for i in range(len(self.rpus))}
        seen = {i: 0 for i in range(len(self.rpus))}
        while self.total_sent() < target:
            progressed = False
            for index, rpu in enumerate(self.rpus):
                if seen[index] >= self._pending[index]:
                    continue
                if budget[index] <= 0:
                    raise ClusterError(f"RPU {index} exceeded instruction budget")
                executed = rpu.cpu.run(
                    max_instructions=min(500, budget[index]),
                    until=lambda cpu, r=rpu, i=index: len(r.sent) > seen[i],
                )
                budget[index] -= max(1, executed)
                if len(rpu.sent) > seen[index]:
                    freed = len(rpu.sent) - seen[index]
                    seen[index] = len(rpu.sent)
                    for _ in range(freed):
                        # return a slot credit (tag bookkeeping is
                        # per-RPU inside the funcsim)
                        busy = self.slots.occupancy(index)
                        if busy:
                            slot = next(iter(self.slots._busy[index]))
                            self.slots.release(index, slot)
                    progressed = True
            if not progressed and self.total_sent() < target:
                # give idle cores a chance to poll (they may be waiting
                # on descriptors already queued)
                for rpu in self.rpus:
                    rpu.cpu.run(max_instructions=50)

    def _drain_with_replay(self, max_instructions_per_rpu: int) -> None:
        """Packet-granular drain through :meth:`FunctionalRpu.step_packet`.

        Equivalent to the interleaved burst loop — brackets on distinct
        cores are independent — but each bracket either replays from
        its record or records while it executes.
        """
        outstanding = self.pushed - self.total_sent()
        budget = [max_instructions_per_rpu] * len(self.rpus)
        free = self.slots._free
        busy = self.slots._busy
        while outstanding > 0:
            progressed = False
            for index, rpu in enumerate(self.rpus):
                rx = rpu._rx
                if not rx:
                    continue
                cpu = rpu.cpu
                step = rpu.step_packet
                rpu_free = free[index]
                rpu_busy = busy[index]
                left = budget[index]
                while rx:
                    if left <= 0:
                        raise ClusterError(f"RPU {index} exceeded instruction budget")
                    before = cpu.instret
                    step(max_instructions=left)
                    left -= max(1, cpu.instret - before)
                    # each step retires exactly one descriptor: return
                    # its slot credit (tag bookkeeping is per-RPU
                    # inside the funcsim, any busy credit will do)
                    if rpu_busy:
                        rpu_free.append(rpu_busy.pop())
                    outstanding -= 1
                    progressed = True
                budget[index] = left
            if not progressed and outstanding > 0:
                raise ClusterError(
                    "cluster starved: descriptors outstanding but no RPU "
                    "has a pending RX descriptor"
                )

    # -- results ----------------------------------------------------------------------

    def sent_by_port(self) -> Dict[int, List[SentPacket]]:
        out: Dict[int, List[SentPacket]] = {}
        for rpu in self.rpus:
            for sent in rpu.sent:
                out.setdefault(sent.port, []).append(sent)
        return out

    def per_rpu_counts(self) -> List[int]:
        return [len(rpu.sent) for rpu in self.rpus]
