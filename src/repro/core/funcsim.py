"""Functional single-RPU simulation (§3.4, Appendix A.4).

The paper ships a cocotb/Python testbench that links the RTL of one RPU
with the firmware ELF and drives packets through it.  This module is
the same idea over our substrates: a :class:`FunctionalRpu` instantiates
the RV32 instruction-set simulator, the RPU memory map (instruction,
data, packet, and accelerator memories), the interconnect registers,
and any accelerator's MMIO window; assembly firmware is assembled and
loaded; packets go in, descriptors come out, and per-packet cycle
counts fall out of the CPU's cycle model.

This is both the debugging story (inspect any memory, single-step the
core, read the debug channel) and the calibration source for the
behavioural firmware cycle constants used by the system simulator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..accel.base import Accelerator
from ..replay.record import (
    NO_ACCEL_TOKEN,
    OP_ACC_R,
    OP_ACC_W,
    ReplayRecord,
    TraceRecorder,
)
from ..riscv.assembler import Program, assemble
from ..riscv.bus import MemoryBus
from ..riscv.cpu import RiscvCpu
from .config import RosebudConfig

IMEM_BASE = 0x0000_0000
DMEM_BASE = 0x0001_0000
PMEM_BASE = 0x0010_0000
ACCMEM_BASE = 0x0080_0000
IO_BASE = 0x0100_0000
IO_EXT_BASE = 0x0200_0000

#: Packets are written at this offset within their slot so the IPv4
#: source address lands word-aligned (the artifact uses PKT_OFFSET 10
#: with its header layout; ours differs by the descriptor framing).
PKT_OFFSET = 2


@dataclass
class SentPacket:
    """One descriptor the firmware released for sending."""

    tag: int
    data: bytes
    port: int
    cycle: int

    @property
    def dropped(self) -> bool:
        return len(self.data) == 0


class FunctionalRpu:
    """One RPU with a real RV32 core, memories, and MMIO plumbing."""

    def __init__(
        self,
        firmware_asm: str,
        accelerator: Optional[Accelerator] = None,
        config: Optional[RosebudConfig] = None,
        cpu_backend: Optional[str] = None,
    ) -> None:
        self.config = config or RosebudConfig()
        self.bus = MemoryBus()
        self.imem = self.bus.add_ram(IMEM_BASE, self.config.imem_bytes, "imem")
        self.dmem = self.bus.add_ram(DMEM_BASE, self.config.dmem_bytes, "dmem")
        self.pmem = self.bus.add_ram(PMEM_BASE, self.config.packet_mem_bytes, "pmem")
        self.accmem = self.bus.add_ram(ACCMEM_BASE, self.config.accel_mem_bytes, "accmem")
        self.bus.add_mmio(IO_BASE, 0x1000, self._io_read, self._io_write, "interconnect")
        self.accelerator = accelerator
        self._accel_read = None
        self._accel_write = None
        if accelerator is not None:
            read, write = accelerator.mmio_handlers()
            if hasattr(accelerator, "set_payload"):

                def dma_aware_write(offset: int, value: int, nbytes: int) -> None:
                    # a CTRL start kicks the DMA stream: feed the payload
                    # from packet memory into the accelerator first
                    if offset == 0x00 and value == 1:
                        addr = getattr(accelerator, "_dma_addr", 0)
                        length = getattr(accelerator, "_dma_len", 0)
                        if addr and length > 0:
                            accelerator.set_payload(self.bus.dump(addr, length))
                    write(offset, value, nbytes)

                accel_write = dma_aware_write
            else:
                accel_write = write
            self.bus.add_mmio(IO_EXT_BASE, 0x1000, read, accel_write, "accel")
            self._accel_read = read
            self._accel_write = accel_write

        self.cpu = RiscvCpu(self.bus, reset_pc=IMEM_BASE, backend=cpu_backend)
        self.program = self.load_firmware(firmware_asm)

        self._rx: Deque[Tuple[int, int, int, int]] = deque()  # tag, len, port, addr
        self._slots_in_use: Dict[int, int] = {}
        self._next_tag = 1
        self._send_tag = 0
        self._send_len = 0
        self.sent: List[SentPacket] = []
        self.debug_out = 0
        #: attach a :class:`repro.replay.ReplayCache` to memoize packet
        #: brackets processed through :meth:`step_packet`
        self.replay_cache = None
        self._class_by_tag: Dict[int, object] = {}
        #: last record applied with no execution since (chain anchor)
        self._last_applied = None
        #: deferred packet DMA: frame bytes pushed but not yet written
        #: to pmem/dmem (pure replay hits never read the slot, so the
        #: copies are postponed until something can observe them)
        self._pending_dma: Dict[int, bytes] = {}
        # per-tag DMA landing offsets, precomputed for the push hot loop
        slot_bytes = self.config.slot_bytes
        hdr_bytes = self.config.header_slot_bytes
        hdr_base = self.config.dmem_bytes // 2
        self._slot_offsets = [
            (tag - 1) * slot_bytes + PKT_OFFSET
            for tag in range(1, self.config.slots_per_rpu + 1)
        ]
        self._hdr_offsets = [
            hdr_base + (tag - 1) * hdr_bytes
            for tag in range(1, self.config.slots_per_rpu + 1)
        ]

    # -- firmware and memory loading ------------------------------------------------

    def load_firmware(self, source: str) -> Program:
        """Assemble and load firmware at the reset vector."""
        program = assemble(source, base=IMEM_BASE)
        if len(program.image) > self.config.imem_bytes:
            raise ValueError("firmware does not fit in instruction memory")
        self.imem.load_bytes(0, program.image)
        self.cpu.invalidate_icache()
        return program

    def load_accel_table(self, offset: int, blob: bytes) -> None:
        """Host fills accelerator local memory before boot (§4.1) —
        the runtime URAM-initialization path."""
        self.accmem.load_bytes(offset, blob)

    def dump_memory(self, which: str = "pmem") -> bytes:
        """Host-side debugging: dump an entire RPU memory (§3.4)."""
        self._flush_dma()
        region = {"imem": self.imem, "dmem": self.dmem, "pmem": self.pmem, "accmem": self.accmem}[which]
        return region.dump_bytes()

    # -- packet injection -------------------------------------------------------------

    def push_packet(self, data: bytes, port: int = 0, class_key=None) -> int:
        """DMA a packet into a free slot and post its descriptor.

        ``class_key`` is the replay-cache class signature; it promises
        the frame bytes are identical to every other packet pushed with
        the same key.  Defaults to the frame bytes themselves (always
        sound; bytes objects cache their hash, so reused templates cost
        one hash total).
        """
        slot_bytes = self.config.slot_bytes
        if len(data) + PKT_OFFSET > slot_bytes:
            raise ValueError("packet exceeds slot size")
        if len(self._rx) >= self.config.slots_per_rpu:
            raise RuntimeError(
                "no free packet slots: drain the RPU before pushing more "
                "(the LB would withhold this packet in hardware)"
            )
        tag = self._next_tag
        self._next_tag = self._next_tag % self.config.slots_per_rpu + 1
        offset = self._slot_offsets[tag - 1]
        if self.replay_cache is not None:
            # defer the DMA: the bytes only land when something can
            # observe them (real execution, a guard read, a dump)
            data = bytes(data)
            old = self._pending_dma.get(tag)
            if old is not None and len(old) > len(data):
                # the displaced frame was never materialized, but its
                # tail outlives the new (shorter) frame in the slot —
                # write exactly that residue so memory stays byte-equal
                # to an uncached run
                self.pmem.load_bytes(offset + len(data), old[len(data):])
                old_hdr = old[: self.config.header_slot_bytes]
                if len(old_hdr) > len(data):
                    hdr_offset = self._hdr_offsets[tag - 1]
                    if hdr_offset + len(old_hdr) <= self.config.dmem_bytes:
                        self.dmem.load_bytes(
                            hdr_offset + len(data), old_hdr[len(data):]
                        )
            self._pending_dma[tag] = data
            self._class_by_tag[tag] = class_key if class_key is not None else data
        else:
            self.pmem.load_bytes(offset, data)
            # the DMA engine also copies the header into local memory for
            # low-latency parsing; we keep the header copy in dmem's top half
            header = data[: self.config.header_slot_bytes]
            hdr_offset = self._hdr_offsets[tag - 1]
            if hdr_offset + len(header) <= self.config.dmem_bytes:
                self.dmem.load_bytes(hdr_offset, header)
        self._rx.append((tag, len(data), port, PMEM_BASE + offset))
        return tag

    def _flush_dma(self) -> None:
        """Materialize all deferred packet DMA into pmem/dmem."""
        if not self._pending_dma:
            return
        hdr_bytes = self.config.header_slot_bytes
        dmem_bytes = self.config.dmem_bytes
        for tag, data in self._pending_dma.items():
            self.pmem.load_bytes(self._slot_offsets[tag - 1], data)
            header = data[:hdr_bytes]
            hdr_offset = self._hdr_offsets[tag - 1]
            if hdr_offset + len(header) <= dmem_bytes:
                self.dmem.load_bytes(hdr_offset, header)
        self._pending_dma.clear()

    # -- interconnect MMIO ---------------------------------------------------------------

    def _io_read(self, offset: int, nbytes: int) -> int:
        if offset == 0x00:
            return int(bool(self._rx))
        if not self._rx and offset in (0x04, 0x08, 0x0C, 0x10):
            return 0
        if offset == 0x04:
            return self._rx[0][0]
        if offset == 0x08:
            return self._rx[0][1]
        if offset == 0x0C:
            return self._rx[0][2]
        if offset == 0x10:
            return self._rx[0][3]
        if offset == 0x30:
            return self.cpu.cycles & 0xFFFFFFFF
        return 0

    def _io_write(self, offset: int, value: int, nbytes: int) -> None:
        if offset == 0x14:  # RECV_RELEASE
            if self._rx:
                self._rx.popleft()
            return
        if offset == 0x18:
            self._send_tag = value
            return
        if offset == 0x1C:
            self._send_len = value
            return
        if offset == 0x20:  # SEND_PORT_GO
            tag = self._send_tag
            length = self._send_len
            if length:
                addr = PMEM_BASE + (tag - 1) * self.config.slot_bytes + PKT_OFFSET
                data = self.bus.dump(addr, length)
            else:
                data = b""
            self.sent.append(SentPacket(tag, data, value, self.cpu.cycles))
            return
        if offset == 0x28:
            self.debug_out = (self.debug_out & ~0xFFFFFFFF) | value
            return
        if offset == 0x2C:
            self.debug_out = (self.debug_out & 0xFFFFFFFF) | (value << 32)
            return

    # -- running -----------------------------------------------------------------------------

    def run_until_sent(self, count: int, max_instructions: int = 2_000_000) -> None:
        """Run the core until ``count`` descriptors have been sent."""
        self._last_applied = None  # real execution breaks the replay chain
        self._flush_dma()
        self.cpu.run(
            max_instructions=max_instructions,
            until=lambda cpu: len(self.sent) >= count,
        )
        if len(self.sent) < count:
            raise RuntimeError(
                f"firmware sent only {len(self.sent)}/{count} packets "
                f"within {max_instructions} instructions"
            )

    # -- replay cache ------------------------------------------------------------------------

    def attach_replay_cache(self, cache) -> None:
        """Enable packet-bracket memoization for :meth:`step_packet`.

        The cache is bound to this core (records pin its code epoch and
        slot addresses); share hit/miss accounting across cores by
        giving each core's cache the same :class:`~repro.replay.ReplayStats`.
        """
        self.replay_cache = cache

    def step_packet(self, max_instructions: int = 2_000_000) -> str:
        """Process the head descriptor to completion (one more send).

        With a replay cache attached this is the fast path: a validated
        record applies the bracket without entering the CPU; otherwise
        the bracket really executes (and is recorded for next time).
        Returns ``"hit"``, ``"miss"``, ``"fallback"``, ``"bypass"``, or
        ``"uncached"`` — all of them leave identical architectural
        state, memory, and send timestamps.
        """
        if not self._rx:
            raise RuntimeError("no descriptor pending")
        target = len(self.sent) + 1
        cache = self.replay_cache
        if cache is None:
            self.run_until_sent(target, max_instructions)
            return "uncached"
        head = self._rx[0]
        tag = head[0]
        class_key = self._class_by_tag.pop(tag, None)
        stats = cache.stats
        if class_key is None:
            stats.bypasses += 1
            self.run_until_sent(target, max_instructions)
            return "bypass"
        key = (class_key, head[2], tag)
        candidates = cache.lookup(key, self.cpu.code_epoch)
        if self._pending_dma and any(not r.pure for r in candidates):
            # impure candidates read memory (guards) or write it on
            # apply: deferred frames must be in place first
            self._flush_dma()
        prev = self._last_applied
        edges = cache._edges
        for record in candidates:
            if prev is not None and (id(prev), id(record)) in edges:
                ok = record.validate_chained(self)
            else:
                ok = record.validate(self)
                if ok and prev is not None:
                    edges.add((id(prev), id(record)))
            if ok:
                record.apply(self)
                self._last_applied = record
                stats.hits += 1
                return "hit"
        if candidates:
            stats.fallbacks += 1
            status = "fallback"
        else:
            stats.misses += 1
            status = "miss"
        if len(candidates) >= cache.max_variants:
            # key saturated with variants that keep missing their
            # guards (per-flow state): stop paying the recording tax
            # and run on the fast translated backend instead
            self.run_until_sent(target, max_instructions)
            return status
        record = self._record_bracket(target, max_instructions)
        if record is not None:
            if cache.store(key, record):
                # the CPU sits exactly at this record's end state, so it
                # anchors chain edges for whatever bracket comes next
                # (only retained records may anchor: edge ids must stay
                # unambiguous, i.e. alive, until the next flush)
                self._last_applied = record
        else:
            stats.bypasses += 1
        return status

    def _record_bracket(self, target: int, max_instructions: int):
        """Really execute the head bracket while capturing a replay record.

        Returns ``None`` when the bracket proved unreplayable (unstable
        reads, accelerator without a token, self-modifying code, ...).
        """
        cpu = self.cpu
        self._flush_dma()
        tag, length, port, addr = self._rx[0]
        descriptor = self._rx[0]
        # reads of the packet slot and its header copy are covered by
        # the class signature (byte-identical frames): no guard needed
        covered = [(addr, addr + length)]
        hdr_len = min(length, self.config.header_slot_bytes)
        hdr_addr = (
            DMEM_BASE
            + self.config.dmem_bytes // 2
            + (tag - 1) * self.config.header_slot_bytes
        )
        if hdr_addr + hdr_len <= DMEM_BASE + self.config.dmem_bytes:
            covered.append((hdr_addr, hdr_addr + hdr_len))
        accel = self.accelerator
        start_token = accel.replay_token() if accel is not None else None
        start_pc = cpu.pc
        start_regs = list(cpu.regs)
        start_csrs = dict(cpu.csrs)
        start_wfi = cpu.waiting_for_interrupt
        start_send = (self._send_tag, self._send_len)
        start_cycles = cpu.cycles
        start_instret = cpu.instret
        start_epoch = cpu.code_epoch
        start_sent = len(self.sent)
        recorder = TraceRecorder(
            cpu,
            (IO_BASE, IO_BASE + 0x1000),
            (IO_EXT_BASE, IO_EXT_BASE + 0x1000) if accel is not None else None,
            covered,
        )
        sent = self.sent
        cpu.record_run(
            recorder, max_instructions, until=lambda c: len(sent) >= target
        )
        if len(sent) < target:
            raise RuntimeError(
                f"firmware sent only {len(sent)}/{target} packets "
                f"within {max_instructions} instructions"
            )
        if cpu.halted:
            recorder.mark_unreplayable("core halted inside the bracket")
        if cpu.code_epoch != start_epoch:
            recorder.mark_unreplayable("self-modifying code inside the bracket")
        accel_token = NO_ACCEL_TOKEN
        if any(op[0] in (OP_ACC_R, OP_ACC_W) for op in recorder.ops):
            if start_token is None:
                recorder.mark_unreplayable("accelerator has no replay token")
            accel_token = start_token
        if recorder.unreplayable:
            return None
        end_csrs = None if cpu.csrs == start_csrs else dict(cpu.csrs)
        return ReplayRecord(
            descriptor=descriptor,
            start_pc=start_pc,
            start_regs=start_regs,
            start_csrs=start_csrs,
            start_wfi=start_wfi,
            start_send=start_send,
            guard_reads=recorder.guard_reads,
            ops=recorder.ops,
            sends=tuple(
                (s.tag, s.data, s.port, s.cycle - start_cycles)
                for s in sent[start_sent:]
            ),
            accel_token=accel_token,
            end_pc=cpu.pc,
            end_regs=list(cpu.regs),
            end_csrs=end_csrs,
            end_wfi=cpu.waiting_for_interrupt,
            end_send=(self._send_tag, self._send_len),
            cycles_delta=cpu.cycles - start_cycles,
            instret_delta=cpu.instret - start_instret,
            code_epoch=cpu.code_epoch,
            dma_accel=accel is not None and hasattr(accel, "set_payload"),
        )

    def measure_cycles_per_packet(self, packets: List[bytes], port: int = 0) -> List[int]:
        """Per-packet cycle cost in a saturated back-to-back run: push
        everything, run, and diff consecutive send timestamps."""
        for data in packets:
            self.push_packet(data, port)
        start = len(self.sent)
        self.run_until_sent(start + len(packets))
        stamps = [p.cycle for p in self.sent[start:]]
        deltas = []
        prev = None
        for stamp in stamps:
            if prev is not None:
                deltas.append(stamp - prev)
            prev = stamp
        return deltas if deltas else stamps
