"""Functional single-RPU simulation (§3.4, Appendix A.4).

The paper ships a cocotb/Python testbench that links the RTL of one RPU
with the firmware ELF and drives packets through it.  This module is
the same idea over our substrates: a :class:`FunctionalRpu` instantiates
the RV32 instruction-set simulator, the RPU memory map (instruction,
data, packet, and accelerator memories), the interconnect registers,
and any accelerator's MMIO window; assembly firmware is assembled and
loaded; packets go in, descriptors come out, and per-packet cycle
counts fall out of the CPU's cycle model.

This is both the debugging story (inspect any memory, single-step the
core, read the debug channel) and the calibration source for the
behavioural firmware cycle constants used by the system simulator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..accel.base import Accelerator
from ..riscv.assembler import Program, assemble
from ..riscv.bus import MemoryBus
from ..riscv.cpu import RiscvCpu
from .config import RosebudConfig

IMEM_BASE = 0x0000_0000
DMEM_BASE = 0x0001_0000
PMEM_BASE = 0x0010_0000
ACCMEM_BASE = 0x0080_0000
IO_BASE = 0x0100_0000
IO_EXT_BASE = 0x0200_0000

#: Packets are written at this offset within their slot so the IPv4
#: source address lands word-aligned (the artifact uses PKT_OFFSET 10
#: with its header layout; ours differs by the descriptor framing).
PKT_OFFSET = 2


@dataclass
class SentPacket:
    """One descriptor the firmware released for sending."""

    tag: int
    data: bytes
    port: int
    cycle: int

    @property
    def dropped(self) -> bool:
        return len(self.data) == 0


class FunctionalRpu:
    """One RPU with a real RV32 core, memories, and MMIO plumbing."""

    def __init__(
        self,
        firmware_asm: str,
        accelerator: Optional[Accelerator] = None,
        config: Optional[RosebudConfig] = None,
        cpu_backend: Optional[str] = None,
    ) -> None:
        self.config = config or RosebudConfig()
        self.bus = MemoryBus()
        self.imem = self.bus.add_ram(IMEM_BASE, self.config.imem_bytes, "imem")
        self.dmem = self.bus.add_ram(DMEM_BASE, self.config.dmem_bytes, "dmem")
        self.pmem = self.bus.add_ram(PMEM_BASE, self.config.packet_mem_bytes, "pmem")
        self.accmem = self.bus.add_ram(ACCMEM_BASE, self.config.accel_mem_bytes, "accmem")
        self.bus.add_mmio(IO_BASE, 0x1000, self._io_read, self._io_write, "interconnect")
        self.accelerator = accelerator
        if accelerator is not None:
            read, write = accelerator.mmio_handlers()

            def dma_aware_write(offset: int, value: int, nbytes: int) -> None:
                # a CTRL start kicks the DMA stream: feed the payload
                # from packet memory into the accelerator first
                if offset == 0x00 and value == 1 and hasattr(accelerator, "set_payload"):
                    addr = getattr(accelerator, "_dma_addr", 0)
                    length = getattr(accelerator, "_dma_len", 0)
                    if addr and length > 0:
                        accelerator.set_payload(self.bus.dump(addr, length))
                write(offset, value, nbytes)

            self.bus.add_mmio(IO_EXT_BASE, 0x1000, read, dma_aware_write, "accel")

        self.cpu = RiscvCpu(self.bus, reset_pc=IMEM_BASE, backend=cpu_backend)
        self.program = self.load_firmware(firmware_asm)

        self._rx: Deque[Tuple[int, int, int, int]] = deque()  # tag, len, port, addr
        self._slots_in_use: Dict[int, int] = {}
        self._next_tag = 1
        self._send_tag = 0
        self._send_len = 0
        self.sent: List[SentPacket] = []
        self.debug_out = 0

    # -- firmware and memory loading ------------------------------------------------

    def load_firmware(self, source: str) -> Program:
        """Assemble and load firmware at the reset vector."""
        program = assemble(source, base=IMEM_BASE)
        if len(program.image) > self.config.imem_bytes:
            raise ValueError("firmware does not fit in instruction memory")
        self.imem.load_bytes(0, program.image)
        self.cpu.invalidate_icache()
        return program

    def load_accel_table(self, offset: int, blob: bytes) -> None:
        """Host fills accelerator local memory before boot (§4.1) —
        the runtime URAM-initialization path."""
        self.accmem.load_bytes(offset, blob)

    def dump_memory(self, which: str = "pmem") -> bytes:
        """Host-side debugging: dump an entire RPU memory (§3.4)."""
        region = {"imem": self.imem, "dmem": self.dmem, "pmem": self.pmem, "accmem": self.accmem}[which]
        return region.dump_bytes()

    # -- packet injection -------------------------------------------------------------

    def push_packet(self, data: bytes, port: int = 0) -> int:
        """DMA a packet into a free slot and post its descriptor."""
        slot_bytes = self.config.slot_bytes
        if len(data) + PKT_OFFSET > slot_bytes:
            raise ValueError("packet exceeds slot size")
        if len(self._rx) >= self.config.slots_per_rpu:
            raise RuntimeError(
                "no free packet slots: drain the RPU before pushing more "
                "(the LB would withhold this packet in hardware)"
            )
        tag = self._next_tag
        self._next_tag = self._next_tag % self.config.slots_per_rpu + 1
        addr = PMEM_BASE + (tag - 1) * slot_bytes + PKT_OFFSET
        self.bus.load_blob(addr, data)
        # the DMA engine also copies the header into local memory for
        # low-latency parsing; we keep the header copy in dmem's top half
        header = data[: self.config.header_slot_bytes]
        hdr_addr = (
            self.config.dmem_bytes // 2 + (tag - 1) * self.config.header_slot_bytes
        )
        if hdr_addr + len(header) <= self.config.dmem_bytes:
            self.dmem.load_bytes(hdr_addr, header)
        self._rx.append((tag, len(data), port, addr))
        return tag

    # -- interconnect MMIO ---------------------------------------------------------------

    def _io_read(self, offset: int, nbytes: int) -> int:
        if offset == 0x00:
            return int(bool(self._rx))
        if not self._rx and offset in (0x04, 0x08, 0x0C, 0x10):
            return 0
        if offset == 0x04:
            return self._rx[0][0]
        if offset == 0x08:
            return self._rx[0][1]
        if offset == 0x0C:
            return self._rx[0][2]
        if offset == 0x10:
            return self._rx[0][3]
        if offset == 0x30:
            return self.cpu.cycles & 0xFFFFFFFF
        return 0

    def _io_write(self, offset: int, value: int, nbytes: int) -> None:
        if offset == 0x14:  # RECV_RELEASE
            if self._rx:
                self._rx.popleft()
            return
        if offset == 0x18:
            self._send_tag = value
            return
        if offset == 0x1C:
            self._send_len = value
            return
        if offset == 0x20:  # SEND_PORT_GO
            tag = self._send_tag
            length = self._send_len
            if length:
                addr = PMEM_BASE + (tag - 1) * self.config.slot_bytes + PKT_OFFSET
                data = self.bus.dump(addr, length)
            else:
                data = b""
            self.sent.append(SentPacket(tag, data, value, self.cpu.cycles))
            return
        if offset == 0x28:
            self.debug_out = (self.debug_out & ~0xFFFFFFFF) | value
            return
        if offset == 0x2C:
            self.debug_out = (self.debug_out & 0xFFFFFFFF) | (value << 32)
            return

    # -- running -----------------------------------------------------------------------------

    def run_until_sent(self, count: int, max_instructions: int = 2_000_000) -> None:
        """Run the core until ``count`` descriptors have been sent."""
        self.cpu.run(
            max_instructions=max_instructions,
            until=lambda cpu: len(self.sent) >= count,
        )
        if len(self.sent) < count:
            raise RuntimeError(
                f"firmware sent only {len(self.sent)}/{count} packets "
                f"within {max_instructions} instructions"
            )

    def measure_cycles_per_packet(self, packets: List[bytes], port: int = 0) -> List[int]:
        """Per-packet cycle cost in a saturated back-to-back run: push
        everything, run, and diff consecutive send timestamps."""
        for data in packets:
            self.push_packet(data, port)
        start = len(self.sent)
        self.run_until_sent(start + len(packets))
        stamps = [p.cycle for p in self.sent[start:]]
        deltas = []
        prev = None
        for stamp in stamps:
            if prev is not None:
                deltas.append(stamp - prev)
            prev = stamp
        return deltas if deltas else stamps
