"""Cluster topology description: :class:`ClusterSpec`.

The paper's artifact is *two* VCU1525 boards joined by 2x100G cables
behind a front-end switch; :class:`ClusterSpec` generalises that to an
N-board rack.  It rides inside :class:`~repro.analysis.spec.ExperimentSpec`
(spec v7's ``cluster`` field) as plain frozen data, so cluster points
hash, pickle, and cache exactly like single-board points.

The one simulation-critical knob is ``sync_horizon_cycles``: the
bounded-lag window at which board simulations synchronise.  Cross-board
packets ride a link with ``link_latency_cycles`` of lookahead, so any
horizon no larger than the link latency makes the conservative
parallel simulation *exact* — a packet emitted inside window ``k``
cannot arrive before window ``k+1`` begins, hence exchanging emissions
at window barriers loses nothing.  ``0`` (the default) auto-selects
the link latency itself, the largest exact horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: Affinity policies the cluster front-end understands.
AFFINITY_POLICIES = ("hash", "local")


class ClusterError(ValueError):
    """Raised for inconsistent cluster specifications."""


@dataclass(frozen=True)
class ClusterSpec:
    """An N-board Rosebud rack, declaratively.

    * ``boards`` — number of boards; each runs the host spec's config,
      firmware, and per-board traffic profile (seeds decorrelated by
      ``seed_stride``).
    * ``link_gbps`` / ``link_latency_cycles`` — the inter-board MAC
      link: serialization at ``link_gbps`` plus a fixed propagation
      latency (also the simulation lookahead).
    * ``affinity`` — ``hash`` partitions flows across live boards by
      the 5-tuple CRC (the paper's LB hash, lifted one level up);
      ``local`` keeps flows on their arrival board and only re-steers
      away from dead boards.
    * ``pin_flows`` — pin a flow to its first owner so established
      flows never migrate while their owner stays live.
    * ``sync_horizon_cycles`` — bounded-lag barrier interval
      (0 = auto: the link latency, the largest exact choice).
    * ``sample_cycles`` — cluster-level rate sampling interval for the
      resilience (dip/MTTR) report.
    * ``watchdog_horizons`` — consecutive zero-progress horizons before
      the cluster watchdog declares a board failed and evicts it from
      the affinity map (0 disables failover).
    """

    boards: int = 2
    link_gbps: float = 100.0
    link_latency_cycles: float = 250.0
    affinity: str = "hash"
    pin_flows: bool = True
    sync_horizon_cycles: float = 0.0
    sample_cycles: float = 25_000.0
    watchdog_horizons: int = 8
    seed_stride: int = 101

    def __post_init__(self) -> None:
        if self.boards < 1:
            raise ClusterError(f"cluster needs at least one board, got {self.boards}")
        if self.link_gbps <= 0:
            raise ClusterError("inter-board link rate must be positive")
        if self.link_latency_cycles <= 0:
            raise ClusterError("inter-board link latency must be positive")
        if self.affinity not in AFFINITY_POLICIES:
            raise ClusterError(
                f"unknown affinity policy {self.affinity!r}; "
                f"choices: {list(AFFINITY_POLICIES)}"
            )
        if self.sync_horizon_cycles < 0:
            raise ClusterError("sync horizon cannot be negative")
        if self.sync_horizon_cycles > self.link_latency_cycles:
            raise ClusterError(
                f"sync horizon {self.sync_horizon_cycles} exceeds the link "
                f"latency {self.link_latency_cycles}; the bounded-lag "
                "exchange is only exact when the horizon is within the "
                "link lookahead"
            )
        if self.sample_cycles <= 0:
            raise ClusterError("sample interval must be positive")
        if self.watchdog_horizons < 0:
            raise ClusterError("watchdog_horizons cannot be negative")
        if self.seed_stride < 1:
            raise ClusterError("seed_stride must be >= 1")

    @property
    def horizon_cycles(self) -> float:
        """The effective barrier interval (auto = link latency)."""
        return self.sync_horizon_cycles or self.link_latency_cycles

    def to_dict(self) -> Dict[str, Any]:
        return {
            "boards": self.boards,
            "link_gbps": self.link_gbps,
            "link_latency_cycles": self.link_latency_cycles,
            "affinity": self.affinity,
            "pin_flows": self.pin_flows,
            "sync_horizon_cycles": self.sync_horizon_cycles,
            "sample_cycles": self.sample_cycles,
            "watchdog_horizons": self.watchdog_horizons,
            "seed_stride": self.seed_stride,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterSpec":
        known = {
            k: data[k]
            for k in (
                "boards",
                "link_gbps",
                "link_latency_cycles",
                "affinity",
                "pin_flows",
                "sync_horizon_cycles",
                "sample_cycles",
                "watchdog_horizons",
                "seed_stride",
            )
            if k in data
        }
        unknown = set(data) - set(known)
        if unknown:
            raise ClusterError(f"unknown cluster fields: {sorted(unknown)}")
        return cls(**known)
