"""Board harnesses and the shard worker protocol.

A :class:`BoardHarness` wraps one board's :class:`~repro.serve.session.SimSession`
with the cluster front-end: every wire arrival is intercepted before
MAC RX, steered by the board's affinity replica, and — when it belongs
to another board — accounted onto the inter-board link and buffered
for the horizon exchange instead of being delivered locally.

Shards are groups of boards.  The engine drives them through one tiny
command protocol (``advance`` / ``event`` / ``finalize`` / ``close``)
that has two interchangeable transports:

* :class:`InlineShard` — the boards live in this process; commands are
  direct method calls.  ``shards=1`` runs the whole cluster this way.
* :class:`ProcessShard` — the boards live in a spawn-context worker
  process behind a :class:`multiprocessing.Pipe` (persistent state
  across commands, unlike the sweep pool's one-shot tasks, but the
  same spawn-context plumbing).  A worker that dies or wedges raises a
  named :class:`ClusterShardError` — it can *never* hang the horizon
  barrier.

Both transports execute the identical per-board code, which is what
makes an N-shard run byte-identical to the inline run.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.spec import ExperimentSpec, MeasurementWindow
from .affinity import ClusterAffinity
from .link import BoardLink

#: Sentinel measurement target for per-board sessions: the *cluster*
#: engine owns the warmup/measure phase machine, so each board's own
#: driver must simply never complete (a completed driver would freeze
#: the session mid-horizon).
_NEVER_PACKETS = 10**18


class ClusterShardError(RuntimeError):
    """A board shard died or stopped responding mid-synchronisation."""


def board_spec(spec: ExperimentSpec, board: int) -> ExperimentSpec:
    """The per-board derivative of a cluster spec.

    The board runs the host spec's config/firmware/traffic with its
    generator seeds decorrelated by ``seed_stride``, no ``cluster``
    field (it *is* one board), an unbounded measurement window (see
    :data:`_NEVER_PACKETS`), and no warm replay-cache sharing — the
    harness attaches a private cold cache instead, so cache state can
    never differ between process layouts.
    """
    cluster = spec.cluster
    traffic = replace(
        spec.traffic,
        seed_base=spec.traffic.seed_base + board * cluster.seed_stride,
    )
    window = MeasurementWindow(
        warmup_packets=0,
        measure_packets=_NEVER_PACKETS,
        max_cycles=spec.window.max_cycles,
    )
    return spec.with_(
        cluster=None,
        traffic=traffic,
        window=window,
        replay_cache=False,
        name=f"{spec.name or 'cluster'}/board{board}",
    )


class BoardHarness:
    """One board's session plus its slice of the cluster fabric."""

    def __init__(self, spec: ExperimentSpec, board: int) -> None:
        from ..serve.session import SimSession

        cluster = spec.cluster
        self.board = board
        self.include_host = spec.include_host
        self.session = SimSession(board_spec(spec, board))
        self.system = self.session.system
        if spec.replay_cache:
            # a fresh private cache per board: statistics are identical
            # with or without it (the replay guarantee), and cold-start
            # symmetry keeps every process layout byte-identical
            from ..replay import FirmwareReplayCache

            self.system.attach_replay_cache(FirmwareReplayCache())
        self.affinity = ClusterAffinity(cluster, board)
        #: the board's fluid engine (None for event-fidelity specs).
        #: Warps are clipped to the sync horizon automatically (advance()
        #: steps with until_ts=barrier); the harness's job is the de-opt
        #: contract: any cross-board exchange discards period evidence.
        self.fluid = self.session._fluid
        freq_hz = self.system.config.clock.freq_hz
        self.links: Dict[int, BoardLink] = {
            dst: BoardLink(cluster.link_gbps, cluster.link_latency_cycles, freq_hz)
            for dst in range(cluster.boards)
            if dst != board
        }
        self._outbox: List[Tuple[float, int, int, int, int, Any]] = []
        self._emit_seq = 0
        # intercept wire arrivals at the front-end, before MAC RX: the
        # instance attribute shadows the bound method for this system
        self._local_offer = self.system.offer_packet
        self.system.offer_packet = self._steer

    # -- front-end steering ------------------------------------------------

    def _steer(self, port: int, packet) -> None:
        owner = self.affinity.owner(packet)
        if owner == self.board:
            self._local_offer(port, packet)
            return
        if self.fluid is not None:
            # outgoing cross-board traffic: a warp would skip materializing
            # these outbox packets, so the period evidence is void
            self.fluid.note_cross_traffic(f"cross-board steer to board {owner}")
        arrival = self.links[owner].send(self.session.sim.now, len(packet.data))
        self._emit_seq += 1
        self._outbox.append((arrival, self.board, self._emit_seq, owner, port, packet))

    # -- horizon protocol --------------------------------------------------

    def deliver(self, batch: Sequence[Tuple[float, int, int, int, int, Any]]) -> None:
        """Schedule cross-board arrivals (already merge-sorted by the
        engine); must run before the window they arrive in."""
        sim = self.session.sim
        offer = self._local_offer
        delivered = False
        for arrival, _src, _seq, _dst, port, packet in batch:
            sim.schedule_at(
                arrival,
                lambda p=port, pkt=packet: offer(p, pkt),
                name="xboard",
            )
            delivered = True
        if delivered and self.fluid is not None:
            # incoming cross-board traffic: the pending "xboard" events pin
            # absolute times (pre_step also refuses to warp across them)
            self.fluid.note_cross_traffic("cross-board delivery")

    def advance(self, horizon: float):
        """Run this board up to the barrier; returns (outbox, metrics)."""
        self.session.step(until_ts=horizon)
        out = self._outbox
        self._outbox = []
        return out, self.metrics()

    def apply_event(self, kind: str, board: int) -> None:
        if self.fluid is not None:
            # liveness events bypass session.control (affinity and RPU
            # state change under the session's feet): de-opt explicitly
            self.fluid.notify_transient(f"cluster:{kind}:board{board}")
        if kind in ("drain", "evict"):
            self.affinity.drain(board)
        elif kind == "restore":
            self.affinity.restore(board)
        elif kind == "wedge_board":
            if board == self.board:
                for rpu in self.system.rpus:
                    rpu.wedge()
        elif kind == "unwedge_board":
            if board == self.board:
                for rpu in self.system.rpus:
                    rpu.unwedge()
        else:
            raise ClusterShardError(f"unknown cluster event kind {kind!r}")

    # -- telemetry ---------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """The per-barrier progress readings the engine's drivers use.
        Plain ints (and an int tuple), so they cross the pipe exactly."""
        system = self.system
        counters = system.counters
        completions = counters.value("delivered")
        if self.include_host:
            completions += counters.value("to_host")
            completions += counters.value("dropped_by_firmware")
        fluid = None
        if self.fluid is not None:
            fluid = {
                "warps": self.fluid.warps,
                "periods_warped": self.fluid.periods_warped,
                "warped_cycles": self.fluid.warped_cycles,
                "occupancy_fluid": self.fluid.occupancy()["fluid"],
                "deopts": len(self.fluid.deopts),
                "cross_deopts": self.fluid.cross_deopts,
                "backlog": self.fluid.backlog_now,
                "backlog_peak": self.fluid.backlog_peak,
            }
        return {
            "completions": completions,
            "tx_bytes": sum(m.bytes_total for m in system.tx_meters),
            "tx_packets": sum(m.packets_total for m in system.tx_meters),
            "host_bytes": system.host_meter.bytes_total,
            "host_packets": system.host_meter.packets_total,
            "absorbed_bytes": sum(
                mac.counters.value("rx_bytes") for mac in system.macs
            ),
            "rx_drops": system.total_rx_drops(),
            "rpu_packets": tuple(system.rpu_packet_counts()),
            "fluid": fluid,
        }

    def finalize(self) -> Dict[str, Any]:
        from ..analysis.engine import _firmware_totals

        return {
            "counters": self.system.counters.snapshot(),
            "firmware_totals": _firmware_totals(self.system),
            "repinned": self.affinity.repinned,
            "fluid": None if self.fluid is None else self.fluid.stats(),
        }

    def snapshot(self) -> Dict[str, Any]:
        """The board's full repro-snapshot/1 block (inline shards only)."""
        return self.session.snapshot()


# -- shard transports -------------------------------------------------------


class InlineShard:
    """All boards in-process; the degenerate (and reference) transport."""

    def __init__(self, index: int, spec: ExperimentSpec, boards: Sequence[int]) -> None:
        self.index = index
        self.boards = list(boards)
        self.harnesses = [BoardHarness(spec, b) for b in boards]
        self._by_board = {h.board: h for h in self.harnesses}

    def advance(self, horizon: float, deliveries: Dict[int, list]):
        out: Dict[int, list] = {}
        metrics: Dict[int, Dict[str, Any]] = {}
        for harness in self.harnesses:
            harness.deliver(deliveries.get(harness.board, ()))
        for harness in self.harnesses:
            out[harness.board], metrics[harness.board] = harness.advance(horizon)
        return out, metrics

    def apply_event(self, kind: str, board: int) -> None:
        for harness in self.harnesses:
            harness.apply_event(kind, board)

    def finalize(self) -> Dict[int, Dict[str, Any]]:
        return {h.board: h.finalize() for h in self.harnesses}

    def board_snapshots(self) -> Dict[int, Dict[str, Any]]:
        return {h.board: h.snapshot() for h in self.harnesses}

    def close(self) -> None:
        pass


def _shard_worker(conn, spec: ExperimentSpec, boards: Sequence[int]) -> None:
    """Worker entry (spawn target): serve shard commands forever.

    Every command is answered with ``("ok", payload)`` or
    ``("error", traceback)`` — an exception is a *reply*, never a
    silent death, so the parent's barrier always gets an answer or a
    dead pipe it can detect.
    """
    try:
        shard = InlineShard(0, spec, boards)
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        return
    while True:
        try:
            cmd, payload = conn.recv()
        except EOFError:
            return
        if cmd == "close":
            conn.send(("ok", None))
            return
        if cmd == "crash":
            # test hook: die without a word, like a segfault would
            os._exit(3)
        if cmd == "hang":
            # test hook: wedge past the parent's patience
            time.sleep(float(payload))
            conn.send(("ok", None))
            continue
        try:
            if cmd == "advance":
                result = shard.advance(*payload)
            elif cmd == "event":
                result = shard.apply_event(*payload)
            elif cmd == "finalize":
                result = shard.finalize()
            else:
                raise ClusterShardError(f"unknown shard command {cmd!r}")
            conn.send(("ok", result))
        except BaseException:
            conn.send(("error", traceback.format_exc()))


class ProcessShard:
    """A group of boards in a spawn-context worker behind a pipe."""

    def __init__(
        self,
        index: int,
        spec: ExperimentSpec,
        boards: Sequence[int],
        timeout: Optional[float] = 120.0,
    ) -> None:
        from multiprocessing import get_context

        self.index = index
        self.boards = list(boards)
        self.timeout = timeout
        context = get_context("spawn")
        self._conn, child = context.Pipe()
        self._proc = context.Process(
            target=_shard_worker, args=(child, spec, boards), daemon=True
        )
        self._proc.start()
        child.close()

    def _describe(self) -> str:
        return f"shard {self.index} (boards {self.boards})"

    def request(self, cmd: str, payload: Any = None) -> Any:
        try:
            self._conn.send((cmd, payload))
        except (OSError, ValueError, BrokenPipeError):
            raise ClusterShardError(
                f"{self._describe()} is gone: its pipe is closed "
                f"(worker exit code {self._proc.exitcode})"
            ) from None
        deadline = None if self.timeout is None else time.monotonic() + self.timeout  # detlint: ok(worker-liveness watchdog)
        while True:
            if self._conn.poll(0.05):
                try:
                    status, reply = self._conn.recv()
                except (EOFError, OSError):
                    raise ClusterShardError(
                        f"{self._describe()} died mid-reply to {cmd!r} "
                        f"(worker exit code {self._proc.exitcode})"
                    ) from None
                if status == "error":
                    raise ClusterShardError(
                        f"{self._describe()} failed {cmd!r}:\n{reply}"
                    )
                return reply
            if not self._proc.is_alive():
                raise ClusterShardError(
                    f"{self._describe()} died during {cmd!r} without a reply "
                    f"(worker exit code {self._proc.exitcode}); the horizon "
                    "barrier was released, not hung"
                )
            if deadline is not None and time.monotonic() > deadline:  # detlint: ok(worker-liveness watchdog)
                self.close()
                raise ClusterShardError(
                    f"{self._describe()} exceeded {self.timeout}s answering "
                    f"{cmd!r}; worker terminated"
                )

    def advance(self, horizon: float, deliveries: Dict[int, list]):
        return self.request("advance", (horizon, deliveries))

    def apply_event(self, kind: str, board: int) -> None:
        self.request("event", (kind, board))

    def finalize(self) -> Dict[int, Dict[str, Any]]:
        return self.request("finalize")

    def board_snapshots(self) -> Dict[int, Dict[str, Any]]:
        return {}  # full sub-snapshots are an inline-transport feature

    def close(self) -> None:
        proc = self._proc
        if proc.is_alive():
            try:
                self._conn.send(("close", None))
                proc.join(timeout=1.0)
            except (OSError, ValueError, BrokenPipeError):
                pass
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
        try:
            self._conn.close()
        except OSError:
            pass
