"""Cluster-level flow affinity: which board owns which flow.

The front-end switch hashes each wire arrival's 5-tuple (the same CRC
the in-board hash LB uses, one level up) and steers the packet to its
owner board.  Established flows are *pinned* to their first owner so
they never migrate while that owner stays live; when a board is
drained or evicted its pins are dropped and the flows re-steer
deterministically onto the surviving boards.

Under process sharding every board carries its own affinity *replica*.
Replicas stay consistent without any cross-process chatter because a
given flow always arrives on the same board's wire (per-port seeded
generators), so exactly one replica ever pins it — and liveness events
(drain/restore/evict) are broadcast and applied at the same horizon
barrier on every replica.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.lb import flow_hash
from .spec import ClusterSpec


class ClusterAffinity:
    """One board's replica of the cluster flow-steering map."""

    def __init__(self, cluster: ClusterSpec, board: int) -> None:
        self.cluster = cluster
        self.board = board
        self.live: List[bool] = [True] * cluster.boards
        self.pins: Dict[int, int] = {}
        self.repinned = 0

    # -- liveness ----------------------------------------------------------

    def drain(self, board: int) -> None:
        """Remove ``board`` from the steering map; drop its pins so the
        affected flows re-steer on their next packet."""
        self.live[board] = False
        stale = [h for h, b in self.pins.items() if b == board]
        for h in stale:
            del self.pins[h]
        self.repinned += len(stale)

    def restore(self, board: int) -> None:
        self.live[board] = True

    @property
    def live_boards(self) -> List[int]:
        return [b for b, up in enumerate(self.live) if up]

    # -- steering ----------------------------------------------------------

    def owner(self, packet) -> int:
        """The board this wire arrival belongs to (pins it if new)."""
        n = self.cluster.boards
        if n == 1:
            return 0
        h = flow_hash(packet)
        pinned = self.pins.get(h)
        if pinned is not None and self.live[pinned]:
            return pinned
        live = self.live_boards
        if not live:
            # every board is drained: keep the packet where it landed
            # rather than inventing a destination
            return self.board
        if self.cluster.affinity == "local":
            target = self.board if self.live[self.board] else live[h % len(live)]
        else:
            primary = h % n
            target = primary if self.live[primary] else live[h % len(live)]
        if self.cluster.pin_flows:
            self.pins[h] = target
        return target
