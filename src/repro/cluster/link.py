"""The inter-board MAC link: a deterministic serialization model.

Unlike the in-board :class:`~repro.core.mac.SerialLink` this model is
*eventless*: the source board computes each crossing packet's arrival
time arithmetically (``max(emit, busy) + serialization + latency``)
and the destination schedules the delivery at the next horizon
barrier.  Keeping the link stateless apart from one ``busy_until``
float is what makes an N-shard run bit-identical to the inline run —
the same float operations execute in the same order per link
regardless of which process hosts the source board.

Every ordered board pair gets its own link (the artifact's two boards
are joined by two unidirectional 100G cables; an N-board rack is the
full mesh of those).
"""

from __future__ import annotations


class BoardLink:
    """One unidirectional inter-board cable."""

    def __init__(self, gbps: float, latency_cycles: float, freq_hz: float) -> None:
        self.gbps = gbps
        self.latency_cycles = latency_cycles
        #: cycles to serialize one byte at ``gbps`` on a ``freq_hz`` clock
        self.cycles_per_byte = 8.0 * freq_hz / (gbps * 1e9)
        self.busy_until = 0.0
        self.packets = 0
        self.bytes = 0

    def send(self, emit_cycles: float, n_bytes: int) -> float:
        """Account one packet; returns its arrival time at the far end.

        Arrival is strictly greater than ``emit + latency``, which is
        the lookahead the bounded-lag horizon relies on: a packet
        emitted inside window ``k`` can only arrive in window ``k+1``
        or later (for any horizon <= the link latency).
        """
        start = emit_cycles if emit_cycles > self.busy_until else self.busy_until
        self.busy_until = start + n_bytes * self.cycles_per_byte
        self.packets += 1
        self.bytes += n_bytes
        return self.busy_until + self.latency_cycles
