"""The N-board cluster engine: bounded-lag horizon synchronisation.

:class:`ClusterEngine` runs one :class:`~repro.analysis.spec.ExperimentSpec`
whose ``cluster`` field describes an N-board rack.  Every board is an
independent :class:`~repro.serve.session.SimSession` advanced in
lockstep windows of ``horizon_cycles``; packets that cross boards are
exchanged at the window barriers in one deterministic merge
(sorted by ``(arrival, source board, emission seq)``), which is exact
— not approximate — because the horizon never exceeds the inter-board
link latency (see :mod:`repro.cluster.spec`).

The same barrier loop drives two execution layouts through one shard
transport API (:mod:`repro.cluster.shard`): ``shards=1`` hosts every
board inline; ``shards=N`` spreads boards over spawn-context worker
processes.  All control decisions (measurement phases, watchdog
eviction, scheduled events, sampling) are taken *here*, from metric
streams that are bit-identical in both layouts, so an N-shard run
produces a byte-identical :class:`~repro.analysis.spec.ExperimentResult`
to the inline run — differentially tested like every other subsystem.

Failover mirrors the in-board watchdog one level up: a board that
stops completing packets for ``watchdog_horizons`` consecutive windows
is evicted from the affinity map (its flows re-steer onto the
survivors) and the outage is logged with detection/recovery times for
the cluster MTTR report.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.spec import ExperimentResult, ExperimentSpec, SpecError
from ..analysis.harness import ThroughputResult
from ..core.profiler import Sample
from ..faults.metrics import dip_profile
from ..schema import stamp
from ..sim.clock import max_effective_gbps
from .shard import ClusterShardError, InlineShard, ProcessShard

#: Horizons with zero cluster-wide progress before the run is declared
#: stalled (a safety net — the per-board sessions have no deadline of
#: their own under the cluster's unbounded window).
_STALL_HORIZONS = 400

_EVENT_KINDS = ("drain", "restore", "wedge_board", "unwedge_board")


def _normalize_event(event: Any) -> Tuple[float, str, int]:
    """Accept ``(at_cycles, kind, board)`` / ``(kind, at_cycles, board)``
    tuples or ``{"kind", "at_cycles", "board"}`` dicts — the kind is the
    only string field, so the orders are unambiguous."""
    if isinstance(event, dict):
        at, kind, board = event["at_cycles"], event["kind"], event["board"]
    elif isinstance(event[0], str):
        kind, at, board = event
    else:
        at, kind, board = event
    kind = str(kind)
    if kind not in _EVENT_KINDS:
        raise SpecError(
            f"unknown cluster event kind {kind!r}; choices: {list(_EVENT_KINDS)}"
        )
    return (float(at), kind, int(board))


class ClusterEngine:
    """One cluster experiment, stepped barrier by barrier.

    ``events`` schedules liveness changes (``drain`` / ``restore`` /
    ``wedge_board`` / ``unwedge_board``) at absolute cycle times; they
    apply at the first barrier at or after their timestamp, identically
    in every shard layout.  Events and ``shards`` are *execution*
    parameters — deliberately outside the spec, so a cluster point's
    cache key covers exactly what determines its steady-state numbers.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        shards: int = 1,
        events: Sequence[Any] = (),
        shard_timeout: Optional[float] = 120.0,
    ) -> None:
        if spec.cluster is None:
            raise SpecError("ClusterEngine needs a spec with a cluster field")
        if shards < 1:
            raise SpecError("shards must be >= 1")
        self.spec = spec
        self.cluster = spec.cluster
        self.shards = min(shards, self.cluster.boards)
        self.shard_timeout = shard_timeout
        self.spec_key = spec.cache_key()
        self.events = sorted(_normalize_event(e) for e in events)
        self._next_event = 0

        self.now = 0.0
        self.horizons = 0
        self._shards: List[Any] = []
        self._started = False
        self._closed = False
        self._result: Optional[ExperimentResult] = None
        self._snapshot_seq = 0

        boards = self.cluster.boards
        self._metrics: List[Optional[Dict[str, Any]]] = [None] * boards
        self._pending: Dict[int, list] = {}
        self._cross_packets = 0
        self._cross_bytes = 0
        self._applied_events: List[Dict[str, Any]] = []

        # cluster measurement phase machine (warmup -> measure -> done)
        self._phase = "warmup"
        self._measure_t0 = 0.0
        self._measure_base: List[Optional[Dict[str, Any]]] = [None] * boards

        # cluster-level rate sampler
        self.samples: List[Sample] = []
        self._sample_t0 = 0.0
        self._sample_base: Optional[Dict[str, int]] = None
        self._measure_skip = 1

        # cluster watchdog state
        self._progress = [0] * boards
        self._absorbed = [0] * boards
        self._zero_streak = [0] * boards
        self._has_progressed = [False] * boards
        self._admin_drained = set()
        self._auto_evicted = set()
        self._outages: List[Dict[str, Any]] = []
        self._stall_streak = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Build the shards (idempotent)."""
        if self._started:
            return
        if self._closed:
            raise ClusterShardError("cluster engine already closed")
        boards = list(range(self.cluster.boards))
        if self.shards == 1:
            self._shards = [InlineShard(0, self.spec, boards)]
        else:
            try:
                pickle.dumps(self.spec)
            except Exception as exc:
                raise ClusterShardError(
                    f"spec is not picklable ({exc}); a sharded cluster ships "
                    "board specs to spawn workers — run with shards=1"
                ) from exc
            groups = [boards[j :: self.shards] for j in range(self.shards)]
            self._shards = [
                ProcessShard(j, self.spec, group, timeout=self.shard_timeout)
                for j, group in enumerate(groups)
            ]
        self._started = True

    def close(self) -> None:
        for shard in self._shards:
            try:
                shard.close()
            except Exception:
                pass
        self._shards = []
        self._closed = True

    def __del__(self) -> None:  # defensive: never leak worker processes
        try:
            if self._started and not self._closed:
                self.close()
        except Exception:
            pass

    # -- the barrier loop --------------------------------------------------

    @property
    def measurement_done(self) -> bool:
        return self._phase == "done"

    def _apply_event(self, kind: str, board: int, source: str) -> None:
        for shard in self._shards:
            shard.apply_event(kind, board)
        if kind == "drain":
            self._admin_drained.add(board)
            self._zero_streak[board] = 0
        elif kind == "restore":
            self._admin_drained.discard(board)
            self._auto_evicted.discard(board)
            # re-arm only once the board progresses again: a restored
            # board whose flows were all re-pinned away is idle, not
            # dead, and must not be spuriously re-evicted
            self._has_progressed[board] = False
            self._zero_streak[board] = 0
        self._applied_events.append(
            {"t": self.now, "kind": kind, "board": board, "source": source}
        )

    def _due_events(self) -> None:
        while (
            self._next_event < len(self.events)
            and self.events[self._next_event][0] <= self.now
        ):
            _at, kind, board = self.events[self._next_event]
            self._apply_event(kind, board, "scheduled")
            self._next_event += 1

    def _completions(self) -> int:
        return sum(m["completions"] for m in self._metrics if m is not None)

    def _totals(self) -> Dict[str, int]:
        keys = ("tx_bytes", "tx_packets", "host_bytes", "rx_drops")
        out = {k: 0 for k in keys}
        for m in self._metrics:
            if m is not None:
                for k in keys:
                    out[k] += m[k]
        return out

    def advance_horizon(self) -> None:
        """Advance every board one window and run the barrier logic."""
        self.start()
        if self.measurement_done:
            return
        self._due_events()
        horizon = self.now + self.cluster.horizon_cycles
        if horizon > self.spec.window.max_cycles:
            raise RuntimeError(
                f"cluster run exceeded max_cycles={self.spec.window.max_cycles:g} "
                f"in phase {self._phase!r} at {self._completions()} completions"
            )

        outgoing: List[tuple] = []
        before = self._completions() if any(self._metrics) else 0
        for shard in self._shards:
            deliveries = {
                b: self._pending.pop(b) for b in shard.boards if b in self._pending
            }
            out, metrics = shard.advance(horizon, deliveries)
            for board, entries in out.items():
                outgoing.extend(entries)
            for board, m in metrics.items():
                self._metrics[board] = m

        # deterministic merge: arrival time, then source board, then
        # per-source emission sequence — a total order identical in
        # every process layout
        outgoing.sort(key=lambda e: (e[0], e[1], e[2]))
        for entry in outgoing:
            self._pending.setdefault(entry[3], []).append(entry)
            self._cross_packets += 1
            self._cross_bytes += len(entry[5].data)

        self.now = horizon
        self.horizons += 1
        self._watchdog_tick()
        self._sample_tick()
        self._pump_measurement()

        if self._completions() == before:
            self._stall_streak += 1
            if self._stall_streak >= _STALL_HORIZONS:
                raise RuntimeError(
                    f"cluster stalled: no completions for {_STALL_HORIZONS} "
                    f"horizons (phase {self._phase!r}, "
                    f"{self._completions()} completions, t={self.now:g})"
                )
        else:
            self._stall_streak = 0

    def _watchdog_tick(self) -> None:
        threshold = self.cluster.watchdog_horizons
        for board in range(self.cluster.boards):
            total = self._metrics[board]["completions"]
            delta = total - self._progress[board]
            self._progress[board] = total
            absorbed = self._metrics[board]["absorbed_bytes"]
            absorbed_delta = absorbed - self._absorbed[board]
            self._absorbed[board] = absorbed
            if delta > 0:
                self._has_progressed[board] = True
                self._zero_streak[board] = 0
                if board in self._auto_evicted:
                    # the board came back: log recovery, restore steering
                    for outage in self._outages:
                        if outage["board"] == board and outage["recovered_at"] is None:
                            outage["recovered_at"] = self.now
                            outage["mttr_cycles"] = self.now - outage["detected_at"]
                    self._apply_event("restore", board, "watchdog")
                continue
            if (
                threshold == 0
                or board in self._admin_drained
                or board in self._auto_evicted
                or not self._has_progressed[board]
            ):
                continue
            if absorbed_delta == 0:
                # idle, not dead: the board is taking no traffic (e.g.
                # restored after failover with all its flows re-pinned
                # away), so zero completions prove nothing
                continue
            self._zero_streak[board] += 1
            if self._zero_streak[board] >= threshold:
                self._outages.append(
                    {
                        "board": board,
                        "detected_at": self.now,
                        "recovered_at": None,
                        "mttr_cycles": None,
                    }
                )
                self._auto_evicted.add(board)
                self._apply_event("evict", board, "watchdog")

    def _sample_tick(self) -> None:
        totals = self._totals()
        if self._sample_base is None:
            self._sample_base = totals
            self._sample_t0 = 0.0
        if self.now - self._sample_t0 < self.cluster.sample_cycles:
            return
        clock = self.spec.config.clock
        seconds = clock.cycles_to_seconds(self.now - self._sample_t0)
        base = self._sample_base
        self.samples.append(
            Sample(
                t_start_cycles=self._sample_t0,
                t_end_cycles=self.now,
                gbps=(totals["tx_bytes"] - base["tx_bytes"]) * 8 / seconds / 1e9,
                mpps=(totals["tx_packets"] - base["tx_packets"]) / seconds / 1e6,
                rx_drops=totals["rx_drops"] - base["rx_drops"],
                host_gbps=(totals["host_bytes"] - base["host_bytes"])
                * 8
                / seconds
                / 1e9,
            )
        )
        self._sample_t0 = self.now
        self._sample_base = totals

    def _pump_measurement(self) -> None:
        window = self.spec.window
        while self._phase != "done":
            done = self._completions()
            if self._phase == "warmup":
                if done < window.warmup_packets:
                    return
                self._phase = "measure"
                self._measure_t0 = self.now
                self._measure_base = [dict(m) for m in self._metrics]
                self._measure_skip = max(1, len(self.samples))
            else:
                if done < window.warmup_packets + window.measure_packets:
                    return
                self._finish()
                self._phase = "done"

    def _finish(self) -> None:
        spec = self.spec
        clock = spec.config.clock
        boards = self.cluster.boards
        elapsed = self.now - self._measure_t0
        seconds = clock.cycles_to_seconds(elapsed)

        def delta(key: str) -> int:
            return sum(
                self._metrics[b][key] - self._measure_base[b][key]
                for b in range(boards)
            )

        tx_bytes = delta("tx_bytes")
        tx_packets = delta("tx_packets")
        if spec.include_host:
            tx_bytes += delta("host_bytes")
            tx_packets += delta("host_packets")
        if spec.include_absorbed:
            tx_bytes = delta("absorbed_bytes")
            tx_packets = spec.window.measure_packets

        if seconds > 0:
            achieved_gbps = tx_bytes * 8 / seconds / 1e9
            achieved_mpps = tx_packets / seconds / 1e6
        else:
            achieved_gbps = 0.0
            achieved_mpps = 0.0

        rpu_counts: List[int] = []
        for b in range(boards):
            rpu_counts.extend(
                now - base
                for now, base in zip(
                    self._metrics[b]["rpu_packets"],
                    self._measure_base[b]["rpu_packets"],
                )
            )
        total_rpus = boards * spec.config.n_rpus
        cpp = 0.0
        if achieved_mpps > 0:
            cpp = total_rpus * clock.freq_hz / (achieved_mpps * 1e6)

        offered_total = spec.traffic.offered_gbps * boards
        self._throughput = ThroughputResult(
            packet_size=spec.traffic.packet_size,
            offered_gbps=offered_total,
            achieved_gbps=achieved_gbps,
            achieved_mpps=achieved_mpps,
            line_rate_gbps=max_effective_gbps(
                offered_total, spec.traffic.packet_size
            ),
            rx_drops=delta("rx_drops"),
            rpu_packet_counts=rpu_counts,
            cycles_per_packet=cpp,
        )

    # -- results -----------------------------------------------------------

    def run_to_completion(self) -> ExperimentResult:
        """Advance barriers until the cluster measurement completes."""
        self.start()
        try:
            while not self.measurement_done:
                self.advance_horizon()
            if self._result is None:
                self._result = self._assemble()
        finally:
            self.close()
        return self._result

    run = run_to_completion

    def result(self) -> ExperimentResult:
        if self._result is None:
            if not self.measurement_done:
                raise RuntimeError("cluster measurement not complete; keep stepping")
            self._result = self._assemble()
            self.close()
        return self._result

    def _assemble(self) -> ExperimentResult:
        finals: Dict[int, Dict[str, Any]] = {}
        for shard in self._shards:
            finals.update(shard.finalize())

        counters: Dict[str, int] = {}
        firmware_totals: Dict[str, int] = {}
        repinned = 0
        for board in range(self.cluster.boards):
            final = finals[board]
            for key, value in final["counters"].items():
                counters[key] = counters.get(key, 0) + value
            for key, value in final["firmware_totals"].items():
                firmware_totals[key] = firmware_totals.get(key, 0) + value
            repinned += final["repinned"]

        mttrs = [
            o["mttr_cycles"] for o in self._outages if o["mttr_cycles"] is not None
        ]
        resilience = {
            "dip": dip_profile(self.samples, skip=self._measure_skip),
            "watchdog": [dict(o) for o in self._outages],
            "mttr_cycles": max(mttrs) if mttrs else 0.0,
            "samples": len(self.samples),
        }

        per_board = [
            {
                "board": b,
                "completions": self._metrics[b]["completions"],
                "tx_bytes": self._metrics[b]["tx_bytes"],
                "tx_packets": self._metrics[b]["tx_packets"],
                "rx_drops": self._metrics[b]["rx_drops"],
                "live": b not in self._admin_drained and b not in self._auto_evicted,
                "fluid": finals[b].get("fluid"),
            }
            for b in range(self.cluster.boards)
        ]

        # rack-level fluid roll-up (None for event-fidelity specs): the
        # per-board engines warp independently inside their horizon
        # windows, so the rack totals are plain sums
        board_fluid = [finals[b].get("fluid") for b in range(self.cluster.boards)]
        fluid_summary = None
        if any(f is not None for f in board_fluid):
            live = [f for f in board_fluid if f is not None]
            fluid_summary = {
                "boards_eligible": sum(1 for f in live if f["eligible"]),
                "boards_engaged": sum(1 for f in live if f["engaged"]),
                "warps": sum(f["warps"] for f in live),
                "periods_warped": sum(f["periods_warped"] for f in live),
                "warped_cycles": sum(f["warped_cycles"] for f in live),
                "cross_deopts": sum(f["cross_deopts"] for f in live),
                "occupancy": {
                    "event": 1.0
                    - sum(f["occupancy"]["fluid"] for f in live) / len(live),
                    "fluid": sum(f["occupancy"]["fluid"] for f in live)
                    / len(live),
                },
            }

        result = ExperimentResult(
            spec_key=self.spec_key,
            throughput=self._throughput,
            counters=counters,
            firmware_totals=firmware_totals,
        )
        result.cluster = {
            "boards": self.cluster.boards,
            "affinity": self.cluster.affinity,
            "link_gbps": self.cluster.link_gbps,
            "horizon_cycles": self.cluster.horizon_cycles,
            "horizons": self.horizons,
            "cross_board": {
                "packets": self._cross_packets,
                "bytes": self._cross_bytes,
                "repinned_flows": repinned,
            },
            "per_board": per_board,
            "fluid": fluid_summary,
            "events": [dict(e) for e in self._applied_events],
            "resilience": resilience,
        }
        return result

    # -- session-compatible surface (serve / CLI) --------------------------

    def step(
        self,
        n_events: Optional[int] = None,
        until_ts: Optional[float] = None,
        cycles: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Advance whole horizons (the cluster's event granularity).

        ``n_events`` bounds the number of *barriers* crossed;
        ``until_ts``/``cycles`` bound simulated time, rounded up to the
        next barrier.  Mirrors :meth:`SimSession.step`'s envelope so
        the serve RPC layer drives either transparently.
        """
        self.start()
        bound = until_ts
        if cycles is not None:
            rel = self.now + cycles
            bound = rel if bound is None else min(bound, rel)
        crossed = 0
        while not self.measurement_done:
            if n_events is not None and crossed >= n_events:
                break
            if bound is not None and self.now >= bound:
                break
            self.advance_horizon()
            crossed += 1
        return {
            "events": crossed,
            "now": self.now,
            "measurement_done": self.measurement_done,
        }

    def control(self, action: str, board: int = 0, **params) -> Dict[str, Any]:
        """Live cluster control: drain/restore/wedge/unwedge a board."""
        if params:
            raise SpecError(f"unknown cluster control parameters: {sorted(params)}")
        if action not in _EVENT_KINDS:
            raise SpecError(
                f"unknown cluster control action {action!r}; "
                f"choices: {list(_EVENT_KINDS)}"
            )
        board = int(board)
        if not 0 <= board < self.cluster.boards:
            raise SpecError(
                f"board {board} out of range (cluster has {self.cluster.boards})"
            )
        self.start()
        self._apply_event(action, board, "control")
        return {"action": action, "board": board, "t": self.now}

    def snapshot(self) -> Dict[str, Any]:
        """Cluster telemetry with one block per board
        (``repro-cluster-snapshot/1``)."""
        self.start()
        self._snapshot_seq += 1
        last = self.samples[-1] if self.samples else None
        boards = []
        for b in range(self.cluster.boards):
            m = self._metrics[b]
            boards.append(
                {
                    "board": b,
                    "live": b not in self._admin_drained
                    and b not in self._auto_evicted,
                    "drained": b in self._admin_drained,
                    "evicted": b in self._auto_evicted,
                    "completions": 0 if m is None else m["completions"],
                    "tx_packets": 0 if m is None else m["tx_packets"],
                    "rx_drops": 0 if m is None else m["rx_drops"],
                    "fluid": None if m is None else m.get("fluid"),
                }
            )
        detail = {}
        for shard in self._shards:
            detail.update(shard.board_snapshots())
        window = self.spec.window
        payload: Dict[str, Any] = {
            "seq": self._snapshot_seq,
            "now_cycles": self.now,
            "horizons": self.horizons,
            "horizon_cycles": self.cluster.horizon_cycles,
            "shards": self.shards,
            "boards": boards,
            "cross_board": {
                "packets": self._cross_packets,
                "bytes": self._cross_bytes,
            },
            "rates": {
                "tx_gbps": 0.0 if last is None else last.gbps,
                "tx_mpps": 0.0 if last is None else last.mpps,
            },
            "measurement": {
                "mode": "throughput",
                "phase": self._phase,
                "completions": self._completions() if any(self._metrics) else 0,
                "target": (
                    window.warmup_packets
                    if self._phase == "warmup"
                    else window.warmup_packets + window.measure_packets
                ),
            },
            "events": [dict(e) for e in self._applied_events],
            "watchdog": [dict(o) for o in self._outages],
            "per_board_detail": {str(b): snap for b, snap in sorted(detail.items())},
        }
        return stamp(payload, "repro-cluster-snapshot")


def run_cluster_experiment(
    spec: ExperimentSpec,
    shards: int = 1,
    events: Sequence[Any] = (),
    shard_timeout: Optional[float] = 120.0,
) -> ExperimentResult:
    """Run one cluster point to completion (the batch entry point)."""
    return ClusterEngine(
        spec, shards=shards, events=events, shard_timeout=shard_timeout
    ).run_to_completion()
