"""Multi-board Rosebud clusters (N-board racks, horizon-sharded).

The artifact pairs two boards behind a front-end switch; this package
models the general N-board rack: a :class:`ClusterSpec` inside an
:class:`~repro.analysis.spec.ExperimentSpec` (spec v7), flow-affine
steering with pinning and failover (:mod:`repro.cluster.affinity`),
deterministic inter-board links (:mod:`repro.cluster.link`), and a
bounded-lag :class:`ClusterEngine` that can shard the boards across
worker processes byte-identically (:mod:`repro.cluster.shard`).

``ClusterEngine`` is imported lazily: :mod:`repro.analysis.spec` pulls
:class:`ClusterSpec` from here at import time, while the engine itself
leans on the analysis and serve layers — eager re-export would cycle.
"""

from .affinity import ClusterAffinity
from .link import BoardLink
from .spec import AFFINITY_POLICIES, ClusterError, ClusterSpec

__all__ = [
    "AFFINITY_POLICIES",
    "BoardLink",
    "ClusterAffinity",
    "ClusterEngine",
    "ClusterError",
    "ClusterShardError",
    "ClusterSpec",
    "run_cluster_experiment",
]

_LAZY = {
    "ClusterEngine": "engine",
    "run_cluster_experiment": "engine",
    "ClusterShardError": "shard",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    mod = importlib.import_module(f".{module}", __name__)
    value = getattr(mod, name)
    globals()[name] = value
    return value
