"""The two replay-cache layers: instruction-level and behavioural."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .record import ReplayRecord
from .stats import ReplayStats


class ReplayCache:
    """Instruction-level record store for :class:`~repro.core.funcsim.FunctionalRpu`.

    Keys are ``(class signature, slot tag)``; the class signature
    promises byte-identical frame contents, the tag pins the packet
    slot (records capture absolute slot addresses).  Each key holds a
    short list of start-state variants — steady-state loops produce
    one, mixed traffic (imix) produces one per predecessor class.

    The cache is **per CPU**: records embed the CPU's code-epoch
    counter, and any epoch change (firmware reload, self-modifying
    code) flushes the whole store on the next lookup.  Do not share one
    instance between cores — share a :class:`ReplayStats` instead.
    """

    def __init__(
        self,
        stats: Optional[ReplayStats] = None,
        max_records: int = 8192,
        max_variants: int = 4,
    ) -> None:
        self.stats = stats if stats is not None else ReplayStats()
        self.max_records = max_records
        self.max_variants = max_variants
        self._records: Dict[Any, List[ReplayRecord]] = {}
        self._size = 0
        self._code_epoch: Optional[int] = None
        #: verified chain edges ``(id(prev), id(next))``: next's start
        #: arch state equals prev's (fixed) end state, so a hit that
        #: directly follows prev may skip the register/CSR compares.
        #: Cleared with the records — ids are only unique while the
        #: records they name are alive.
        self._edges: set = set()

    def lookup(self, key: Any, code_epoch: int) -> Tuple[ReplayRecord, ...]:
        """Candidate records for ``key``, flushing first if the code
        epoch moved (stale decode ⇒ every record is suspect)."""
        if code_epoch != self._code_epoch:
            if self._records:
                self.invalidate("code epoch changed")
            self._code_epoch = code_epoch
        recs = self._records.get(key)
        return tuple(recs) if recs else ()

    def store(self, key: Any, record: ReplayRecord) -> bool:
        """Retain ``record`` under ``key``; False when capacity-refused.

        Records are never evicted individually (a full cache just stops
        accepting), so a stored record stays alive — and its ``id()``
        unambiguous in the chain-edge set — until the next flush."""
        if self._size >= self.max_records:
            return False  # full: keep serving what we have
        variants = self._records.setdefault(key, [])
        if len(variants) >= self.max_variants:
            return False
        variants.append(record)
        self._size += 1
        return True

    def invalidate(self, reason: str = "") -> None:
        self._records.clear()
        self._edges.clear()
        self._size = 0
        self.stats.invalidations += 1

    def __len__(self) -> int:
        return self._size


class FirmwareReplayCache:
    """Behavioural-model memoization for the event-driven simulator.

    Wraps :meth:`FirmwareModel.process`: a record stores the returned
    :class:`~repro.core.firmware_api.FirmwareResult` (results are
    treated as immutable by the datapath) plus the public integer
    counter deltas the call applied to the firmware's replay owners.
    The key is ``(firmware class, class signature, ingress port,
    rpu index, firmware token)`` — the token is the firmware's own
    digest of the mutable state its decisions depend on; ``None``
    (the default) bypasses caching entirely.

    One instance is shared by every RPU of a system (clones share
    behaviour; deltas are re-bound to the calling clone's owners), and
    may persist across sweep points that run the same firmware.
    """

    def __init__(
        self, stats: Optional[ReplayStats] = None, max_records: int = 65536
    ) -> None:
        self.stats = stats if stats is not None else ReplayStats()
        self.max_records = max_records
        self._records: Dict[tuple, Tuple[Any, tuple]] = {}

    def execute(self, firmware: Any, packet: Any, rpu_index: int) -> Any:
        token = firmware.replay_token()
        class_key = packet.class_key
        if token is None or class_key is None:
            self.stats.bypasses += 1
            return firmware.process(packet, rpu_index)
        key = (type(firmware), class_key, packet.ingress_port, rpu_index, token)
        rec = self._records.get(key)
        if rec is not None:
            result, deltas = rec
            if deltas:
                owners = firmware.replay_owners()
                for owner_index, name, delta in deltas:
                    owner = owners[owner_index]
                    setattr(owner, name, getattr(owner, name) + delta)
            self.stats.hits += 1
            return result
        owners = firmware.replay_owners()
        before = [_int_attrs(owner) for owner in owners]
        result = firmware.process(packet, rpu_index)
        self.stats.misses += 1
        if firmware.replay_token() != token:
            # processing itself moved the token (stateful after all):
            # the record would never validate — don't store it
            return result
        deltas: List[Tuple[int, str, int]] = []
        for owner_index, owner in enumerate(owners):
            old = before[owner_index]
            for name, value in _int_attrs(owner).items():
                delta = value - old.get(name, 0)
                if delta:
                    deltas.append((owner_index, name, delta))
        if len(self._records) < self.max_records:
            self._records[key] = (result, tuple(deltas))
        return result

    def invalidate(self, reason: str = "") -> None:
        self._records.clear()
        self.stats.invalidations += 1

    def __len__(self) -> int:
        return len(self._records)


def _int_attrs(owner: Any) -> Dict[str, int]:
    """Public integer counters of a replay owner (the same attribute
    slice ``analysis.engine._firmware_totals`` aggregates)."""
    out: Dict[str, int] = {}
    for name, value in vars(owner).items():
        if name.startswith("_") or isinstance(value, bool):
            continue
        if isinstance(value, int):
            out[name] = value
    return out
