"""Shared hit/miss accounting for both replay-cache layers."""

from __future__ import annotations

from typing import Dict


class ReplayStats:
    """Counters proving what the cache did.

    * ``hits`` — packets applied from a record without executing.
    * ``misses`` — no record for the key yet; real execution recorded.
    * ``fallbacks`` — a record existed but its guard failed (start
      state, read set, or accelerator token diverged); real execution.
    * ``bypasses`` — caching declined up front (no class signature, no
      firmware token, or a record marked non-replayable).
    * ``invalidations`` — explicit flushes (fault injectors, firmware
      reload, self-modifying code).
    """

    __slots__ = ("hits", "misses", "fallbacks", "bypasses", "invalidations")

    FIELDS = ("hits", "misses", "fallbacks", "bypasses", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fallbacks = 0
        self.bypasses = 0
        self.invalidations = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.fallbacks + self.bypasses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.FIELDS}

    def delta(self, base: Dict[str, int]) -> Dict[str, int]:
        """Counters accumulated since ``base`` (a prior snapshot) —
        per-point reporting for warm caches shared across sweep points."""
        return {name: getattr(self, name) - base.get(name, 0) for name in self.FIELDS}

    def merge(self, other: "ReplayStats") -> None:
        for name in self.FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{n}={getattr(self, n)}" for n in self.FIELDS)
        return f"<ReplayStats {body}>"
