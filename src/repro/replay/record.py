"""Record/replay capture for the functional simulator.

A *packet bracket* is everything the firmware does between picking up a
posted descriptor and retiring the send that answers it.  During a
recording run the CPU's data bus is swapped for a
:class:`TraceRecorder`, which classifies every transaction:

* **RAM reads** become the record's *guard set* — re-read and compared
  against live memory before a replay commits.  Reads that land inside
  the packet slot or its header copy are *class-covered* (the class
  signature promises byte-identical frames) and need no guard; reads of
  bytes the bracket itself wrote earlier are self-satisfied.  A read
  that mixes self-written and fresh bytes is declared unreplayable.
* **RAM writes** are captured verbatim and re-applied on replay through
  the real bus (so store hooks — SMC invalidation — still fire).
* **Interconnect reads** are validated symbolically: descriptor-field
  reads must match the descriptor at the head of the RX queue, and any
  other offset (the free-running ``CYCLES`` register in particular)
  makes the bracket unreplayable.
* **Interconnect writes** split by effect: releases retire descriptors,
  the send sequence is precomputed into ready :class:`SentPacket`
  entries (frame bytes are class-deterministic) stamped at the recorded
  cycle offsets, and anything else (debug) is re-issued verbatim.
* **Accelerator MMIO** is re-issued in order and guarded by the
  accelerator's :meth:`~repro.accel.base.Accelerator.replay_token`; an
  accelerator without a token makes the bracket unreplayable.

Anything else that could make replay diverge — ``mcycle``/``minstret``
CSR reads, host ecall handlers, halting, self-modifying code detected
via the CPU's code-epoch counter — also marks the bracket unreplayable.
The cache then simply never stores it: correctness over hit rate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Interconnect register offsets a bracket may read before its release
#: (see ``repro.firmware.asm_sources`` for the map).
_DESCRIPTOR_READ_OFFSETS = frozenset((0x00, 0x04, 0x08, 0x0C, 0x10))
_IO_RELEASE_OFFSET = 0x14
#: Send-path offsets; their effects are precomputed at record time (the
#: sent frames are a pure function of the packet class), so replay
#: skips the MMIO dispatch and the packet-memory re-dump entirely.
_IO_SEND_OFFSETS = frozenset((0x18, 0x1C, 0x20))

#: Lazily bound to funcsim's SentPacket (importing it eagerly would be
#: circular: funcsim imports this module).
_SENT_PACKET = None

# op codes for the compact replay action list
OP_RAM_W = 0
OP_IO_W = 1
OP_ACC_R = 2
OP_ACC_W = 3

#: Sentinel: the bracket performed no accelerator MMIO, skip the token check.
NO_ACCEL_TOKEN = object()


class ReplayDivergenceError(RuntimeError):
    """A validated replay produced a different value than its record.

    This fires only when the replay contract was violated upstream (an
    accelerator token that does not cover all state its MMIO reads
    depend on); it is an assertion, not a recoverable fallback.
    """


class TraceRecorder:
    """Bus proxy that captures one packet bracket.

    Instruction fetches go through :meth:`read_u32` untraced — code is
    guarded by the CPU's code-epoch counter instead of a per-fetch
    read set.
    """

    __slots__ = (
        "bus",
        "_cpu",
        "_io_lo",
        "_io_hi",
        "_acc_lo",
        "_acc_hi",
        "_covered",
        "_start_cycles",
        "ops",
        "guard_reads",
        "_guard_seen",
        "_written",
        "_released",
        "unreplayable",
        "reason",
    )

    def __init__(
        self,
        cpu: Any,
        io_range: Tuple[int, int],
        acc_range: Optional[Tuple[int, int]],
        covered_ranges: Sequence[Tuple[int, int]],
    ) -> None:
        self.bus = cpu.bus
        self._cpu = cpu
        self._io_lo, self._io_hi = io_range
        if acc_range is None:
            self._acc_lo, self._acc_hi = -1, -1
        else:
            self._acc_lo, self._acc_hi = acc_range
        self._covered = tuple(covered_ranges)
        self._start_cycles = cpu.cycles
        self.ops: List[tuple] = []
        self.guard_reads: List[Tuple[int, int, int]] = []
        self._guard_seen: set = set()
        self._written: set = set()
        self._released = 0
        self.unreplayable = False
        self.reason = ""

    # -- policy ------------------------------------------------------------

    def mark_unreplayable(self, reason: str) -> None:
        if not self.unreplayable:
            self.unreplayable = True
            self.reason = reason

    def _is_covered(self, addr: int, nbytes: int) -> bool:
        for lo, hi in self._covered:
            if lo <= addr and addr + nbytes <= hi:
                return True
        return False

    # -- the bus interface the interpreter uses ----------------------------

    def read_u32(self, addr: int) -> int:
        # instruction fetch: guarded by the code epoch, not traced
        return self.bus.read_u32(addr)

    def read(self, addr: int, nbytes: int) -> int:
        value = self.bus.read(addr, nbytes)
        if addr >= self._io_lo:
            if addr < self._io_hi:
                offset = addr - self._io_lo
                if offset not in _DESCRIPTOR_READ_OFFSETS:
                    self.mark_unreplayable(f"interconnect read at +0x{offset:x}")
                elif self._released:
                    # the head descriptor changed under the bracket
                    self.mark_unreplayable("descriptor read after release")
                return value
            if self._acc_lo <= addr < self._acc_hi:
                self.ops.append((OP_ACC_R, addr - self._acc_lo, nbytes, value))
                return value
            self.mark_unreplayable(f"read of unmapped I/O 0x{addr:x}")
            return value
        # RAM
        if self._is_covered(addr, nbytes):
            return value
        written = self._written
        key = (addr, nbytes)
        if key in self._guard_seen:
            return value
        hit_written = 0
        for b in range(addr, addr + nbytes):
            if b in written:
                hit_written += 1
        if hit_written == nbytes:
            return value  # reading back our own writes
        if hit_written:
            self.mark_unreplayable("read mixes fresh and self-written bytes")
            return value
        self._guard_seen.add(key)
        self.guard_reads.append((addr, nbytes, value))
        return value

    def write(self, addr: int, value: int, nbytes: int) -> None:
        if addr >= self._io_lo:
            if addr < self._io_hi:
                offset = addr - self._io_lo
                if offset == _IO_RELEASE_OFFSET:
                    self._released += 1
                self.ops.append(
                    (OP_IO_W, offset, value, nbytes, self._cpu.cycles - self._start_cycles)
                )
                self.bus.write(addr, value, nbytes)
                return
            if self._acc_lo <= addr < self._acc_hi:
                self.ops.append(
                    (
                        OP_ACC_W,
                        addr - self._acc_lo,
                        value,
                        nbytes,
                        self._cpu.cycles - self._start_cycles,
                    )
                )
                self.bus.write(addr, value, nbytes)
                return
            self.mark_unreplayable(f"write to unmapped I/O 0x{addr:x}")
            self.bus.write(addr, value, nbytes)
            return
        self.ops.append((OP_RAM_W, addr, value, nbytes))
        for b in range(addr, addr + nbytes):
            self._written.add(b)
        self.bus.write(addr, value, nbytes)


class ReplayRecord:
    """One packet bracket: start-state guard, action list, end state.

    The recorded op stream is compiled once, at store time, into
    per-kind lists so the hit path is a handful of tight loops.  The
    reordering is sound: RAM, interconnect, and accelerator are
    independent state machines (within-kind order is preserved, and RAM
    writes land before accelerator ops so DMA-triggering control writes
    stream the right payload bytes)."""

    __slots__ = (
        "descriptor",
        "start_pc",
        "start_regs",
        "start_csrs",
        "start_wfi",
        "start_send",
        "guard_reads",
        "ram_writes",
        "acc_ops",
        "acc_compiled",
        "io_other",
        "releases",
        "sends",
        "accel_token",
        "end_pc",
        "end_regs",
        "end_csrs",
        "end_wfi",
        "end_send",
        "cycles_delta",
        "instret_delta",
        "code_epoch",
        "pure",
    )

    def __init__(
        self,
        descriptor: Tuple[int, int, int, int],
        start_pc: int,
        start_regs: List[int],
        start_csrs: Dict[int, int],
        start_wfi: bool,
        start_send: Tuple[int, int],
        guard_reads: List[Tuple[int, int, int]],
        ops: List[tuple],
        sends: Tuple[Tuple[int, bytes, int, int], ...],
        accel_token: Any,
        end_pc: int,
        end_regs: List[int],
        end_csrs: Optional[Dict[int, int]],
        end_wfi: bool,
        end_send: Tuple[int, int],
        cycles_delta: int,
        instret_delta: int,
        code_epoch: int,
        dma_accel: bool = False,
    ) -> None:
        self.descriptor = descriptor
        self.start_pc = start_pc
        self.start_regs = start_regs
        self.start_csrs = start_csrs
        self.start_wfi = start_wfi
        self.start_send = start_send
        self.guard_reads = guard_reads
        self.accel_token = accel_token
        self.end_pc = end_pc
        self.end_regs = end_regs
        self.end_csrs = end_csrs
        self.end_wfi = end_wfi
        self.end_send = end_send
        self.cycles_delta = cycles_delta
        self.instret_delta = instret_delta
        self.code_epoch = code_epoch
        # compile the ordered op stream into per-kind apply lists
        ram_writes: List[Tuple[int, int, int]] = []
        acc_ops: List[tuple] = []
        io_other: List[Tuple[int, int, int]] = []
        releases = 0
        for op in ops:
            code = op[0]
            if code == OP_RAM_W:
                ram_writes.append((op[1], op[2], op[3]))
            elif code == OP_IO_W:
                offset = op[1]
                if offset == _IO_RELEASE_OFFSET:
                    releases += 1
                elif offset not in _IO_SEND_OFFSETS:
                    io_other.append((offset, op[2], op[3]))
            else:  # OP_ACC_R / OP_ACC_W
                acc_ops.append(op)
        self.ram_writes = ram_writes
        self.acc_ops = acc_ops
        self.io_other = io_other
        self.releases = releases
        self.sends = sends
        #: resolved (is_write, handler, value-or-expected, mask) list,
        #: filled lazily on first apply when the accelerator has no DMA
        #: wrapper (handlers are bound once at define_register time)
        self.acc_compiled: Optional[list] = None if (acc_ops and not dma_accel) else ()
        #: a *pure* record touches no memory on either side of a hit:
        #: no guarded reads to re-check, no RAM writes to re-apply, and
        #: no DMA-streaming accelerator that would read packet memory.
        #: Pure hits never need the deferred packet DMA materialized.
        self.pure = not guard_reads and not ram_writes and not (
            acc_ops and dma_accel
        )

    # -- hit path ----------------------------------------------------------

    def validate(self, rpu: Any) -> bool:
        """Read-only guard: may the record be applied to ``rpu`` now?"""
        cpu = rpu.cpu
        if (
            cpu.halted
            or cpu.waiting_for_interrupt is not self.start_wfi
            or cpu.pc != self.start_pc
            or cpu.regs != self.start_regs
            or cpu.csrs != self.start_csrs
        ):
            return False
        rx = rpu._rx
        if not rx or rx[0] != self.descriptor:
            return False
        if (rpu._send_tag, rpu._send_len) != self.start_send:
            return False
        if self.accel_token is not NO_ACCEL_TOKEN:
            accel = rpu.accelerator
            if accel is None or accel.replay_token() != self.accel_token:
                return False
        read = rpu.bus.read
        for addr, nbytes, value in self.guard_reads:
            if read(addr, nbytes) != value:
                return False
        return True

    def validate_chained(self, rpu: Any) -> bool:
        """Guard for a hit that directly follows a record whose end
        state this record's start state has already been verified
        against (a chain edge).  The architectural compares are implied
        by that edge — apply() restores the predecessor's end state
        verbatim and nothing executed since — so only the inputs that
        can still change are checked: the head descriptor, the
        accelerator token, and the guarded RAM reads."""
        rx = rpu._rx
        if not rx or rx[0] != self.descriptor:
            return False
        if self.accel_token is not NO_ACCEL_TOKEN:
            accel = rpu.accelerator
            if accel is None or accel.replay_token() != self.accel_token:
                return False
        if self.guard_reads:
            read = rpu.bus.read
            for addr, nbytes, value in self.guard_reads:
                if read(addr, nbytes) != value:
                    return False
        return True

    def _compile_acc(self, rpu: Any) -> list:
        """Resolve accelerator ops to their bound register handlers —
        skips the MMIO lambda/dispatch layers on every later hit.  Only
        reached for non-DMA accelerators (``acc_compiled`` starts as an
        empty tuple otherwise)."""
        regs = rpu.accelerator._regs
        out = []
        for op in self.acc_ops:
            entry = regs[op[1]]
            if op[0] == OP_ACC_W:
                # op layout: (code, offset, value, nbytes, cycle-offset)
                out.append((True, entry[1], op[2], 0))
            else:
                # op layout: (code, offset, nbytes, value)
                out.append((False, entry[0], op[3], (1 << (op[2] * 8)) - 1))
        return out

    def apply(self, rpu: Any) -> None:
        """Commit the bracket: re-apply RAM writes (store hooks fire),
        re-issue accelerator MMIO (counters and faults stay exact),
        retire descriptors, append the precomputed sends with their
        recorded cycle offsets, then restore the architectural end
        state."""
        global _SENT_PACKET
        cpu = rpu.cpu
        start_cycles = cpu.cycles
        if self.ram_writes:
            bus_write = rpu.bus.write
            for addr, value, nbytes in self.ram_writes:
                bus_write(addr, value, nbytes)
        if self.acc_ops:
            compiled = self.acc_compiled
            if compiled is None:
                compiled = self._compile_acc(rpu)
                self.acc_compiled = compiled
            if compiled:
                for is_write, handler, val, mask in compiled:
                    if is_write:
                        handler(val)
                    else:
                        got = handler() & mask
                        if got != val:
                            raise ReplayDivergenceError(
                                f"accelerator read returned 0x{got:x}, record "
                                f"expected 0x{val:x}: the accelerator's "
                                "replay_token() does not cover all state its "
                                "MMIO depends on"
                            )
            else:
                # DMA-streaming accelerator: go through the wrapper so a
                # CTRL start replays the payload stream from packet memory
                acc_read = rpu._accel_read
                acc_write = rpu._accel_write
                for op in self.acc_ops:
                    if op[0] == OP_ACC_W:
                        acc_write(op[1], op[2], op[3])
                    else:  # OP_ACC_R
                        value = acc_read(op[1], op[2])
                        if value != op[3]:
                            raise ReplayDivergenceError(
                                f"accelerator read +0x{op[1]:x} returned "
                                f"0x{value:x}, record expected 0x{op[3]:x}: "
                                "the accelerator's replay_token() does not "
                                "cover all state its MMIO depends on"
                            )
        rx = rpu._rx
        for _ in range(self.releases):
            if rx:
                rx.popleft()
        if self.io_other:
            io_write = rpu._io_write
            for offset, value, nbytes in self.io_other:
                io_write(offset, value, nbytes)
        if self.sends:
            if _SENT_PACKET is None:
                from ..core.funcsim import SentPacket as _SENT_PACKET  # noqa: F811
            sent_append = rpu.sent.append
            for tag, data, port, cyc in self.sends:
                sent_append(_SENT_PACKET(tag, data, port, start_cycles + cyc))
        rpu._send_tag, rpu._send_len = self.end_send
        cpu.regs[:] = self.end_regs
        cpu.pc = self.end_pc
        if self.end_csrs is not None:
            cpu.csrs.clear()
            cpu.csrs.update(self.end_csrs)
        cpu.waiting_for_interrupt = self.end_wfi
        cpu.cycles = start_cycles + self.cycles_delta
        cpu.instret += self.instret_delta
