"""Packet-class replay cache (PR 4).

The paper's workloads spend almost all simulated CPU time re-executing
the *same* firmware path for behaviourally identical packets: same
headers, same size, same accelerator verdict, different payload bytes.
This package memoizes that work at both simulation layers:

* :class:`ReplayCache` — instruction-level record/replay for the
  functional simulator (``core.funcsim``).  A miss records the packet
  bracket (every bus transaction the firmware performs between picking
  up a descriptor and posting its send) together with the architectural
  start/end state; a hit re-validates the start state and the record's
  read set against live memory and then applies the captured effects —
  identical register file, identical memory, identical cycle stamps —
  without entering the CPU.
* :class:`FirmwareReplayCache` — behavioural-model memoization for the
  event-driven system simulator (``core.rpu``).  A record stores the
  :class:`~repro.core.firmware_api.FirmwareResult` plus the integer
  counter deltas the firmware applied, keyed by the packet-class
  signature the traffic layer stamps on flyweight templates.

Both caches share one contract: **correctness over hit rate**.  Any
read outside the packet class (mutable per-flow state, cycle counters,
un-tokenized accelerator state) either falls back to real execution or
marks the record non-replayable.  Differential tests assert cached and
uncached runs are byte-identical, including under fault injection.
"""

from .cache import FirmwareReplayCache, ReplayCache
from .record import ReplayDivergenceError, ReplayRecord, TraceRecorder
from .stats import ReplayStats

__all__ = [
    "FirmwareReplayCache",
    "ReplayCache",
    "ReplayDivergenceError",
    "ReplayRecord",
    "ReplayStats",
    "TraceRecorder",
]
