"""A two-pass RV32IM assembler.

Supports the full instruction set the CPU model executes, the usual
pseudo-instructions (``li``, ``la``, ``mv``, ``j``, ``call``, ``ret``,
``beqz`` …), labels, and the directives firmware needs (``.org``,
``.word``, ``.byte``, ``.half``, ``.ascii``/``.asciz``, ``.space``,
``.align``, ``.equ``).  Operands accept decimal/hex numbers, symbols,
``sym+const`` expressions, and ``%hi()``/``%lo()`` relocation operators.

This is the "toolchain" of the reproduction: RPU firmware is written in
assembly source strings and assembled to images the ISS executes, in
place of riscv-gcc in the artifact.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .isa import (
    OP_BRANCH,
    OP_IMM,
    OP_JAL,
    OP_JALR,
    OP_LOAD,
    OP_LUI,
    OP_AUIPC,
    OP_REG,
    OP_STORE,
    OP_SYSTEM,
    DecodeError,
    encode_b,
    encode_i,
    encode_j,
    encode_r,
    encode_s,
    encode_u,
    parse_register,
)


class AssemblerError(ValueError):
    """Raised with source line context on any assembly problem."""

    def __init__(self, message: str, lineno: Optional[int] = None) -> None:
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)


@dataclass
class Program:
    """The assembled output: a flat image plus the symbol table."""

    image: bytes
    symbols: Dict[str, int]
    base: int = 0

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError as exc:
            raise AssemblerError(f"unknown symbol {name!r}") from exc


_MEM_OPERAND = re.compile(r"^(.*)\(\s*([a-zA-Z0-9]+)\s*\)$")
_HI_LO = re.compile(r"^%(hi|lo)\((.+)\)$")

# funct3 tables for plain encodings
_BRANCHES = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}
_LOADS = {"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
_STORES = {"sb": 0, "sh": 1, "sw": 2}
_OP_IMMS = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}
_OPS = {
    "add": (0, 0), "sub": (0, 0x20), "sll": (1, 0), "slt": (2, 0), "sltu": (3, 0),
    "xor": (4, 0), "srl": (5, 0), "sra": (5, 0x20), "or": (6, 0), "and": (7, 0),
    "mul": (0, 1), "mulh": (1, 1), "mulhsu": (2, 1), "mulhu": (3, 1),
    "div": (4, 1), "divu": (5, 1), "rem": (6, 1), "remu": (7, 1),
}
_SHIFT_IMMS = {"slli": (1, 0), "srli": (5, 0), "srai": (5, 0x20)}
_CSR_OPS = {"csrrw": 1, "csrrs": 2, "csrrc": 3, "csrrwi": 5, "csrrsi": 6, "csrrci": 7}

_CSR_NAMES = {
    "mstatus": 0x300, "mie": 0x304, "mtvec": 0x305, "mscratch": 0x340,
    "mepc": 0x341, "mcause": 0x342, "mtval": 0x343, "mip": 0x344,
    "mcycle": 0xB00, "minstret": 0xB02, "mhartid": 0xF14,
}


@dataclass
class _Line:
    lineno: int
    label: Optional[str]
    mnemonic: Optional[str]
    operands: List[str]
    addr: int = 0
    size: int = 0


class Assembler:
    """Two-pass assembler producing a flat little-endian image."""

    def __init__(self, base: int = 0) -> None:
        self.base = base

    def assemble(self, source: str) -> Program:
        lines = self._tokenize(source)
        symbols: Dict[str, int] = {}
        lines = self._layout(lines, symbols)
        image = self._emit(lines, symbols)
        return Program(image=image, symbols=symbols, base=self.base)

    # -- pass 0: tokenize ----------------------------------------------------

    def _tokenize(self, source: str) -> List[_Line]:
        out: List[_Line] = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            text = raw.split("#", 1)[0].strip()
            if not text:
                continue
            # peel off any labels (allow several on one line)
            while True:
                match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$", text)
                if not match:
                    break
                out.append(_Line(lineno, match.group(1), None, []))
                text = match.group(2).strip()
            if not text:
                continue
            parts = text.split(None, 1)
            mnemonic = parts[0].lower()
            operands = (
                [op.strip() for op in _split_operands(parts[1])] if len(parts) > 1 else []
            )
            out.append(_Line(lineno, None, mnemonic, operands))
        return out

    # -- pass 1: layout / symbols ---------------------------------------------

    def _layout(self, lines: List[_Line], symbols: Dict[str, int]) -> List[_Line]:
        pc = self.base
        for line in lines:
            line.addr = pc
            if line.label is not None:
                if line.label in symbols:
                    raise AssemblerError(f"duplicate label {line.label!r}", line.lineno)
                symbols[line.label] = pc
                continue
            assert line.mnemonic is not None
            line.size = self._sizeof(line, symbols)
            pc += line.size
        return lines

    def _sizeof(self, line: _Line, symbols: Dict[str, int]) -> int:
        m = line.mnemonic
        assert m is not None
        if m == ".equ":
            if len(line.operands) != 2:
                raise AssemblerError(".equ needs name, value", line.lineno)
            symbols[line.operands[0]] = self._const(line.operands[1], symbols, line.lineno)
            return 0
        if m == ".org":
            target = self._const(line.operands[0], symbols, line.lineno)
            if target < line.addr:
                raise AssemblerError(".org cannot move backwards", line.lineno)
            return target - line.addr
        if m == ".align":
            align = 1 << self._const(line.operands[0], symbols, line.lineno)
            return (-line.addr) % align
        if m == ".space":
            return self._const(line.operands[0], symbols, line.lineno)
        if m == ".word":
            return 4 * len(line.operands)
        if m == ".half":
            return 2 * len(line.operands)
        if m == ".byte":
            return len(line.operands)
        if m in (".ascii", ".asciz"):
            text = _parse_string(line.operands[0], line.lineno)
            return len(text) + (1 if m == ".asciz" else 0)
        if m in (".text", ".data", ".globl", ".global", ".section"):
            return 0
        # instructions: everything is 4 bytes except li/la/call (up to 8)
        if m in ("li", "la", "call", "tail"):
            return 8
        return 4

    # -- pass 2: emit ---------------------------------------------------------

    def _emit(self, lines: List[_Line], symbols: Dict[str, int]) -> bytes:
        image = bytearray()

        def pad_to(addr: int) -> None:
            want = addr - self.base
            if want > len(image):
                image.extend(b"\x00" * (want - len(image)))

        for line in lines:
            if line.label is not None:
                continue
            m = line.mnemonic
            assert m is not None
            pad_to(line.addr)
            if m.startswith("."):
                image.extend(self._emit_directive(line, symbols))
            else:
                for word in self._emit_instruction(line, symbols):
                    image.extend(word.to_bytes(4, "little"))
        return bytes(image)

    def _emit_directive(self, line: _Line, symbols: Dict[str, int]) -> bytes:
        m = line.mnemonic
        assert m is not None
        if m in (".equ", ".text", ".data", ".globl", ".global", ".section"):
            return b""
        if m in (".org", ".align", ".space"):
            return b"\x00" * line.size
        if m == ".word":
            return b"".join(
                (self._const(op, symbols, line.lineno) & 0xFFFFFFFF).to_bytes(4, "little")
                for op in line.operands
            )
        if m == ".half":
            return b"".join(
                (self._const(op, symbols, line.lineno) & 0xFFFF).to_bytes(2, "little")
                for op in line.operands
            )
        if m == ".byte":
            return bytes(
                self._const(op, symbols, line.lineno) & 0xFF for op in line.operands
            )
        if m in (".ascii", ".asciz"):
            text = _parse_string(line.operands[0], line.lineno)
            return text + (b"\x00" if m == ".asciz" else b"")
        raise AssemblerError(f"unknown directive {m}", line.lineno)

    def _emit_instruction(self, line: _Line, symbols: Dict[str, int]) -> List[int]:
        m = line.mnemonic
        ops = line.operands
        lineno = line.lineno
        assert m is not None

        def reg(i: int) -> int:
            try:
                return parse_register(ops[i])
            except (IndexError, DecodeError) as exc:
                raise AssemblerError(str(exc), lineno) from exc

        def const(i: int) -> int:
            return self._const(ops[i], symbols, lineno)

        def rel(i: int) -> int:
            return self._const(ops[i], symbols, lineno) - line.addr

        def need(n: int) -> None:
            if len(ops) != n:
                raise AssemblerError(f"{m} expects {n} operands, got {len(ops)}", lineno)

        try:
            # --- plain encodings ---
            if m in _OPS:
                need(3)
                f3, f7 = _OPS[m]
                return [encode_r(f7, reg(2), reg(1), f3, reg(0), OP_REG)]
            if m in _OP_IMMS:
                need(3)
                return [encode_i(const(2), reg(1), _OP_IMMS[m], reg(0), OP_IMM)]
            if m in _SHIFT_IMMS:
                need(3)
                f3, f7 = _SHIFT_IMMS[m]
                shamt = const(2)
                if not 0 <= shamt <= 31:
                    raise AssemblerError(f"shift amount {shamt} out of range", lineno)
                return [encode_r(f7, shamt, reg(1), f3, reg(0), OP_IMM)]
            if m in _BRANCHES:
                need(3)
                return [encode_b(rel(2), reg(1), reg(0), _BRANCHES[m], OP_BRANCH)]
            if m in _LOADS:
                need(2)
                base_reg, offset = self._mem_operand(ops[1], symbols, lineno)
                return [encode_i(offset, base_reg, _LOADS[m], reg(0), OP_LOAD)]
            if m in _STORES:
                need(2)
                base_reg, offset = self._mem_operand(ops[1], symbols, lineno)
                return [encode_s(offset, reg(0), base_reg, _STORES[m], OP_STORE)]
            if m == "lui":
                need(2)
                return [encode_u(const(1) << 12, reg(0), OP_LUI)]
            if m == "auipc":
                need(2)
                return [encode_u(const(1) << 12, reg(0), OP_AUIPC)]
            if m == "jal":
                if len(ops) == 1:  # jal offset  (rd=ra)
                    return [encode_j(rel(0), 1, OP_JAL)]
                need(2)
                return [encode_j(rel(1), reg(0), OP_JAL)]
            if m == "jalr":
                if len(ops) == 1:  # jalr rs -> jalr ra, rs, 0
                    return [encode_i(0, reg(0), 0, 1, OP_JALR)]
                need(2)
                base_reg, offset = self._mem_operand(ops[1], symbols, lineno)
                return [encode_i(offset, base_reg, 0, reg(0), OP_JALR)]
            if m in _CSR_OPS:
                need(3)
                csr = self._csr(ops[1], symbols, lineno)
                if m.endswith("i"):
                    zimm = const(2)
                    if not 0 <= zimm <= 31:
                        raise AssemblerError("csr immediate out of range", lineno)
                    return [encode_i(0, zimm, _CSR_OPS[m], reg(0), OP_SYSTEM) | (csr << 20)]
                return [encode_i(0, reg(2), _CSR_OPS[m], reg(0), OP_SYSTEM) | (csr << 20)]
            if m == "ecall":
                return [0x00000073]
            if m == "ebreak":
                return [0x00100073]
            if m == "mret":
                return [0x30200073]
            if m == "wfi":
                return [0x10500073]
            if m == "fence":
                return [0x0000000F]

            # --- pseudo-instructions ---
            if m == "nop":
                return [encode_i(0, 0, 0, 0, OP_IMM)]
            if m == "mv":
                need(2)
                return [encode_i(0, reg(1), 0, reg(0), OP_IMM)]
            if m == "not":
                need(2)
                return [encode_i(-1, reg(1), 4, reg(0), OP_IMM)]
            if m == "neg":
                need(2)
                return [encode_r(0x20, reg(1), 0, 0, reg(0), OP_REG)]
            if m == "seqz":
                need(2)
                return [encode_i(1, reg(1), 3, reg(0), OP_IMM)]
            if m == "snez":
                need(2)
                return [encode_r(0, reg(1), 0, 3, reg(0), OP_REG)]
            if m == "j":
                need(1)
                return [encode_j(rel(0), 0, OP_JAL)]
            if m == "jr":
                need(1)
                return [encode_i(0, reg(0), 0, 0, OP_JALR)]
            if m == "ret":
                return [encode_i(0, 1, 0, 0, OP_JALR)]
            if m in ("beqz", "bnez", "bltz", "bgez", "blez", "bgtz"):
                need(2)
                offset = rel(1)
                r = reg(0)
                if m == "beqz":
                    return [encode_b(offset, 0, r, 0, OP_BRANCH)]
                if m == "bnez":
                    return [encode_b(offset, 0, r, 1, OP_BRANCH)]
                if m == "bltz":
                    return [encode_b(offset, 0, r, 4, OP_BRANCH)]
                if m == "bgez":
                    return [encode_b(offset, 0, r, 5, OP_BRANCH)]
                if m == "blez":  # r <= 0  <=>  0 >= r  <=> bge zero, r
                    return [encode_b(offset, r, 0, 5, OP_BRANCH)]
                return [encode_b(offset, r, 0, 4, OP_BRANCH)]  # bgtz: blt zero, r
            if m in ("bgt", "ble", "bgtu", "bleu"):
                need(3)
                offset = rel(2)
                f3 = {"bgt": 4, "ble": 5, "bgtu": 6, "bleu": 7}[m]
                # swap operands: bgt a,b -> blt b,a
                return [encode_b(offset, reg(0), reg(1), f3, OP_BRANCH)]
            if m == "csrr":
                need(2)
                csr = self._csr(ops[1], symbols, lineno)
                return [encode_i(0, 0, 2, reg(0), OP_SYSTEM) | (csr << 20)]
            if m == "csrw":
                need(2)
                csr = self._csr(ops[0], symbols, lineno)
                return [encode_i(0, reg(1), 1, 0, OP_SYSTEM) | (csr << 20)]
            if m in ("li", "la"):
                need(2)
                value = const(1) & 0xFFFFFFFF
                return _expand_li(reg(0), value)
            if m in ("call", "tail"):
                need(1)
                target = self._const(ops[0], symbols, lineno)
                offset = target - line.addr
                rd = 1 if m == "call" else 0
                upper = (offset + 0x800) & 0xFFFFF000
                lower = offset - upper
                return [
                    encode_u(upper, rd, OP_AUIPC),
                    encode_i(lower, rd, 0, rd, OP_JALR),
                ]
        except DecodeError as exc:
            raise AssemblerError(str(exc), lineno) from exc

        raise AssemblerError(f"unknown mnemonic {m!r}", lineno)

    # -- operand helpers --------------------------------------------------------

    def _mem_operand(
        self, text: str, symbols: Dict[str, int], lineno: int
    ) -> Tuple[int, int]:
        match = _MEM_OPERAND.match(text.strip())
        if not match:
            raise AssemblerError(f"expected offset(reg), got {text!r}", lineno)
        offset_text = match.group(1).strip() or "0"
        try:
            base_reg = parse_register(match.group(2))
        except DecodeError as exc:
            raise AssemblerError(str(exc), lineno) from exc
        return base_reg, self._const(offset_text, symbols, lineno)

    def _csr(self, text: str, symbols: Dict[str, int], lineno: int) -> int:
        name = text.strip().lower()
        if name in _CSR_NAMES:
            return _CSR_NAMES[name]
        value = self._const(text, symbols, lineno)
        if not 0 <= value <= 0xFFF:
            raise AssemblerError(f"CSR address {value} out of range", lineno)
        return value

    def _const(self, text: str, symbols: Dict[str, int], lineno: int) -> int:
        text = text.strip()
        match = _HI_LO.match(text)
        if match:
            value = self._const(match.group(2), symbols, lineno) & 0xFFFFFFFF
            if match.group(1) == "hi":
                return ((value + 0x800) >> 12) & 0xFFFFF
            lo = value & 0xFFF
            return lo - 0x1000 if lo >= 0x800 else lo
        try:
            return _eval_expr(text, symbols)
        except KeyError as exc:
            raise AssemblerError(f"unknown symbol {exc.args[0]!r}", lineno) from exc
        except (ValueError, SyntaxError) as exc:
            raise AssemblerError(f"bad expression {text!r}: {exc}", lineno) from exc


def _expand_li(rd: int, value: int) -> List[int]:
    """li as lui+addi (always two words so sizing is stable)."""
    upper = (value + 0x800) & 0xFFFFF000
    lower = value - upper
    if lower < -2048:
        lower += 1 << 32
    lower = ((lower + 0x800) & 0xFFF) - 0x800
    return [
        encode_u(upper, rd, OP_LUI),
        encode_i(lower, rd, 0, rd, OP_IMM),
    ]


_TOKEN = re.compile(r"\s*(0x[0-9a-fA-F]+|\d+|[A-Za-z_.$][\w.$]*|[-+()~*<>&|^]|<<|>>)")


def _eval_expr(text: str, symbols: Dict[str, int]) -> int:
    """Evaluate a small constant expression: ints, symbols, + - * () ~ << >> & | ^."""
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if not match:
            raise ValueError(f"bad token at {text[pos:]!r}")
        tok = match.group(1)
        pos = match.end()
        tokens.append(tok)
    # merge shift operators split into single chars
    merged: List[str] = []
    i = 0
    while i < len(tokens):
        if tokens[i] in "<>" and i + 1 < len(tokens) and tokens[i + 1] == tokens[i]:
            merged.append(tokens[i] * 2)
            i += 2
        else:
            merged.append(tokens[i])
            i += 1
    tokens = merged

    def resolve(tok: str) -> int:
        if tok.startswith("0x") or tok.startswith("0X"):
            return int(tok, 16)
        if tok.isdigit():
            return int(tok)
        return symbols[tok]

    # shunting-yard into RPN
    prec = {"|": 1, "^": 2, "&": 3, "<<": 4, ">>": 4, "+": 5, "-": 5, "*": 6, "u-": 7, "~": 7}
    output: List = []
    stack: List[str] = []
    prev_was_value = False
    for tok in tokens:
        if tok not in prec and tok not in "()":
            output.append(resolve(tok))
            prev_was_value = True
        elif tok == "(":
            stack.append(tok)
            prev_was_value = False
        elif tok == ")":
            while stack and stack[-1] != "(":
                output.append(stack.pop())
            if not stack:
                raise ValueError("unbalanced parens")
            stack.pop()
            prev_was_value = True
        else:
            op = tok
            if tok == "-" and not prev_was_value:
                op = "u-"
            elif tok == "~":
                op = "~"
            while (
                stack
                and stack[-1] != "("
                and prec.get(stack[-1], 0) >= prec[op]
                and op not in ("u-", "~")
            ):
                output.append(stack.pop())
            stack.append(op)
            prev_was_value = False
    while stack:
        op = stack.pop()
        if op == "(":
            raise ValueError("unbalanced parens")
        output.append(op)

    # evaluate RPN
    values: List[int] = []
    for item in output:
        if isinstance(item, int):
            values.append(item)
        elif item == "u-":
            values.append(-values.pop())
        elif item == "~":
            values.append(~values.pop())
        else:
            b = values.pop()
            a = values.pop()
            values.append(
                {
                    "+": a + b,
                    "-": a - b,
                    "*": a * b,
                    "<<": a << b,
                    ">>": a >> b,
                    "&": a & b,
                    "|": a | b,
                    "^": a ^ b,
                }[item]
            )
    if len(values) != 1:
        raise ValueError("malformed expression")
    return values[0]


def _split_operands(text: str) -> List[str]:
    """Split on commas not inside parentheses or quotes."""
    out: List[str] = []
    depth = 0
    in_string = False
    current = []
    for ch in text:
        if ch == '"':
            in_string = not in_string
            current.append(ch)
        elif in_string:
            current.append(ch)
        elif ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            out.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        out.append("".join(current))
    return out


def _parse_string(text: str, lineno: int) -> bytes:
    text = text.strip()
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AssemblerError(f"expected quoted string, got {text!r}", lineno)
    body = text[1:-1]
    out = bytearray()
    i = 0
    escapes = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, '"': 34}
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            esc = body[i + 1]
            if esc not in escapes:
                raise AssemblerError(f"bad escape \\{esc}", lineno)
            out.append(escapes[esc])
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)


def assemble(source: str, base: int = 0) -> Program:
    """Convenience one-shot: assemble ``source`` at ``base``."""
    return Assembler(base=base).assemble(source)
