"""Closure-translation fast path for the RV32IM ISS.

Instead of re-dispatching on mnemonic strings every step, each
instruction word is compiled *once* into a zero-argument Python closure
with its register indices, immediates, sign-extension, and precomputed
cycle cost bound in.  Straight-line runs of closures are fused into
**superblocks** keyed by entry pc that execute with a single Python call
per instruction and one interrupt check per block entry.

Parity rules (the differential tests in ``tests/test_riscv_backends.py``
enforce these against the interpreter):

* A closure performs its architectural effect first, then adds its
  cycle cost and bumps ``instret``, and returns the next pc — the same
  order as ``RiscvCpu._execute``, so ``csrr mcycle`` and MMIO cycle
  reads observe identical values.
* While a closure runs, ``cpu.pc`` holds that instruction's address
  (the executor assigns the return value *between* closures), so bus
  faults and ecall handlers see the same pc as the interpreter.
* Every instruction that can change interrupt enablement or redirect
  control (branches, jal/jalr, mret, ecall, ebreak, wfi, csr*)
  terminates its block, and ``RiscvCpu.raise_interrupt`` sets
  ``_break_block``, so interrupts are taken at exactly the same
  instruction boundaries as the interpreter.
* Stores that hit a translated word invalidate it (and every block
  spanning it) via ``RiscvCpu._store_watch`` and abort the current
  block, so self-modifying code never executes stale closures.

Hot-path tricks, in decreasing order of impact: per-site inline caches
for load/store regions (bound method + bounds, like a JIT's monomorphic
IC), factory-specialized closures for the common ALU/branch forms (no
generic-lambda frame), signed compares via the XOR-``0x80000000`` bias,
and a rare-exception protocol (:class:`_BlockAbort`) instead of a
per-instruction flag check for mid-block invalidation/interrupts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from .blocks import MAX_BLOCK, is_block_terminal
from .bus import BusError
from .isa import CC_BRANCH, DecodeError, decode
from .cpu import (
    CSR_MEPC,
    CSR_MIE,
    CSR_MIP,
    CSR_MSTATUS,
    MASK32,
    MSTATUS_MIE,
    MSTATUS_MPIE,
    CpuHalted,
    _div,
    _rem,
    _signed,
)

#: XOR bias that maps two's-complement order onto unsigned order, so
#: signed compares need no sign conversion calls.
_BIAS = 0x80000000

_OpFn = Callable[[], int]


class _BlockAbort(Exception):
    """Internal: a load/store tripped ``_break_block`` (interrupt raised
    by an MMIO handler, or a store patched translated code).  Raised
    *after* the instruction fully retires, with ``cpu.pc`` already
    advanced, so architectural state matches the interpreter exactly;
    the executor catches it and re-enters through the block-entry
    checks.  Only loads and stores can trip the flag (MMIO handlers run
    inside them), so no other closure pays for the check."""


# -- specialized closure factories -------------------------------------------
#
# Each factory binds one decoded instruction's operands and returns the
# closure that executes it.  The common ALU and branch forms get their
# own factory so the hot path has no operator-lambda indirection; the
# long tail (M extension, shifts-by-register, ...) goes through the
# generic tables below.

def _f_addi(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    def fn():
        regs[rd] = (regs[rs1] + imm) & MASK32
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_andi(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    def fn():
        regs[rd] = regs[rs1] & imm & MASK32
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_ori(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    def fn():
        regs[rd] = (regs[rs1] | imm) & MASK32
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_xori(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    def fn():
        regs[rd] = (regs[rs1] ^ imm) & MASK32
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_slti(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    biased = (imm & MASK32) ^ _BIAS
    def fn():
        regs[rd] = 1 if (regs[rs1] ^ _BIAS) < biased else 0
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_sltiu(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    uimm = imm & MASK32
    def fn():
        regs[rd] = 1 if regs[rs1] < uimm else 0
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_slli(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    sh = imm & 0x1F
    def fn():
        regs[rd] = (regs[rs1] << sh) & MASK32
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_srli(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    sh = imm & 0x1F
    def fn():
        regs[rd] = regs[rs1] >> sh
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_srai(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    sh = imm & 0x1F
    def fn():
        regs[rd] = (_signed(regs[rs1]) >> sh) & MASK32
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_add(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    def fn():
        regs[rd] = (regs[rs1] + regs[rs2]) & MASK32
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_sub(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    def fn():
        regs[rd] = (regs[rs1] - regs[rs2]) & MASK32
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_and(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    def fn():
        regs[rd] = regs[rs1] & regs[rs2]
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_or(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    def fn():
        regs[rd] = regs[rs1] | regs[rs2]
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_xor(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    def fn():
        regs[rd] = regs[rs1] ^ regs[rs2]
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_slt(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    def fn():
        regs[rd] = 1 if (regs[rs1] ^ _BIAS) < (regs[rs2] ^ _BIAS) else 0
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


def _f_sltu(cpu, regs, rd, rs1, rs2, imm, cost, next_pc):
    def fn():
        regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
        cpu.cycles += cost
        cpu.instret += 1
        return next_pc
    return fn


_INLINE_OPS = {
    "addi": _f_addi, "andi": _f_andi, "ori": _f_ori, "xori": _f_xori,
    "slti": _f_slti, "sltiu": _f_sltiu,
    "slli": _f_slli, "srli": _f_srli, "srai": _f_srai,
    "add": _f_add, "sub": _f_sub, "and": _f_and, "or": _f_or,
    "xor": _f_xor, "slt": _f_slt, "sltu": _f_sltu,
}


def _b_beq(cpu, regs, rs1, rs2, target, next_pc, ct, cnt):
    def fn():
        if regs[rs1] == regs[rs2]:
            cpu.cycles += ct
            cpu.instret += 1
            return target
        cpu.cycles += cnt
        cpu.instret += 1
        return next_pc
    return fn


def _b_bne(cpu, regs, rs1, rs2, target, next_pc, ct, cnt):
    def fn():
        if regs[rs1] != regs[rs2]:
            cpu.cycles += ct
            cpu.instret += 1
            return target
        cpu.cycles += cnt
        cpu.instret += 1
        return next_pc
    return fn


def _b_blt(cpu, regs, rs1, rs2, target, next_pc, ct, cnt):
    def fn():
        if (regs[rs1] ^ _BIAS) < (regs[rs2] ^ _BIAS):
            cpu.cycles += ct
            cpu.instret += 1
            return target
        cpu.cycles += cnt
        cpu.instret += 1
        return next_pc
    return fn


def _b_bge(cpu, regs, rs1, rs2, target, next_pc, ct, cnt):
    def fn():
        if (regs[rs1] ^ _BIAS) >= (regs[rs2] ^ _BIAS):
            cpu.cycles += ct
            cpu.instret += 1
            return target
        cpu.cycles += cnt
        cpu.instret += 1
        return next_pc
    return fn


def _b_bltu(cpu, regs, rs1, rs2, target, next_pc, ct, cnt):
    def fn():
        if regs[rs1] < regs[rs2]:
            cpu.cycles += ct
            cpu.instret += 1
            return target
        cpu.cycles += cnt
        cpu.instret += 1
        return next_pc
    return fn


def _b_bgeu(cpu, regs, rs1, rs2, target, next_pc, ct, cnt):
    def fn():
        if regs[rs1] >= regs[rs2]:
            cpu.cycles += ct
            cpu.instret += 1
            return target
        cpu.cycles += cnt
        cpu.instret += 1
        return next_pc
    return fn


_BRANCH_OPS = {
    "beq": _b_beq, "bne": _b_bne, "blt": _b_blt,
    "bge": _b_bge, "bltu": _b_bltu, "bgeu": _b_bgeu,
}

# generic long tail: value computations as (a, b) lambdas; one extra
# frame per execution, acceptable for the M extension and friends
_ALU_RR_TAIL: Dict[str, Callable[[int, int], int]] = {
    "sll": lambda a, b: (a << (b & 0x1F)) & MASK32,
    "srl": lambda a, b: a >> (b & 0x1F),
    "sra": lambda a, b: (_signed(a) >> (b & 0x1F)) & MASK32,
    "mul": lambda a, b: (a * b) & MASK32,
    "mulh": lambda a, b: ((_signed(a) * _signed(b)) >> 32) & MASK32,
    "mulhsu": lambda a, b: ((_signed(a) * b) >> 32) & MASK32,
    "mulhu": lambda a, b: ((a * b) >> 32) & MASK32,
    "div": lambda a, b: _div(_signed(a), _signed(b)),
    "divu": lambda a, b: MASK32 if b == 0 else a // b,
    "rem": lambda a, b: _rem(_signed(a), _signed(b)),
    "remu": lambda a, b: a if b == 0 else a % b,
}

#: rd==0 forms of these are architectural no-ops (pure computations)
_PURE_RD_OPS = (
    set(_INLINE_OPS) | set(_ALU_RR_TAIL) | {"lui", "auipc"}
)

_LOAD_BYTES = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}
_STORE_BYTES = {"sb": 1, "sh": 2, "sw": 4}


def _compile(cpu, inst, pc: int) -> Tuple[_OpFn, bool]:
    """Compile ``inst`` at ``pc`` into ``(closure, is_block_terminal)``."""
    m = inst.mnemonic
    # single source of truth for block boundaries, shared with the
    # static CFG builder (repro.verify.cfg)
    terminal = is_block_terminal(m)
    rd = inst.rd
    rs1 = inst.rs1
    rs2 = inst.rs2
    imm = inst.imm
    cost = cpu._cost_table[inst.cost_class]
    next_pc = (pc + 4) & MASK32
    # reset() clears the register file in place, so the list identity is
    # stable for the cpu's lifetime and closures can bind it directly
    regs = cpu.regs

    if rd == 0 and m in _PURE_RD_OPS:
        def fn() -> int:  # writes x0: architectural no-op beyond its cost
            cpu.cycles += cost
            cpu.instret += 1
            return next_pc
        return fn, terminal

    factory = _INLINE_OPS.get(m)
    if factory is not None:
        return factory(cpu, regs, rd, rs1, rs2, imm, cost, next_pc), terminal

    branch = _BRANCH_OPS.get(m)
    if branch is not None:
        target = (pc + imm) & MASK32
        return (
            branch(
                cpu, regs, rs1, rs2, target, next_pc,
                cpu._branch_taken_cost, cpu._cost_table[CC_BRANCH],
            ),
            terminal,
        )

    if m in _ALU_RR_TAIL:
        op = _ALU_RR_TAIL[m]

        def fn() -> int:
            regs[rd] = op(regs[rs1], regs[rs2])
            cpu.cycles += cost
            cpu.instret += 1
            return next_pc

        return fn, terminal

    if m == "lw":
        find = cpu.bus._find
        # inline cache: a given load site almost always hits the same
        # region, so remember [base, limit, innermost reader] and skip
        # the bus scan plus all dispatch frames on the hit path.  The
        # cached callable is the offset-based ``_read`` — the raw MMIO
        # handler itself, or RamRegion's offset twin — so RAM and MMIO
        # cost one call frame alike; the result is masked here because
        # raw handlers are allowed to return unmasked values.
        cache = [1, 0, None]

        def fn() -> int:
            addr = (regs[rs1] + imm) & MASK32
            if not cache[0] <= addr < cache[1]:
                region = find(addr)
                cache[0] = region.base
                cache[1] = region.base + region.size
                cache[2] = region._read
            value = cache[2](addr - cache[0], 4) & MASK32
            if rd:
                regs[rd] = value
            cpu.cycles += cost
            cpu.instret += 1
            if cpu._break_block:
                cpu.pc = next_pc
                raise _BlockAbort
            return next_pc

        return fn, terminal

    if m in _LOAD_BYTES:
        find = cpu.bus._find
        nbytes = _LOAD_BYTES[m]
        signed_load = m in ("lb", "lh")
        sign_bit = 1 << (nbytes * 8 - 1)
        low_mask = sign_bit - 1
        full_mask = (1 << (nbytes * 8)) - 1
        cache = [1, 0, None]

        def fn() -> int:
            addr = (regs[rs1] + imm) & MASK32
            if not cache[0] <= addr < cache[1]:
                region = find(addr)
                cache[0] = region.base
                cache[1] = region.base + region.size
                cache[2] = region._read
            value = cache[2](addr - cache[0], nbytes)
            if signed_load:
                value = ((value & low_mask) - (value & sign_bit)) & MASK32
            else:
                value &= full_mask
            if rd:
                regs[rd] = value
            cpu.cycles += cost
            cpu.instret += 1
            if cpu._break_block:
                cpu.pc = next_pc
                raise _BlockAbort
            return next_pc

        return fn, terminal

    if m in _STORE_BYTES:
        find = cpu.bus._find
        nbytes = _STORE_BYTES[m]
        cache = [1, 0, None]

        def fn() -> int:
            addr = (regs[rs1] + imm) & MASK32
            if not cache[0] <= addr < cache[1]:
                region = find(addr)
                cache[0] = region.base
                cache[1] = region.base + region.size
                cache[2] = region._write
            cache[2](addr - cache[0], regs[rs2], nbytes)
            cpu.cycles += cost
            cpu.instret += 1
            if cpu._break_block:
                cpu.pc = next_pc
                raise _BlockAbort
            return next_pc

        return fn, terminal

    if m == "lui":
        value = imm & MASK32

        def fn() -> int:
            regs[rd] = value
            cpu.cycles += cost
            cpu.instret += 1
            return next_pc

        return fn, terminal

    if m == "auipc":
        value = (pc + imm) & MASK32

        def fn() -> int:
            regs[rd] = value
            cpu.cycles += cost
            cpu.instret += 1
            return next_pc

        return fn, terminal

    if m == "jal":
        target = (pc + imm) & MASK32

        def fn() -> int:
            if rd:
                regs[rd] = next_pc
            cpu.cycles += cost
            cpu.instret += 1
            return target

        return fn, terminal

    if m == "jalr":
        def fn() -> int:
            target = (regs[rs1] + imm) & 0xFFFFFFFE
            if rd:
                regs[rd] = next_pc
            cpu.cycles += cost
            cpu.instret += 1
            return target

        return fn, terminal

    if m == "fence":
        def fn() -> int:
            cpu.cycles += cost
            cpu.instret += 1
            return next_pc

        return fn, terminal

    if m == "ecall":
        def fn() -> int:
            handler = cpu.ecall_handler
            if handler is not None:
                handler(cpu)
            else:
                cpu.halted = True
            cpu.cycles += cost
            cpu.instret += 1
            return next_pc

        return fn, terminal

    if m == "ebreak":
        def fn() -> int:
            cpu.halted = True
            cpu.cycles += cost
            cpu.instret += 1
            return next_pc

        return fn, terminal

    if m == "wfi":
        def fn() -> int:
            cpu.waiting_for_interrupt = True
            cpu.cycles += cost
            cpu.instret += 1
            return next_pc

        return fn, terminal

    if m == "mret":
        def fn() -> int:
            csrs = cpu.csrs
            status = csrs[CSR_MSTATUS]
            if status & MSTATUS_MPIE:
                status |= MSTATUS_MIE
            else:
                status &= ~MSTATUS_MIE
            status |= MSTATUS_MPIE
            csrs[CSR_MSTATUS] = status
            cpu.cycles += cost
            cpu.instret += 1
            return csrs[CSR_MEPC]

        return fn, terminal

    if m.startswith("csr"):
        # csr* can flip mstatus.MIE / mie, so blocks end here and the
        # run loop re-checks pending interrupts — same boundary as the
        # interpreter's per-step check
        def fn() -> int:
            cpu._execute_csr(inst)
            cpu.cycles += cost
            cpu.instret += 1
            return next_pc

        return fn, terminal

    raise DecodeError(f"unimplemented mnemonic {m}")  # pragma: no cover


class TranslatedEngine:
    """Owns the per-word closure cache and the superblock cache."""

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        #: word addr -> (closure, terminal)
        self.ops: Dict[int, Tuple[_OpFn, bool]] = {}
        #: entry pc -> fused closure list
        self.blocks: Dict[int, List[_OpFn]] = {}
        #: word addr -> entry pcs of blocks spanning it
        self.block_index: Dict[int, Set[int]] = {}
        #: the bus object the cached closures were compiled against.
        #: Closures bind ``bus._find`` and region handlers at compile
        #: time, so running them after a bus swap (e.g. the replay
        #: cache's ``record_run`` tracing wrapper) would silently read
        #: and write the *old* bus.  ``run``/``step`` check identity
        #: once per call and fail loudly instead.
        self.compiled_bus = None

    # -- cache maintenance ---------------------------------------------------

    def flush(self) -> None:
        self.ops.clear()
        self.blocks.clear()
        self.block_index.clear()
        self.compiled_bus = None

    def _check_bus(self) -> None:
        if self.compiled_bus is not None and self.compiled_bus is not self.cpu.bus:
            raise RuntimeError(
                "cpu.bus was swapped under the translated engine's "
                "compiled closures; trace through RiscvCpu.record_run "
                "(which bypasses the engine) or invalidate_icache() "
                "before running"
            )

    def invalidate_word(self, word: int) -> None:
        self.ops.pop(word, None)
        for entry in self.block_index.pop(word, ()):
            self.blocks.pop(entry, None)

    # -- translation ---------------------------------------------------------

    def _compile_at(self, pc: int) -> Tuple[_OpFn, bool]:
        cpu = self.cpu
        try:
            inst = decode(cpu.bus.read_u32(pc))
        except (BusError, DecodeError) as exc:
            err = exc

            def fn() -> int:  # fault lazily, exactly when executed
                raise err

            return fn, True  # decode faults end the block (see blocks.py)
        return _compile(cpu, inst, pc)

    def _translate_op(self, pc: int) -> Tuple[_OpFn, bool]:
        entry = self.ops.get(pc)
        if entry is None:
            self.compiled_bus = self.cpu.bus
            entry = self._compile_at(pc)
            self.ops[pc] = entry
            self.cpu._note_code_word(pc)
        return entry

    def translate_block(self, entry_pc: int) -> List[_OpFn]:
        block_index = self.block_index
        ops_list: List[_OpFn] = []
        pc = entry_pc
        for _ in range(MAX_BLOCK):
            fn, terminal = self._translate_op(pc)
            ops_list.append(fn)
            block_index.setdefault(pc, set()).add(entry_pc)
            if terminal:
                break
            pc = (pc + 4) & MASK32
        self.blocks[entry_pc] = ops_list
        return ops_list

    # -- execution -----------------------------------------------------------

    def step(self) -> int:
        """Execute exactly one instruction (interpreter-step parity)."""
        cpu = self.cpu
        if cpu.halted:
            raise CpuHalted("core is halted")
        self._check_bus()

        cause = cpu._pending_interrupt()
        if cause is not None:
            cpu._take_interrupt(cause)

        if cpu.waiting_for_interrupt:
            cpu.cycles += 1
            return 1

        fn, _terminal = self._translate_op(cpu.pc)
        start_cycles = cpu.cycles
        try:
            cpu.pc = fn()
        except _BlockAbort:
            pass  # closure retired fully and set pc itself
        return cpu.cycles - start_cycles

    def run(
        self,
        max_instructions: int = 1_000_000,
        until: Optional[Callable[[object], bool]] = None,
    ) -> int:
        cpu = self.cpu
        self._check_bus()
        blocks = self.blocks
        csrs = cpu.csrs
        executed = 0
        while executed < max_instructions and not cpu.halted:
            if until is not None and until(cpu):
                break

            # inlined _pending_interrupt fast reject (hot: once per block)
            if csrs[CSR_MSTATUS] & MSTATUS_MIE and csrs[CSR_MIP] & csrs[CSR_MIE]:
                cause = cpu._pending_interrupt()
                if cause is not None:
                    cpu._take_interrupt(cause)
            if cpu.waiting_for_interrupt:
                cpu.cycles += 1
                executed += 1
                continue

            pc = cpu.pc
            try:
                ops_list = blocks[pc]
            except KeyError:
                ops_list = self.translate_block(pc)
            remaining = max_instructions - executed
            if len(ops_list) > remaining:
                ops_list = ops_list[:remaining]

            cpu._break_block = False
            before = cpu.instret
            try:
                for fn in ops_list:
                    cpu.pc = fn()
            except _BlockAbort:
                # interrupt raised or code word patched mid-block;
                # re-enter through the checks above
                pass
            executed += cpu.instret - before
        return executed
