"""Firmware image format and loader.

The artifact loads RPU instruction/data/accelerator memories "directly
from the ELF output file of GCC" (Appendix A.6).  Our toolchain is the
built-in assembler, so we define a compact equivalent — the **RFW**
(Rosebud FirmWare) image: a header, a segment table, and per-segment
payloads with CRC32 integrity, covering exactly what the host DMA path
writes at boot (imem, dmem, accelerator tables).

Layout (little-endian)::

    0x00  magic   "RFW1"
    0x04  u32     segment count
    0x08  u32     entry point
    0x0c  u32     header crc32 (over the segment table)
    0x10  segment table: per segment
            u32 kind (1=imem, 2=dmem, 3=accmem)
            u32 load address (within that memory's space)
            u32 length
            u32 payload crc32
    ....  payloads, concatenated in table order
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

MAGIC = b"RFW1"

SEG_IMEM = 1
SEG_DMEM = 2
SEG_ACCMEM = 3

_SEGMENT_KINDS = {SEG_IMEM: "imem", SEG_DMEM: "dmem", SEG_ACCMEM: "accmem"}

_HEADER = struct.Struct("<4sIII")
_SEGMENT = struct.Struct("<IIII")


class ImageError(ValueError):
    """Raised on malformed or corrupted firmware images."""


@dataclass
class Segment:
    """One loadable region of a firmware image."""

    kind: int
    address: int
    payload: bytes

    @property
    def kind_name(self) -> str:
        return _SEGMENT_KINDS.get(self.kind, f"kind{self.kind}")

    def __post_init__(self) -> None:
        if self.kind not in _SEGMENT_KINDS:
            raise ImageError(f"unknown segment kind {self.kind}")
        if self.address < 0:
            raise ImageError("negative load address")


@dataclass
class FirmwareImage:
    """A firmware image: segments + entry point."""

    segments: List[Segment] = field(default_factory=list)
    entry_point: int = 0

    def add_segment(self, kind: int, address: int, payload: bytes) -> None:
        self.segments.append(Segment(kind, address, payload))

    def segment(self, kind: int) -> Optional[Segment]:
        for seg in self.segments:
            if seg.kind == kind:
                return seg
        return None

    # -- serialization ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        table = b""
        payloads = b""
        for seg in self.segments:
            table += _SEGMENT.pack(
                seg.kind, seg.address, len(seg.payload), zlib.crc32(seg.payload)
            )
            payloads += seg.payload
        header = _HEADER.pack(
            MAGIC, len(self.segments), self.entry_point, zlib.crc32(table)
        )
        return header + table + payloads

    @classmethod
    def from_bytes(cls, blob: bytes) -> "FirmwareImage":
        if len(blob) < _HEADER.size:
            raise ImageError("truncated header")
        magic, count, entry, table_crc = _HEADER.unpack_from(blob, 0)
        if magic != MAGIC:
            raise ImageError(f"bad magic {magic!r}")
        table_start = _HEADER.size
        table_end = table_start + count * _SEGMENT.size
        if len(blob) < table_end:
            raise ImageError("truncated segment table")
        table = blob[table_start:table_end]
        if zlib.crc32(table) != table_crc:
            raise ImageError("segment table CRC mismatch")
        image = cls(entry_point=entry)
        offset = table_end
        for index in range(count):
            kind, address, length, crc = _SEGMENT.unpack_from(table, index * _SEGMENT.size)
            payload = blob[offset : offset + length]
            if len(payload) < length:
                raise ImageError(f"truncated payload for segment {index}")
            if zlib.crc32(payload) != crc:
                raise ImageError(f"payload CRC mismatch in segment {index}")
            image.add_segment(kind, address, payload)
            offset += length
        return image

    # -- building from assembly ----------------------------------------------------

    @classmethod
    def from_asm(
        cls,
        source: str,
        data_blobs: Optional[Dict[int, Tuple[int, bytes]]] = None,
    ) -> "FirmwareImage":
        """Assemble ``source`` into the imem segment.

        ``data_blobs`` maps segment kind -> (address, payload) for
        extra dmem/accmem contents (lookup tables and the like).
        """
        from .assembler import assemble

        program = assemble(source)
        image = cls(entry_point=program.base)
        image.add_segment(SEG_IMEM, 0, program.image)
        for kind, (address, payload) in (data_blobs or {}).items():
            image.add_segment(kind, address, payload)
        return image


def load_into_rpu(image: FirmwareImage, rpu) -> None:
    """Load an image into a :class:`repro.core.funcsim.FunctionalRpu` —
    the host-side boot path of Appendix A.6."""
    for seg in image.segments:
        if seg.kind == SEG_IMEM:
            if seg.address + len(seg.payload) > rpu.config.imem_bytes:
                raise ImageError("imem segment does not fit")
            rpu.imem.load_bytes(seg.address, seg.payload)
        elif seg.kind == SEG_DMEM:
            if seg.address + len(seg.payload) > rpu.config.dmem_bytes:
                raise ImageError("dmem segment does not fit")
            rpu.dmem.load_bytes(seg.address, seg.payload)
        elif seg.kind == SEG_ACCMEM:
            rpu.load_accel_table(seg.address, seg.payload)
    rpu.cpu.invalidate_icache()
    rpu.cpu.pc = image.entry_point
