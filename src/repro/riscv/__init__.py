"""RV32IM toolchain: bus, decoder, instruction-set simulator, assembler."""

from .assembler import Assembler, AssemblerError, Program, assemble
from .blocks import (
    MAX_BLOCK,
    TERMINAL_MNEMONICS,
    image_decoder,
    is_block_terminal,
    superblock_pcs,
)
from .bus import BusError, MemoryBus, MmioRegion, RamRegion
from .cpu import (
    BACKENDS,
    CycleModel,
    CpuHalted,
    RiscvCpu,
    get_default_backend,
    set_default_backend,
)
from .isa import ABI_NAMES, DecodeError, Instruction, decode, parse_register, sign_extend

__all__ = [
    "Assembler",
    "AssemblerError",
    "Program",
    "assemble",
    "MAX_BLOCK",
    "TERMINAL_MNEMONICS",
    "image_decoder",
    "is_block_terminal",
    "superblock_pcs",
    "BusError",
    "MemoryBus",
    "MmioRegion",
    "RamRegion",
    "BACKENDS",
    "CycleModel",
    "CpuHalted",
    "RiscvCpu",
    "get_default_backend",
    "set_default_backend",
    "ABI_NAMES",
    "DecodeError",
    "Instruction",
    "decode",
    "parse_register",
    "sign_extend",
]
