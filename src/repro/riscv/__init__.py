"""RV32IM toolchain: bus, decoder, instruction-set simulator, assembler."""

from .assembler import Assembler, AssemblerError, Program, assemble
from .bus import BusError, MemoryBus, MmioRegion, RamRegion
from .cpu import CycleModel, CpuHalted, RiscvCpu
from .isa import ABI_NAMES, DecodeError, Instruction, decode, parse_register, sign_extend

__all__ = [
    "Assembler",
    "AssemblerError",
    "Program",
    "assemble",
    "BusError",
    "MemoryBus",
    "MmioRegion",
    "RamRegion",
    "CycleModel",
    "CpuHalted",
    "RiscvCpu",
    "ABI_NAMES",
    "DecodeError",
    "Instruction",
    "decode",
    "parse_register",
    "sign_extend",
]
