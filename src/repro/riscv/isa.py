"""RV32IM instruction encoding and decoding.

Covers the full RV32I base set plus the M extension (MUL/DIV family),
which is what the VexRiscv configuration used in Rosebud provides, plus
the handful of Zicsr instructions the firmware runtime needs for the
timer/interrupt machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


class DecodeError(ValueError):
    """Raised for unrecognized or malformed encodings."""


def sign_extend(value: int, bits: int) -> int:
    mask = 1 << (bits - 1)
    return (value & (mask - 1)) - (value & mask)


# Cycle-cost classes, assigned at decode time so the retire path never
# has to compare mnemonic strings (the CycleModel keeps a small table
# indexed by these).
CC_SIMPLE = 0
CC_BRANCH = 1
CC_JUMP = 2
CC_LOAD = 3
CC_MUL = 4
CC_DIV = 5
CC_CSR = 6
N_COST_CLASSES = 7

_COST_CLASS = {
    "beq": CC_BRANCH, "bne": CC_BRANCH, "blt": CC_BRANCH,
    "bge": CC_BRANCH, "bltu": CC_BRANCH, "bgeu": CC_BRANCH,
    "jal": CC_JUMP, "jalr": CC_JUMP, "mret": CC_JUMP,
    "lb": CC_LOAD, "lh": CC_LOAD, "lw": CC_LOAD,
    "lbu": CC_LOAD, "lhu": CC_LOAD,
    "mul": CC_MUL, "mulh": CC_MUL, "mulhsu": CC_MUL, "mulhu": CC_MUL,
    "div": CC_DIV, "divu": CC_DIV, "rem": CC_DIV, "remu": CC_DIV,
    "csrrw": CC_CSR, "csrrs": CC_CSR, "csrrc": CC_CSR,
    "csrrwi": CC_CSR, "csrrsi": CC_CSR, "csrrci": CC_CSR,
}


# Transfer-function metadata, shared by every analyzer that abstracts
# instruction semantics (constant propagation in repro.verify.cfg and
# the interval/region abstract interpreter in repro.verify.absint).
# Keeping the tables here — next to the decoder — means a new mnemonic
# cannot be added without its analysis shape being decided in the same
# review.

#: Access width per memory mnemonic.
LOAD_BYTES: Dict[str, int] = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}
STORE_BYTES: Dict[str, int] = {"sb": 1, "sh": 2, "sw": 4}

#: Loads whose result is sign-extended to 32 bits.
SIGNED_LOADS = frozenset({"lb", "lh"})

#: Conditional branch -> (relation on (rs1, rs2), signed compare).
#: Relations are over rs1 relative to rs2: e.g. ``blt`` takes when
#: ``rs1 < rs2``.
BRANCH_RELATIONS: Dict[str, Tuple[str, bool]] = {
    "beq": ("eq", False),
    "bne": ("ne", False),
    "blt": ("lt", True),
    "bge": ("ge", True),
    "bltu": ("lt", False),
    "bgeu": ("ge", False),
}

#: Negation of a branch relation (the not-taken edge's constraint).
NEGATED_RELATION: Dict[str, str] = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt"}

#: Mnemonics that never write a destination register (everything else
#: with ``rd != 0`` clobbers or defines ``rd``).
NO_RD_MNEMONICS = frozenset(
    {"sb", "sh", "sw", "beq", "bne", "blt", "bge", "bltu", "bgeu",
     "fence", "wfi", "mret", "ecall", "ebreak"}
)


def writes_rd(mnemonic: str, rd: int) -> bool:
    """True when the instruction defines ``rd`` (x0 writes are no-ops).

    ``csrrs``/``csrrc`` with ``rs1 == x0`` are pure CSR reads but still
    write ``rd``, so they count; use :func:`writes_csr` for the CSR
    side.
    """
    return rd != 0 and mnemonic not in NO_RD_MNEMONICS


def writes_csr(inst: "Instruction") -> bool:
    """True when a ``csr*`` instruction modifies its CSR (the set/clear
    forms with a zero mask are architecturally reads)."""
    m = inst.mnemonic
    if m in ("csrrw", "csrrwi"):
        return True
    if m in ("csrrs", "csrrc", "csrrsi", "csrrci"):
        return inst.rs1 != 0  # register index, or the uimm for *i forms
    return False


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction: mnemonic + register/immediate fields.

    ``cost_class`` is derived from the mnemonic on construction; the
    cycle models index their cost tables with it instead of scanning
    mnemonic strings on every retire.
    """

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    csr: int = 0
    raw: int = 0
    cost_class: int = CC_SIMPLE

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "cost_class", _COST_CLASS.get(self.mnemonic, CC_SIMPLE)
        )

    def __str__(self) -> str:
        return f"{self.mnemonic} rd=x{self.rd} rs1=x{self.rs1} rs2=x{self.rs2} imm={self.imm}"


# opcode constants
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_REG = 0b0110011
OP_FENCE = 0b0001111
OP_SYSTEM = 0b1110011

_BRANCH_F3 = {0b000: "beq", 0b001: "bne", 0b100: "blt", 0b101: "bge", 0b110: "bltu", 0b111: "bgeu"}
_LOAD_F3 = {0b000: "lb", 0b001: "lh", 0b010: "lw", 0b100: "lbu", 0b101: "lhu"}
_STORE_F3 = {0b000: "sb", 0b001: "sh", 0b010: "sw"}
_IMM_F3 = {
    0b000: "addi",
    0b010: "slti",
    0b011: "sltiu",
    0b100: "xori",
    0b110: "ori",
    0b111: "andi",
}
_REG_F3 = {
    (0b000, 0b0000000): "add",
    (0b000, 0b0100000): "sub",
    (0b001, 0b0000000): "sll",
    (0b010, 0b0000000): "slt",
    (0b011, 0b0000000): "sltu",
    (0b100, 0b0000000): "xor",
    (0b101, 0b0000000): "srl",
    (0b101, 0b0100000): "sra",
    (0b110, 0b0000000): "or",
    (0b111, 0b0000000): "and",
    (0b000, 0b0000001): "mul",
    (0b001, 0b0000001): "mulh",
    (0b010, 0b0000001): "mulhsu",
    (0b011, 0b0000001): "mulhu",
    (0b100, 0b0000001): "div",
    (0b101, 0b0000001): "divu",
    (0b110, 0b0000001): "rem",
    (0b111, 0b0000001): "remu",
}
_CSR_F3 = {
    0b001: "csrrw",
    0b010: "csrrs",
    0b011: "csrrc",
    0b101: "csrrwi",
    0b110: "csrrsi",
    0b111: "csrrci",
}


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word into an :class:`Instruction`."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == OP_LUI:
        return Instruction("lui", rd=rd, imm=sign_extend(word & 0xFFFFF000, 32), raw=word)
    if opcode == OP_AUIPC:
        return Instruction("auipc", rd=rd, imm=sign_extend(word & 0xFFFFF000, 32), raw=word)
    if opcode == OP_JAL:
        imm = (
            ((word >> 31) & 1) << 20
            | ((word >> 12) & 0xFF) << 12
            | ((word >> 20) & 1) << 11
            | ((word >> 21) & 0x3FF) << 1
        )
        return Instruction("jal", rd=rd, imm=sign_extend(imm, 21), raw=word)
    if opcode == OP_JALR:
        if funct3 != 0:
            raise DecodeError(f"bad jalr funct3 {funct3}")
        return Instruction(
            "jalr", rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12), raw=word
        )
    if opcode == OP_BRANCH:
        if funct3 not in _BRANCH_F3:
            raise DecodeError(f"bad branch funct3 {funct3}")
        imm = (
            ((word >> 31) & 1) << 12
            | ((word >> 7) & 1) << 11
            | ((word >> 25) & 0x3F) << 5
            | ((word >> 8) & 0xF) << 1
        )
        return Instruction(
            _BRANCH_F3[funct3], rs1=rs1, rs2=rs2, imm=sign_extend(imm, 13), raw=word
        )
    if opcode == OP_LOAD:
        if funct3 not in _LOAD_F3:
            raise DecodeError(f"bad load funct3 {funct3}")
        return Instruction(
            _LOAD_F3[funct3], rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12), raw=word
        )
    if opcode == OP_STORE:
        if funct3 not in _STORE_F3:
            raise DecodeError(f"bad store funct3 {funct3}")
        imm = ((word >> 25) & 0x7F) << 5 | ((word >> 7) & 0x1F)
        return Instruction(
            _STORE_F3[funct3], rs1=rs1, rs2=rs2, imm=sign_extend(imm, 12), raw=word
        )
    if opcode == OP_IMM:
        if funct3 == 0b001:
            if funct7 != 0:
                raise DecodeError("bad slli funct7")
            return Instruction("slli", rd=rd, rs1=rs1, imm=rs2, raw=word)
        if funct3 == 0b101:
            if funct7 == 0b0000000:
                return Instruction("srli", rd=rd, rs1=rs1, imm=rs2, raw=word)
            if funct7 == 0b0100000:
                return Instruction("srai", rd=rd, rs1=rs1, imm=rs2, raw=word)
            raise DecodeError("bad shift-right funct7")
        if funct3 not in _IMM_F3:
            raise DecodeError(f"bad op-imm funct3 {funct3}")
        return Instruction(
            _IMM_F3[funct3], rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12), raw=word
        )
    if opcode == OP_REG:
        key = (funct3, funct7)
        if key not in _REG_F3:
            raise DecodeError(f"bad op funct3/funct7 {funct3}/{funct7:#x}")
        return Instruction(_REG_F3[key], rd=rd, rs1=rs1, rs2=rs2, raw=word)
    if opcode == OP_FENCE:
        return Instruction("fence", raw=word)
    if opcode == OP_SYSTEM:
        if funct3 == 0:
            imm12 = word >> 20
            if imm12 == 0:
                return Instruction("ecall", raw=word)
            if imm12 == 1:
                return Instruction("ebreak", raw=word)
            if imm12 == 0b001100000010:
                return Instruction("mret", raw=word)
            if imm12 == 0b000100000101:
                return Instruction("wfi", raw=word)
            raise DecodeError(f"bad system imm {imm12:#x}")
        if funct3 in _CSR_F3:
            return Instruction(
                _CSR_F3[funct3], rd=rd, rs1=rs1, csr=(word >> 20) & 0xFFF, raw=word
            )
        raise DecodeError(f"bad system funct3 {funct3}")
    raise DecodeError(f"unknown opcode {opcode:#09b} in word {word:#010x}")


# ---------------------------------------------------------------------------
# Encoders (used by the assembler)
# ---------------------------------------------------------------------------

def _check_reg(reg: int) -> int:
    if not 0 <= reg <= 31:
        raise DecodeError(f"register x{reg} out of range")
    return reg


def encode_r(funct7: int, rs2: int, rs1: int, funct3: int, rd: int, opcode: int) -> int:
    return (
        (funct7 << 25)
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


def encode_i(imm: int, rs1: int, funct3: int, rd: int, opcode: int) -> int:
    if not -2048 <= imm <= 2047:
        raise DecodeError(f"I-immediate {imm} out of range")
    return (
        ((imm & 0xFFF) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


def encode_s(imm: int, rs2: int, rs1: int, funct3: int, opcode: int) -> int:
    if not -2048 <= imm <= 2047:
        raise DecodeError(f"S-immediate {imm} out of range")
    imm &= 0xFFF
    return (
        ((imm >> 5) << 25)
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
    )


def encode_b(imm: int, rs2: int, rs1: int, funct3: int, opcode: int) -> int:
    if imm % 2:
        raise DecodeError("branch offset must be even")
    if not -4096 <= imm <= 4094:
        raise DecodeError(f"B-immediate {imm} out of range")
    imm &= 0x1FFF
    return (
        ((imm >> 12) & 1) << 31
        | ((imm >> 5) & 0x3F) << 25
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | ((imm >> 1) & 0xF) << 8
        | ((imm >> 11) & 1) << 7
        | opcode
    )


def encode_u(imm: int, rd: int, opcode: int) -> int:
    return (imm & 0xFFFFF000) | (_check_reg(rd) << 7) | opcode


def encode_j(imm: int, rd: int, opcode: int) -> int:
    if imm % 2:
        raise DecodeError("jump offset must be even")
    if not -(1 << 20) <= imm <= (1 << 20) - 2:
        raise DecodeError(f"J-immediate {imm} out of range")
    imm &= 0x1FFFFF
    return (
        ((imm >> 20) & 1) << 31
        | ((imm >> 1) & 0x3FF) << 21
        | ((imm >> 11) & 1) << 20
        | ((imm >> 12) & 0xFF) << 12
        | (_check_reg(rd) << 7)
        | opcode
    )


#: ABI register-name mapping (x0..x31 aliases).
ABI_NAMES: Dict[str, int] = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24, "s9": 25,
    "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}


def parse_register(name: str) -> int:
    """Parse ``x7``/``a0``-style register names into indices."""
    name = name.strip().lower()
    if name in ABI_NAMES:
        return ABI_NAMES[name]
    if name.startswith("x"):
        try:
            idx = int(name[1:])
        except ValueError as exc:
            raise DecodeError(f"bad register {name!r}") from exc
        if 0 <= idx <= 31:
            return idx
    raise DecodeError(f"bad register {name!r}")
