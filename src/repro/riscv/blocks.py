"""Shared block-boundary rules for the RV32IM fast path and analyzers.

The closure-translation engine (:mod:`repro.riscv.translate`) and the
static CFG builder (:mod:`repro.verify.cfg`) both partition a firmware
image into straight-line runs.  If they ever disagreed on where a run
ends, the static WCET bound could be computed over different blocks
than the ones the simulator actually executes — so the single source of
truth for "does this instruction terminate a block?" lives here and
both sides import it (``tests/test_verify_cfg.py`` holds a differential
assertion over every bundled firmware).

An instruction terminates a block when it can redirect control or
change interrupt enablement: branches, ``jal``/``jalr``, ``mret``,
``ecall``/``ebreak``, ``wfi``, and every ``csr*`` form.  Decode faults
are also terminal — the translator compiles them into a lazily-raising
closure and ends the block there.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .isa import DecodeError, Instruction, decode

#: Longest straight-line run fused into one superblock.
MAX_BLOCK = 64

_MASK32 = 0xFFFFFFFF

#: Mnemonics that always end a superblock (``csr*`` forms are matched
#: by prefix in :func:`is_block_terminal`, not listed here).
TERMINAL_MNEMONICS = frozenset(
    {
        "beq", "bne", "blt", "bge", "bltu", "bgeu",
        "jal", "jalr",
        "mret", "ecall", "ebreak", "wfi",
    }
)

#: The conditional-branch subset of :data:`TERMINAL_MNEMONICS` (two
#: successors: taken target and fall-through).
BRANCH_MNEMONICS = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu"})


def is_block_terminal(mnemonic: str) -> bool:
    """True when ``mnemonic`` must end a superblock / basic block."""
    return mnemonic in TERMINAL_MNEMONICS or mnemonic.startswith("csr")


def static_successors(inst: Instruction, pc: int) -> Tuple[int, ...]:
    """Static successor pcs of a *terminal* instruction at ``pc``.

    The single source of truth for CFG edges: the verify-side builders
    (:mod:`repro.verify.cfg`) and the abstract interpreter both walk
    edges from here, so a graph they analyze can never disagree with
    the control transfers the simulator performs.  ``jalr``/``mret``
    return no successors (indirect / context restore); ``ebreak`` halts.
    """
    m = inst.mnemonic
    next_pc = (pc + 4) & _MASK32
    if m in BRANCH_MNEMONICS:
        target = (pc + inst.imm) & _MASK32
        return (target, next_pc) if target != next_pc else (next_pc,)
    if m == "jal":
        return ((pc + inst.imm) & _MASK32,)
    if m == "jalr":
        return ()  # indirect: target unknown statically
    if m == "mret":
        return ()  # returns to the interrupted context
    if m == "ebreak":
        return ()  # halts the core
    if m == "ecall":
        return (next_pc,)  # handler runs, execution continues
    # wfi and csr* fall through after their effect
    return (next_pc,)


#: A decoder callback: pc -> decoded instruction, or None when the word
#: at pc does not decode (data, or outside the image).
DecodeAt = Callable[[int], Optional[Instruction]]


def image_decoder(image: bytes, base: int = 0) -> DecodeAt:
    """Build a :data:`DecodeAt` over a flat firmware image at ``base``."""

    def decode_at(pc: int) -> Optional[Instruction]:
        off = pc - base
        if off < 0 or off + 4 > len(image) or off % 4:
            return None
        try:
            return decode(int.from_bytes(image[off:off + 4], "little"))
        except DecodeError:
            return None

    return decode_at


def superblock_pcs(
    decode_at: DecodeAt, entry_pc: int, max_block: int = MAX_BLOCK
) -> List[int]:
    """The instruction addresses the translator would fuse at ``entry_pc``.

    Mirrors ``TranslatedEngine.translate_block`` exactly: walk forward
    from the entry, stop *after* a terminal instruction (or an
    undecodable word, which the translator turns into a terminal fault
    closure), or at the ``max_block`` cap.
    """
    pcs: List[int] = []
    pc = entry_pc & _MASK32
    for _ in range(max_block):
        pcs.append(pc)
        inst = decode_at(pc)
        if inst is None or is_block_terminal(inst.mnemonic):
            break
        pc = (pc + 4) & _MASK32
    return pcs
