"""Memory bus with RAM regions and MMIO dispatch.

Rosebud's RPU exposes accelerators to the RISC-V core through
memory-mapped I/O (§3.3) next to ordinary instruction/data/packet
memories.  The bus maps 32-bit addresses onto registered regions; MMIO
regions call handlers instead of touching backing storage, which is how
the firewall/Pigasus accelerator register files plug in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


class BusError(RuntimeError):
    """Raised on accesses that hit no region or violate alignment."""


@dataclass
class _Region:
    base: int
    size: int
    name: str

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def read_u32(self, addr: int) -> int:
        return self.read(addr, 4)  # type: ignore[attr-defined]


class RamRegion(_Region):
    """A byte-addressable RAM block (little-endian).

    ``write_hook`` (if set) observes every mutation — ``write`` and
    ``load_bytes`` — with the absolute address and length *after* the
    bytes land.  The CPU uses it to keep decoded/translated instruction
    caches coherent with stores into instruction memory.
    """

    def __init__(self, base: int, size: int, name: str = "ram") -> None:
        super().__init__(base, size, name)
        self.data = bytearray(size)
        self.write_hook: Optional[Callable[[int, int], None]] = None

    def read(self, addr: int, nbytes: int) -> int:
        off = addr - self.base
        if off + nbytes > self.size:
            raise BusError(f"read past end of {self.name} at {addr:#x}")
        return int.from_bytes(self.data[off : off + nbytes], "little")

    def read_u32(self, addr: int) -> int:
        """Word read without the generic slicing path (hot for fetch)."""
        off = addr - self.base
        if off + 4 > self.size:
            raise BusError(f"read past end of {self.name} at {addr:#x}")
        d = self.data
        return d[off] | (d[off + 1] << 8) | (d[off + 2] << 16) | (d[off + 3] << 24)

    def write(self, addr: int, value: int, nbytes: int) -> None:
        off = addr - self.base
        if off + nbytes > self.size:
            raise BusError(f"write past end of {self.name} at {addr:#x}")
        self.data[off : off + nbytes] = (value & ((1 << (nbytes * 8)) - 1)).to_bytes(
            nbytes, "little"
        )
        if self.write_hook is not None:
            self.write_hook(addr, nbytes)

    # offset-based twins with the MMIO handler signature, so translated
    # load/store inline caches can bind the innermost callable uniformly
    # for RAM and MMIO regions (one call frame either way)
    def _read(self, off: int, nbytes: int) -> int:
        if off + nbytes > self.size:
            raise BusError(f"read past end of {self.name} at {off + self.base:#x}")
        return int.from_bytes(self.data[off : off + nbytes], "little")

    def _write(self, off: int, value: int, nbytes: int) -> None:
        if off + nbytes > self.size:
            raise BusError(f"write past end of {self.name} at {off + self.base:#x}")
        self.data[off : off + nbytes] = (value & ((1 << (nbytes * 8)) - 1)).to_bytes(
            nbytes, "little"
        )
        if self.write_hook is not None:
            self.write_hook(self.base + off, nbytes)

    def load_bytes(self, offset: int, blob: bytes) -> None:
        if offset + len(blob) > self.size:
            raise BusError(f"blob does not fit in {self.name}")
        self.data[offset : offset + len(blob)] = blob
        if self.write_hook is not None:
            self.write_hook(self.base + offset, len(blob))

    def dump_bytes(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        if length is None:
            length = self.size - offset
        return bytes(self.data[offset : offset + length])


class MmioRegion(_Region):
    """A region backed by read/write handler callables.

    Handlers receive the *offset* within the region, so one accelerator
    wrapper can be mapped at any base.
    """

    def __init__(
        self,
        base: int,
        size: int,
        read_handler: Callable[[int, int], int],
        write_handler: Callable[[int, int, int], None],
        name: str = "mmio",
    ) -> None:
        super().__init__(base, size, name)
        self._read = read_handler
        self._write = write_handler

    def read(self, addr: int, nbytes: int) -> int:
        return self._read(addr - self.base, nbytes) & ((1 << (nbytes * 8)) - 1)

    def read_u32(self, addr: int) -> int:
        return self._read(addr - self.base, 4) & 0xFFFFFFFF

    def write(self, addr: int, value: int, nbytes: int) -> None:
        self._write(addr - self.base, value, nbytes)


class MemoryBus:
    """Routes loads/stores to registered regions.

    Regions may not overlap; lookups scan the (short) region list, which
    is plenty fast for the handful of regions an RPU has.
    """

    def __init__(self) -> None:
        self._regions: List[_Region] = []
        self._last: Optional[_Region] = None
        self._store_watch: Optional[Callable[[int, int], None]] = None

    def add_ram(self, base: int, size: int, name: str = "ram") -> RamRegion:
        region = RamRegion(base, size, name)
        self._add(region)
        if self._store_watch is not None:
            self._hook_region(region, self._store_watch)
        return region

    def watch_stores(self, callback: Callable[[int, int], None]) -> None:
        """Observe every RAM mutation (current and future regions) with
        ``callback(addr, nbytes)``.  Chains with any previous watcher."""
        previous = self._store_watch
        if previous is not None:
            def callback(addr: int, nbytes: int, _prev=previous, _new=callback) -> None:
                _prev(addr, nbytes)
                _new(addr, nbytes)
        self._store_watch = callback
        for region in self._regions:
            if isinstance(region, RamRegion):
                self._hook_region(region, callback)

    @staticmethod
    def _hook_region(region: RamRegion, callback: Callable[[int, int], None]) -> None:
        region.write_hook = callback

    def add_mmio(
        self,
        base: int,
        size: int,
        read_handler: Callable[[int, int], int],
        write_handler: Callable[[int, int, int], None],
        name: str = "mmio",
    ) -> MmioRegion:
        region = MmioRegion(base, size, read_handler, write_handler, name)
        self._add(region)
        return region

    def _add(self, region: _Region) -> None:
        for existing in self._regions:
            if (
                region.base < existing.base + existing.size
                and existing.base < region.base + region.size
            ):
                raise BusError(
                    f"region {region.name} overlaps {existing.name}"
                )
        self._regions.append(region)

    def _find(self, addr: int) -> _Region:
        # most accesses stream into the region hit last time (imem for
        # fetch, pmem for payload walks), so try it before scanning
        region = self._last
        if region is not None and region.contains(addr):
            return region
        for region in self._regions:
            if region.contains(addr):
                self._last = region
                return region
        raise BusError(f"bus access to unmapped address {addr:#010x}")

    def read(self, addr: int, nbytes: int) -> int:
        return self._find(addr).read(addr, nbytes)

    def write(self, addr: int, value: int, nbytes: int) -> None:
        self._find(addr).write(addr, value, nbytes)

    # convenience accessors used by firmware loaders and tests
    def read_u8(self, addr: int) -> int:
        return self.read(addr, 1)

    def read_u16(self, addr: int) -> int:
        return self.read(addr, 2)

    def read_u32(self, addr: int) -> int:
        return self._find(addr).read_u32(addr)

    def write_u8(self, addr: int, value: int) -> None:
        self.write(addr, value, 1)

    def write_u16(self, addr: int, value: int) -> None:
        self.write(addr, value, 2)

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, value, 4)

    def load_blob(self, addr: int, blob: bytes) -> None:
        """Copy ``blob`` into RAM starting at ``addr`` (may span words)."""
        region = self._find(addr)
        if not isinstance(region, RamRegion):
            raise BusError("load_blob target is not RAM")
        region.load_bytes(addr - region.base, blob)

    def dump(self, addr: int, length: int) -> bytes:
        region = self._find(addr)
        if not isinstance(region, RamRegion):
            raise BusError("dump target is not RAM")
        return region.dump_bytes(addr - region.base, length)
