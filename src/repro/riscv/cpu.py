"""RV32IM instruction-set simulator with a VexRiscv-like cycle model.

The CPU models the 5-stage, in-order VexRiscv pipeline used inside each
RPU at instruction granularity: most instructions retire in one cycle;
taken branches and jumps pay a flush penalty; loads pay a use latency;
division is iterative.  That is enough fidelity to *measure* the
cycles-per-packet numbers the paper reports (e.g. the 16-cycle
forwarder loop, §6.1) without simulating per-stage state.

Interrupts follow a simplified machine-mode scheme: external interrupt
lines (Rosebud's *evict*, *poke*, and broadcast-message interrupts) and
a timer line set bits in ``mip``; when enabled via ``mie``/``mstatus.MIE``
the core traps to ``mtvec`` with ``mcause`` indicating the line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .bus import MemoryBus
from .isa import (
    CC_BRANCH,
    CC_CSR,
    CC_DIV,
    CC_JUMP,
    CC_LOAD,
    CC_MUL,
    N_COST_CLASSES,
    DecodeError,
    Instruction,
    decode,
)

MASK32 = 0xFFFFFFFF

#: Execution backends: the reference interpreter and the
#: closure-translation fast path (see :mod:`repro.riscv.translate`).
BACKENDS = ("interp", "translated")

_DEFAULT_BACKEND = "translated"


def set_default_backend(name: str) -> None:
    """Select the backend new :class:`RiscvCpu` instances use when the
    constructor is not told otherwise (the ``--cpu-backend`` CLI knob)."""
    global _DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(f"unknown cpu backend {name!r}; choices: {BACKENDS}")
    _DEFAULT_BACKEND = name


def get_default_backend() -> str:
    return _DEFAULT_BACKEND

# CSR addresses (subset)
CSR_MSTATUS = 0x300
CSR_MIE = 0x304
CSR_MTVEC = 0x305
CSR_MSCRATCH = 0x340
CSR_MEPC = 0x341
CSR_MCAUSE = 0x342
CSR_MTVAL = 0x343
CSR_MIP = 0x344
CSR_MCYCLE = 0xB00
CSR_MINSTRET = 0xB02
CSR_MHARTID = 0xF14

MSTATUS_MIE = 1 << 3
MSTATUS_MPIE = 1 << 7

# Interrupt cause numbers (machine external uses platform-custom lines)
IRQ_TIMER = 7
IRQ_EXTERNAL_BASE = 16  # custom platform lines: 16+line


@dataclass
class CycleModel:
    """Per-instruction-class cycle costs (VexRiscv-flavoured).

    VexRiscv with a 5-stage pipeline retires one instruction per cycle;
    the costs here are *additional* stall cycles.
    """

    base: int = 1
    branch_taken_penalty: int = 2
    jump_penalty: int = 2
    load_extra: int = 1
    mul_extra: int = 0
    div_extra: int = 32
    csr_extra: int = 1

    @classmethod
    def vexriscv_full(cls) -> "CycleModel":
        """The default: 5-stage VexRiscv with hardware mul/div."""
        return cls()

    @classmethod
    def vexriscv_light(cls) -> "CycleModel":
        """A 2-stage minimal VexRiscv configuration: cheaper fabric
        footprint, higher CPI — the kind of core-capability trade §4.1
        leaves open to the developer ("customize the core")."""
        return cls(
            base=1,
            branch_taken_penalty=1,
            jump_penalty=1,
            load_extra=2,
            mul_extra=32,  # no hardware multiplier: iterative
            div_extra=32,
            csr_extra=2,
        )

    def cost_table(self) -> tuple:
        """Per-cost-class cycle costs, indexed by ``Instruction.cost_class``.

        Branches carry their *not-taken* cost here; the taken cost is
        :attr:`branch_taken_cost`.  Both backends resolve costs through
        this table so the mnemonic string scan stays off the retire path.
        """
        table = [self.base] * N_COST_CLASSES
        table[CC_JUMP] = self.base + self.jump_penalty
        table[CC_LOAD] = self.base + self.load_extra
        table[CC_MUL] = self.base + self.mul_extra
        table[CC_DIV] = self.base + self.div_extra
        table[CC_CSR] = self.base + self.csr_extra
        return tuple(table)

    @property
    def branch_taken_cost(self) -> int:
        return self.base + self.branch_taken_penalty

    def cost(self, inst: Instruction, taken: bool) -> int:
        if inst.cost_class == CC_BRANCH:
            return self.branch_taken_cost if taken else self.base
        return self.cost_table()[inst.cost_class]


class CpuHalted(Exception):
    """Raised internally when the core executes ebreak or is halted."""


class RiscvCpu:
    """The instruction-set simulator.

    ``step()`` executes one instruction and returns its cycle cost;
    ``run(max_instructions)`` loops.  ``cycles`` accumulates the cycle
    model so firmware loops can be timed exactly.
    """

    def __init__(
        self,
        bus: MemoryBus,
        reset_pc: int = 0,
        hartid: int = 0,
        cycle_model: Optional[CycleModel] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.bus = bus
        self.regs: List[int] = [0] * 32
        self.pc = reset_pc
        self.reset_pc = reset_pc
        self.cycles = 0
        self.instret = 0
        self.halted = False
        self.waiting_for_interrupt = False
        self.hartid = hartid
        self._engine = None
        self.cycle_model = cycle_model or CycleModel()
        self.csrs: Dict[int, int] = {
            CSR_MSTATUS: 0,
            CSR_MIE: 0,
            CSR_MTVEC: 0,
            CSR_MSCRATCH: 0,
            CSR_MEPC: 0,
            CSR_MCAUSE: 0,
            CSR_MTVAL: 0,
            CSR_MIP: 0,
        }
        self._decode_cache: Dict[int, Instruction] = {}
        #: optional hook invoked on ecall: hook(cpu) -> None
        self.ecall_handler: Optional[Callable[["RiscvCpu"], None]] = None

        # store-aware instruction-cache coherence: the bus reports every
        # RAM mutation; words we have decoded/translated are invalidated
        # (fixes self-modifying code executing stale instructions)
        self._code_words: set = set()
        self._code_lo = 1 << 62
        self._code_hi = -1
        self._break_block = False
        #: bumped whenever decoded code may be stale (icache flush or a
        #: store into decoded words) — replay records pin this so stale
        #: brackets can never be replayed against patched firmware
        self.code_epoch = 0
        bus.watch_stores(self._store_watch)

        backend = backend or _DEFAULT_BACKEND
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown cpu backend {backend!r}; choices: {BACKENDS}"
            )
        self.backend = backend
        if backend == "translated":
            from .translate import TranslatedEngine

            self._engine = TranslatedEngine(self)

    # -- cycle model (swappable; costs are baked into caches) ----------------

    @property
    def cycle_model(self) -> CycleModel:
        return self._cycle_model

    @cycle_model.setter
    def cycle_model(self, model: CycleModel) -> None:
        self._cycle_model = model
        self._cost_table = model.cost_table()
        self._branch_taken_cost = model.branch_taken_cost
        if self._engine is not None:
            # translated closures embed their cycle costs
            self._engine.flush()

    # -- register access ----------------------------------------------------

    def read_reg(self, idx: int) -> int:
        return self.regs[idx]

    def write_reg(self, idx: int, value: int) -> None:
        if idx != 0:
            self.regs[idx] = value & MASK32

    # -- reset / interrupt lines ---------------------------------------------

    def reset(self) -> None:
        # in place: translated closures capture the list itself
        self.regs[:] = [0] * 32
        self.pc = self.reset_pc
        self.cycles = 0
        self.instret = 0
        self.halted = False
        self.waiting_for_interrupt = False
        for csr in (CSR_MSTATUS, CSR_MIE, CSR_MEPC, CSR_MCAUSE, CSR_MIP):
            self.csrs[csr] = 0
        self.invalidate_icache()
        self._break_block = False

    def raise_interrupt(self, line: int) -> None:
        """Assert platform interrupt ``line`` (0 = timer, >=1 external)."""
        if line == 0:
            self.csrs[CSR_MIP] |= 1 << IRQ_TIMER
        else:
            self.csrs[CSR_MIP] |= 1 << (IRQ_EXTERNAL_BASE + line - 1)
        self.waiting_for_interrupt = False
        # force the translated backend back to its block-entry interrupt
        # check so latency stays at instruction granularity
        self._break_block = True

    def clear_interrupt(self, line: int) -> None:
        if line == 0:
            self.csrs[CSR_MIP] &= ~(1 << IRQ_TIMER)
        else:
            self.csrs[CSR_MIP] &= ~(1 << (IRQ_EXTERNAL_BASE + line - 1))

    def _pending_interrupt(self) -> Optional[int]:
        if not self.csrs[CSR_MSTATUS] & MSTATUS_MIE:
            return None
        pending = self.csrs[CSR_MIP] & self.csrs[CSR_MIE]
        if not pending:
            return None
        # lowest set bit wins (deterministic priority)
        return (pending & -pending).bit_length() - 1

    def _take_interrupt(self, cause_bit: int) -> None:
        # platform lines are latched: taking the interrupt consumes it
        # (one-shot semantics, like Rosebud's poke/evict interrupts)
        self.csrs[CSR_MIP] &= ~(1 << cause_bit)
        status = self.csrs[CSR_MSTATUS]
        # save MIE to MPIE, clear MIE
        status = (status & ~MSTATUS_MPIE) | (
            MSTATUS_MPIE if status & MSTATUS_MIE else 0
        )
        status &= ~MSTATUS_MIE
        self.csrs[CSR_MSTATUS] = status
        self.csrs[CSR_MEPC] = self.pc
        self.csrs[CSR_MCAUSE] = (1 << 31) | cause_bit
        self.pc = self.csrs[CSR_MTVEC] & ~0x3
        self.cycles += 3  # trap entry latency

    # -- execution -----------------------------------------------------------

    def fetch_decode(self, addr: int) -> Instruction:
        inst = self._decode_cache.get(addr)
        if inst is None:
            word = self.bus.read_u32(addr)
            inst = decode(word)
            self._decode_cache[addr] = inst
            self._note_code_word(addr)
        return inst

    def invalidate_icache(self) -> None:
        """Drop all decoded/translated instructions (full flush)."""
        self._decode_cache.clear()
        self._code_words.clear()
        self._code_lo = 1 << 62
        self._code_hi = -1
        self.code_epoch += 1
        if self._engine is not None:
            self._engine.flush()

    # -- store-aware coherence ------------------------------------------------

    def _note_code_word(self, addr: int) -> None:
        word = addr & ~0x3
        self._code_words.add(word)
        if word < self._code_lo:
            self._code_lo = word
        if word > self._code_hi:
            self._code_hi = word

    def _store_watch(self, addr: int, nbytes: int) -> None:
        # fast reject: almost every store lands outside the code range
        # (dmem/pmem), and host blob loads stream kilobytes at a time
        if addr > self._code_hi or addr + nbytes <= self._code_lo:
            return
        first = addr & ~0x3
        last = (addr + nbytes - 1) & ~0x3
        for word in range(first, last + 4, 4):
            if word in self._code_words:
                self._invalidate_word(word)

    def _invalidate_word(self, word: int) -> None:
        self._code_words.discard(word)
        self._decode_cache.pop(word, None)
        self.code_epoch += 1
        if self._engine is not None:
            self._engine.invalidate_word(word)
        # if we are mid-superblock, stop fusing at the next boundary
        self._break_block = True

    def step(self) -> int:
        """Execute one instruction; returns the cycles it consumed."""
        if self._engine is not None:
            return self._engine.step()

        if self.halted:
            raise CpuHalted("core is halted")

        cause = self._pending_interrupt()
        if cause is not None:
            self._take_interrupt(cause)

        if self.waiting_for_interrupt:
            self.cycles += 1
            return 1

        inst = self.fetch_decode(self.pc)
        start_cycles = self.cycles
        self._execute(inst)
        self.instret += 1
        return self.cycles - start_cycles

    def run(
        self,
        max_instructions: int = 1_000_000,
        until: Optional[Callable[["RiscvCpu"], bool]] = None,
    ) -> int:
        """Run until halt, ``until(cpu)`` is true, or the instruction cap.

        Returns instructions executed.  With the translated backend,
        ``until`` is evaluated at superblock boundaries rather than
        before every instruction (see docs/ARCHITECTURE.md).
        """
        if self._engine is not None:
            return self._engine.run(max_instructions, until)

        executed = 0
        while executed < max_instructions and not self.halted:
            if until is not None and until(self):
                break
            self.step()
            executed += 1
        return executed

    def record_run(
        self,
        recorder,
        max_instructions: int = 1_000_000,
        until: Optional[Callable[["RiscvCpu"], bool]] = None,
    ) -> int:
        """Interpreter run with every data-bus transaction routed through
        ``recorder`` (replay capture, see ``repro.replay``).

        The translated engine is bypassed — its closures bind region
        handlers at decode time and cannot be traced — but both backends
        are cycle-identical (pinned by the differential backend suite),
        so records captured here replay exactly under either.  Unstable
        inputs (``mcycle``/``minstret`` CSR reads, host ecall handlers)
        mark the recording unreplayable as they occur.
        """
        real_bus = self.bus
        self.bus = recorder
        try:
            executed = 0
            while executed < max_instructions and not self.halted:
                if until is not None and until(self):
                    break
                cause = self._pending_interrupt()
                if cause is not None:
                    self._take_interrupt(cause)
                if self.waiting_for_interrupt:
                    self.cycles += 1
                    executed += 1
                    continue
                inst = self.fetch_decode(self.pc)
                m = inst.mnemonic
                if m.startswith("csr"):
                    if inst.csr in (CSR_MCYCLE, CSR_MINSTRET):
                        recorder.mark_unreplayable("reads mcycle/minstret")
                elif m == "ecall" and self.ecall_handler is not None:
                    recorder.mark_unreplayable("ecall handler side effects")
                self._execute(inst)
                self.instret += 1
                executed += 1
            return executed
        finally:
            self.bus = real_bus

    # -- the big dispatch ------------------------------------------------------

    def _execute(self, inst: Instruction) -> None:
        m = inst.mnemonic
        regs = self.regs
        next_pc = (self.pc + 4) & MASK32
        taken = False

        if m == "lui":
            self.write_reg(inst.rd, inst.imm)
        elif m == "auipc":
            self.write_reg(inst.rd, self.pc + inst.imm)
        elif m == "jal":
            self.write_reg(inst.rd, next_pc)
            next_pc = (self.pc + inst.imm) & MASK32
        elif m == "jalr":
            target = (regs[inst.rs1] + inst.imm) & MASK32 & ~1
            self.write_reg(inst.rd, next_pc)
            next_pc = target
        elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            a, b = regs[inst.rs1], regs[inst.rs2]
            sa, sb = _signed(a), _signed(b)
            taken = {
                "beq": a == b,
                "bne": a != b,
                "blt": sa < sb,
                "bge": sa >= sb,
                "bltu": a < b,
                "bgeu": a >= b,
            }[m]
            if taken:
                next_pc = (self.pc + inst.imm) & MASK32
        elif m in ("lb", "lh", "lw", "lbu", "lhu"):
            addr = (regs[inst.rs1] + inst.imm) & MASK32
            nbytes = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[m]
            value = self.bus.read(addr, nbytes)
            if m == "lb":
                value = _sext(value, 8)
            elif m == "lh":
                value = _sext(value, 16)
            self.write_reg(inst.rd, value)
        elif m in ("sb", "sh", "sw"):
            addr = (regs[inst.rs1] + inst.imm) & MASK32
            nbytes = {"sb": 1, "sh": 2, "sw": 4}[m]
            self.bus.write(addr, regs[inst.rs2], nbytes)
        elif m == "addi":
            self.write_reg(inst.rd, regs[inst.rs1] + inst.imm)
        elif m == "slti":
            self.write_reg(inst.rd, int(_signed(regs[inst.rs1]) < inst.imm))
        elif m == "sltiu":
            self.write_reg(inst.rd, int(regs[inst.rs1] < (inst.imm & MASK32)))
        elif m == "xori":
            self.write_reg(inst.rd, regs[inst.rs1] ^ inst.imm)
        elif m == "ori":
            self.write_reg(inst.rd, regs[inst.rs1] | inst.imm)
        elif m == "andi":
            self.write_reg(inst.rd, regs[inst.rs1] & inst.imm)
        elif m == "slli":
            self.write_reg(inst.rd, regs[inst.rs1] << (inst.imm & 0x1F))
        elif m == "srli":
            self.write_reg(inst.rd, regs[inst.rs1] >> (inst.imm & 0x1F))
        elif m == "srai":
            self.write_reg(inst.rd, _signed(regs[inst.rs1]) >> (inst.imm & 0x1F))
        elif m == "add":
            self.write_reg(inst.rd, regs[inst.rs1] + regs[inst.rs2])
        elif m == "sub":
            self.write_reg(inst.rd, regs[inst.rs1] - regs[inst.rs2])
        elif m == "sll":
            self.write_reg(inst.rd, regs[inst.rs1] << (regs[inst.rs2] & 0x1F))
        elif m == "slt":
            self.write_reg(inst.rd, int(_signed(regs[inst.rs1]) < _signed(regs[inst.rs2])))
        elif m == "sltu":
            self.write_reg(inst.rd, int(regs[inst.rs1] < regs[inst.rs2]))
        elif m == "xor":
            self.write_reg(inst.rd, regs[inst.rs1] ^ regs[inst.rs2])
        elif m == "srl":
            self.write_reg(inst.rd, regs[inst.rs1] >> (regs[inst.rs2] & 0x1F))
        elif m == "sra":
            self.write_reg(inst.rd, _signed(regs[inst.rs1]) >> (regs[inst.rs2] & 0x1F))
        elif m == "or":
            self.write_reg(inst.rd, regs[inst.rs1] | regs[inst.rs2])
        elif m == "and":
            self.write_reg(inst.rd, regs[inst.rs1] & regs[inst.rs2])
        elif m == "mul":
            self.write_reg(inst.rd, regs[inst.rs1] * regs[inst.rs2])
        elif m == "mulh":
            self.write_reg(
                inst.rd, (_signed(regs[inst.rs1]) * _signed(regs[inst.rs2])) >> 32
            )
        elif m == "mulhsu":
            self.write_reg(inst.rd, (_signed(regs[inst.rs1]) * regs[inst.rs2]) >> 32)
        elif m == "mulhu":
            self.write_reg(inst.rd, (regs[inst.rs1] * regs[inst.rs2]) >> 32)
        elif m == "div":
            self.write_reg(inst.rd, _div(_signed(regs[inst.rs1]), _signed(regs[inst.rs2])))
        elif m == "divu":
            b = regs[inst.rs2]
            self.write_reg(inst.rd, MASK32 if b == 0 else regs[inst.rs1] // b)
        elif m == "rem":
            self.write_reg(inst.rd, _rem(_signed(regs[inst.rs1]), _signed(regs[inst.rs2])))
        elif m == "remu":
            b = regs[inst.rs2]
            self.write_reg(inst.rd, regs[inst.rs1] if b == 0 else regs[inst.rs1] % b)
        elif m == "fence":
            pass
        elif m == "ecall":
            if self.ecall_handler is not None:
                self.ecall_handler(self)
            else:
                self.halted = True
        elif m == "ebreak":
            self.halted = True
        elif m == "wfi":
            self.waiting_for_interrupt = True
        elif m == "mret":
            status = self.csrs[CSR_MSTATUS]
            if status & MSTATUS_MPIE:
                status |= MSTATUS_MIE
            else:
                status &= ~MSTATUS_MIE
            status |= MSTATUS_MPIE
            self.csrs[CSR_MSTATUS] = status
            next_pc = self.csrs[CSR_MEPC]
        elif m.startswith("csr"):
            self._execute_csr(inst)
        else:  # pragma: no cover - decode() guarantees coverage
            raise DecodeError(f"unimplemented mnemonic {m}")

        if taken:
            self.cycles += self._branch_taken_cost
        else:
            self.cycles += self._cost_table[inst.cost_class]
        self.pc = next_pc

    def _execute_csr(self, inst: Instruction) -> None:
        csr = inst.csr
        old = self._read_csr(csr)
        m = inst.mnemonic
        if m.endswith("i"):
            operand = inst.rs1  # zimm encoded in rs1 field
        else:
            operand = self.regs[inst.rs1]
        if m in ("csrrw", "csrrwi"):
            new = operand
        elif m in ("csrrs", "csrrsi"):
            new = old | operand
        else:  # csrrc / csrrci
            new = old & ~operand
        self._write_csr(csr, new)
        self.write_reg(inst.rd, old)

    def _read_csr(self, csr: int) -> int:
        if csr == CSR_MCYCLE:
            return self.cycles & MASK32
        if csr == CSR_MINSTRET:
            return self.instret & MASK32
        if csr == CSR_MHARTID:
            return self.hartid
        return self.csrs.get(csr, 0)

    def _write_csr(self, csr: int, value: int) -> None:
        if csr in (CSR_MCYCLE, CSR_MINSTRET, CSR_MHARTID):
            return  # read-only in this model
        self.csrs[csr] = value & MASK32


def _signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


def _sext(value: int, bits: int) -> int:
    mask = 1 << (bits - 1)
    return ((value & (mask - 1)) - (value & mask)) & MASK32


def _div(a: int, b: int) -> int:
    if b == 0:
        return MASK32
    if a == -(1 << 31) and b == -1:
        return a & MASK32
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return q & MASK32


def _rem(a: int, b: int) -> int:
    if b == 0:
        return a & MASK32
    if a == -(1 << 31) and b == -1:
        return 0
    r = abs(a) % abs(b)
    if a < 0:
        r = -r
    return r & MASK32
