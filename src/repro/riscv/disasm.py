"""RV32IM disassembler.

Renders decoded instructions in conventional assembly syntax with ABI
register names — the firmware-debugging view the funcsim single-stepper
and the examples print.  Round-trips with the assembler for the whole
supported instruction set (property-tested).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .isa import DecodeError, Instruction, decode

_REG_NAMES = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
]

_CSR_NAMES: Dict[int, str] = {
    0x300: "mstatus", 0x304: "mie", 0x305: "mtvec", 0x340: "mscratch",
    0x341: "mepc", 0x342: "mcause", 0x343: "mtval", 0x344: "mip",
    0xB00: "mcycle", 0xB02: "minstret", 0xF14: "mhartid",
}

_LOADS = {"lb", "lh", "lw", "lbu", "lhu"}
_STORES = {"sb", "sh", "sw"}
_BRANCHES = {"beq", "bne", "blt", "bge", "bltu", "bgeu"}
_R_TYPE = {
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
}
_I_ARITH = {"addi", "slti", "sltiu", "xori", "ori", "andi"}
_SHIFTS = {"slli", "srli", "srai"}
_CSR_OPS = {"csrrw", "csrrs", "csrrc", "csrrwi", "csrrsi", "csrrci"}
_BARE = {"ecall", "ebreak", "mret", "wfi", "fence"}


def reg_name(index: int) -> str:
    """ABI name of register ``index``."""
    return _REG_NAMES[index]


def csr_name(address: int) -> str:
    return _CSR_NAMES.get(address, f"{address:#x}")


def format_instruction(inst: Instruction, pc: Optional[int] = None) -> str:
    """One instruction in assembly syntax.

    When ``pc`` is given, branch/jump targets are rendered as absolute
    addresses instead of relative offsets.
    """
    m = inst.mnemonic
    rd, rs1, rs2 = reg_name(inst.rd), reg_name(inst.rs1), reg_name(inst.rs2)

    def target() -> str:
        if pc is not None:
            return f"{(pc + inst.imm) & 0xFFFFFFFF:#x}"
        return f"{inst.imm:+d}"

    if m in _BARE:
        return m
    if m == "lui" or m == "auipc":
        return f"{m} {rd}, {(inst.imm >> 12) & 0xFFFFF:#x}"
    if m == "jal":
        if inst.rd == 0:
            return f"j {target()}"
        return f"jal {rd}, {target()}"
    if m == "jalr":
        if inst.rd == 0 and inst.imm == 0 and inst.rs1 == 1:
            return "ret"
        return f"jalr {rd}, {inst.imm}({rs1})"
    if m in _BRANCHES:
        if inst.rs2 == 0:
            shorthand = {"beq": "beqz", "bne": "bnez", "blt": "bltz", "bge": "bgez"}
            if m in shorthand:
                return f"{shorthand[m]} {rs1}, {target()}"
        return f"{m} {rs1}, {rs2}, {target()}"
    if m in _LOADS:
        return f"{m} {rd}, {inst.imm}({rs1})"
    if m in _STORES:
        return f"{m} {rs2}, {inst.imm}({rs1})"
    if m in _SHIFTS:
        return f"{m} {rd}, {rs1}, {inst.imm}"
    if m in _I_ARITH:
        if m == "addi":
            if inst.rs1 == 0:
                return f"li {rd}, {inst.imm}"
            if inst.imm == 0:
                return f"mv {rd}, {rs1}"
            if inst.rd == 0 and inst.rs1 == 0 and inst.imm == 0:
                return "nop"
        return f"{m} {rd}, {rs1}, {inst.imm}"
    if m in _R_TYPE:
        return f"{m} {rd}, {rs1}, {rs2}"
    if m in _CSR_OPS:
        csr = csr_name(inst.csr)
        if m.endswith("i"):
            return f"{m} {rd}, {csr}, {inst.rs1}"
        return f"{m} {rd}, {csr}, {rs1}"
    raise DecodeError(f"cannot format {m}")  # pragma: no cover


def disassemble_word(word: int, pc: Optional[int] = None) -> str:
    """Decode + format a single 32-bit word."""
    return format_instruction(decode(word), pc)


def disassemble(image: bytes, base: int = 0, stop_on_error: bool = False) -> List[str]:
    """Disassemble a flat image into ``addr: word  text`` lines.

    Data words that don't decode render as ``.word``; with
    ``stop_on_error`` the first such word ends the listing (useful when
    code is followed by data).
    """
    lines: List[str] = []
    for offset in range(0, len(image) - len(image) % 4, 4):
        word = int.from_bytes(image[offset : offset + 4], "little")
        addr = base + offset
        try:
            text = disassemble_word(word, pc=addr)
        except DecodeError:
            if stop_on_error:
                break
            text = f".word {word:#010x}"
        lines.append(f"{addr:#010x}: {word:08x}  {text}")
    return lines
