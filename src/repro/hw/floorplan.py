"""Physical layout model (Figures 5 & 6, §5).

The VU9P is three stacked dies (SLRs) joined by a limited pool of
super-long-line (SLL) crossing registers.  The paper reports two
physical-design facts this model reproduces:

* the switching infrastructure consumes **54.7 %** of the die-crossing
  registers (after explicit placement constraints), and
* routing utilization stays ≤ 17 % in any direction across all builds.

The model places the framework's blocks into SLRs the way Figures 5/6
draw them (MAC/PCIe in the center die where the hard IP lives, RPU PR
regions spread across all three dies, cluster switches spanning die
boundaries) and accounts SLL register usage for every link that
crosses a boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.config import RosebudConfig

#: The VU9P has 3 SLRs; each adjacent pair is joined by 17,280 SLL
#: connections (Xilinx DS923), i.e. two crossing interfaces.
N_SLRS = 3
SLL_PER_BOUNDARY = 17_280

#: Registers per crossing: each bus bit that crosses a boundary is
#: registered on both sides (the "extra registers on the border" cost
#: §4.1 mentions for PR regions as well).
REGS_PER_CROSSING_BIT = 2


class FloorplanError(RuntimeError):
    """Raised when a layout is infeasible (SLL exhaustion etc.)."""


@dataclass
class PlacedBlock:
    """A block pinned to one SLR."""

    name: str
    slr: int


def axi_stream_bits(data_bits: int) -> int:
    """Physical wires of an AXI-Stream bus: data + tkeep (one bit per
    data byte) + tvalid/tready/tlast."""
    return data_bits + data_bits // 8 + 3


@dataclass
class CrossingLink:
    """A bus crossing one or more SLR boundaries.

    ``bits`` is the *data* width; the physical crossing cost includes
    the AXI-Stream sidebands."""

    name: str
    bits: int
    src_slr: int
    dst_slr: int

    @property
    def boundaries(self) -> List[int]:
        low, high = sorted((self.src_slr, self.dst_slr))
        return list(range(low, high))

    @property
    def sll_bits(self) -> int:
        return axi_stream_bits(self.bits) * len(self.boundaries)


class Floorplan:
    """SLR placement + SLL accounting for one Rosebud configuration."""

    def __init__(self, config: RosebudConfig) -> None:
        self.config = config
        self.blocks: Dict[str, PlacedBlock] = {}
        self.links: List[CrossingLink] = []
        self._place_framework()

    # -- placement (mirrors Figures 5/6) --------------------------------------------

    def _place(self, name: str, slr: int) -> None:
        if not 0 <= slr < N_SLRS:
            raise FloorplanError(f"SLR {slr} out of range")
        self.blocks[name] = PlacedBlock(name, slr)

    def _place_framework(self) -> None:
        config = self.config
        # hard IP: PCIe in SLR1 (center column), the two CMACs in SLR1
        # and SLR2 where the GTY quads sit on the VCU1525
        self._place("pcie", 1)
        self._place("cmac0", 1)
        self._place("cmac1", 2)
        self._place("lb", 1)
        # RPUs: spread evenly across the three dies like the figures
        for rpu in range(config.n_rpus):
            self._place(f"rpu{rpu}", rpu * N_SLRS // config.n_rpus)
        # cluster switches live with their RPUs' center of mass
        for cluster in range(config.n_clusters):
            members = config.cluster_members(cluster)
            slrs = [self.blocks[f"rpu{m}"].slr for m in members]
            self._place(f"cluster{cluster}", round(sum(slrs) / len(slrs)))
        self._wire_links()

    def _wire_links(self) -> None:
        config = self.config
        bus = config.cluster_bus_bits
        # packet sources/sinks feeding every cluster at full width:
        # the two MACs, host DRAM over PCIe, and the loopback port
        hubs = (
            ("cmac0", self.blocks["cmac0"].slr),
            ("cmac1", self.blocks["cmac1"].slr),
            ("hostdma", self.blocks["pcie"].slr),
            ("loopback", self.blocks["lb"].slr),
        )
        for cluster in range(config.n_clusters):
            sw = self.blocks[f"cluster{cluster}"].slr
            for hub_name, hub in hubs:
                for direction in ("in", "out"):
                    self.links.append(
                        CrossingLink(
                            f"{hub_name}->cluster{cluster}.{direction}",
                            bus, hub, sw,
                        )
                    )
            # RPU-side: the 128-bit per-RPU data links plus the control
            # channels (descriptors to the LB, broadcast messaging)
            for member in config.cluster_members(cluster):
                rpu_slr = self.blocks[f"rpu{member}"].slr
                for direction in ("in", "out"):
                    self.links.append(
                        CrossingLink(
                            f"cluster{cluster}->rpu{member}.{direction}",
                            config.rpu_bus_bits, sw, rpu_slr,
                        )
                    )
                for direction in ("in", "out"):
                    self.links.append(
                        CrossingLink(
                            f"ctrl.rpu{member}.{direction}",
                            64, self.blocks["lb"].slr, rpu_slr,
                        )
                    )

    # -- accounting --------------------------------------------------------------------

    def sll_bits_per_boundary(self) -> Dict[int, int]:
        usage: Dict[int, int] = {b: 0 for b in range(N_SLRS - 1)}
        for link in self.links:
            for boundary in link.boundaries:
                usage[boundary] += axi_stream_bits(link.bits)
        return usage

    def crossing_register_utilization(self) -> float:
        """Fraction of all SLL crossing registers the switching uses."""
        total_bits = sum(self.sll_bits_per_boundary().values())
        capacity = SLL_PER_BOUNDARY * (N_SLRS - 1)
        return total_bits / capacity

    def check_feasible(self) -> None:
        for boundary, bits in self.sll_bits_per_boundary().items():
            if bits > SLL_PER_BOUNDARY:
                raise FloorplanError(
                    f"boundary {boundary} needs {bits} SLLs of {SLL_PER_BOUNDARY}"
                )

    def report(self) -> Dict[str, object]:
        return {
            "blocks": {name: block.slr for name, block in self.blocks.items()},
            "sll_bits_per_boundary": self.sll_bits_per_boundary(),
            "crossing_register_utilization": self.crossing_register_utilization(),
        }
