"""Resource models of Rosebud's hardware components.

Numbers come directly from the paper's utilization tables (Tables 1–4);
components whose size depends on configuration (switching fabric, LB,
interconnect) are modelled with the 8- and 16-RPU data points and a
simple arbitration-scaling interpolation for other RPU counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .resources import ResourceVector

# -- fixed components (same in 8- and 16-RPU designs, Tables 1 & 2) ------------

CMAC = ResourceVector(luts=6397, registers=14849, bram=0, uram=18, dsp=0)
PCIE = ResourceVector(luts=41526, registers=63742, bram=110, uram=32, dsp=0)

# -- per-configuration measured points ------------------------------------------

#: Single RPU framework logic (core + memory subsystem + accel manager),
#: excluding the user accelerator, per Table 1 (16 RPU) / Table 2 (8 RPU).
RPU_BASE_16 = ResourceVector(luts=4541, registers=3788, bram=24, uram=32, dsp=0)
RPU_BASE_8 = ResourceVector(luts=4640, registers=3806, bram=24, uram=32, dsp=0)

#: Resources left inside one PR region for the user accelerator.
RPU_REMAINING_16 = ResourceVector(luts=23298, registers=52132, bram=12, uram=0, dsp=168)
RPU_REMAINING_8 = ResourceVector(luts=59521, registers=125074, bram=90, uram=32, dsp=384)

#: Round-robin LB and the remaining space in its PR block.
LB_RR_16 = ResourceVector(luts=8221, registers=22503, bram=0, uram=0, dsp=0)
LB_RR_8 = ResourceVector(luts=7580, registers=22076, bram=0, uram=0, dsp=0)
LB_REMAINING_16 = ResourceVector(luts=70163, registers=135897, bram=144, uram=48, dsp=576)
LB_REMAINING_8 = ResourceVector(luts=106436, registers=208324, bram=180, uram=96, dsp=648)

INTERCONNECT_16 = ResourceVector(luts=2793, registers=2955, bram=0, uram=0, dsp=0)
INTERCONNECT_8 = ResourceVector(luts=2964, registers=3051, bram=0, uram=0, dsp=0)

SWITCHING_16 = ResourceVector(luts=86234, registers=123654, bram=48, uram=64, dsp=0)
SWITCHING_8 = ResourceVector(luts=48402, registers=68890, bram=36, uram=32, dsp=0)

COMPLETE_16 = ResourceVector(luts=259713, registers=332636, bram=542, uram=626, dsp=0)
COMPLETE_8 = ResourceVector(luts=164699, registers=224404, bram=338, uram=338, dsp=0)

# -- case-study components (Tables 3 & 4) ----------------------------------------

#: Pigasus RPU internals (Table 3): per-RPU averages with the accelerator.
PIGASUS_RISCV = ResourceVector(luts=2048, registers=1051, bram=0, uram=0, dsp=0)
PIGASUS_MEM = ResourceVector(luts=3503, registers=906, bram=16, uram=32, dsp=0)
PIGASUS_ACCEL_MGR = ResourceVector(luts=803, registers=2717, bram=0, uram=0, dsp=0)
PIGASUS_ACCEL = ResourceVector(luts=36012, registers=49364, bram=56, uram=22, dsp=80)
PIGASUS_RPU_CAPACITY = ResourceVector(luts=64161, registers=128880, bram=114, uram=64, dsp=384)
PIGASUS_HASH_LB = ResourceVector(luts=10467, registers=24872, bram=26, uram=0, dsp=0)
PIGASUS_LB_REMAINING = ResourceVector(luts=103549, registers=205528, bram=154, uram=96, dsp=648)

#: Firewall RPU internals (Table 4).
FIREWALL_RISCV = ResourceVector(luts=1976, registers=1050, bram=0, uram=0, dsp=0)
FIREWALL_MEM = ResourceVector(luts=2166, registers=862, bram=16, uram=32, dsp=0)
FIREWALL_ACCEL_MGR = ResourceVector(luts=518, registers=1944, bram=0, uram=0, dsp=0)
FIREWALL_IP_CHECKER = ResourceVector(luts=835, registers=197, bram=0, uram=0, dsp=0)
FIREWALL_RPU_CAPACITY = ResourceVector(luts=27839, registers=55920, bram=36, uram=32, dsp=168)


@dataclass(frozen=True)
class ComponentSet:
    """The component vectors for one Rosebud base configuration."""

    n_rpus: int
    rpu_base: ResourceVector
    rpu_remaining: ResourceVector
    lb: ResourceVector
    lb_remaining: ResourceVector
    interconnect: ResourceVector
    switching: ResourceVector
    cmac: ResourceVector = CMAC
    pcie: ResourceVector = PCIE

    def complete_design(self) -> ResourceVector:
        """Total utilization as the paper's "Complete design" row sums it:
        RPUs + interconnects + LB + 2×CMAC + PCIe + switching."""
        return (
            self.rpu_base * self.n_rpus
            + self.interconnect * self.n_rpus
            + self.lb
            + self.cmac * 2
            + self.pcie
            + self.switching
        )


def components_for(n_rpus: int) -> ComponentSet:
    """Component set for a configuration; 8 and 16 are the measured
    points, other counts interpolate switching/arbitration linearly in
    the RPU count (arbitration logic scales with port count)."""
    if n_rpus == 16:
        return ComponentSet(
            16, RPU_BASE_16, RPU_REMAINING_16, LB_RR_16, LB_REMAINING_16,
            INTERCONNECT_16, SWITCHING_16,
        )
    if n_rpus == 8:
        return ComponentSet(
            8, RPU_BASE_8, RPU_REMAINING_8, LB_RR_8, LB_REMAINING_8,
            INTERCONNECT_8, SWITCHING_8,
        )
    if n_rpus < 1:
        raise ValueError("need at least one RPU")
    # interpolate/extrapolate between the two measured designs
    def lerp(a: ResourceVector, b: ResourceVector) -> ResourceVector:
        t = (n_rpus - 8) / 8.0
        return ResourceVector(
            *(
                int(round(getattr(a, k) + t * (getattr(b, k) - getattr(a, k))))
                for k in ("luts", "registers", "bram", "uram", "dsp")
            )
        )

    return ComponentSet(
        n_rpus,
        lerp(RPU_BASE_8, RPU_BASE_16),
        lerp(RPU_REMAINING_8, RPU_REMAINING_16),
        lerp(LB_RR_8, LB_RR_16),
        lerp(LB_REMAINING_8, LB_REMAINING_16),
        lerp(INTERCONNECT_8, INTERCONNECT_16),
        lerp(SWITCHING_8, SWITCHING_16),
    )


def pigasus_rpu_total() -> ResourceVector:
    """Table 3 "Total" row: core + memory + accel manager + Pigasus."""
    return PIGASUS_RISCV + PIGASUS_MEM + PIGASUS_ACCEL_MGR + PIGASUS_ACCEL


def firewall_rpu_total() -> ResourceVector:
    """Table 4 "Total" row."""
    return FIREWALL_RISCV + FIREWALL_MEM + FIREWALL_ACCEL_MGR + FIREWALL_IP_CHECKER
