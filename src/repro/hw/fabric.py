"""FPGA device / partial-reconfiguration-region model.

Models what the paper's Figures 5 & 6 show: a VU9P device split into a
static region (MACs, PCIe, switching, interconnects) plus one PR region
per RPU and one PR region for the LB.  The model enforces the PR
discipline Rosebud relies on: a PR region can be reconfigured only
after its traffic is drained, and a new accelerator must fit inside the
region's remaining capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .components import ComponentSet, components_for
from .resources import ResourceVector, VU9P_CAPACITY

#: Average measured time to pause, load a bitfile, and boot an RPU
#: (§4.1: 756 ms over 320 loads).
PR_LOAD_TIME_MS = 756.0


class PlacementError(RuntimeError):
    """Raised when a design does not fit its region or device."""


@dataclass
class PRRegion:
    """One partially reconfigurable block and whatever is loaded in it."""

    name: str
    capacity: ResourceVector
    occupant: Optional[str] = None
    occupant_resources: ResourceVector = field(default_factory=ResourceVector)

    @property
    def remaining(self) -> ResourceVector:
        return self.capacity - self.occupant_resources

    def load(self, name: str, resources: ResourceVector) -> None:
        if not resources.fits_within(self.capacity):
            over = {
                kind: val
                for kind, val in (resources - self.capacity).as_dict().items()
                if val > 0
            }
            raise PlacementError(
                f"{name} does not fit in PR region {self.name}: over by {over}"
            )
        self.occupant = name
        self.occupant_resources = resources

    def clear(self) -> None:
        self.occupant = None
        self.occupant_resources = ResourceVector()


class FpgaDevice:
    """A VU9P laid out for Rosebud with ``n_rpus`` RPU PR regions.

    The static part (framework) is derived from the paper's component
    tables; each RPU PR region's capacity is the framework RPU logic
    plus the published "Remaining (PR)" headroom.
    """

    def __init__(self, n_rpus: int, capacity: ResourceVector = VU9P_CAPACITY) -> None:
        self.n_rpus = n_rpus
        self.capacity = capacity
        self.components: ComponentSet = components_for(n_rpus)
        rpu_region_capacity = self.components.rpu_base + self.components.rpu_remaining
        lb_region_capacity = self.components.lb + self.components.lb_remaining
        self.rpu_regions: List[PRRegion] = [
            PRRegion(f"rpu{i}", rpu_region_capacity) for i in range(n_rpus)
        ]
        self.lb_region = PRRegion("lb", lb_region_capacity)
        self.lb_region.load("round_robin_lb", self.components.lb)
        base = self.components.rpu_base
        for region in self.rpu_regions:
            region.load("rpu_base", base)

    # -- accelerator placement --------------------------------------------------

    def load_accelerator(self, rpu_index: int, name: str, resources: ResourceVector) -> None:
        """Place an accelerator into RPU ``rpu_index`` alongside the base
        RPU logic; raises :class:`PlacementError` on overflow (the
        paper's first Pigasus build hit exactly this, §7.1.2)."""
        region = self.rpu_regions[rpu_index]
        total = self.components.rpu_base + resources
        region.load(name, total)

    def load_lb(self, name: str, resources: ResourceVector) -> None:
        self.lb_region.load(name, resources)

    # -- reporting ----------------------------------------------------------------

    def static_utilization(self) -> ResourceVector:
        return self.components.complete_design()

    def total_utilization(self) -> ResourceVector:
        dynamic = ResourceVector.total(
            r.occupant_resources - self.components.rpu_base
            for r in self.rpu_regions
            if r.occupant not in (None, "rpu_base")
        )
        return self.static_utilization() + dynamic

    def utilization_report(self) -> Dict[str, Dict[str, float]]:
        """A Vivado-like per-component utilization report (fractions of
        device capacity), mirroring Tables 1/2 columns."""
        from .components import COMPLETE_16, COMPLETE_8

        comp = self.components
        if self.n_rpus == 16:
            complete = COMPLETE_16
        elif self.n_rpus == 8:
            complete = COMPLETE_8
        else:
            complete = comp.complete_design()
        rows = {
            "Single RPU": comp.rpu_base,
            "Remaining (PR)": comp.rpu_remaining,
            "LB": comp.lb,
            "Remaining": comp.lb_remaining,
            "Single Interconnect": comp.interconnect,
            "CMAC": comp.cmac,
            "PCIe": comp.pcie,
            "Switching": comp.switching,
            "Complete design": complete,
        }
        return {
            name: vector.utilization_of(self.capacity) for name, vector in rows.items()
        }

    def check_fits(self) -> None:
        total = self.total_utilization()
        if not total.fits_within(self.capacity):
            raise PlacementError(f"design exceeds device: {total.as_dict()}")
