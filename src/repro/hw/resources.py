"""FPGA resource vectors.

Xilinx utilization reports count LUTs, registers (flip-flops), BRAM
(36 Kb blocks), URAM (288 Kb blocks), and DSP slices.  A
:class:`ResourceVector` is an algebraic value so component models can be
summed, scaled, and compared against device capacity, reproducing the
paper's Tables 1–4 by composition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

RESOURCE_KINDS = ("luts", "registers", "bram", "uram", "dsp")


@dataclass(frozen=True)
class ResourceVector:
    """A (LUT, FF, BRAM, URAM, DSP) utilization tuple."""

    luts: int = 0
    registers: int = 0
    bram: int = 0
    uram: int = 0
    dsp: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.luts + other.luts,
            self.registers + other.registers,
            self.bram + other.bram,
            self.uram + other.uram,
            self.dsp + other.dsp,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.luts - other.luts,
            self.registers - other.registers,
            self.bram - other.bram,
            self.uram - other.uram,
            self.dsp - other.dsp,
        )

    def __mul__(self, factor: int) -> "ResourceVector":
        return ResourceVector(
            self.luts * factor,
            self.registers * factor,
            self.bram * factor,
            self.uram * factor,
            self.dsp * factor,
        )

    __rmul__ = __mul__

    def fits_within(self, capacity: "ResourceVector") -> bool:
        return all(
            getattr(self, kind) <= getattr(capacity, kind) for kind in RESOURCE_KINDS
        )

    def is_nonnegative(self) -> bool:
        return all(getattr(self, kind) >= 0 for kind in RESOURCE_KINDS)

    def utilization_of(self, capacity: "ResourceVector") -> Dict[str, float]:
        """Fractional utilization per resource kind against ``capacity``."""
        out: Dict[str, float] = {}
        for kind in RESOURCE_KINDS:
            cap = getattr(capacity, kind)
            out[kind] = getattr(self, kind) / cap if cap else 0.0
        return out

    def as_dict(self) -> Dict[str, int]:
        return {kind: getattr(self, kind) for kind in RESOURCE_KINDS}

    @staticmethod
    def total(vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        result = ResourceVector()
        for vector in vectors:
            result = result + vector
        return result


#: The XCVU9P device on the VCU1525 board (paper Tables 1/2 bottom row).
VU9P_CAPACITY = ResourceVector(
    luts=1_182_240, registers=2_364_480, bram=2160, uram=960, dsp=6840
)
