"""The :class:`Packet` object that flows through the simulated datapath.

A packet is raw bytes plus simulation metadata (ingress port, timestamps,
the LB-prepended flow hash, matched rule IDs appended by the IDS
firmware).  Parsing is lazy and cached: the RPU firmware and the
accelerators both look at headers, and re-parsing per hop would dominate
Python runtime.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from .headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    PROTO_TCP,
    PROTO_UDP,
    EthernetHeader,
    HeaderError,
    IPv4Header,
    TCPHeader,
    UDPHeader,
    VlanTag,
)

_packet_ids = itertools.count()


@dataclass
class ParsedHeaders:
    """Cache of parsed headers and payload offsets."""

    eth: Optional[EthernetHeader] = None
    vlan: Optional[VlanTag] = None
    ipv4: Optional[IPv4Header] = None
    tcp: Optional[TCPHeader] = None
    udp: Optional[UDPHeader] = None
    payload_offset: int = 0


class Packet:
    """Raw frame bytes plus metadata carried through the simulation.

    ``size`` is the quoted packet size (FCS excluded), i.e. ``len(data)``.
    """

    __slots__ = (
        "data",
        "packet_id",
        "ingress_port",
        "egress_port",
        "born_at",
        "timestamps",
        "flow_hash",
        "rule_ids",
        "dropped",
        "drop_reason",
        "dest_rpu",
        "slot",
        "is_attack",
        "flow_id",
        "seq_index",
        "route",
        "src_slot",
        "class_key",
        "_parsed",
    )

    def __init__(
        self,
        data: bytes,
        ingress_port: int = 0,
        is_attack: bool = False,
        flow_id: Optional[int] = None,
        seq_index: int = 0,
    ) -> None:
        self.data = data
        self.packet_id = next(_packet_ids)
        self.ingress_port = ingress_port
        self.egress_port: Optional[int] = None
        self.born_at: float = 0.0
        self.timestamps: dict = {}
        self.flow_hash: Optional[int] = None
        self.rule_ids: List[int] = []
        self.dropped = False
        self.drop_reason = ""
        self.dest_rpu: Optional[int] = None
        self.slot: Optional[int] = None
        self.is_attack = is_attack
        self.flow_id = flow_id
        self.seq_index = seq_index
        self.route = None  # FirmwareResult once an RPU has decided
        self.src_slot = None  # (rpu, slot) while traversing egress
        # replay-cache class signature: stamped by the traffic layer
        # when the packet comes from a flyweight template (byte-identical
        # frames share a key); None means "not classifiable, never cache"
        self.class_key: Optional[object] = None
        self._parsed: Optional[ParsedHeaders] = None

    @property
    def size(self) -> int:
        return len(self.data)

    def stamp(self, label: str, time: float) -> None:
        self.timestamps[label] = time

    def drop(self, reason: str) -> None:
        self.dropped = True
        self.drop_reason = reason

    # -- lazy header parsing ------------------------------------------------

    @property
    def parsed(self) -> ParsedHeaders:
        if self._parsed is None:
            self._parsed = self._parse()
        return self._parsed

    def _parse(self) -> ParsedHeaders:
        parsed = ParsedHeaders()
        try:
            parsed.eth, rest = EthernetHeader.unpack(self.data)
        except HeaderError:
            return parsed
        offset = len(self.data) - len(rest)
        ethertype = parsed.eth.ethertype
        if ethertype == ETHERTYPE_VLAN:
            try:
                parsed.vlan, rest = VlanTag.unpack(rest)
            except HeaderError:
                parsed.payload_offset = offset
                return parsed
            ethertype = parsed.vlan.inner_ethertype
            offset = len(self.data) - len(rest)
        if ethertype != ETHERTYPE_IPV4:
            parsed.payload_offset = offset
            return parsed
        try:
            parsed.ipv4, rest = IPv4Header.unpack(rest)
        except HeaderError:
            parsed.payload_offset = offset
            return parsed
        offset = len(self.data) - len(rest)
        try:
            if parsed.ipv4.protocol == PROTO_TCP:
                parsed.tcp, rest = TCPHeader.unpack(rest)
            elif parsed.ipv4.protocol == PROTO_UDP:
                parsed.udp, rest = UDPHeader.unpack(rest)
        except HeaderError:
            pass
        parsed.payload_offset = len(self.data) - len(rest)
        return parsed

    @property
    def is_ipv4(self) -> bool:
        return self.parsed.ipv4 is not None

    @property
    def is_tcp(self) -> bool:
        return self.parsed.tcp is not None

    @property
    def is_udp(self) -> bool:
        return self.parsed.udp is not None

    @property
    def payload(self) -> bytes:
        return self.data[self.parsed.payload_offset :]

    @property
    def five_tuple(self):
        """(src_ip, dst_ip, proto, src_port, dst_port) or None."""
        p = self.parsed
        if p.ipv4 is None:
            return None
        if p.tcp is not None:
            return (p.ipv4.src, p.ipv4.dst, PROTO_TCP, p.tcp.src_port, p.tcp.dst_port)
        if p.udp is not None:
            return (p.ipv4.src, p.ipv4.dst, PROTO_UDP, p.udp.src_port, p.udp.dst_port)
        return (p.ipv4.src, p.ipv4.dst, p.ipv4.protocol, 0, 0)

    def invalidate_parse_cache(self) -> None:
        """Call after mutating ``data`` so headers are re-parsed."""
        self._parsed = None

    def mark_mutated(self) -> None:
        """Call after mutating ``data``: drops the parse cache *and* the
        class signature, so the replay cache can never treat the packet
        as its original template (fault injectors corrupting bytes,
        firmware appending rule IDs, NAT rewrites)."""
        self._parsed = None
        self.class_key = None

    def __repr__(self) -> str:
        kind = "tcp" if self.is_tcp else "udp" if self.is_udp else "raw"
        return f"<Packet #{self.packet_id} {self.size}B {kind} port={self.ingress_port}>"
