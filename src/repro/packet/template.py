"""Flyweight packet templates: build once, emit forever.

Traffic sources emit the same few frames millions of times; rebuilding
headers — or even re-parsing them — per emission dominates generation
cost at simulation scale.  A :class:`PacketTemplate` owns one immutable
frame, parses it exactly once, and stamps every packet it mints with a
**class signature**: a stable digest of ``(ingress port, frame bytes)``
computed once per template.  The replay caches key on that signature,
so the contract is strict — two packets share a class key only if their
frame bytes and ingress port are identical.

Templates are interned (one instance per distinct ``(port, bytes)``),
which keeps the signature computation amortized even when sources are
rebuilt per sweep point; the digest is content-based, so warm caches
persist across points that generate the same flows.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from .packet import Packet, ParsedHeaders

_interned: Dict[Tuple[int, bytes], "PacketTemplate"] = {}
#: Bound on the intern table (distinct templates per process); beyond
#: it templates still work, they just stop being shared.
_INTERN_LIMIT = 65536


class PacketTemplate:
    """One prebuilt frame + its parse + its class signature."""

    __slots__ = ("data", "port", "class_key", "_parsed")

    def __init__(self, data: bytes, port: int = 0) -> None:
        self.data = bytes(data)
        self.port = port
        self.class_key = (
            "t:" + hashlib.sha1(port.to_bytes(4, "big") + self.data).hexdigest()
        )
        self._parsed: Optional[ParsedHeaders] = None

    @property
    def parsed(self) -> ParsedHeaders:
        """The shared parse — computed once, handed (read-only, by
        convention) to every packet minted from this template."""
        if self._parsed is None:
            probe = Packet(self.data)
            self._parsed = probe.parsed
        return self._parsed

    def make_packet(
        self,
        is_attack: bool = False,
        flow_id: Optional[int] = None,
        seq_index: int = 0,
    ) -> Packet:
        """Mint a packet sharing this template's bytes, parse, and class
        key.  Consumers that mutate ``data`` must go through
        :meth:`Packet.mark_mutated`, which severs both shared caches."""
        packet = Packet(
            self.data,
            ingress_port=self.port,
            is_attack=is_attack,
            flow_id=flow_id,
            seq_index=seq_index,
        )
        packet.class_key = self.class_key
        packet._parsed = self.parsed
        return packet

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PacketTemplate {len(self.data)}B port={self.port}>"


def intern_template(data: bytes, port: int = 0) -> PacketTemplate:
    """The canonical template for ``(port, data)`` — one instance per
    distinct frame, so class keys and parses are shared process-wide."""
    key = (port, bytes(data))
    template = _interned.get(key)
    if template is None:
        template = PacketTemplate(key[1], port)
        if len(_interned) < _INTERN_LIMIT:
            _interned[key] = template
    return template
