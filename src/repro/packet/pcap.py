"""Minimal pcap (libpcap classic format) reader/writer.

The artifact ships packet traces as pcaps and replays them with
tcpreplay; our trace generators can persist traces the same way so the
examples have tangible artifacts on disk.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from .packet import Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapError(ValueError):
    """Raised on malformed pcap input."""


def write_pcap(
    path: Union[str, Path],
    packets: Iterable[Packet],
    snaplen: int = 65535,
) -> int:
    """Write packets to a classic pcap file; returns the packet count.

    Packet ``born_at`` (cycles) is converted to a microsecond timestamp
    assuming the 250 MHz fabric clock (4 ns per cycle).
    """
    count = 0
    with open(path, "wb") as fh:
        fh.write(
            _GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, snaplen, LINKTYPE_ETHERNET)
        )
        for pkt in packets:
            ns = int(pkt.born_at * 4)  # cycles -> ns
            ts_sec, ts_usec = divmod(ns // 1000, 1_000_000)
            data = pkt.data[:snaplen]
            fh.write(_RECORD_HEADER.pack(ts_sec, ts_usec, len(data), len(pkt.data)))
            fh.write(data)
            count += 1
    return count


def read_pcap(path: Union[str, Path]) -> List[Packet]:
    """Read all packets from a classic pcap file."""
    return list(iter_pcap(path))


def iter_pcap(path: Union[str, Path]) -> Iterator[Packet]:
    """Iterate packets in a classic pcap file (both endiannesses)."""
    with open(path, "rb") as fh:
        header = fh.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        (magic,) = struct.unpack("<I", header[:4])
        if magic == PCAP_MAGIC:
            record = _RECORD_HEADER
        elif magic == PCAP_MAGIC_SWAPPED:
            record = struct.Struct(">IIII")
        else:
            raise PcapError(f"bad pcap magic {magic:#x}")
        while True:
            rec = fh.read(record.size)
            if not rec:
                return
            if len(rec) < record.size:
                raise PcapError("truncated pcap record header")
            ts_sec, ts_usec, incl_len, orig_len = record.unpack(rec)
            data = fh.read(incl_len)
            if len(data) < incl_len:
                raise PcapError("truncated pcap record body")
            pkt = Packet(data)
            pkt.born_at = (ts_sec * 1_000_000 + ts_usec) * 1000 / 4.0  # us -> cycles
            yield pkt
