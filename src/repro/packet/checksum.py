"""Internet checksum (RFC 1071) helpers used by IPv4/TCP/UDP headers."""

from __future__ import annotations


def ones_complement_sum(data: bytes) -> int:
    """16-bit one's-complement sum of ``data`` (zero-padded to even length)."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return total & 0xFFFF


def internet_checksum(data: bytes) -> int:
    """The Internet checksum: complement of the one's-complement sum."""
    return (~ones_complement_sum(data)) & 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """IPv4 pseudo-header used by TCP/UDP checksums."""
    return bytes(
        [
            (src_ip >> 24) & 0xFF,
            (src_ip >> 16) & 0xFF,
            (src_ip >> 8) & 0xFF,
            src_ip & 0xFF,
            (dst_ip >> 24) & 0xFF,
            (dst_ip >> 16) & 0xFF,
            (dst_ip >> 8) & 0xFF,
            dst_ip & 0xFF,
            0,
            protocol & 0xFF,
            (length >> 8) & 0xFF,
            length & 0xFF,
        ]
    )


def transport_checksum(
    src_ip: int, dst_ip: int, protocol: int, segment: bytes
) -> int:
    """TCP/UDP checksum over pseudo-header + segment."""
    return internet_checksum(pseudo_header(src_ip, dst_ip, protocol, len(segment)) + segment)
