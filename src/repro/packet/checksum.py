"""Internet checksum (RFC 1071) helpers used by IPv4/TCP/UDP headers."""

from __future__ import annotations

import struct


def ones_complement_sum(data: bytes) -> int:
    """16-bit one's-complement sum of ``data`` (zero-padded to even length).

    Word-at-a-time: one C-level unpack of the big-endian 16-bit words,
    one C-level sum, then end-around-carry folds — addition is
    associative, so deferring every carry to the end is exact, and a
    1500 B frame needs at most two folds (the running total stays under
    2**26).  The MAC checksum-verify stage calls this per received
    frame, so the old per-byte Python loop was a datapath hot spot.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = sum(struct.unpack(f">{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """The Internet checksum: complement of the one's-complement sum."""
    return (~ones_complement_sum(data)) & 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """IPv4 pseudo-header used by TCP/UDP checksums."""
    return bytes(
        [
            (src_ip >> 24) & 0xFF,
            (src_ip >> 16) & 0xFF,
            (src_ip >> 8) & 0xFF,
            src_ip & 0xFF,
            (dst_ip >> 24) & 0xFF,
            (dst_ip >> 16) & 0xFF,
            (dst_ip >> 8) & 0xFF,
            dst_ip & 0xFF,
            0,
            protocol & 0xFF,
            (length >> 8) & 0xFF,
            length & 0xFF,
        ]
    )


def transport_checksum(
    src_ip: int, dst_ip: int, protocol: int, segment: bytes
) -> int:
    """TCP/UDP checksum over pseudo-header + segment."""
    return internet_checksum(pseudo_header(src_ip, dst_ip, protocol, len(segment)) + segment)


def ipv4_header_checksum_ok(frame: bytes):
    """Validate the IPv4 header checksum of an Ethernet frame.

    Returns True/False for IPv4 frames (VLAN-tagged included) and None
    when the frame carries no parseable IPv4 header — the MAC's
    checksum-verify stage only polices packets it can classify.
    """
    offset = 14
    if len(frame) < offset + 2:
        return None
    ethertype = (frame[12] << 8) | frame[13]
    if ethertype == 0x8100:  # VLAN tag
        if len(frame) < 18:
            return None
        ethertype = (frame[16] << 8) | frame[17]
        offset = 18
    if ethertype != 0x0800:
        return None
    if len(frame) < offset + 20:
        return None
    version_ihl = frame[offset]
    if version_ihl >> 4 != 4:
        return None
    header_len = (version_ihl & 0xF) * 4
    if header_len < 20 or len(frame) < offset + header_len:
        return None
    # a valid header sums to 0xFFFF (checksum field included)
    return ones_complement_sum(frame[offset : offset + header_len]) == 0xFFFF
