"""Scapy-lite packet crafting.

The paper's testbench uses Scapy to craft packets; this module provides
the small subset we need: composing Ethernet/IPv4/TCP/UDP layers with
payloads and padding to a target frame size.
"""

from __future__ import annotations

from typing import Optional

from .headers import (
    ETH_HEADER_SIZE,
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    VLAN_TAG_SIZE,
    VlanTag,
    IPV4_HEADER_SIZE,
    PROTO_TCP,
    PROTO_UDP,
    TCP_HEADER_SIZE,
    UDP_HEADER_SIZE,
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
)
from .packet import Packet

MIN_FRAME_SIZE = 60  # 64 on the wire minus 4-byte FCS
TCP_OVERHEAD = ETH_HEADER_SIZE + IPV4_HEADER_SIZE + TCP_HEADER_SIZE  # 54
UDP_OVERHEAD = ETH_HEADER_SIZE + IPV4_HEADER_SIZE + UDP_HEADER_SIZE  # 42


class BuildError(ValueError):
    """Raised for impossible packet requests (e.g. size below headers)."""


def build_tcp(
    src_ip: str,
    dst_ip: str,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    seq: int = 0,
    ack: int = 0,
    flags: int = TCPHeader.FLAG_ACK,
    src_mac: str = "02:00:00:00:00:01",
    dst_mac: str = "02:00:00:00:00:02",
    pad_to: Optional[int] = None,
    vlan: Optional[int] = None,
    **packet_kwargs,
) -> Packet:
    """Craft an Ethernet/IPv4/TCP frame.

    ``pad_to`` pads the payload with zero bytes so the quoted frame size
    (FCS excluded) equals the requested value, like the paper's
    fixed-size packet generator.  ``vlan`` inserts an 802.1Q tag with
    that VLAN id (which adds 4 bytes of overhead before padding).
    """
    overhead = TCP_OVERHEAD + (VLAN_TAG_SIZE if vlan is not None else 0)
    if pad_to is not None:
        if pad_to < overhead:
            raise BuildError(f"pad_to={pad_to} below overhead {overhead}")
        if len(payload) > pad_to - overhead:
            raise BuildError("payload longer than pad_to allows")
        payload = payload + b"\x00" * (pad_to - overhead - len(payload))

    ip = IPv4Header(
        src=src_ip,
        dst=dst_ip,
        protocol=PROTO_TCP,
        total_length=IPV4_HEADER_SIZE + TCP_HEADER_SIZE + len(payload),
    )
    tcp = TCPHeader(
        src_port=src_port, dst_port=dst_port, seq=seq, ack=ack, flags=flags
    )
    frame = _ethernet(src_mac, dst_mac, vlan)
    frame += ip.pack() + tcp.pack_with_checksum(src_ip, dst_ip, payload)
    if len(frame) < MIN_FRAME_SIZE:
        frame = frame + b"\x00" * (MIN_FRAME_SIZE - len(frame))
    return Packet(frame, **packet_kwargs)


def _ethernet(src_mac: str, dst_mac: str, vlan: Optional[int]) -> bytes:
    if vlan is None:
        return EthernetHeader(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4).pack()
    eth = EthernetHeader(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_VLAN)
    return eth.pack() + VlanTag(vid=vlan, inner_ethertype=ETHERTYPE_IPV4).pack()


def build_udp(
    src_ip: str,
    dst_ip: str,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    src_mac: str = "02:00:00:00:00:01",
    dst_mac: str = "02:00:00:00:00:02",
    pad_to: Optional[int] = None,
    vlan: Optional[int] = None,
    **packet_kwargs,
) -> Packet:
    """Craft an Ethernet/IPv4/UDP frame (optionally 802.1Q-tagged)."""
    overhead = UDP_OVERHEAD + (VLAN_TAG_SIZE if vlan is not None else 0)
    if pad_to is not None:
        if pad_to < overhead:
            raise BuildError(f"pad_to={pad_to} below overhead {overhead}")
        if len(payload) > pad_to - overhead:
            raise BuildError("payload longer than pad_to allows")
        payload = payload + b"\x00" * (pad_to - overhead - len(payload))

    ip = IPv4Header(
        src=src_ip,
        dst=dst_ip,
        protocol=PROTO_UDP,
        total_length=IPV4_HEADER_SIZE + UDP_HEADER_SIZE + len(payload),
    )
    udp = UDPHeader(src_port=src_port, dst_port=dst_port)
    frame = _ethernet(src_mac, dst_mac, vlan)
    frame += ip.pack() + udp.pack_with_checksum(src_ip, dst_ip, payload)
    if len(frame) < MIN_FRAME_SIZE:
        frame = frame + b"\x00" * (MIN_FRAME_SIZE - len(frame))
    return Packet(frame, **packet_kwargs)


def build_raw(size: int, ethertype: int = 0x88B5, **packet_kwargs) -> Packet:
    """A non-IP Ethernet frame of exactly ``size`` bytes."""
    if size < ETH_HEADER_SIZE:
        raise BuildError(f"size {size} below Ethernet header {ETH_HEADER_SIZE}")
    eth = EthernetHeader(ethertype=ethertype)
    frame = eth.pack() + b"\x00" * (size - ETH_HEADER_SIZE)
    return Packet(frame, **packet_kwargs)
