"""Wire-format header structs: Ethernet, IPv4, TCP, UDP.

Each header is a dataclass with ``pack()``/``unpack()`` that round-trip
through the exact on-wire byte layout; the firmware running on the
RISC-V model parses the same bytes the paper's ``packet_headers.h``
describes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from .checksum import internet_checksum, transport_checksum

ETH_HEADER_SIZE = 14
IPV4_HEADER_SIZE = 20
TCP_HEADER_SIZE = 20
UDP_HEADER_SIZE = 8

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_IPV6 = 0x86DD
ETHERTYPE_VLAN = 0x8100  # 802.1Q TPID
VLAN_TAG_SIZE = 4

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17


class HeaderError(ValueError):
    """Raised when bytes cannot be parsed as the expected header."""


def mac_to_bytes(mac: str) -> bytes:
    parts = mac.split(":")
    if len(parts) != 6:
        raise HeaderError(f"bad MAC address {mac!r}")
    return bytes(int(p, 16) for p in parts)


def bytes_to_mac(data: bytes) -> str:
    if len(data) != 6:
        raise HeaderError("MAC must be 6 bytes")
    return ":".join(f"{b:02x}" for b in data)


def ip_to_int(ip: str) -> int:
    parts = ip.split(".")
    if len(parts) != 4:
        raise HeaderError(f"bad IPv4 address {ip!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise HeaderError(f"bad IPv4 octet in {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass
class EthernetHeader:
    dst: str = "ff:ff:ff:ff:ff:ff"
    src: str = "00:00:00:00:00:00"
    ethertype: int = ETHERTYPE_IPV4

    def pack(self) -> bytes:
        return mac_to_bytes(self.dst) + mac_to_bytes(self.src) + struct.pack(
            "!H", self.ethertype
        )

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["EthernetHeader", bytes]:
        if len(data) < ETH_HEADER_SIZE:
            raise HeaderError("truncated Ethernet header")
        dst = bytes_to_mac(data[0:6])
        src = bytes_to_mac(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst=dst, src=src, ethertype=ethertype), data[ETH_HEADER_SIZE:]


@dataclass
class VlanTag:
    """An 802.1Q tag: priority, drop-eligible bit, VLAN id, and the
    encapsulated ethertype."""

    vid: int = 1
    pcp: int = 0
    dei: int = 0
    inner_ethertype: int = ETHERTYPE_IPV4

    def pack(self) -> bytes:
        if not 0 <= self.vid <= 0xFFF:
            raise HeaderError(f"VLAN id {self.vid} out of range")
        tci = (self.pcp << 13) | (self.dei << 12) | self.vid
        return struct.pack("!HH", tci, self.inner_ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["VlanTag", bytes]:
        if len(data) < VLAN_TAG_SIZE:
            raise HeaderError("truncated 802.1Q tag")
        tci, inner = struct.unpack("!HH", data[:VLAN_TAG_SIZE])
        return (
            cls(vid=tci & 0xFFF, pcp=tci >> 13, dei=(tci >> 12) & 1,
                inner_ethertype=inner),
            data[VLAN_TAG_SIZE:],
        )


@dataclass
class IPv4Header:
    src: str = "0.0.0.0"
    dst: str = "0.0.0.0"
    protocol: int = PROTO_TCP
    ttl: int = 64
    total_length: int = IPV4_HEADER_SIZE
    identification: int = 0
    flags: int = 0
    fragment_offset: int = 0
    dscp: int = 0
    checksum: int = 0

    def pack(self, fill_checksum: bool = True) -> bytes:
        version_ihl = (4 << 4) | 5
        flags_frag = (self.flags << 13) | (self.fragment_offset & 0x1FFF)
        header = struct.pack(
            "!BBHHHBBHII",
            version_ihl,
            self.dscp,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            0,
            ip_to_int(self.src),
            ip_to_int(self.dst),
        )
        checksum = internet_checksum(header) if fill_checksum else self.checksum
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["IPv4Header", bytes]:
        if len(data) < IPV4_HEADER_SIZE:
            raise HeaderError("truncated IPv4 header")
        (
            version_ihl,
            dscp,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBHII", data[:IPV4_HEADER_SIZE])
        version = version_ihl >> 4
        ihl = version_ihl & 0xF
        if version != 4:
            raise HeaderError(f"not IPv4 (version={version})")
        if ihl < 5:
            raise HeaderError(f"bad IHL {ihl}")
        header_len = ihl * 4
        if len(data) < header_len:
            raise HeaderError("truncated IPv4 options")
        hdr = cls(
            src=int_to_ip(src),
            dst=int_to_ip(dst),
            protocol=protocol,
            ttl=ttl,
            total_length=total_length,
            identification=identification,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            dscp=dscp,
            checksum=checksum,
        )
        return hdr, data[header_len:]

    def verify_checksum(self, raw_header: bytes) -> bool:
        return internet_checksum(raw_header[:IPV4_HEADER_SIZE]) == 0


@dataclass
class TCPHeader:
    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0x10  # ACK
    window: int = 65535
    checksum: int = 0
    urgent: int = 0

    FLAG_FIN = 0x01
    FLAG_SYN = 0x02
    FLAG_RST = 0x04
    FLAG_PSH = 0x08
    FLAG_ACK = 0x10

    def pack(self) -> bytes:
        data_offset = (5 << 4)
        return struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            data_offset,
            self.flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    def pack_with_checksum(self, src_ip: str, dst_ip: str, payload: bytes) -> bytes:
        segment = self.pack() + payload
        csum = transport_checksum(
            ip_to_int(src_ip), ip_to_int(dst_ip), PROTO_TCP, segment
        )
        return segment[:16] + struct.pack("!H", csum) + segment[18:]

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["TCPHeader", bytes]:
        if len(data) < TCP_HEADER_SIZE:
            raise HeaderError("truncated TCP header")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_byte,
            flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack("!HHIIBBHHH", data[:TCP_HEADER_SIZE])
        data_offset = (offset_byte >> 4) * 4
        if data_offset < TCP_HEADER_SIZE or len(data) < data_offset:
            raise HeaderError("bad TCP data offset")
        hdr = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            checksum=checksum,
            urgent=urgent,
        )
        return hdr, data[data_offset:]


@dataclass
class UDPHeader:
    src_port: int = 0
    dst_port: int = 0
    length: int = UDP_HEADER_SIZE
    checksum: int = 0

    def pack(self) -> bytes:
        return struct.pack(
            "!HHHH", self.src_port, self.dst_port, self.length, self.checksum
        )

    def pack_with_checksum(self, src_ip: str, dst_ip: str, payload: bytes) -> bytes:
        self.length = UDP_HEADER_SIZE + len(payload)
        segment = self.pack() + payload
        csum = transport_checksum(
            ip_to_int(src_ip), ip_to_int(dst_ip), PROTO_UDP, segment
        )
        if csum == 0:
            csum = 0xFFFF  # RFC 768: transmitted as all-ones
        return segment[:6] + struct.pack("!H", csum) + segment[8:]

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["UDPHeader", bytes]:
        if len(data) < UDP_HEADER_SIZE:
            raise HeaderError("truncated UDP header")
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", data[:8])
        return (
            cls(src_port=src_port, dst_port=dst_port, length=length, checksum=checksum),
            data[UDP_HEADER_SIZE:],
        )
