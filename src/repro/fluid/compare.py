"""Fluid-vs-event result comparison under the byte-identity contract.

The fluid tier's promise is that warping changes *what is simulated*,
never *what is measured*: every integer counter in the result must be
byte-identical to the event-accurate run, and every float must agree to
1e-6 relative (the warp ledger adds ``k * delta`` in one step where the
event run adds ``delta`` k times, so the last-ulp rounding of float
accumulators can legitimately differ).

Two kinds of keys are excluded from the comparison:

* ``fluid`` blocks — they *describe* the warping (warp counts,
  occupancy, de-opts) and differ between tiers by construction.
* ``elapsed``/wall-clock fields — host-time measurements.

``events_processed`` is compared with a small absolute tolerance
(default 8): it is a kernel execution statistic, not a system counter,
and in contended regimes the event-accurate orbit itself is not
event-*count* periodic — no-op re-poll events reschedule on float-time
ties as the clock magnitude grows — so the count drifts while every
system counter stays byte-identical.  Callers comparing contended runs
should pass a wider ``events_atol`` (~1% of the total).
"""

from __future__ import annotations

import math
from typing import Any, List, Tuple

#: keys whose subtrees are never compared: fluid telemetry, wall-clock
#: fields, and the spec hash (fidelity is part of the hashed spec, so
#: the two runs being compared legitimately disagree on it)
_SKIP_KEYS = frozenset(
    {"fluid", "elapsed_s", "wall_s", "events_per_sec", "spec_key"}
)

#: integer keys compared with an absolute tolerance instead of exactly
_TOLERANT_INT_KEYS = frozenset({"events_processed"})

_FLOAT_RTOL = 1e-6
_FLOAT_ATOL = 1e-6
_EVENTS_ATOL = 8


def diff_results(
    fluid: Any,
    event: Any,
    path: str = "$",
    events_atol: int = _EVENTS_ATOL,
) -> List[str]:
    """Return a list of human-readable mismatches (empty = identical).

    ``fluid``/``event`` are the ``to_dict()`` trees of the two runs (or
    any JSON-shaped substructure).  Ints must match exactly, floats to
    ``1e-6`` relative, and ``fluid``/wall-clock keys are skipped.
    """
    out: List[str] = []
    _walk(fluid, event, path, events_atol, out)
    return out


def assert_equivalent(fluid: Any, event: Any, events_atol: int = _EVENTS_ATOL) -> None:
    """Raise AssertionError with every mismatch if the trees diverge."""
    problems = diff_results(fluid, event, events_atol=events_atol)
    if problems:
        raise AssertionError(
            "fluid/event results diverge:\n  " + "\n  ".join(problems)
        )


def _walk(a: Any, b: Any, path: str, events_atol: int, out: List[str]) -> None:
    if isinstance(a, dict) and isinstance(b, dict):
        keys_a = set(a) - _SKIP_KEYS
        keys_b = set(b) - _SKIP_KEYS
        for k in sorted(keys_a ^ keys_b):
            out.append(f"{path}.{k}: present in only one result")
        for k in sorted(keys_a & keys_b):
            if k in _TOLERANT_INT_KEYS and _both_ints(a[k], b[k]):
                if abs(a[k] - b[k]) > events_atol:
                    out.append(
                        f"{path}.{k}: {a[k]} vs {b[k]} "
                        f"(|diff| > {events_atol})"
                    )
                continue
            _walk(a[k], b[k], f"{path}.{k}", events_atol, out)
        return
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} vs {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            _walk(x, y, f"{path}[{i}]", events_atol, out)
        return
    if _both_ints(a, b):
        if a != b:
            out.append(f"{path}: {a} != {b} (int, must be byte-identical)")
        return
    if isinstance(a, float) or isinstance(b, float):
        if not _num(a) or not _num(b):
            out.append(f"{path}: {a!r} vs {b!r}")
        elif not math.isclose(a, b, rel_tol=_FLOAT_RTOL, abs_tol=_FLOAT_ATOL):
            out.append(f"{path}: {a!r} != {b!r} (float, rel_tol {_FLOAT_RTOL})")
        return
    if a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def _both_ints(a: Any, b: Any) -> bool:
    return (
        isinstance(a, int)
        and isinstance(b, int)
        and not isinstance(a, bool)
        and not isinstance(b, bool)
    )


def _num(x: Any) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)
