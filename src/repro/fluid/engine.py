"""The fluid fast-forward engine: queue-level arithmetic over proven periods.

Event simulation of a steady-state middlebox burns most of its cycles
re-deriving a pattern that repeats exactly: the same packet classes, the
same queue occupancies, the same arbiter decisions, period after period.
This engine detects that repetition *empirically* and then replaces
whole periods with arithmetic:

1. **Boundary capture.** After every emission event of the reference
   source whose ``sent`` counter crosses a multiple of its template
   cycle length, the engine records a boundary: the congruence signature
   (:func:`repro.fluid.signature.state_signature`), the value of every
   integer counter cell, every float accumulator, and the latency
   samples recorded since the previous boundary.

2. **Period confirmation.** When the latest boundary's signature equals
   the one ``j`` boundaries back *and* the one ``2j`` back, and the
   integer-counter deltas across the two windows are **exactly** equal
   (floats within 1e-6), the window is a proven period: the system's
   discrete state is congruent and its observable effects repeat.

3. **Warp.** At a confirmed boundary the engine advances the clock by
   ``k`` whole periods in one step (:meth:`Simulator.warp`), adds
   ``k x delta`` to every ledger cell — counters, meters, busy-time,
   ``events_processed`` — shifts in-flight packet timestamps and RPU
   progress marks, and bulk-records ``k`` copies of the period's latency
   samples.  Integer counters after a warp are **byte-identical** to
   what event simulation would have produced; float-derived readings
   agree to ~1e-9 relative (clock ulp accumulation).

``k`` is capped so that every externally meaningful transition — a
measurement phase change, an ``until_ts`` bound, any scheduled event
beyond the periodicity horizon (fault triggers, watchdog polls) — still
happens *event-wise* at its exact event boundary.  Anything aperiodic
therefore de-optimizes the engine naturally: a control action or
injection calls :meth:`FluidEngine.notify_transient`, a drifting queue
changes the signature, and either way the engine falls back to pure
event simulation until a new steady state is proven.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .signature import state_signature

#: boundaries kept for period detection; max detectable period spans
#: ``_RING_LEN // 2`` boundaries
_RING_LEN = 10
#: de-opt records kept in stats
_MAX_DEOPTS = 16
#: relative tolerance for float cells / period durations across windows
_FLOAT_RTOL = 1e-6


@dataclass
class _Boundary:
    time: float
    signature: Optional[Tuple]
    ints: Tuple[int, ...]
    floats: Tuple[float, ...]
    completions: Optional[int]
    host_rx_len: int
    hist_id: int
    hist_len: int
    hist_slice: Optional[Tuple[float, ...]]


@dataclass
class _Steady:
    """A proven period: duration plus the per-period ledger deltas."""

    period: float
    sig: Tuple
    int_deltas: Tuple[int, ...]
    float_deltas: Tuple[float, ...]
    completions_delta: Optional[int]
    period_samples: Tuple[float, ...]
    horizon: float


class FluidEngine:
    """Fourth fidelity tier, attached to one :class:`SimSession`."""

    def __init__(self, session, gate) -> None:
        self.session = session
        self.system = session.system
        self.sim = session.system.sim
        self.gate = gate
        self.enabled = gate.eligible
        self.reasons: List[str] = list(gate.reasons)
        self.sources: List[Any] = []

        # -- dynamic structural eligibility --------------------------------
        for feed in session._feeds:
            source = getattr(feed, "source", None)
            if source is None:
                self._block(f"feed {type(feed).__name__} is not introspectable")
                break
            self.sources.append(source)
        if self.enabled and not self.sources:
            self._block("no traffic sources attached")
        for src in self.sources:
            if not self.enabled:
                break
            if src.fluid_profile() is None:
                self._block(f"{type(src).__name__} emission is not provably periodic")
            elif getattr(src, "n_packets", None) is not None:
                self._block("finite source drains; no steady state exists")
        if self.enabled and self.system.keep_delivered:
            self._block("keep_delivered retains per-packet state")
        if self.enabled and self.system.on_delivery is not None:
            self._block("on_delivery callback observes individual packets")

        if self.enabled:
            # latency continuity across warps needs live-packet tracking
            self.system.track_live_packets = True

        # -- stats ----------------------------------------------------------
        self.warps = 0
        self.periods_warped = 0
        self.warped_cycles = 0.0
        self.measured_pps: Optional[float] = None
        self.deopts: List[Dict[str, Any]] = []

        # -- detection state ------------------------------------------------
        self._ring: List[_Boundary] = []
        self._steady: Optional[_Steady] = None
        self._armed = False
        self._horizon: Optional[float] = None
        self._last_boundary_sent = -1
        self._boundary_src = self.sources[0] if self.sources else None
        self._boundary_every = 0
        if self.enabled and self._boundary_src is not None:
            profile = self._boundary_src.fluid_profile()
            self._boundary_every = max(1, profile[0])
        self._int_cells: List[Tuple[str, Any, str]] = []
        self._float_cells: List[Tuple[str, Any, str]] = []
        if self.enabled:
            self._build_cells()

    # -- eligibility / de-opt ----------------------------------------------

    def _block(self, reason: str) -> None:
        self.enabled = False
        self.reasons.append(reason)

    def notify_transient(self, reason: str) -> None:
        """A live control action / injection / new feed happened: discard
        all periodicity evidence and recalibrate from scratch."""
        if not self.enabled:
            return
        if self._ring or self._steady is not None:
            if len(self.deopts) < _MAX_DEOPTS:
                self.deopts.append({"t": self.sim.now, "reason": reason})
        self._ring.clear()
        self._steady = None
        self._armed = False
        self._horizon = None
        # firmware/policy objects may have been swapped: re-enumerate cells
        self._build_cells()

    def notify_feed(self, feed) -> None:
        """A feed was added mid-run: extend the source set or bail out."""
        if not self.enabled:
            return
        source = getattr(feed, "source", None)
        if source is None:
            self._block(f"feed {type(feed).__name__} is not introspectable")
        elif source.fluid_profile() is None:
            self._block(f"{type(source).__name__} emission is not provably periodic")
        elif getattr(source, "n_packets", None) is not None:
            self._block("finite source drains; no steady state exists")
        else:
            self.sources.append(source)
            self.notify_transient("feed added")

    # -- ledger cells --------------------------------------------------------

    def _build_cells(self) -> None:
        """Enumerate every integer counter and float accumulator that event
        simulation would advance during a period.  The warp adds
        ``k x per-period-delta`` to each, so this inventory is exactly the
        engine's claim of observational equivalence."""
        system = self.system
        ints: List[Tuple[str, Any, str]] = []
        floats: List[Tuple[str, Any, str]] = []

        def counters(label: str, cset) -> None:
            for name in sorted(cset._counters):
                ints.append((f"{label}.{name}", cset._counters[name], "value"))

        def link(label: str, serial) -> None:
            counters(f"{label}.ctr", serial.counters)
            counters(f"{label}.q", serial.queue.counters)
            floats.append((f"{label}.busy_time", serial, "busy_time"))

        ints.append(("sim.events_processed", self.sim, "events_processed"))
        counters("system", system.counters)
        for i, mac in enumerate(system.macs):
            counters(f"mac{i}", mac.counters)
            counters(f"mac{i}.rx_fifo", mac.rx_fifo.counters)
            link(f"mac{i}.rx_link", mac._rx_link)
            link(f"mac{i}.tx_link", mac._tx_link)
        for i, ing in enumerate(system.port_ingress):
            counters(f"ingress{i}", ing.counters)
        for tag, fabric in (("in", system.fabric_in), ("out", system.fabric_out)):
            for i, sw in enumerate(fabric.cluster_switches):
                counters(f"fabric_{tag}.sw{i}", sw.counters)
            for i, rl in enumerate(fabric.rpu_links):
                link(f"fabric_{tag}.rpu_link{i}", rl.link)
        link("host_link", system.host_link)
        link("loopback", system.loopback.link)
        for name in ("dispatched", "deferred"):
            ints.append((f"lb.{name}", system.lb, name))
        for i, rpu in enumerate(system.rpus):
            counters(f"rpu{i}", rpu.counters)
            for attr in sorted(vars(rpu.firmware)):
                value = getattr(rpu.firmware, attr)
                if isinstance(value, int) and not isinstance(value, bool):
                    ints.append((f"rpu{i}.fw.{attr}", rpu.firmware, attr))
        for i, meter in enumerate(system.tx_meters):
            ints.append((f"tx_meter{i}.bytes", meter, "bytes_total"))
            ints.append((f"tx_meter{i}.packets", meter, "packets_total"))
        ints.append(("host_meter.bytes", system.host_meter, "bytes_total"))
        ints.append(("host_meter.packets", system.host_meter, "packets_total"))
        stats = system.replay_stats()
        if stats is not None:
            for attr in ("hits", "misses", "fallbacks", "bypasses", "invalidations"):
                ints.append((f"replay.{attr}", stats, attr))
        for src in self.sources:
            ints.append((f"src.p{src.port}.sent", src, "sent"))

        self._int_cells = ints
        self._float_cells = floats

    def _read_ints(self) -> Tuple[int, ...]:
        return tuple(getattr(obj, attr) for _l, obj, attr in self._int_cells)

    def _read_floats(self) -> Tuple[float, ...]:
        return tuple(getattr(obj, attr) for _l, obj, attr in self._float_cells)

    # -- boundary capture & period confirmation ------------------------------

    def after_event(self) -> None:
        """Called by the session after every fired event; captures a
        boundary whenever the reference source just completed a template
        cycle, and un-arms the warp otherwise (any event between
        boundaries means the next warp decision needs a fresh match)."""
        if not self.enabled:
            return
        sent = self._boundary_src.sent
        if sent != self._last_boundary_sent and sent % self._boundary_every == 0:
            self._last_boundary_sent = sent
            self._capture_boundary()
        else:
            self._armed = False

    def _capture_boundary(self) -> None:
        ring = self._ring
        now = self.sim.now
        self._armed = False
        if self._horizon is None and ring:
            spacing = now - ring[-1].time
            if spacing <= 0:
                self.notify_transient("non-positive boundary spacing")
                return
            # events recurring within ~2 periods are part of the pattern;
            # anything further out is a one-shot appointment we warp up to
            self._horizon = 2.0 * spacing

        sig = None
        if self._horizon is not None:
            sig = state_signature(self.system, self.sources, self._horizon)

        hist = self.system.latency_us
        hist_id = id(hist)
        hist_len = hist.raw_count
        hist_slice: Optional[Tuple[float, ...]] = None
        if ring and ring[-1].hist_id == hist_id and hist_len >= ring[-1].hist_len:
            hist_slice = tuple(hist.samples_tail(ring[-1].hist_len))

        driver = self.session._measurement
        completions = driver.completions() if driver is not None else None

        ring.append(
            _Boundary(
                time=now,
                signature=sig,
                ints=self._read_ints(),
                floats=self._read_floats(),
                completions=completions,
                host_rx_len=len(self.system.host_rx),
                hist_id=hist_id,
                hist_len=hist_len,
                hist_slice=hist_slice,
            )
        )
        if len(ring) > _RING_LEN:
            ring.pop(0)
        if sig is None:
            return
        self._try_confirm()
        if not self._armed and self._steady is not None and sig == self._steady.sig:
            # congruent with the proven period even though this window
            # didn't re-confirm (e.g. right after a warp reset the ring)
            self._armed = True

    def _try_confirm(self) -> None:
        ring = self._ring
        for j in range(1, (len(ring) - 1) // 2 + 1):
            a, b, c = ring[-1], ring[-1 - j], ring[-1 - 2 * j]
            if a.signature is None or a.signature != b.signature:
                continue
            if b.signature != c.signature:
                continue
            d_ab = tuple(x - y for x, y in zip(a.ints, b.ints))
            d_bc = tuple(x - y for x, y in zip(b.ints, c.ints))
            if d_ab != d_bc:
                continue
            p_ab = a.time - b.time
            p_bc = b.time - c.time
            if p_ab <= 0 or not math.isclose(p_ab, p_bc, rel_tol=_FLOAT_RTOL):
                continue
            f_ab = tuple(x - y for x, y in zip(a.floats, b.floats))
            f_bc = tuple(x - y for x, y in zip(b.floats, c.floats))
            if any(
                not math.isclose(x, y, rel_tol=_FLOAT_RTOL, abs_tol=1e-6)
                for x, y in zip(f_ab, f_bc)
            ):
                continue
            if a.host_rx_len != b.host_rx_len:
                # host_rx accumulates real packet objects; extrapolating a
                # growing list is not possible, so never warp across it
                continue
            samples = self._window_samples(j)
            if samples is None:
                continue
            completions_delta = None
            if a.completions is not None and b.completions is not None:
                completions_delta = a.completions - b.completions
            steady = _Steady(
                period=p_ab,
                sig=a.signature,
                int_deltas=d_ab,
                float_deltas=f_ab,
                completions_delta=completions_delta,
                period_samples=samples,
                horizon=self._horizon,
            )
            if not self._feasible(steady):
                continue
            self._steady = steady
            self._armed = True
            return

    def _window_samples(self, j: int) -> Optional[Tuple[float, ...]]:
        """Latency samples recorded across the last ``j`` boundaries, or
        None if any slice is unusable (histogram swapped mid-window)."""
        out: List[float] = []
        hist_id = self._ring[-1].hist_id
        for boundary in self._ring[-j:]:
            if boundary.hist_slice is None or boundary.hist_id != hist_id:
                return None
            out.extend(boundary.hist_slice)
        return tuple(out)

    def _feasible(self, steady: _Steady) -> bool:
        """Cross-check the observed period against the static WCET budget:
        a measured rate above the verified analytic bound would mean the
        period evidence contradicts the proof, so refuse to engage."""
        if steady.completions_delta is None or steady.completions_delta <= 0:
            self.measured_pps = None
            return True
        seconds = self.system.config.clock.cycles_to_seconds(steady.period)
        if seconds <= 0:
            return False
        self.measured_pps = steady.completions_delta / seconds
        analytic = self.gate.analytic_pps
        if analytic is not None and self.measured_pps > analytic * 1.01:
            self._block(
                f"measured {self.measured_pps:.3e} pps exceeds analytic "
                f"WCET bound {analytic:.3e} pps"
            )
            return False
        return True

    # -- the warp ------------------------------------------------------------

    def pre_step(self, until_ts: Optional[float] = None) -> bool:
        """If armed at a confirmed boundary, warp as many whole periods as
        the caps allow.  Returns True when time was skipped (the caller
        re-enters its pump/step loop without firing an event)."""
        if not (self.enabled and self._armed and self._steady is not None):
            return False
        st = self._steady
        now = self.sim.now
        caps: List[int] = []

        driver = self.session._measurement
        if driver is not None and not driver.done:
            if st.completions_delta is not None and st.completions_delta > 0:
                # stop one completion short of every phase transition so
                # the transition itself is crossed event-wise: baselines
                # and final readings land on exact event boundaries
                room = driver.target() - 1 - driver.completions()
                caps.append(room // st.completions_delta)
            caps.append(int((driver.deadline - now) / st.period))
        if until_ts is not None:
            caps.append(int((until_ts - now) / st.period))
        if not caps:
            # free-running session with no bound: nothing requests the
            # future, so there is no budget to warp against
            return False

        far_min: Optional[float] = None
        for t, _name in self.sim.iter_pending():
            if t - now > st.horizon and (far_min is None or t < far_min):
                far_min = t
        if far_min is not None:
            k_far = int((far_min - now) / st.period)
            while k_far > 0 and now + k_far * st.period >= far_min:
                k_far -= 1
            caps.append(k_far)

        k = min(caps)
        if k < 1:
            return False
        self._warp(k, far_min)
        return True

    def _warp(self, k: int, far_min: Optional[float]) -> None:
        st = self._steady
        delta = k * st.period
        freeze_after = None if far_min is None else self.sim.now + st.horizon
        self.sim.warp(delta, freeze_after=freeze_after)

        for (label, obj, attr), d in zip(self._int_cells, st.int_deltas):
            if d:
                setattr(obj, attr, getattr(obj, attr) + k * d)
        for (label, obj, attr), d in zip(self._float_cells, st.float_deltas):
            if d:
                setattr(obj, attr, getattr(obj, attr) + k * d)
        for rpu in self.system.rpus:
            rpu.last_progress += delta
        self.system.shift_live_packets(delta)
        if st.period_samples:
            self.system.latency_us.record_repeated(st.period_samples, k)

        # translate the boundary ring into the warped frame so the very
        # next event-wise boundary re-confirms against it (otherwise every
        # warp would cost 2j periods of re-detection)
        for boundary in self._ring:
            boundary.time += delta
            boundary.ints = tuple(
                v + k * d for v, d in zip(boundary.ints, st.int_deltas)
            )
            boundary.floats = tuple(
                v + k * d for v, d in zip(boundary.floats, st.float_deltas)
            )
            if boundary.completions is not None and st.completions_delta is not None:
                boundary.completions += k * st.completions_delta

        self.warps += 1
        self.periods_warped += k
        self.warped_cycles += delta
        self._armed = False  # next boundary must re-match before warping again

    # -- reporting -----------------------------------------------------------

    def occupancy(self) -> Dict[str, float]:
        now = self.sim.now
        fluid = self.warped_cycles / now if now > 0 else 0.0
        return {"event": 1.0 - fluid, "fluid": fluid}

    def stats(self) -> Dict[str, Any]:
        st = self._steady
        return {
            "requested": True,
            "eligible": self.enabled,
            "engaged": self.warps > 0,
            "reasons": list(self.reasons),
            "warps": self.warps,
            "periods_warped": self.periods_warped,
            "warped_cycles": self.warped_cycles,
            "occupancy": self.occupancy(),
            "period_cycles": st.period if st is not None else None,
            "packets_per_period": (
                st.completions_delta if st is not None else None
            ),
            "measured_pps": self.measured_pps,
            "wcet_cycles": self.gate.wcet_cycles,
            "analytic_pps": self.gate.analytic_pps,
            "lint_classification": self.gate.lint_classification,
            "deopts": list(self.deopts),
        }
