"""The fluid fast-forward engine: queue-level arithmetic over proven periods.

Event simulation of a steady-state middlebox burns most of its cycles
re-deriving a pattern that repeats exactly: the same packet classes, the
same queue occupancies, the same arbiter decisions, period after period.
This engine detects that repetition *empirically* and then replaces
whole periods with arithmetic:

1. **Boundary capture.** After every emission event of the reference
   source whose ``sent`` counter crosses a multiple of its template
   cycle length, the engine records a boundary: the congruence signature
   (:func:`repro.fluid.signature.state_signature`), the queue-occupancy
   vector (:func:`repro.fluid.signature.queue_occupancy`), the value of
   every integer counter cell, every float accumulator, and the latency
   samples recorded since the previous boundary.

2. **Period confirmation.** Boundaries live in a long phase-indexed
   history (:data:`_HISTORY_LEN` entries) with a signature-hash index,
   so candidate periods are found in O(1) rather than by scanning — a
   rotating or contended regime whose orbit only recurs after hundreds
   of template cycles (the hyperperiod of all source template cycles
   interleaved with the service pattern) is as provable as a trivial
   one-boundary loop.  When the newest boundary's signature equals the
   one ``j`` boundaries back *and* the one ``2j`` back, and the
   integer-counter deltas across the two windows are **exactly** equal
   (floats within 1e-6), the window is a proven period: the system's
   discrete state is congruent and its observable effects repeat.

3. **Warp.** At a confirmed boundary the engine advances the clock by
   ``k`` whole periods in one step (:meth:`Simulator.warp`), adds
   ``k x delta`` to every ledger cell — counters, meters, busy-time,
   drop counters, ``events_processed`` — shifts in-flight packet
   timestamps and RPU progress marks, and bulk-records ``k`` copies of
   the period's latency samples.  Integer counters after a warp are
   **byte-identical** to what event simulation would have produced;
   float-derived readings agree to ~1e-9 relative (clock ulp
   accumulation).

4. **Phase-indexed re-arming.** Because counter deltas over one *full*
   period are the same from any phase of the orbit (a cyclic sum), the
   proven period licenses a warp from *every* boundary of the orbit,
   not just the phase it was confirmed at.  After a warp the history is
   translated into the warped frame, so the very next event-wise
   boundary re-arms by matching one period back — long-period regimes
   warp repeatedly without re-paying the 2j-boundary detection cost.

``k`` is capped so that every externally meaningful transition — a
measurement phase change, an ``until_ts`` bound (which is how cluster
warps clip to the sync-horizon barrier), any scheduled event beyond the
periodicity horizon (fault triggers, watchdog polls) — still happens
*event-wise* at its exact event boundary.  Anything aperiodic therefore
de-optimizes the engine naturally: a control action or injection calls
:meth:`FluidEngine.notify_transient`, a cross-board packet exchange
calls :meth:`FluidEngine.note_cross_traffic` (and any pending
``xboard`` delivery blocks the warp outright), a drifting queue changes
the signature, and either way the engine falls back to pure event
simulation until a new steady state is proven.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .signature import queue_occupancy, state_signature

#: boundaries kept for period detection; max detectable period spans
#: ``(_HISTORY_LEN - 1) // 2`` boundaries.  Sized for contended
#: multi-hundred-boundary hyperperiods (the artifact's 4-RPU contended
#: point recurs every 275 template cycles) with headroom.
_HISTORY_LEN = 1408
#: signature-hash candidate matches tried per boundary before giving up
#: (bounds worst-case work under adversarial hash collisions)
_MAX_CANDIDATES = 12
#: de-opt records kept in stats
_MAX_DEOPTS = 16
#: relative tolerance for float cells / period durations across windows
_FLOAT_RTOL = 1e-6
#: event name used by the cluster harness for cross-board deliveries;
#: a pending event with this name pins absolute time and blocks warps
_XBOARD_EVENT = "xboard"


@dataclass
class _Boundary:
    time: float
    signature: Optional[Tuple]
    sig_hash: Optional[int]
    occupancy: Tuple[int, ...]
    ints: Tuple[int, ...]
    floats: Tuple[float, ...]
    completions: Optional[int]
    host_rx_len: int
    hist_id: int
    hist_len: int
    hist_slice: Optional[Tuple[float, ...]]


@dataclass
class _Steady:
    """A proven period: duration plus the per-period ledger deltas."""

    period: float
    period_boundaries: int
    sig: Tuple
    int_deltas: Tuple[int, ...]
    float_deltas: Tuple[float, ...]
    completions_delta: Optional[int]
    period_samples: Tuple[float, ...]
    horizon: float


class FluidEngine:
    """Fourth fidelity tier, attached to one :class:`SimSession`."""

    def __init__(self, session, gate) -> None:
        self.session = session
        self.system = session.system
        self.sim = session.system.sim
        self.gate = gate
        self.enabled = gate.eligible
        self.reasons: List[str] = list(gate.reasons)
        self.sources: List[Any] = []

        # -- dynamic structural eligibility --------------------------------
        for feed in session._feeds:
            source = getattr(feed, "source", None)
            if source is None:
                self._block(f"feed {type(feed).__name__} is not introspectable")
                break
            self.sources.append(source)
        if self.enabled and not self.sources:
            self._block("no traffic sources attached")
        for src in self.sources:
            if not self.enabled:
                break
            if src.fluid_profile() is None:
                self._block(f"{type(src).__name__} emission is not provably periodic")
            elif getattr(src, "n_packets", None) is not None:
                self._block("finite source drains; no steady state exists")
        if self.enabled and self.system.keep_delivered:
            self._block("keep_delivered retains per-packet state")
        if self.enabled and self.system.on_delivery is not None:
            self._block("on_delivery callback observes individual packets")

        if self.enabled:
            # latency continuity across warps needs live-packet tracking
            self.system.track_live_packets = True

        # -- stats ----------------------------------------------------------
        self.warps = 0
        self.periods_warped = 0
        self.warped_cycles = 0.0
        self.measured_pps: Optional[float] = None
        self.deopts: List[Dict[str, Any]] = []
        self.cross_deopts = 0
        self.conservation_refusals = 0
        self.backlog_peak = 0
        self.backlog_now = 0

        # -- detection state ------------------------------------------------
        self._hist: List[_Boundary] = []
        self._hist_base = 0  # absolute index of _hist[0]
        self._sig_index: Dict[int, List[int]] = {}  # sig hash -> abs indices
        self._steady: Optional[_Steady] = None
        self._armed = False
        self._horizon: Optional[float] = None
        self._last_boundary_sent = -1
        self._boundary_src = self.sources[0] if self.sources else None
        self._boundary_every = 0
        if self.enabled and self._boundary_src is not None:
            profile = self._boundary_src.fluid_profile()
            self._boundary_every = max(1, profile[0])
        self._int_cells: List[Tuple[str, Any, str]] = []
        self._float_cells: List[Tuple[str, Any, str]] = []
        self._sent_ix: List[int] = []
        self._drop_ix: List[int] = []
        self._done_ix: List[int] = []
        if self.enabled:
            self._build_cells()

    # -- eligibility / de-opt ----------------------------------------------

    def _block(self, reason: str) -> None:
        self.enabled = False
        self.reasons.append(reason)

    def notify_transient(self, reason: str, rebuild_cells: bool = True) -> None:
        """A live control action / injection / new feed happened: discard
        all periodicity evidence and recalibrate from scratch."""
        if not self.enabled:
            return
        if self._hist or self._steady is not None:
            if len(self.deopts) < _MAX_DEOPTS:
                self.deopts.append({"t": self.sim.now, "reason": reason})
        self._hist.clear()
        self._hist_base = 0
        self._sig_index.clear()
        self._steady = None
        self._armed = False
        self._horizon = None
        if rebuild_cells:
            # firmware/policy objects may have been swapped: re-enumerate
            self._build_cells()

    def note_cross_traffic(self, reason: str) -> None:
        """A packet crossed a board boundary (either direction): the
        period evidence no longer describes a closed system, so de-opt.
        Deliberately cheap when there is no evidence to discard — a
        hash-affine cluster board calls this on every remote steer."""
        if not self.enabled:
            return
        self.cross_deopts += 1
        if self._hist or self._steady is not None:
            self.notify_transient(reason, rebuild_cells=False)

    def notify_feed(self, feed) -> None:
        """A feed was added mid-run: extend the source set or bail out."""
        if not self.enabled:
            return
        source = getattr(feed, "source", None)
        if source is None:
            self._block(f"feed {type(feed).__name__} is not introspectable")
        elif source.fluid_profile() is None:
            self._block(f"{type(source).__name__} emission is not provably periodic")
        elif getattr(source, "n_packets", None) is not None:
            self._block("finite source drains; no steady state exists")
        else:
            self.sources.append(source)
            self.notify_transient("feed added")

    # -- ledger cells --------------------------------------------------------

    def _build_cells(self) -> None:
        """Enumerate every integer counter and float accumulator that event
        simulation would advance during a period.  The warp adds
        ``k x per-period-delta`` to each, so this inventory is exactly the
        engine's claim of observational equivalence."""
        system = self.system
        ints: List[Tuple[str, Any, str]] = []
        floats: List[Tuple[str, Any, str]] = []

        def counters(label: str, cset) -> None:
            for name in sorted(cset._counters):
                ints.append((f"{label}.{name}", cset._counters[name], "value"))

        def link(label: str, serial) -> None:
            counters(f"{label}.ctr", serial.counters)
            counters(f"{label}.q", serial.queue.counters)
            floats.append((f"{label}.busy_time", serial, "busy_time"))

        ints.append(("sim.events_processed", self.sim, "events_processed"))
        counters("system", system.counters)
        for i, mac in enumerate(system.macs):
            counters(f"mac{i}", mac.counters)
            counters(f"mac{i}.rx_fifo", mac.rx_fifo.counters)
            link(f"mac{i}.rx_link", mac._rx_link)
            link(f"mac{i}.tx_link", mac._tx_link)
        for i, ing in enumerate(system.port_ingress):
            counters(f"ingress{i}", ing.counters)
        for tag, fabric in (("in", system.fabric_in), ("out", system.fabric_out)):
            for i, sw in enumerate(fabric.cluster_switches):
                counters(f"fabric_{tag}.sw{i}", sw.counters)
            for i, rl in enumerate(fabric.rpu_links):
                link(f"fabric_{tag}.rpu_link{i}", rl.link)
        link("host_link", system.host_link)
        link("loopback", system.loopback.link)
        for name in ("dispatched", "deferred"):
            ints.append((f"lb.{name}", system.lb, name))
        for i, rpu in enumerate(system.rpus):
            counters(f"rpu{i}", rpu.counters)
            for attr in sorted(vars(rpu.firmware)):
                value = getattr(rpu.firmware, attr)
                if isinstance(value, int) and not isinstance(value, bool):
                    ints.append((f"rpu{i}.fw.{attr}", rpu.firmware, attr))
        for i, meter in enumerate(system.tx_meters):
            ints.append((f"tx_meter{i}.bytes", meter, "bytes_total"))
            ints.append((f"tx_meter{i}.packets", meter, "packets_total"))
        ints.append(("host_meter.bytes", system.host_meter, "bytes_total"))
        ints.append(("host_meter.packets", system.host_meter, "packets_total"))
        stats = system.replay_stats()
        if stats is not None:
            for attr in ("hits", "misses", "fallbacks", "bypasses", "invalidations"):
                ints.append((f"replay.{attr}", stats, attr))
        for src in self.sources:
            ints.append((f"src.p{src.port}.sent", src, "sent"))

        self._int_cells = ints
        self._float_cells = floats
        # index sets for the contended conservation cross-check: offered
        # emissions, MAC-level drop sinks, and completion sinks
        self._sent_ix = [
            i for i, (lbl, _o, _a) in enumerate(ints) if lbl.startswith("src.")
        ]
        self._drop_ix = [
            i
            for i, (lbl, _o, _a) in enumerate(ints)
            if lbl.count(".") == 1 and lbl.startswith("mac") and lbl.endswith("drops")
        ]
        self._done_ix = [
            i
            for i, (lbl, _o, _a) in enumerate(ints)
            if lbl in ("system.delivered", "system.to_host",
                       "system.dropped_by_firmware")
        ]

    def _read_ints(self) -> Tuple[int, ...]:
        return tuple(getattr(obj, attr) for _l, obj, attr in self._int_cells)

    def _read_floats(self) -> Tuple[float, ...]:
        return tuple(getattr(obj, attr) for _l, obj, attr in self._float_cells)

    # -- boundary capture & period confirmation ------------------------------

    def after_event(self) -> None:
        """Called by the session after every fired event; captures a
        boundary whenever the reference source just completed a template
        cycle, and un-arms the warp otherwise (any event between
        boundaries means the next warp decision needs a fresh match)."""
        if not self.enabled:
            return
        sent = self._boundary_src.sent
        if sent != self._last_boundary_sent and sent % self._boundary_every == 0:
            self._last_boundary_sent = sent
            self._capture_boundary()
        else:
            self._armed = False

    def _evict_oldest(self) -> None:
        old = self._hist.pop(0)
        if old.sig_hash is not None:
            bucket = self._sig_index.get(old.sig_hash)
            if bucket and bucket[0] == self._hist_base:
                bucket.pop(0)
                if not bucket:
                    del self._sig_index[old.sig_hash]
        self._hist_base += 1

    def _capture_boundary(self) -> None:
        hist = self._hist
        now = self.sim.now
        self._armed = False
        if self._horizon is None and hist:
            spacing = now - hist[-1].time
            if spacing <= 0:
                self.notify_transient("non-positive boundary spacing")
                return
            # events recurring within ~2 periods are part of the pattern;
            # anything further out is a one-shot appointment we warp up to
            self._horizon = 2.0 * spacing

        sig = None
        sig_hash = None
        if self._horizon is not None:
            sig = state_signature(self.system, self.sources, self._horizon)
            sig_hash = hash(sig)

        occupancy = queue_occupancy(self.system)
        self.backlog_now = sum(occupancy)
        if self.backlog_now > self.backlog_peak:
            self.backlog_peak = self.backlog_now

        latency = self.system.latency_us
        hist_id = id(latency)
        hist_len = latency.raw_count
        hist_slice: Optional[Tuple[float, ...]] = None
        if hist and hist[-1].hist_id == hist_id and hist_len >= hist[-1].hist_len:
            hist_slice = tuple(latency.samples_tail(hist[-1].hist_len))

        driver = self.session._measurement
        completions = driver.completions() if driver is not None else None

        hist.append(
            _Boundary(
                time=now,
                signature=sig,
                sig_hash=sig_hash,
                occupancy=occupancy,
                ints=self._read_ints(),
                floats=self._read_floats(),
                completions=completions,
                host_rx_len=len(self.system.host_rx),
                hist_id=hist_id,
                hist_len=hist_len,
                hist_slice=hist_slice,
            )
        )
        while len(hist) > _HISTORY_LEN:
            self._evict_oldest()
        if sig is None:
            return
        self._sig_index.setdefault(sig_hash, []).append(
            self._hist_base + len(hist) - 1
        )
        self._try_confirm()
        if not self._armed and self._steady is not None and sig == self._steady.sig:
            # congruent with the proven period even though this window
            # didn't re-confirm (e.g. right after a transient cleared
            # the history)
            self._armed = True

    def _try_confirm(self) -> None:
        hist = self._hist
        cur = hist[-1]
        if cur.signature is None:
            return
        n = self._hist_base + len(hist) - 1

        # fast path: the orbit is already proven; counter deltas over one
        # full period are a cyclic sum, identical from any phase, so a
        # match one period back re-arms the warp at this phase without
        # re-paying triple confirmation
        st = self._steady
        if st is not None:
            i = n - st.period_boundaries
            if i >= self._hist_base:
                b = hist[i - self._hist_base]
                if (
                    cur.occupancy == b.occupancy
                    and cur.host_rx_len == b.host_rx_len
                    and cur.sig_hash == b.sig_hash
                    and math.isclose(
                        cur.time - b.time, st.period, rel_tol=_FLOAT_RTOL
                    )
                    and tuple(x - y for x, y in zip(cur.ints, b.ints))
                    == st.int_deltas
                    and cur.signature == b.signature
                ):
                    self._armed = True
                    return

        # full search: hash-indexed candidate phases, most recent first
        candidates = self._sig_index.get(cur.sig_hash, ())
        tried = 0
        for i in reversed(candidates):
            if i >= n:
                continue
            j = n - i
            back2 = n - 2 * j
            if back2 < self._hist_base:
                break  # older candidates only push back2 further out
            tried += 1
            if tried > _MAX_CANDIDATES:
                return
            b = hist[i - self._hist_base]
            c = hist[back2 - self._hist_base]
            if self._confirm_window(cur, b, c, j):
                return

    def _confirm_window(self, a: _Boundary, b: _Boundary, c: _Boundary,
                        j: int) -> bool:
        if a.occupancy != b.occupancy or b.occupancy != c.occupancy:
            return False
        if a.signature is None or a.signature != b.signature:
            return False
        if b.signature != c.signature:
            return False
        d_ab = tuple(x - y for x, y in zip(a.ints, b.ints))
        d_bc = tuple(x - y for x, y in zip(b.ints, c.ints))
        if d_ab != d_bc:
            return False
        p_ab = a.time - b.time
        p_bc = b.time - c.time
        if p_ab <= 0 or not math.isclose(p_ab, p_bc, rel_tol=_FLOAT_RTOL):
            return False
        f_ab = tuple(x - y for x, y in zip(a.floats, b.floats))
        f_bc = tuple(x - y for x, y in zip(b.floats, c.floats))
        if any(
            not math.isclose(x, y, rel_tol=_FLOAT_RTOL, abs_tol=1e-6)
            for x, y in zip(f_ab, f_bc)
        ):
            return False
        if a.host_rx_len != b.host_rx_len:
            # host_rx accumulates real packet objects; extrapolating a
            # growing list is not possible, so never warp across it
            return False
        samples = self._window_samples(j)
        if samples is None:
            return False
        completions_delta = None
        if a.completions is not None and b.completions is not None:
            completions_delta = a.completions - b.completions
        steady = _Steady(
            period=p_ab,
            period_boundaries=j,
            sig=a.signature,
            int_deltas=d_ab,
            float_deltas=f_ab,
            completions_delta=completions_delta,
            period_samples=samples,
            horizon=self._horizon,
        )
        if not self._feasible(steady):
            return False
        self._steady = steady
        self._armed = True
        return True

    def _window_samples(self, j: int) -> Optional[Tuple[float, ...]]:
        """Latency samples recorded across the last ``j`` boundaries, or
        None if any slice is unusable (histogram swapped mid-window)."""
        out: List[float] = []
        hist_id = self._hist[-1].hist_id
        for boundary in self._hist[-j:]:
            if boundary.hist_slice is None or boundary.hist_id != hist_id:
                return None
            out.extend(boundary.hist_slice)
        return tuple(out)

    def _feasible(self, steady: _Steady) -> bool:
        """Cross-check the observed period against the static analysis:
        a measured rate above the verified analytic WCET bound, or a
        contended window whose drop ledger violates packet conservation,
        would mean the period evidence contradicts the proof — refuse
        to engage rather than extrapolate a contradiction."""
        drops = sum(steady.int_deltas[i] for i in self._drop_ix)
        if drops > 0:
            # contended window: every offered packet must land in exactly
            # one sink (delivered / host / firmware drop / MAC drop) for
            # the drop counters to extrapolate exactly
            sent = sum(steady.int_deltas[i] for i in self._sent_ix)
            done = sum(steady.int_deltas[i] for i in self._done_ix)
            if sent != done + drops:
                self.conservation_refusals += 1
                return False
        if steady.completions_delta is None or steady.completions_delta <= 0:
            self.measured_pps = None
            return True
        seconds = self.system.config.clock.cycles_to_seconds(steady.period)
        if seconds <= 0:
            return False
        self.measured_pps = steady.completions_delta / seconds
        analytic = self.gate.analytic_pps
        if analytic is not None and self.measured_pps > analytic * 1.01:
            self._block(
                f"measured {self.measured_pps:.3e} pps exceeds analytic "
                f"WCET bound {analytic:.3e} pps"
            )
            return False
        return True

    # -- the warp ------------------------------------------------------------

    def pre_step(self, until_ts: Optional[float] = None) -> bool:
        """If armed at a confirmed boundary, warp as many whole periods as
        the caps allow.  Returns True when time was skipped (the caller
        re-enters its pump/step loop without firing an event)."""
        if not (self.enabled and self._armed and self._steady is not None):
            return False
        st = self._steady
        now = self.sim.now
        caps: List[int] = []

        driver = self.session._measurement
        if driver is not None and not driver.done:
            if st.completions_delta is not None and st.completions_delta > 0:
                # stop one completion short of every phase transition so
                # the transition itself is crossed event-wise: baselines
                # and final readings land on exact event boundaries
                room = driver.target() - 1 - driver.completions()
                caps.append(room // st.completions_delta)
            caps.append(int((driver.deadline - now) / st.period))
        if until_ts is not None:
            caps.append(int((until_ts - now) / st.period))
        if not caps:
            # free-running session with no bound: nothing requests the
            # future, so there is no budget to warp against
            return False

        far_min: Optional[float] = None
        for t, name in self.sim.iter_pending():
            if name == _XBOARD_EVENT:
                # a cross-board delivery is pinned to absolute time;
                # warping would shift or skip it — hard de-opt
                return False
            if t - now > st.horizon and (far_min is None or t < far_min):
                far_min = t
        if far_min is not None:
            k_far = int((far_min - now) / st.period)
            while k_far > 0 and now + k_far * st.period >= far_min:
                k_far -= 1
            caps.append(k_far)

        k = min(caps)
        if k < 1:
            return False
        self._warp(k, far_min)
        return True

    def _warp(self, k: int, far_min: Optional[float]) -> None:
        st = self._steady
        delta = k * st.period
        freeze_after = None if far_min is None else self.sim.now + st.horizon
        self.sim.warp(delta, freeze_after=freeze_after)

        for (label, obj, attr), d in zip(self._int_cells, st.int_deltas):
            if d:
                setattr(obj, attr, getattr(obj, attr) + k * d)
        for (label, obj, attr), d in zip(self._float_cells, st.float_deltas):
            if d:
                setattr(obj, attr, getattr(obj, attr) + k * d)
        for rpu in self.system.rpus:
            rpu.last_progress += delta
        self.system.shift_live_packets(delta)
        if st.period_samples:
            self.system.latency_us.record_repeated(st.period_samples, k)

        # translate the boundary history into the warped frame so the
        # very next event-wise boundary re-confirms against it (otherwise
        # every warp would cost 2j periods of re-detection).  Only the
        # most recent 2j+4 boundaries can ever take part in a future
        # confirmation at this period, so older ones are dropped instead
        # of translated — that keeps per-warp work proportional to the
        # period, not the history capacity.
        keep = 2 * st.period_boundaries + 4
        while len(self._hist) > keep:
            self._evict_oldest()
        for boundary in self._hist:
            boundary.time += delta
            boundary.ints = tuple(
                v + k * d for v, d in zip(boundary.ints, st.int_deltas)
            )
            boundary.floats = tuple(
                v + k * d for v, d in zip(boundary.floats, st.float_deltas)
            )
            if boundary.completions is not None and st.completions_delta is not None:
                boundary.completions += k * st.completions_delta

        self.warps += 1
        self.periods_warped += k
        self.warped_cycles += delta
        self._armed = False  # next boundary must re-match before warping again

    # -- reporting -----------------------------------------------------------

    def occupancy(self) -> Dict[str, float]:
        now = self.sim.now
        fluid = self.warped_cycles / now if now > 0 else 0.0
        return {"event": 1.0 - fluid, "fluid": fluid}

    def stats(self) -> Dict[str, Any]:
        st = self._steady
        # runtime contention: the gate's static flag predicts contention
        # from offered vs WCET capacity, but the real bottleneck can sit
        # upstream of the firmware (e.g. MAC rx FIFO overflow), so a
        # proven period with a nonzero drop ledger is contended no matter
        # what the static prediction said
        period_drops = (
            sum(st.int_deltas[i] for i in self._drop_ix)
            if st is not None
            else None
        )
        return {
            "requested": True,
            "eligible": self.enabled,
            "engaged": self.warps > 0,
            "reasons": list(self.reasons),
            "warps": self.warps,
            "periods_warped": self.periods_warped,
            "warped_cycles": self.warped_cycles,
            "occupancy": self.occupancy(),
            "period_cycles": st.period if st is not None else None,
            "period_boundaries": (
                st.period_boundaries if st is not None else None
            ),
            "packets_per_period": (
                st.completions_delta if st is not None else None
            ),
            "measured_pps": self.measured_pps,
            "wcet_cycles": self.gate.wcet_cycles,
            "analytic_pps": self.gate.analytic_pps,
            "offered_pps": getattr(self.gate, "offered_pps", None),
            "contended": bool(
                getattr(self.gate, "contended", False)
                or (period_drops or 0) > 0
            ),
            "drops_per_period": period_drops,
            "backlog": {"current": self.backlog_now, "peak": self.backlog_peak},
            "lint_classification": self.gate.lint_classification,
            "deopts": list(self.deopts),
            "cross_deopts": self.cross_deopts,
            "conservation_refusals": self.conservation_refusals,
        }
