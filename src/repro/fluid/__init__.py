"""Fluid fast-forward: the fourth fidelity tier.

Above the interpreter, the translated firmware backend, and the replay
cache sits this package: once a run is provably in steady state, whole
periods of event simulation are replaced by ledger arithmetic.  See
:mod:`repro.fluid.engine` for the detection/warp machinery and
:mod:`repro.verify.fluidgate` for the static eligibility half.
"""

from .compare import assert_equivalent, diff_results
from .engine import FluidEngine
from .signature import queue_occupancy, state_signature

__all__ = [
    "FluidEngine",
    "assert_equivalent",
    "diff_results",
    "queue_occupancy",
    "state_signature",
]
