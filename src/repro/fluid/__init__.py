"""Fluid fast-forward: the fourth fidelity tier.

Above the interpreter, the translated firmware backend, and the replay
cache sits this package: once a run is provably in steady state, whole
periods of event simulation are replaced by ledger arithmetic.  See
:mod:`repro.fluid.engine` for the detection/warp machinery and
:mod:`repro.verify.fluidgate` for the static eligibility half.
"""

from .engine import FluidEngine
from .signature import state_signature

__all__ = ["FluidEngine", "state_signature"]
