"""Congruence fingerprints for the fluid fast-forward detector.

A *boundary signature* captures everything that determines the future
event-by-event evolution of a :class:`~repro.core.system.RosebudSystem`
up to a time translation: the pending event multiset (as offsets from
now), every queue's per-packet class composition, every busy flag, and
the hidden cursors of the stateful policies (round-robin pointers, slot
free-lists, source flow-cycle phases).  Two boundaries with equal
signatures evolve identically modulo the clock — which is exactly the
license the engine needs to replace simulated periods with arithmetic.

Packets are identified by their replay-cache *class key*
(:mod:`repro.packet.template`): fluid skipping leans on the same
flyweight class signatures the replay cache memoizes by, so "the same
packet mix" means the same thing to both tiers.

Pending-event offsets are rounded to 1e-3 cycles before comparison:
steady-state offsets reproduce exactly up to float accumulation noise
(~ulp of the absolute clock), which is orders of magnitude below any
two distinct event separations in the model.
"""

from __future__ import annotations

from typing import Any, Tuple

#: decimal places kept of event offsets (see module docstring)
_REL_DIGITS = 3


def _packet_key(packet) -> Any:
    key = packet.class_key
    if key is not None:
        return key
    return ("anon", packet.size, packet.ingress_port)


def _link_state(link) -> Tuple:
    return (
        bool(link.busy),
        bool(link.paused),
        tuple(_packet_key(item) for item, _n in link.queue._items),
    )


def _fabric_state(fabric) -> Tuple:
    switches = tuple(
        (
            sw._busy,
            getattr(sw._arbiter, "_last", None),
            tuple(
                tuple(_packet_key(p) for p in sw._queues[cls])
                for cls in sw.INPUT_CLASSES
            ),
        )
        for sw in fabric.cluster_switches
    )
    links = tuple(_link_state(rl.link) for rl in fabric.rpu_links)
    return switches, links


def queue_occupancy(system) -> Tuple[int, ...]:
    """Per-queue packet depths in a fixed structural order.

    This is the *bounded-growth ledger* view of the system: a cheap
    integer vector the engine stores at every boundary.  It serves as
    (a) a fast pre-filter before full-signature comparison (occupancy
    equality is implied by signature equality, and comparing a few
    dozen ints rejects most non-matching phases without touching the
    big nested tuples), (b) the backlog telemetry surfaced in
    :meth:`FluidEngine.stats`, and (c) the growth gate: a proven period
    has zero occupancy growth *by construction* (queue contents are
    part of the signature), so warps can never extrapolate across an
    unboundedly growing backlog — such a regime simply never proves.
    """
    out = []
    for mac in system.macs:
        out.append(len(mac.rx_fifo._items))
        out.append(len(mac._rx_link.queue._items))
        out.append(len(mac._tx_link.queue._items))
    for ing in system.port_ingress:
        out.append(0 if ing._current is None else 1)
    for fabric in (system.fabric_in, system.fabric_out):
        for sw in fabric.cluster_switches:
            out.append(sum(len(sw._queues[cls]) for cls in sw.INPUT_CLASSES))
        for rl in fabric.rpu_links:
            out.append(len(rl.link.queue._items))
    for rpu in system.rpus:
        out.append(len(rpu._in_queue))
        out.append(len(rpu._accel_queue))
        out.append(len(rpu._results))
    out.append(len(system.host_link.queue._items))
    out.append(len(system.loopback.link.queue._items))
    out.append(len(system.host_rx))
    return tuple(out)


def state_signature(system, sources, horizon: float) -> Tuple:
    """The full congruence fingerprint of ``system`` at this instant.

    ``horizon`` bounds which pending events are part of the recurring
    pattern: events further than ``horizon`` cycles out are one-shot
    appointments (fault triggers, watchdog polls on a different period)
    — the engine never warps across them, so they may differ between
    matching boundaries without breaking congruence.
    """
    sim = system.sim
    now = sim.now
    events = sorted(
        (round(t - now, _REL_DIGITS), name)
        for t, name in sim.iter_pending()
        if t - now <= horizon
    )

    lb = system.lb
    policy = lb.policy
    lb_state = (
        type(policy).__name__,
        getattr(policy, "_next", None),
        getattr(policy, "_tiebreak", None),
        tuple(lb.enabled),
        tuple(tuple(free) for free in lb.slots._free),
    )

    macs = tuple(
        (
            bool(mac.link_up),
            tuple(_packet_key(p) for p, _n in mac.rx_fifo._items),
            _link_state(mac._rx_link),
            _link_state(mac._tx_link),
        )
        for mac in system.macs
    )

    ingress = tuple(
        (
            ing._busy,
            ing._waiting_for_slot,
            None if ing._current is None else _packet_key(ing._current),
        )
        for ing in system.port_ingress
    )

    rpus = tuple(
        (
            rpu._sw_busy,
            rpu._accel_busy,
            bool(rpu.paused),
            rpu._wedged,
            rpu._evicted,
            rpu._generation,
            len(rpu._stuck),
            tuple(_packet_key(p) for p in rpu._in_queue),
            tuple(_packet_key(p) for p in rpu._accel_queue),
            len(rpu._results),
        )
        for rpu in system.rpus
    )

    return (
        tuple(events),
        tuple(src.fluid_profile() for src in sources),
        lb_state,
        macs,
        ingress,
        _fabric_state(system.fabric_in),
        _fabric_state(system.fabric_out),
        rpus,
        _link_state(system.host_link),
        _link_state(system.loopback.link),
    )
