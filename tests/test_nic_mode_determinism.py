"""Tests for NIC-mode operation and simulation determinism."""


from repro.core import HostInterface, RosebudConfig, RosebudSystem
from repro.firmware import ForwarderFirmware, NicFirmware
from repro.packet import build_tcp


class TestNicMode:
    def test_wire_traffic_reaches_host(self):
        system = RosebudSystem(RosebudConfig(n_rpus=16), NicFirmware())
        for i in range(10):
            system.offer_packet(0, build_tcp("1.1.1.1", "2.2.2.2", i + 1, 80, pad_to=256))
        system.sim.run()
        assert system.counters.value("to_host") == 10
        assert system.counters.value("delivered") == 0
        assert len(system.host_rx) == 10

    def test_host_traffic_reaches_wire(self):
        system = RosebudSystem(RosebudConfig(n_rpus=16), NicFirmware(egress_port=1))
        host = HostInterface(system)
        for i in range(6):
            host.inject_packet(build_tcp("10.0.0.1", "8.8.8.8", i + 1, 53, pad_to=200))
        system.sim.run()
        assert system.counters.value("delivered") == 6
        assert system.tx_meters[1].packets_total == 6

    def test_bidirectional_nic(self):
        system = RosebudSystem(RosebudConfig(n_rpus=16), NicFirmware())
        host = HostInterface(system)
        system.offer_packet(0, build_tcp("1.1.1.1", "2.2.2.2", 5, 80, pad_to=128))
        host.inject_packet(build_tcp("10.0.0.1", "8.8.8.8", 6, 53, pad_to=128))
        system.sim.run()
        assert system.counters.value("to_host") == 1
        assert system.counters.value("delivered") == 1


def _run_fingerprint(seed: int):
    """A moderately complex run reduced to a comparable fingerprint.

    IMIX traffic makes the packet-size *sequence* seed-dependent, so
    the timing fingerprint separates seeds while staying reproducible.
    """
    from repro.traffic import ImixSource

    system = RosebudSystem(RosebudConfig(n_rpus=8, slots_per_rpu=32), ForwarderFirmware())
    sources = [
        ImixSource(system, port, 80.0, seed=seed + port, n_packets=400)
        for port in range(2)
    ]
    for source in sources:
        source.start()
    system.sim.run()
    return (
        system.counters.snapshot(),
        tuple(system.rpu_packet_counts()),
        round(system.latency_us.mean, 9),
        system.sim.events_processed,
        system.sim.now,
    )


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        """The whole stack is deterministic given seeds — the property
        that makes simulation debugging pleasant (§2.3's complaint
        about hardware is precisely that it isn't)."""
        assert _run_fingerprint(7) == _run_fingerprint(7)

    def test_different_seeds_differ(self):
        assert _run_fingerprint(7) != _run_fingerprint(8)
