"""Worker-crash paths under cluster sharding.

The horizon barrier is a rendezvous: if a shard worker dies or wedges
mid-sync, the parent must surface a *named* :class:`ClusterShardError`
— never hang waiting on a pipe that will not answer.  The worker
protocol ships two deliberate test hooks (``crash`` = silent
``os._exit``, ``hang`` = oversleep) so these paths are exercised for
real, against real spawn processes.
"""

import pytest

from repro import ExperimentSpec, MeasurementWindow, TrafficProfile
from repro.cluster import ClusterSpec
from repro.cluster.engine import ClusterEngine
from repro.cluster.shard import ClusterShardError, ProcessShard

SPEC = ExperimentSpec(
    traffic=TrafficProfile(offered_gbps=40.0, packet_size=512),
    window=MeasurementWindow(
        warmup_packets=50, measure_packets=300, max_cycles=10_000_000
    ),
    cluster=ClusterSpec(boards=2),
)


def test_crashed_worker_raises_named_error():
    shard = ProcessShard(0, SPEC, [0], timeout=60.0)
    try:
        with pytest.raises(ClusterShardError, match="died|gone"):
            shard.request("crash")
    finally:
        shard.close()


def test_hung_worker_times_out_with_named_error():
    shard = ProcessShard(0, SPEC, [0], timeout=0.5)
    try:
        with pytest.raises(ClusterShardError, match="exceeded"):
            shard.request("hang", 30.0)
    finally:
        shard.close()


def test_worker_exception_travels_back_with_traceback():
    shard = ProcessShard(0, SPEC, [0], timeout=60.0)
    try:
        with pytest.raises(ClusterShardError, match="unknown shard command"):
            shard.request("frobnicate")
        # the worker survives a failed command and keeps serving
        out, metrics = shard.advance(250.0, {})
        assert 0 in metrics
    finally:
        shard.close()


def test_engine_surfaces_shard_death_at_the_barrier():
    engine = ClusterEngine(SPEC, shards=2)
    try:
        engine.step(n_events=2)
        # kill one worker out from under the barrier
        victim = engine._shards[1]
        victim._proc.terminate()
        victim._proc.join(timeout=10.0)
        with pytest.raises(ClusterShardError, match="shard 1"):
            engine.step(n_events=1)
    finally:
        engine.close()


def test_engine_close_is_idempotent_after_failure():
    engine = ClusterEngine(SPEC, shards=2)
    engine.start()
    engine._shards[0]._proc.terminate()
    engine._shards[0]._proc.join(timeout=10.0)
    with pytest.raises(ClusterShardError):
        engine.advance_horizon()
    engine.close()
    engine.close()  # second close must not raise


def test_unpicklable_spec_fails_by_name_before_spawning():
    spec = SPEC.with_(setup=lambda system: None)
    engine = ClusterEngine(spec, shards=2)
    with pytest.raises(ClusterShardError, match="picklable"):
        engine.start()
    # the same spec runs fine inline
    inline = ClusterEngine(spec, shards=1)
    inline.step(n_events=1)
    inline.close()
